# Empty dependencies file for lamport_clocks.
# This may be replaced when dependencies are built.
