file(REMOVE_RECURSE
  "CMakeFiles/lamport_clocks.dir/lamport_clocks.cpp.o"
  "CMakeFiles/lamport_clocks.dir/lamport_clocks.cpp.o.d"
  "lamport_clocks"
  "lamport_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamport_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
