# Empty compiler generated dependencies file for chain_vs_pbr.
# This may be replaced when dependencies are built.
