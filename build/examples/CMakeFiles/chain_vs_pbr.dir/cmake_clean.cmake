file(REMOVE_RECURSE
  "CMakeFiles/chain_vs_pbr.dir/chain_vs_pbr.cpp.o"
  "CMakeFiles/chain_vs_pbr.dir/chain_vs_pbr.cpp.o.d"
  "chain_vs_pbr"
  "chain_vs_pbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_vs_pbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
