# Empty compiler generated dependencies file for shadow_loe.
# This may be replaced when dependencies are built.
