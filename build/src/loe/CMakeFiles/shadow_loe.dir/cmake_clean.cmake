file(REMOVE_RECURSE
  "CMakeFiles/shadow_loe.dir/event_order.cpp.o"
  "CMakeFiles/shadow_loe.dir/event_order.cpp.o.d"
  "CMakeFiles/shadow_loe.dir/properties.cpp.o"
  "CMakeFiles/shadow_loe.dir/properties.cpp.o.d"
  "libshadow_loe.a"
  "libshadow_loe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_loe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
