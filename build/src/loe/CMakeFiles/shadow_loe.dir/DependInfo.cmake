
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loe/event_order.cpp" "src/loe/CMakeFiles/shadow_loe.dir/event_order.cpp.o" "gcc" "src/loe/CMakeFiles/shadow_loe.dir/event_order.cpp.o.d"
  "/root/repo/src/loe/properties.cpp" "src/loe/CMakeFiles/shadow_loe.dir/properties.cpp.o" "gcc" "src/loe/CMakeFiles/shadow_loe.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
