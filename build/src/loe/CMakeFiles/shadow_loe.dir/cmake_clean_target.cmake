file(REMOVE_RECURSE
  "libshadow_loe.a"
)
