# CMake generated Testfile for 
# Source directory: /root/repo/src/loe
# Build directory: /root/repo/build/src/loe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
