file(REMOVE_RECURSE
  "CMakeFiles/shadow_baselines.dir/baseline_server.cpp.o"
  "CMakeFiles/shadow_baselines.dir/baseline_server.cpp.o.d"
  "libshadow_baselines.a"
  "libshadow_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
