# Empty compiler generated dependencies file for shadow_baselines.
# This may be replaced when dependencies are built.
