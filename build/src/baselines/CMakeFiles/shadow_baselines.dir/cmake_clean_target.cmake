file(REMOVE_RECURSE
  "libshadow_baselines.a"
)
