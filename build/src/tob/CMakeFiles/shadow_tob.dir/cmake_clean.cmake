file(REMOVE_RECURSE
  "CMakeFiles/shadow_tob.dir/tob.cpp.o"
  "CMakeFiles/shadow_tob.dir/tob.cpp.o.d"
  "libshadow_tob.a"
  "libshadow_tob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_tob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
