file(REMOVE_RECURSE
  "libshadow_tob.a"
)
