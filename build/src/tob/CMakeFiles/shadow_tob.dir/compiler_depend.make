# Empty compiler generated dependencies file for shadow_tob.
# This may be replaced when dependencies are built.
