file(REMOVE_RECURSE
  "CMakeFiles/shadow_core.dir/chain.cpp.o"
  "CMakeFiles/shadow_core.dir/chain.cpp.o.d"
  "CMakeFiles/shadow_core.dir/client.cpp.o"
  "CMakeFiles/shadow_core.dir/client.cpp.o.d"
  "CMakeFiles/shadow_core.dir/pbr.cpp.o"
  "CMakeFiles/shadow_core.dir/pbr.cpp.o.d"
  "CMakeFiles/shadow_core.dir/replica_common.cpp.o"
  "CMakeFiles/shadow_core.dir/replica_common.cpp.o.d"
  "CMakeFiles/shadow_core.dir/shadowdb.cpp.o"
  "CMakeFiles/shadow_core.dir/shadowdb.cpp.o.d"
  "CMakeFiles/shadow_core.dir/smr.cpp.o"
  "CMakeFiles/shadow_core.dir/smr.cpp.o.d"
  "libshadow_core.a"
  "libshadow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
