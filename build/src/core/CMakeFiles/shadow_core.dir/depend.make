# Empty dependencies file for shadow_core.
# This may be replaced when dependencies are built.
