
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/shadow_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/shadow_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/client.cpp.o.d"
  "/root/repo/src/core/pbr.cpp" "src/core/CMakeFiles/shadow_core.dir/pbr.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/pbr.cpp.o.d"
  "/root/repo/src/core/replica_common.cpp" "src/core/CMakeFiles/shadow_core.dir/replica_common.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/replica_common.cpp.o.d"
  "/root/repo/src/core/shadowdb.cpp" "src/core/CMakeFiles/shadow_core.dir/shadowdb.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/shadowdb.cpp.o.d"
  "/root/repo/src/core/smr.cpp" "src/core/CMakeFiles/shadow_core.dir/smr.cpp.o" "gcc" "src/core/CMakeFiles/shadow_core.dir/smr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tob/CMakeFiles/shadow_tob.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/shadow_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/shadow_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/shadow_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/loe/CMakeFiles/shadow_loe.dir/DependInfo.cmake"
  "/root/repo/build/src/gpm/CMakeFiles/shadow_gpm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
