file(REMOVE_RECURSE
  "libshadow_core.a"
)
