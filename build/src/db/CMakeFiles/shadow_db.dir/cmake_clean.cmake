file(REMOVE_RECURSE
  "CMakeFiles/shadow_db.dir/engine.cpp.o"
  "CMakeFiles/shadow_db.dir/engine.cpp.o.d"
  "CMakeFiles/shadow_db.dir/lock_manager.cpp.o"
  "CMakeFiles/shadow_db.dir/lock_manager.cpp.o.d"
  "CMakeFiles/shadow_db.dir/sql.cpp.o"
  "CMakeFiles/shadow_db.dir/sql.cpp.o.d"
  "CMakeFiles/shadow_db.dir/statement.cpp.o"
  "CMakeFiles/shadow_db.dir/statement.cpp.o.d"
  "CMakeFiles/shadow_db.dir/table.cpp.o"
  "CMakeFiles/shadow_db.dir/table.cpp.o.d"
  "CMakeFiles/shadow_db.dir/value.cpp.o"
  "CMakeFiles/shadow_db.dir/value.cpp.o.d"
  "libshadow_db.a"
  "libshadow_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
