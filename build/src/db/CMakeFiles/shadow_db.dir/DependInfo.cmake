
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/engine.cpp" "src/db/CMakeFiles/shadow_db.dir/engine.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/engine.cpp.o.d"
  "/root/repo/src/db/lock_manager.cpp" "src/db/CMakeFiles/shadow_db.dir/lock_manager.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/lock_manager.cpp.o.d"
  "/root/repo/src/db/sql.cpp" "src/db/CMakeFiles/shadow_db.dir/sql.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/sql.cpp.o.d"
  "/root/repo/src/db/statement.cpp" "src/db/CMakeFiles/shadow_db.dir/statement.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/statement.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/db/CMakeFiles/shadow_db.dir/table.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/table.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/db/CMakeFiles/shadow_db.dir/value.cpp.o" "gcc" "src/db/CMakeFiles/shadow_db.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
