file(REMOVE_RECURSE
  "libshadow_db.a"
)
