# Empty compiler generated dependencies file for shadow_db.
# This may be replaced when dependencies are built.
