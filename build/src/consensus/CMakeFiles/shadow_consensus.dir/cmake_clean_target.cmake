file(REMOVE_RECURSE
  "libshadow_consensus.a"
)
