file(REMOVE_RECURSE
  "CMakeFiles/shadow_consensus.dir/paxos.cpp.o"
  "CMakeFiles/shadow_consensus.dir/paxos.cpp.o.d"
  "CMakeFiles/shadow_consensus.dir/safety.cpp.o"
  "CMakeFiles/shadow_consensus.dir/safety.cpp.o.d"
  "CMakeFiles/shadow_consensus.dir/two_third.cpp.o"
  "CMakeFiles/shadow_consensus.dir/two_third.cpp.o.d"
  "libshadow_consensus.a"
  "libshadow_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
