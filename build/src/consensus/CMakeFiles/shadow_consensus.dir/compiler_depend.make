# Empty compiler generated dependencies file for shadow_consensus.
# This may be replaced when dependencies are built.
