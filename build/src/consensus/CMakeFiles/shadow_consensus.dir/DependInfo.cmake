
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/paxos.cpp" "src/consensus/CMakeFiles/shadow_consensus.dir/paxos.cpp.o" "gcc" "src/consensus/CMakeFiles/shadow_consensus.dir/paxos.cpp.o.d"
  "/root/repo/src/consensus/safety.cpp" "src/consensus/CMakeFiles/shadow_consensus.dir/safety.cpp.o" "gcc" "src/consensus/CMakeFiles/shadow_consensus.dir/safety.cpp.o.d"
  "/root/repo/src/consensus/two_third.cpp" "src/consensus/CMakeFiles/shadow_consensus.dir/two_third.cpp.o" "gcc" "src/consensus/CMakeFiles/shadow_consensus.dir/two_third.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loe/CMakeFiles/shadow_loe.dir/DependInfo.cmake"
  "/root/repo/build/src/gpm/CMakeFiles/shadow_gpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
