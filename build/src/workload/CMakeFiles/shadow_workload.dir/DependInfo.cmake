
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bank.cpp" "src/workload/CMakeFiles/shadow_workload.dir/bank.cpp.o" "gcc" "src/workload/CMakeFiles/shadow_workload.dir/bank.cpp.o.d"
  "/root/repo/src/workload/messages.cpp" "src/workload/CMakeFiles/shadow_workload.dir/messages.cpp.o" "gcc" "src/workload/CMakeFiles/shadow_workload.dir/messages.cpp.o.d"
  "/root/repo/src/workload/procedures.cpp" "src/workload/CMakeFiles/shadow_workload.dir/procedures.cpp.o" "gcc" "src/workload/CMakeFiles/shadow_workload.dir/procedures.cpp.o.d"
  "/root/repo/src/workload/tpcc.cpp" "src/workload/CMakeFiles/shadow_workload.dir/tpcc.cpp.o" "gcc" "src/workload/CMakeFiles/shadow_workload.dir/tpcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/shadow_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
