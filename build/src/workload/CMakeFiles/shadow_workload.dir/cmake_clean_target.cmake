file(REMOVE_RECURSE
  "libshadow_workload.a"
)
