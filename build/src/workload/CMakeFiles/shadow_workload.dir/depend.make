# Empty dependencies file for shadow_workload.
# This may be replaced when dependencies are built.
