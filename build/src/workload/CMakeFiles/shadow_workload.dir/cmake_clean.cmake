file(REMOVE_RECURSE
  "CMakeFiles/shadow_workload.dir/bank.cpp.o"
  "CMakeFiles/shadow_workload.dir/bank.cpp.o.d"
  "CMakeFiles/shadow_workload.dir/messages.cpp.o"
  "CMakeFiles/shadow_workload.dir/messages.cpp.o.d"
  "CMakeFiles/shadow_workload.dir/procedures.cpp.o"
  "CMakeFiles/shadow_workload.dir/procedures.cpp.o.d"
  "CMakeFiles/shadow_workload.dir/tpcc.cpp.o"
  "CMakeFiles/shadow_workload.dir/tpcc.cpp.o.d"
  "libshadow_workload.a"
  "libshadow_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
