# Empty compiler generated dependencies file for shadow_sim.
# This may be replaced when dependencies are built.
