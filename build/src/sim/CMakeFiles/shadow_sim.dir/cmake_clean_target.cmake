file(REMOVE_RECURSE
  "libshadow_sim.a"
)
