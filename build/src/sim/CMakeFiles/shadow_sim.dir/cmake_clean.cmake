file(REMOVE_RECURSE
  "CMakeFiles/shadow_sim.dir/world.cpp.o"
  "CMakeFiles/shadow_sim.dir/world.cpp.o.d"
  "libshadow_sim.a"
  "libshadow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
