file(REMOVE_RECURSE
  "libshadow_gpm.a"
)
