# Empty dependencies file for shadow_gpm.
# This may be replaced when dependencies are built.
