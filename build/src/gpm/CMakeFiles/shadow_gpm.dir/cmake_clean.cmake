file(REMOVE_RECURSE
  "CMakeFiles/shadow_gpm.dir/bisimulation.cpp.o"
  "CMakeFiles/shadow_gpm.dir/bisimulation.cpp.o.d"
  "CMakeFiles/shadow_gpm.dir/runtime.cpp.o"
  "CMakeFiles/shadow_gpm.dir/runtime.cpp.o.d"
  "libshadow_gpm.a"
  "libshadow_gpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_gpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
