
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpm/bisimulation.cpp" "src/gpm/CMakeFiles/shadow_gpm.dir/bisimulation.cpp.o" "gcc" "src/gpm/CMakeFiles/shadow_gpm.dir/bisimulation.cpp.o.d"
  "/root/repo/src/gpm/runtime.cpp" "src/gpm/CMakeFiles/shadow_gpm.dir/runtime.cpp.o" "gcc" "src/gpm/CMakeFiles/shadow_gpm.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
