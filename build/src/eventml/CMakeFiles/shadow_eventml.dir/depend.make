# Empty dependencies file for shadow_eventml.
# This may be replaced when dependencies are built.
