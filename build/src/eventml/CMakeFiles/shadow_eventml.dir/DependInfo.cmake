
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eventml/class_expr.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/class_expr.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/class_expr.cpp.o.d"
  "/root/repo/src/eventml/compile.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/compile.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/compile.cpp.o.d"
  "/root/repo/src/eventml/instance.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/instance.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/instance.cpp.o.d"
  "/root/repo/src/eventml/optimizer.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/optimizer.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/optimizer.cpp.o.d"
  "/root/repo/src/eventml/specs/clk.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/specs/clk.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/specs/clk.cpp.o.d"
  "/root/repo/src/eventml/specs/two_third.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/specs/two_third.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/specs/two_third.cpp.o.d"
  "/root/repo/src/eventml/value.cpp" "src/eventml/CMakeFiles/shadow_eventml.dir/value.cpp.o" "gcc" "src/eventml/CMakeFiles/shadow_eventml.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpm/CMakeFiles/shadow_gpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
