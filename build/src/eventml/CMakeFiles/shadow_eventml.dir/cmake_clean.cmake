file(REMOVE_RECURSE
  "CMakeFiles/shadow_eventml.dir/class_expr.cpp.o"
  "CMakeFiles/shadow_eventml.dir/class_expr.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/compile.cpp.o"
  "CMakeFiles/shadow_eventml.dir/compile.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/instance.cpp.o"
  "CMakeFiles/shadow_eventml.dir/instance.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/optimizer.cpp.o"
  "CMakeFiles/shadow_eventml.dir/optimizer.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/specs/clk.cpp.o"
  "CMakeFiles/shadow_eventml.dir/specs/clk.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/specs/two_third.cpp.o"
  "CMakeFiles/shadow_eventml.dir/specs/two_third.cpp.o.d"
  "CMakeFiles/shadow_eventml.dir/value.cpp.o"
  "CMakeFiles/shadow_eventml.dir/value.cpp.o.d"
  "libshadow_eventml.a"
  "libshadow_eventml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_eventml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
