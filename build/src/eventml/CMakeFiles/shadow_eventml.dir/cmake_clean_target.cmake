file(REMOVE_RECURSE
  "libshadow_eventml.a"
)
