# CMake generated Testfile for 
# Source directory: /root/repo/src/eventml
# Build directory: /root/repo/build/src/eventml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
