file(REMOVE_RECURSE
  "libshadow_common.a"
)
