file(REMOVE_RECURSE
  "CMakeFiles/shadow_common.dir/rng.cpp.o"
  "CMakeFiles/shadow_common.dir/rng.cpp.o.d"
  "libshadow_common.a"
  "libshadow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
