# Empty compiler generated dependencies file for shadow_common.
# This may be replaced when dependencies are built.
