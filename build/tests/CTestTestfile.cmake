# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_world_test[1]_include.cmake")
include("/root/repo/build/tests/tob_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/db_engine_test[1]_include.cmake")
include("/root/repo/build/tests/db_sql_test[1]_include.cmake")
include("/root/repo/build/tests/workload_tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/core_smr_test[1]_include.cmake")
include("/root/repo/build/tests/core_pbr_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eventml_clk_test[1]_include.cmake")
include("/root/repo/build/tests/eventml_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_property_test[1]_include.cmake")
include("/root/repo/build/tests/db_lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/loe_test[1]_include.cmake")
include("/root/repo/build/tests/workload_bank_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_shadowdb_property_test[1]_include.cmake")
include("/root/repo/build/tests/eventml_dsl_test[1]_include.cmake")
include("/root/repo/build/tests/eventml_two_third_spec_test[1]_include.cmake")
include("/root/repo/build/tests/core_chain_test[1]_include.cmake")
include("/root/repo/build/tests/tob_relay_test[1]_include.cmake")
include("/root/repo/build/tests/db_isolation_test[1]_include.cmake")
include("/root/repo/build/tests/core_recovery_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sim_substrate_extra_test[1]_include.cmake")
