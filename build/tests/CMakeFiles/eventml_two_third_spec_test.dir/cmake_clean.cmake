file(REMOVE_RECURSE
  "CMakeFiles/eventml_two_third_spec_test.dir/eventml/two_third_spec_test.cpp.o"
  "CMakeFiles/eventml_two_third_spec_test.dir/eventml/two_third_spec_test.cpp.o.d"
  "eventml_two_third_spec_test"
  "eventml_two_third_spec_test.pdb"
  "eventml_two_third_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventml_two_third_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
