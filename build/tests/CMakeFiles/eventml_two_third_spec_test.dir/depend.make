# Empty dependencies file for eventml_two_third_spec_test.
# This may be replaced when dependencies are built.
