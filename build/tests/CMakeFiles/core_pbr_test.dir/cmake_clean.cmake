file(REMOVE_RECURSE
  "CMakeFiles/core_pbr_test.dir/core/pbr_test.cpp.o"
  "CMakeFiles/core_pbr_test.dir/core/pbr_test.cpp.o.d"
  "core_pbr_test"
  "core_pbr_test.pdb"
  "core_pbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
