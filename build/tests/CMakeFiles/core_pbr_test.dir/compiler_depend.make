# Empty compiler generated dependencies file for core_pbr_test.
# This may be replaced when dependencies are built.
