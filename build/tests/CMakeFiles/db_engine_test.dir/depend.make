# Empty dependencies file for db_engine_test.
# This may be replaced when dependencies are built.
