file(REMOVE_RECURSE
  "CMakeFiles/db_engine_test.dir/db/engine_test.cpp.o"
  "CMakeFiles/db_engine_test.dir/db/engine_test.cpp.o.d"
  "db_engine_test"
  "db_engine_test.pdb"
  "db_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
