# Empty compiler generated dependencies file for eventml_clk_test.
# This may be replaced when dependencies are built.
