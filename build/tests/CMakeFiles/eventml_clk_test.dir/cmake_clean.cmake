file(REMOVE_RECURSE
  "CMakeFiles/eventml_clk_test.dir/eventml/clk_test.cpp.o"
  "CMakeFiles/eventml_clk_test.dir/eventml/clk_test.cpp.o.d"
  "eventml_clk_test"
  "eventml_clk_test.pdb"
  "eventml_clk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventml_clk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
