file(REMOVE_RECURSE
  "CMakeFiles/tob_relay_test.dir/tob/tob_relay_test.cpp.o"
  "CMakeFiles/tob_relay_test.dir/tob/tob_relay_test.cpp.o.d"
  "tob_relay_test"
  "tob_relay_test.pdb"
  "tob_relay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tob_relay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
