# Empty dependencies file for tob_relay_test.
# This may be replaced when dependencies are built.
