# Empty compiler generated dependencies file for core_recovery_edge_test.
# This may be replaced when dependencies are built.
