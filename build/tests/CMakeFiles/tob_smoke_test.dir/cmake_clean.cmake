file(REMOVE_RECURSE
  "CMakeFiles/tob_smoke_test.dir/tob/tob_smoke_test.cpp.o"
  "CMakeFiles/tob_smoke_test.dir/tob/tob_smoke_test.cpp.o.d"
  "tob_smoke_test"
  "tob_smoke_test.pdb"
  "tob_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tob_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
