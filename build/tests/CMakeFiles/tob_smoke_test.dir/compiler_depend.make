# Empty compiler generated dependencies file for tob_smoke_test.
# This may be replaced when dependencies are built.
