# Empty dependencies file for workload_bank_test.
# This may be replaced when dependencies are built.
