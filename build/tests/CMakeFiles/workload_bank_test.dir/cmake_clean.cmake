file(REMOVE_RECURSE
  "CMakeFiles/workload_bank_test.dir/workload/bank_test.cpp.o"
  "CMakeFiles/workload_bank_test.dir/workload/bank_test.cpp.o.d"
  "workload_bank_test"
  "workload_bank_test.pdb"
  "workload_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
