# Empty dependencies file for db_isolation_test.
# This may be replaced when dependencies are built.
