file(REMOVE_RECURSE
  "CMakeFiles/db_isolation_test.dir/db/isolation_test.cpp.o"
  "CMakeFiles/db_isolation_test.dir/db/isolation_test.cpp.o.d"
  "db_isolation_test"
  "db_isolation_test.pdb"
  "db_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
