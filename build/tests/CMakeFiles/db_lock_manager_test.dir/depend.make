# Empty dependencies file for db_lock_manager_test.
# This may be replaced when dependencies are built.
