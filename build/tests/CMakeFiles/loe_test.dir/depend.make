# Empty dependencies file for loe_test.
# This may be replaced when dependencies are built.
