file(REMOVE_RECURSE
  "CMakeFiles/loe_test.dir/loe/loe_test.cpp.o"
  "CMakeFiles/loe_test.dir/loe/loe_test.cpp.o.d"
  "loe_test"
  "loe_test.pdb"
  "loe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
