# Empty dependencies file for core_smr_test.
# This may be replaced when dependencies are built.
