file(REMOVE_RECURSE
  "CMakeFiles/core_smr_test.dir/core/smr_test.cpp.o"
  "CMakeFiles/core_smr_test.dir/core/smr_test.cpp.o.d"
  "core_smr_test"
  "core_smr_test.pdb"
  "core_smr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_smr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
