file(REMOVE_RECURSE
  "CMakeFiles/workload_tpcc_test.dir/workload/tpcc_test.cpp.o"
  "CMakeFiles/workload_tpcc_test.dir/workload/tpcc_test.cpp.o.d"
  "workload_tpcc_test"
  "workload_tpcc_test.pdb"
  "workload_tpcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
