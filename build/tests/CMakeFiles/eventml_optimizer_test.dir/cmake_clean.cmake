file(REMOVE_RECURSE
  "CMakeFiles/eventml_optimizer_test.dir/eventml/optimizer_test.cpp.o"
  "CMakeFiles/eventml_optimizer_test.dir/eventml/optimizer_test.cpp.o.d"
  "eventml_optimizer_test"
  "eventml_optimizer_test.pdb"
  "eventml_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventml_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
