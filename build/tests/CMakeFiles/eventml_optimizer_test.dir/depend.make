# Empty dependencies file for eventml_optimizer_test.
# This may be replaced when dependencies are built.
