# Empty compiler generated dependencies file for sim_substrate_extra_test.
# This may be replaced when dependencies are built.
