file(REMOVE_RECURSE
  "CMakeFiles/sim_substrate_extra_test.dir/sim/substrate_extra_test.cpp.o"
  "CMakeFiles/sim_substrate_extra_test.dir/sim/substrate_extra_test.cpp.o.d"
  "sim_substrate_extra_test"
  "sim_substrate_extra_test.pdb"
  "sim_substrate_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_substrate_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
