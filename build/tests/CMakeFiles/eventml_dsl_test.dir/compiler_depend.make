# Empty compiler generated dependencies file for eventml_dsl_test.
# This may be replaced when dependencies are built.
