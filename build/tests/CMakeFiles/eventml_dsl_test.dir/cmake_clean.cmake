file(REMOVE_RECURSE
  "CMakeFiles/eventml_dsl_test.dir/eventml/dsl_test.cpp.o"
  "CMakeFiles/eventml_dsl_test.dir/eventml/dsl_test.cpp.o.d"
  "eventml_dsl_test"
  "eventml_dsl_test.pdb"
  "eventml_dsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventml_dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
