file(REMOVE_RECURSE
  "CMakeFiles/fig10a_recovery.dir/fig10a_recovery.cpp.o"
  "CMakeFiles/fig10a_recovery.dir/fig10a_recovery.cpp.o.d"
  "fig10a_recovery"
  "fig10a_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
