
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10a_recovery.cpp" "bench/CMakeFiles/fig10a_recovery.dir/fig10a_recovery.cpp.o" "gcc" "bench/CMakeFiles/fig10a_recovery.dir/fig10a_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shadow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loe/CMakeFiles/shadow_loe.dir/DependInfo.cmake"
  "/root/repo/build/src/gpm/CMakeFiles/shadow_gpm.dir/DependInfo.cmake"
  "/root/repo/build/src/eventml/CMakeFiles/shadow_eventml.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/shadow_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/tob/CMakeFiles/shadow_tob.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/shadow_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/shadow_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shadow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/shadow_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
