# Empty dependencies file for fig9b_tpcc.
# This may be replaced when dependencies are built.
