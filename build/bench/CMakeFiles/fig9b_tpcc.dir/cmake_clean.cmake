file(REMOVE_RECURSE
  "CMakeFiles/fig9b_tpcc.dir/fig9b_tpcc.cpp.o"
  "CMakeFiles/fig9b_tpcc.dir/fig9b_tpcc.cpp.o.d"
  "fig9b_tpcc"
  "fig9b_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
