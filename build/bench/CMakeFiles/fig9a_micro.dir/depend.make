# Empty dependencies file for fig9a_micro.
# This may be replaced when dependencies are built.
