file(REMOVE_RECURSE
  "CMakeFiles/fig9a_micro.dir/fig9a_micro.cpp.o"
  "CMakeFiles/fig9a_micro.dir/fig9a_micro.cpp.o.d"
  "fig9a_micro"
  "fig9a_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
