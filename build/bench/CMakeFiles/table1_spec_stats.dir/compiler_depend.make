# Empty compiler generated dependencies file for table1_spec_stats.
# This may be replaced when dependencies are built.
