# Empty compiler generated dependencies file for fig10b_state_transfer.
# This may be replaced when dependencies are built.
