file(REMOVE_RECURSE
  "CMakeFiles/fig10b_state_transfer.dir/fig10b_state_transfer.cpp.o"
  "CMakeFiles/fig10b_state_transfer.dir/fig10b_state_transfer.cpp.o.d"
  "fig10b_state_transfer"
  "fig10b_state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
