# Empty compiler generated dependencies file for fig8_broadcast_service.
# This may be replaced when dependencies are built.
