file(REMOVE_RECURSE
  "CMakeFiles/fig8_broadcast_service.dir/fig8_broadcast_service.cpp.o"
  "CMakeFiles/fig8_broadcast_service.dir/fig8_broadcast_service.cpp.o.d"
  "fig8_broadcast_service"
  "fig8_broadcast_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_broadcast_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
