// A tiny SQL session against the embedded engine — the "JDBC" view of the
// database substrate ShadowDB replicates. Demonstrates the mini-SQL front
// end, transactions, aggregates and the engine's snapshot/restore used by
// state transfer. Runs a scripted session (no stdin needed) and prints each
// statement with its result.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "db/engine.hpp"
#include "db/sql.hpp"

using namespace shadow;

namespace {

class SqlSession {
 public:
  explicit SqlSession(db::Engine& engine) : engine_(engine) {}

  void exec(const std::string& sql) {
    std::printf("sql> %s\n", sql.c_str());
    db::Statement stmt;
    try {
      stmt = db::parse_sql(sql, [this](const std::string& name) -> const db::TableSchema* {
        auto it = schemas_.find(name);
        return it == schemas_.end() ? nullptr : &it->second;
      });
    } catch (const PreconditionViolation& ex) {
      std::printf("  error: %s\n", ex.what());
      return;
    }
    if (stmt.kind == db::Statement::Kind::kCreateTable) {
      schemas_[stmt.schema.name] = stmt.schema;
      engine_.create_table(stmt.schema);
      std::printf("  ok, table '%s' created\n", stmt.schema.name.c_str());
      return;
    }
    const db::TxnId txn = engine_.begin();
    const db::ExecResult result = engine_.execute(txn, stmt);
    engine_.commit(txn);
    if (!result.ok()) {
      std::printf("  aborted: %s\n", result.error.c_str());
      return;
    }
    if (!result.agg_value.is_null()) {
      std::printf("  = %s\n", result.agg_value.to_string().c_str());
    } else if (!result.rows.empty()) {
      for (const db::Row& row : result.rows) {
        std::printf("  | ");
        for (const db::Value& v : row) std::printf("%s ", v.to_string().c_str());
        std::printf("\n");
      }
      std::printf("  (%zu rows)\n", result.rows.size());
    } else {
      std::printf("  ok, %zu rows affected (%llu us of engine CPU)\n", result.affected,
                  static_cast<unsigned long long>(result.cost_us));
    }
  }

 private:
  db::Engine& engine_;
  std::map<std::string, db::TableSchema> schemas_;
};

}  // namespace

int main() {
  db::Engine engine(db::make_h2_traits());
  SqlSession session(engine);

  session.exec("CREATE TABLE accounts (id BIGINT, owner VARCHAR(32), balance BIGINT, "
               "PRIMARY KEY (id))");
  session.exec("INSERT INTO accounts VALUES (1, 'alice', 120)");
  session.exec("INSERT INTO accounts VALUES (2, 'bob', 80)");
  session.exec("INSERT INTO accounts VALUES (3, 'carol', 500)");
  session.exec("SELECT * FROM accounts WHERE id = 2");
  session.exec("UPDATE accounts SET balance = balance + 20 WHERE id = 2");
  session.exec("SELECT owner, balance FROM accounts WHERE balance >= 100 "
               "ORDER BY balance DESC");
  session.exec("SELECT SUM(balance) FROM accounts");
  session.exec("SELECT COUNT(*) FROM accounts WHERE balance < 200");
  session.exec("DELETE FROM accounts WHERE id = 1");
  session.exec("SELECT COUNT(*) FROM accounts");
  session.exec("INSERT INTO accounts VALUES (2, 'dupe', 0)");  // duplicate key
  session.exec("SELECT * FROM nosuch WHERE id = 1");           // diagnosed

  // Snapshot/restore — the state-transfer path of ShadowDB's recovery.
  const db::Engine::Snapshot snap = engine.snapshot();
  db::Engine replica(db::make_derby_traits());
  replica.reset_for_restore(snap.schemas);
  for (const auto& batch : snap.batches) replica.restore_batch(batch);
  std::printf("\nsnapshot: %zu rows / %zu bytes shipped in %zu batches\n", snap.total_rows,
              snap.total_bytes, snap.batches.size());
  std::printf("restored into a %s replica; digests %s\n",
              replica.traits().name.c_str(),
              replica.state_digest() == engine.state_digest() ? "match" : "DIFFER");
  return replica.state_digest() == engine.state_digest() ? 0 : 1;
}
