// Quickstart: a replicated bank on ShadowDB-SMR in ~80 lines.
//
// Builds the full deployment of the paper — three simulated machines, each
// running one node of the formally-modeled total order broadcast service
// (Paxos, f=1) co-located with a database replica — registers a stored
// procedure, and runs a client against it. Everything below is the public
// API a downstream user would touch.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

using namespace shadow;

int main() {
  // 1. A deterministic simulated world (seed fixes every run).
  sim::World world(/*seed=*/2014);

  // 2. Register the application's transactions as stored procedures.
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);

  // 3. Assemble a ShadowDB-SMR cluster: 3 machines, 2 active database
  //    replicas + 1 spare, diverse engines (H2-, HSQLDB-, Derby-like), and
  //    the compiled ("Lisp") broadcast service ordering every transaction.
  const workload::bank::BankConfig bank{/*accounts=*/10000, /*owner_bytes=*/0};
  core::ClusterOptions options;
  options.registry = registry;
  options.loader = [&bank](db::Engine& engine) { workload::bank::load(engine, bank); };
  options.tob_tier = gpm::ExecutionTier::kCompiled;
  core::SmrCluster cluster = core::make_smr_cluster(world, options);

  // 4. A closed-loop client: broadcast each transaction through the service,
  //    take the first replica answer, retry on timeout (at-most-once is the
  //    cluster's problem, not ours).
  const NodeId client_node = world.add_node("client");
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kTob;
  copts.targets = cluster.broadcast_targets();
  copts.txn_limit = 500;
  auto rng = std::make_shared<Rng>(7);
  core::DbClient client(world, client_node, ClientId{1}, copts, [rng, bank]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, bank));
  });

  // 5. Run.
  client.start();
  world.run_until(60'000'000);  // 60 virtual seconds is plenty

  std::printf("committed %llu deposits, %llu aborted, mean latency %.2f ms\n",
              static_cast<unsigned long long>(client.committed()),
              static_cast<unsigned long long>(client.aborted()),
              client.latencies().mean_ms());

  // 6. Both replicas executed the same sequence — despite running different
  //    database engines — and agree on the final state.
  std::printf("replica[0] (%s) digest: %016llx\n",
              cluster.replicas[0]->engine().traits().name.c_str(),
              static_cast<unsigned long long>(cluster.replicas[0]->state_digest()));
  std::printf("replica[1] (%s) digest: %016llx\n",
              cluster.replicas[1]->engine().traits().name.c_str(),
              static_cast<unsigned long long>(cluster.replicas[1]->state_digest()));
  const bool agree =
      cluster.replicas[0]->state_digest() == cluster.replicas[1]->state_digest();
  std::printf("state agreement: %s\n", agree ? "yes" : "NO (bug!)");

  // 7. Consensus safety was machine-checked throughout the run.
  std::printf("consensus safety: agreement %s, validity %s (%zu decisions)\n",
              cluster.safety->check_agreement().ok ? "ok" : "VIOLATED",
              cluster.safety->check_validity().ok ? "ok" : "VIOLATED",
              cluster.safety->decisions());
  return agree ? 0 : 1;
}
