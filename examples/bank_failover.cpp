// Primary-backup failover, narrated.
//
// Reproduces the scenario of the paper's Fig. 10(a) interactively: a
// ShadowDB-PBR cluster with diverse engines (H2 primary, HSQLDB backup,
// Derby spare) serves bank transactions; we crash the primary mid-run and
// watch the formally-modeled broadcast service drive the seven-step
// recovery: suspicion, configuration agreement, election by longest log,
// snapshot state transfer to the spare, and resumption — with Durability
// and State-agreement checked at the end.
#include <cstdio>
#include <memory>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

using namespace shadow;

int main() {
  sim::World world(1971);
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{20000, 0};

  core::ClusterOptions options;
  options.registry = registry;
  options.loader = [&bank](db::Engine& engine) { workload::bank::load(engine, bank); };
  options.tob_tier = gpm::ExecutionTier::kInterpretedOpt;  // recovery-only traffic
  options.pbr.suspect_timeout = 3'000'000;  // 3 s detection for the demo
  options.pbr.hb_period = 500'000;
  core::PbrCluster cluster = core::make_pbr_cluster(world, options);

  std::printf("cluster: primary=%s backup=%s spare=%s\n",
              cluster.replicas[0]->engine().traits().name.c_str(),
              cluster.replicas[1]->engine().traits().name.c_str(),
              cluster.replicas[2]->engine().traits().name.c_str());

  std::int64_t deposited_total = 0;
  const NodeId client_node = world.add_node("client");
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kDirect;
  copts.targets = cluster.request_targets();
  copts.txn_limit = 4000;
  copts.retry_timeout = 1'000'000;
  auto rng = std::make_shared<Rng>(5);
  core::DbClient client(world, client_node, ClientId{1}, copts,
                        [rng, &bank, &deposited_total]() {
                          auto params = workload::bank::make_deposit(*rng, bank);
                          deposited_total += params[1].as_int();
                          return std::make_pair(
                              std::string(workload::bank::kDepositProc), std::move(params));
                        });
  client.start();

  world.run_until(1'000'000);
  std::printf("t=1s    %llu transactions committed; primary is %s\n",
              static_cast<unsigned long long>(client.committed()),
              world.node_name(cluster.initial_primary()).c_str());

  std::printf("t=1s    >>> crashing the primary <<<\n");
  world.crash(cluster.initial_primary());

  world.run_until(3'500'000);
  std::printf("t=3.5s  detection window elapsed; backup should have proposed a "
              "new configuration via the broadcast service\n");

  world.run_until(60'000'000);
  const auto& backup = cluster.replicas[1];
  const auto& spare = cluster.replicas[2];
  std::printf("t=60s   client done: %llu committed, %llu retries during failover\n",
              static_cast<unsigned long long>(client.committed()),
              static_cast<unsigned long long>(client.retries()));
  std::printf("        new configuration seq=%llu, primary is replica[1]=%s: %s\n",
              static_cast<unsigned long long>(backup->config_seq()),
              backup->engine().traits().name.c_str(),
              backup->is_primary() ? "yes" : "no");

  // Durability: every answered deposit is reflected exactly once.
  const std::int64_t expected = 1000 * bank.accounts + deposited_total;
  const std::int64_t actual = workload::bank::total_balance(backup->engine());
  std::printf("        durability: balance total %lld (expected %lld) — %s\n",
              static_cast<long long>(actual), static_cast<long long>(expected),
              actual == expected ? "ok" : "VIOLATED");

  // State-agreement: the new configuration starts from identical states,
  // across *different* database engines.
  const bool agree = backup->state_digest() == spare->state_digest();
  std::printf("        state-agreement (%s vs %s): %s\n",
              backup->engine().traits().name.c_str(), spare->engine().traits().name.c_str(),
              agree ? "ok" : "VIOLATED");
  const bool ok = client.done() && backup->is_primary() && actual == expected && agree;
  std::printf("\n%s\n", ok ? "failover completed correctly" : "FAILOVER PROBLEM");
  return ok ? 0 : 1;
}
