// Chain replication vs primary-backup, side by side (extension demo).
//
// Sec. III of the paper lists chain replication among the protocols the
// formally-modeled broadcast service enables. This example runs the same
// bank workload against a 3-replica PBR group and a 3-link chain, compares
// the normal-case numbers, then crashes the chain's head mid-run and shows
// the TOB-driven reconfiguration splicing the chain back together.
#include <cstdio>
#include <memory>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

using namespace shadow;

namespace {

struct RunResult {
  double throughput = 0;
  double latency_ms = 0;
  std::uint64_t committed = 0;
};

RunResult drive(sim::World& world, const std::vector<NodeId>& targets, std::size_t n_clients,
                std::size_t txns, const workload::bank::BankConfig& bank) {
  std::vector<std::unique_ptr<core::DbClient>> clients;
  for (std::size_t i = 0; i < n_clients; ++i) {
    const NodeId node = world.add_node("client" + std::to_string(i));
    core::DbClient::Options copts;
    copts.mode = core::DbClient::Mode::kDirect;
    copts.targets = targets;
    copts.txn_limit = txns;
    auto rng = std::make_shared<Rng>(100 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts, [rng, bank]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, bank));
        }));
    clients.back()->start();
  }
  net::Time horizon = 0;
  while (true) {
    horizon += 50000;
    world.run_until(horizon);
    const bool all = std::all_of(clients.begin(), clients.end(),
                                 [](const auto& c) { return c->done(); });
    if (all || horizon > 600'000'000) break;
  }
  RunResult out;
  double lat = 0;
  for (auto& c : clients) {
    out.committed += c->committed();
    lat += c->latencies().mean_ms();
  }
  out.throughput = static_cast<double>(out.committed) * 1e6 / static_cast<double>(world.now());
  out.latency_ms = lat / static_cast<double>(n_clients);
  return out;
}

core::ClusterOptions base_options(std::shared_ptr<workload::ProcedureRegistry> registry,
                                  const workload::bank::BankConfig& bank) {
  core::ClusterOptions opts;
  opts.registry = std::move(registry);
  opts.machines = 4;
  opts.db_replicas = 3;
  opts.db_spares = 1;
  opts.engines = {db::make_h2_traits()};
  opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
  opts.loader = [bank](db::Engine& e) { workload::bank::load(e, bank); };
  return opts;
}

}  // namespace

int main() {
  const workload::bank::BankConfig bank{20000, 0};
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);

  // -- normal case, 12 clients ---------------------------------------------------
  std::printf("normal case (3 replicas, 12 clients x 500 deposits):\n");
  {
    sim::World world(7);
    core::PbrCluster pbr = core::make_pbr_cluster(world, base_options(registry, bank));
    const RunResult r = drive(world, pbr.request_targets(), 12, 500, bank);
    std::printf("  PBR:   %6.0f txn/s, %5.2f ms mean (%llu committed)\n", r.throughput,
                r.latency_ms, static_cast<unsigned long long>(r.committed));
  }
  {
    sim::World world(7);
    core::ChainCluster chain = core::make_chain_cluster(world, base_options(registry, bank));
    const RunResult r = drive(world, chain.request_targets(), 12, 500, bank);
    std::printf("  chain: %6.0f txn/s, %5.2f ms mean (%llu committed)\n", r.throughput,
                r.latency_ms, static_cast<unsigned long long>(r.committed));
    std::printf("  (the chain's tail answers once an update is on *every* replica —\n"
                "   stronger durability than PBR's ack collection, and faster here\n"
                "   because the head never blocks on acknowledgements)\n");
  }

  // -- crash the head mid-run -----------------------------------------------------
  std::printf("\nhead crash and TOB-driven chain splice:\n");
  sim::World world(11);
  core::ClusterOptions opts = base_options(registry, bank);
  core::ChainConfig chain_config;
  chain_config.suspect_timeout = 2'000'000;
  chain_config.hb_period = 400'000;
  core::ChainCluster chain = core::make_chain_cluster(world, opts, chain_config);

  const NodeId node = world.add_node("client");
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kDirect;
  copts.targets = chain.request_targets();
  copts.txn_limit = 3000;
  copts.retry_timeout = 1'000'000;
  auto rng = std::make_shared<Rng>(5);
  std::int64_t total = 0;
  core::DbClient client(world, node, ClientId{1}, copts, [rng, bank, &total]() {
    auto params = workload::bank::make_deposit(*rng, bank);
    total += params[1].as_int();
    return std::make_pair(std::string(workload::bank::kDepositProc), std::move(params));
  });
  client.start();
  world.run_until(500'000);
  std::printf("  t=0.5s  committed %llu; crashing the head\n",
              static_cast<unsigned long long>(client.committed()));
  world.crash(chain.head());
  world.run_until(120'000'000);

  std::printf("  t=120s  client done=%d committed=%llu retries=%llu\n", client.done(),
              static_cast<unsigned long long>(client.committed()),
              static_cast<unsigned long long>(client.retries()));
  bool ok = client.done();
  for (std::size_t i = 1; i < chain.replicas.size(); ++i) {
    auto& replica = *chain.replicas[i];
    const auto& members = replica.chain();
    if (std::find(members.begin(), members.end(), chain.replica_nodes[i]) == members.end()) {
      continue;
    }
    const std::int64_t balance = workload::bank::total_balance(replica.engine());
    const bool conserved = balance == 1000 * bank.accounts + total;
    std::printf("  replica %zu: config=%llu position %s, conservation %s\n", i,
                static_cast<unsigned long long>(replica.config_seq()),
                replica.is_head() ? "head" : (replica.is_tail() ? "tail" : "middle"),
                conserved ? "ok" : "VIOLATED");
    ok = ok && conserved;
  }
  std::printf("\n%s\n", ok ? "chain failover completed correctly" : "CHAIN PROBLEM");
  return ok ? 0 : 1;
}
