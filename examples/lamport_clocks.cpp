// The paper's running example (Sec. II-C), end to end:
//
//   1. write the CLK specification in the embedded EventML DSL (Fig. 3);
//   2. compile it to GPM processes and deploy on simulated locations;
//   3. run it and record the Logic-of-Events event ordering;
//   4. machine-check the correctness properties the paper proves in Nuprl —
//      the progress property and Lamport's Clock Condition (Fig. 6);
//   5. run the program optimizer and check bisimulation with the original
//      (Fig. 7), then compare the measured work.
#include <algorithm>
#include <cstdio>

#include "sim/world.hpp"
#include "eventml/compile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/clk.hpp"
#include "gpm/bisimulation.hpp"
#include "gpm/runtime.hpp"
#include "loe/properties.hpp"
#include "loe/recorder.hpp"

using namespace shadow;
using eventml::Value;
using eventml::ValuePtr;

int main() {
  // -- 1. the specification -----------------------------------------------------
  sim::World world(42);
  std::vector<NodeId> locs;
  for (int i = 0; i < 4; ++i) locs.push_back(world.add_node("p" + std::to_string(i)));

  eventml::specs::ClkParams params;
  params.locs = locs;
  params.handle = [ring = locs](NodeId slf, const ValuePtr& value) {
    const auto idx = static_cast<std::size_t>(
        std::find(ring.begin(), ring.end(), slf) - ring.begin());
    return std::make_pair(Value::integer(value->as_int() + 1),
                          ring[(idx + 1) % ring.size()]);
  };
  const eventml::Spec spec = eventml::specs::make_clk_spec(params);
  const eventml::AstStats stats = spec.stats();
  std::printf("CLK specification: %llu AST nodes, %zu declared properties\n",
              static_cast<unsigned long long>(stats.total_nodes), spec.properties.size());
  for (const auto& prop : spec.properties) {
    std::printf("  property %-16s %s\n", prop.name.c_str(), prop.statement.c_str());
  }

  // -- 2./3. compile, deploy, run, record ---------------------------------------
  loe::Recorder recorder(world, [](const sim::Message& m) -> std::int64_t {
    if (m.header != eventml::specs::kClkMsgHeader || !m.has_body()) return -1;
    const ValuePtr* body = sim::msg_body_if<ValuePtr>(m);
    return body ? eventml::snd(*body)->as_int() : -1;
  });
  auto hosts = gpm::deploy(world, eventml::compile_to_gpm(spec, locs), locs);

  // Two concurrent tokens make the causal structure non-trivial.
  world.post(locs[0], locs[0],
             eventml::make_dsl_msg(eventml::specs::kClkMsgHeader,
                                   eventml::specs::clk_msg_body(Value::integer(0), 0)));
  world.post(locs[2], locs[2],
             eventml::make_dsl_msg(eventml::specs::kClkMsgHeader,
                                   eventml::specs::clk_msg_body(Value::integer(1000), 0)));
  world.run_until(100'000);
  const loe::EventOrder& order = recorder.order();
  std::printf("\nran %llu messages; recorded %zu LoE events at %zu locations\n",
              static_cast<unsigned long long>(world.messages_delivered()), order.size(),
              locs.size());

  // -- 4. verify ------------------------------------------------------------------
  // Assign each receive the post-update clock (the send CLK emits while
  // handling it), then check C1/C2 and the full condition on sampled
  // happens-before pairs.
  std::vector<std::optional<std::int64_t>> clock_table(order.size());
  for (const loe::Event& e : order.events()) {
    if (e.kind != loe::EventKind::kSend || e.header != eventml::specs::kClkMsgHeader) continue;
    for (loe::EventId p = e.local_pred; p != loe::kNoEvent; p = order.at(p).local_pred) {
      const loe::Event& prev = order.at(p);
      if (prev.kind == loe::EventKind::kSend) break;
      if (prev.kind == loe::EventKind::kReceive && !clock_table[p].has_value()) {
        clock_table[p] = e.info;
      }
    }
  }
  const loe::ClockFn clock_of = [&clock_table](const loe::Event& e) {
    return clock_table[e.id];
  };
  const loe::ClockFn send_clock = [](const loe::Event& e) -> std::optional<std::int64_t> {
    if (e.kind != loe::EventKind::kSend || e.info < 0) return std::nullopt;
    return e.info;
  };
  const loe::CheckResult well_formed = loe::check_causal_well_formed(order);
  const loe::CheckResult clock_cond = loe::check_clock_condition(order, clock_of, send_clock);
  const loe::CheckResult progress = loe::check_progress_strict_increase(order, send_clock);
  std::printf("causal order well-formed:  %s\n", well_formed.ok ? "ok" : well_formed.detail.c_str());
  std::printf("progress strict_inc:       %s\n", progress.ok ? "ok" : progress.detail.c_str());
  std::printf("Lamport's Clock Condition: %s\n", clock_cond.ok ? "ok" : clock_cond.detail.c_str());

  // -- 5. optimize + bisimulation --------------------------------------------------
  const eventml::OptimizeResult opt = eventml::optimize(spec.main);
  eventml::Spec opt_spec = spec;
  opt_spec.main = opt.root;
  std::printf("\noptimizer: %llu -> %llu distinct nodes, weight %llu -> %llu\n",
              static_cast<unsigned long long>(opt.before.distinct_nodes),
              static_cast<unsigned long long>(opt.after.distinct_nodes),
              static_cast<unsigned long long>(opt.before.total_weight),
              static_cast<unsigned long long>(opt.after.total_weight));

  std::vector<sim::Message> trace;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    trace.push_back(eventml::make_dsl_msg(
        eventml::specs::kClkMsgHeader,
        eventml::specs::clk_msg_body(
            Value::integer(static_cast<std::int64_t>(rng.uniform(0, 100))),
            static_cast<std::int64_t>(rng.uniform(0, 50)))));
  }
  const gpm::BisimResult bisim = gpm::check_bisimilar(
      eventml::compile_to_gpm(spec, locs)(locs[0]),
      eventml::compile_to_gpm(opt_spec, locs)(locs[0]), trace,
      [](const sim::Message& a, const sim::Message& b) {
        const ValuePtr* va = sim::msg_body_if<ValuePtr>(a);
        const ValuePtr* vb = sim::msg_body_if<ValuePtr>(b);
        return va != nullptr && vb != nullptr && eventml::value_eq(*va, *vb);
      });
  std::printf("optimized ~ original (bisimulation over 500 msgs): %s\n",
              bisim.bisimilar ? "ok" : bisim.detail.c_str());

  const bool all_ok = well_formed.ok && clock_cond.ok && progress.ok && bisim.bisimilar;
  std::printf("\n%s\n", all_ok ? "all properties verified" : "PROPERTY VIOLATION");
  return all_ok ? 0 : 1;
}
