// One OS process of a real localhost ShadowDB cluster.
//
// Every process — three server hosts plus one client host — runs this same
// binary with the same `--base-port`, differing only in `--host`. Each
// executes the identical cluster assembly against its own net::TcpTransport,
// so node identities agree cluster-wide and the transports route frames by
// NodeId alone; each process then executes only its local nodes, exchanging
// checksummed wire frames over real TCP sockets. The clock epoch is the
// machine's monotonic-clock origin, shared by all processes, which makes the
// per-process trace timestamps comparable.
//
//   cluster_node --mode pbr --host 0 --base-port 35200 --trace t0.jsonl &
//   cluster_node --mode pbr --host 1 --base-port 35200 --trace t1.jsonl &
//   cluster_node --mode pbr --host 2 --base-port 35200 --trace t2.jsonl &
//   cluster_node --mode pbr --host 3 --base-port 35200 --trace t3.jsonl --txns 50
//   cluster_node check t0.jsonl t1.jsonl t2.jsonl t3.jsonl
//
// The client process (the highest host index) exits 0 iff every transaction
// committed; `check` merges the per-process traces and replays them through
// the offline checker (total order, at-most-once, durability, strict
// serializability), exiting 0 iff the execution was correct. The launcher
// `run_cluster.sh` scripts exactly this.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/migrate.hpp"
#include "core/shadowdb.hpp"
#include "net/tcp_transport.hpp"
#include "obs/checker.hpp"
#include "tob/tob.hpp"
#include "workload/bank.hpp"

namespace {

using namespace shadow;

constexpr std::size_t kServerHosts = 3;
constexpr std::size_t kHostCount = kServerHosts + 1;  // + client host
constexpr std::size_t kClientHost = kServerHosts;

struct Args {
  bool pbr = true;
  bool pipelined = false;   // SMR only: 3-stage pipeline + adaptive batching
  std::uint32_t host = 0;
  std::uint16_t base_port = 35200;
  std::size_t txns = 50;    // total, split across --clients
  std::size_t clients = 1;  // closed-loop clients (part of the topology:
                            // every process must pass the same value)
  std::uint64_t run_for_ms = 20000;  // server lifetime / client deadline
  std::string trace_path;
  bool rejoin = false;           // SMR only: restarted process, rejoin via snapshot
  std::uint64_t suspect_ms = 10000;  // SMR failure-detection suspicion timeout
  std::size_t shards = 1;        // SMR only: independent consensus groups
  std::size_t cross_shard_pct = 10;  // sharded workload: % cross-shard transfers
  std::size_t read_pct = 0;      // sharded workload: % cross-shard pair reads
  std::uint64_t epoch = 0;       // restart epoch tagged in group_info events
  std::uint64_t split_at_ms = 0;  // sharded SMR: broadcast ::mig-split at T ms
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cluster_node --mode pbr|smr --host 0..%zu --base-port P"
               " [--txns N] [--clients C] [--pipelined] [--run-for-ms M] [--trace FILE]\n"
               "       [--rejoin] [--suspect-ms M] [--shards N] [--cross-shard-pct P]"
               " [--read-pct P] [--epoch E] [--split-at-ms T]\n"
               "       cluster_node check TRACE...\n"
               "       cluster_node --help\n"
               "\n"
               "Every process — %zu server hosts plus one client host — runs this same\n"
               "binary with the same --base-port and topology flags, differing only in\n"
               "--host. The client process (host %zu) drives the bank workload and exits\n"
               "0 iff every transaction committed; `check` merges the per-process traces\n"
               "and replays them through the offline checker.\n"
               "\n"
               "  --pipelined       (smr only) runs each process as a 3-stage pipeline\n"
               "                    (I/O / consensus / DB executor threads) with adaptive\n"
               "                    TOB batching\n"
               "  --rejoin          (smr, hosts 1..%zu) marks this process as a\n"
               "                    crash-restart: it pauses its TOB node(s), fetches a\n"
               "                    snapshot from host 0's replica of each group, and\n"
               "                    resumes mid-stream; pass a fresh --epoch per restart\n"
               "  --suspect-ms M    (smr) failure-detection suspicion timeout; a replica\n"
               "                    silent for M ms is proposed for replacement\n"
               "                    (default 10000)\n"
               "  --shards N        (smr only) partitions the bank keyspace across N\n"
               "                    consensus groups over the same hosts;\n"
               "                    --cross-shard-pct of transactions become 2PC\n"
               "                    transfers (default 10)\n"
               "  --read-pct P      (sharded smr) P%% of transactions become cross-shard\n"
               "                    bank.balance2 pair reads served by the lock-free\n"
               "                    snapshot-read path — no consensus log entries, no\n"
               "                    prepare locks (default 0)\n"
               "  --split-at-ms T   (sharded smr) every process broadcasts a ::mig-split\n"
               "                    moving bank keys [accounts/4, accounts/2) from group\n"
               "                    0 to group 1 at T ms after start (the TOB collapses\n"
               "                    the duplicates); server processes then exit non-zero\n"
               "                    unless their replicas committed the migration\n",
               kHostCount - 1, kServerHosts, kClientHost, kServerHosts - 1);
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

int run_check(int argc, char** argv) {
  std::vector<obs::Trace> traces;
  for (int i = 0; i < argc; ++i) {
    traces.push_back(obs::parse_jsonl_file(argv[i]));
  }
  const obs::Trace merged = obs::merge_traces(traces);
  const obs::CheckResult result = obs::check_trace(merged);
  std::printf("%s\n", result.summary().c_str());
  return result.ok() ? 0 : 1;
}

int run_node(const Args& args) {
  net::TcpOptions options;
  options.local_host = args.host;
  for (std::size_t h = 0; h < kHostCount; ++h) {
    options.hosts.push_back(net::TcpHostAddr{
        "127.0.0.1", static_cast<std::uint16_t>(args.base_port + h)});
  }
  options.seed = 42;
  // CLOCK_MONOTONIC's origin, identical for every process on this machine:
  // now() values (and so trace timestamps) are cluster-comparable.
  options.epoch = std::chrono::steady_clock::time_point{};

  net::TcpTransport transport(options);
  if (!transport.start()) {
    std::fprintf(stderr, "host %u: cannot bind 127.0.0.1:%u (sockets unavailable?)\n",
                 args.host, args.base_port + args.host);
    return 3;
  }

  obs::Tracer tracer({.capacity = 1 << 19, .record_messages = false});
  tracer.attach(transport);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{1000, 0};

  core::ClusterOptions opts;
  opts.db_replicas = 3;  // all three server hosts run active replicas
  opts.db_spares = 0;
  opts.registry = registry;
  opts.tracer = &tracer;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  opts.smr.pipelined_execution = args.pipelined;
  opts.smr.suspect_timeout = args.suspect_ms * 1000;
  opts.tob_adaptive_batching = args.pipelined;

  // Identical assembly in every process; only local nodes execute here.
  // Sharded SMR builds N groups over the same three hosts; `groups` views
  // them uniformly (the classic cluster is one group).
  core::PbrCluster pbr;
  core::SmrCluster smr;
  core::ShardedSmrCluster sharded;
  std::vector<core::ReplicationGroup*> groups;
  if (args.pbr) {
    pbr = core::make_pbr_cluster(transport, opts);
  } else if (args.shards > 1) {
    sharded = core::make_sharded_smr_cluster(transport, opts, args.shards, args.epoch);
    for (auto& group : sharded.groups) groups.push_back(&group);
  } else {
    smr = core::make_smr_cluster(transport, opts);
    groups.push_back(&smr);
  }
  const net::HostId client_host = transport.add_host();  // the 4th table entry
  std::vector<NodeId> client_nodes;
  for (std::size_t c = 0; c < args.clients; ++c) {
    client_nodes.push_back(transport.add_node("client" + std::to_string(c + 1), client_host));
  }

  core::DbClient::Options client_options;
  client_options.mode = args.pbr ? core::DbClient::Mode::kDirect : core::DbClient::Mode::kTob;
  client_options.targets =
      args.pbr ? pbr.request_targets() : groups.front()->broadcast_targets();
  if (args.shards > 1) {
    client_options.router = sharded.router.get();
    client_options.retry_conflict_aborts = true;
  }
  client_options.tracer = &tracer;
  std::vector<std::unique_ptr<core::DbClient>> clients;
  if (args.host == kClientHost) {
    for (std::size_t c = 0; c < args.clients; ++c) {
      // Split the transaction budget; the first clients take the remainder.
      client_options.txn_limit =
          args.txns / args.clients + (c < args.txns % args.clients ? 1 : 0);
      auto rng = std::make_shared<Rng>(7 + c);
      const std::size_t cross_pct = args.shards > 1 ? args.cross_shard_pct : 0;
      const std::size_t read_pct = args.shards > 1 ? args.read_pct : 0;
      clients.push_back(std::make_unique<core::DbClient>(
          transport, client_nodes[c], ClientId{static_cast<std::uint32_t>(c + 1)},
          client_options, [rng, bank, cross_pct, read_pct]() {
            const std::uint64_t pick = rng->next() % 100;
            if (pick < read_pct) {
              // Cross-shard pair read: adjacent accounts land in different
              // mod-N shards, so this exercises the snapshot-read version-cut
              // exchange over real TCP sockets.
              const auto from = static_cast<std::int64_t>(
                  rng->next() % static_cast<std::uint64_t>(bank.accounts));
              const std::int64_t to = (from + 1) % bank.accounts;
              return std::make_pair(std::string(workload::bank::kBalance2Proc),
                                    workload::Params{db::Value(from), db::Value(to)});
            }
            if (cross_pct > 0 && pick < read_pct + cross_pct) {
              // Cross-shard transfer: adjacent accounts always land in
              // different mod-N shards. Amount 1 keeps the global balance
              // easy to audit.
              const auto from = static_cast<std::int64_t>(
                  rng->next() % static_cast<std::uint64_t>(bank.accounts));
              const std::int64_t to = (from + 1) % bank.accounts;
              return std::make_pair(
                  std::string(workload::bank::kTransferProc),
                  workload::Params{db::Value(from), db::Value(to), db::Value(std::int64_t{1})});
            }
            return std::make_pair(std::string(workload::bank::kDepositProc),
                                  workload::bank::make_deposit(*rng, bank));
          }));
    }
  }

  if (args.split_at_ms > 0) {
    // Dynamic rebalancing over real sockets. Identical assembly everywhere:
    // one admin node per host so the node tables agree, but only the local
    // one fires. Every process broadcasts the same (client, seq) split into
    // every group — the TOB deduplicates control commands by exact key, so
    // one delivery per group survives no matter how many processes send.
    std::vector<NodeId> admin_nodes;
    for (std::size_t h = 0; h < kHostCount; ++h) {
      const net::HostId host = h == kClientHost ? client_host : static_cast<net::HostId>(h);
      admin_nodes.push_back(transport.add_node("mig-admin" + std::to_string(h), host));
    }
    core::RangeSpec split;
    split.mid = 1;
    split.table = workload::bank::kTable;
    split.lo = static_cast<std::int64_t>(bank.accounts) / 4;
    split.hi = static_cast<std::int64_t>(bank.accounts) / 2;
    split.from = 0;
    split.to = 1;
    split.donor = sharded.groups[0].replica_nodes[0];
    const NodeId admin = admin_nodes[args.host];
    for (int i = 0; i < 6; ++i) {
      // Rebroadcast every 500 ms against lost frames, rotating the TOB
      // frontend so a crashed one cannot black-hole every retry.
      transport.schedule_timer_for_node(
          admin,
          transport.now() + args.split_at_ms * 1000 + static_cast<net::Time>(i) * 500000,
          [&sharded, split, admin, i](net::NodeContext& ctx) {
            workload::TxnRequest req = core::make_split_request(split);
            req.reply_to = admin;
            for (core::GroupId g = 0; g < sharded.router->shard_count(); ++g) {
              const auto tobs = sharded.router->tob_targets(g);
              tob::BroadcastBody body{tob::Command{req.client, req.seq,
                                                   workload::encode_request(req)}};
              ctx.send(tobs[static_cast<std::size_t>(i) % tobs.size()],
                       net::make_msg(tob::kBroadcastHeader, std::move(body)));
            }
          });
    }
  }

  if (args.rejoin) {
    // Crash-restart: this process replaces a SIGKILLed incarnation of the
    // same host. Pause our TOB node IN EVERY GROUP, ask host 0's replica of
    // that group for a snapshot, and resume each group mid-stream — the
    // resume points are independent per group. The rejoin sequence number is
    // the shared monotonic clock in µs — unique across this host's
    // incarnations (the rejoin client id already differs per group, since
    // each group's replica has its own NodeId).
    const auto seq = static_cast<RequestSeq>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    for (core::ReplicationGroup* group : groups) {
      group->replicas[args.host]->start_rejoin(group->tob_nodes[0], group->replica_nodes[0],
                                               seq);
    }
  }

  // The topology is frozen: hand the sockets to the transport I/O thread.
  if (args.pipelined && !transport.start_pipeline()) {
    std::fprintf(stderr, "host %u: start_pipeline failed, running single-threaded\n",
                 args.host);
  }

  int exit_code = 0;
  if (args.host == kClientHost) {
    for (auto& client : clients) client->start();
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::milliseconds(args.run_for_ms);
    auto all_done = [&clients] {
      for (auto& client : clients) {
        if (!client->done()) return false;
      }
      return true;
    };
    while (!all_done() && std::chrono::steady_clock::now() < deadline) {
      transport.poll_once(2000);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    transport.run_for(200000);  // let final acks/replication drain
    std::uint64_t committed = 0;
    std::uint64_t retries = 0;
    for (auto& client : clients) {
      committed += client->committed();
      retries += client->retries();
    }
    std::printf(
        "client: committed %llu/%zu over %zu clients in %.2f s — %.0f txn/s wall-clock, "
        "retries %llu, delivered %llu frames\n",
        static_cast<unsigned long long>(committed), args.txns, args.clients, secs,
        secs > 0 ? static_cast<double>(committed) / secs : 0.0,
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(transport.messages_delivered()));
    if (args.shards > 1) {
      std::printf("client: shards %zu, cross-shard ratio %.3f (%llu/%llu routed)\n",
                  args.shards, sharded.router->cross_shard_ratio(),
                  static_cast<unsigned long long>(sharded.router->cross_shard_count()),
                  static_cast<unsigned long long>(sharded.router->routed_count()));
    }
    exit_code = (all_done() && committed == args.txns) ? 0 : 1;
  } else {
    transport.run_for(args.run_for_ms * 1000);
    if (args.pbr) {
      std::printf("host %u: executed %llu txns, delivered %llu frames, digest %016llx\n",
                  args.host,
                  static_cast<unsigned long long>(pbr.replicas[args.host]->executed()),
                  static_cast<unsigned long long>(transport.messages_delivered()),
                  static_cast<unsigned long long>(pbr.replicas[args.host]->state_digest()));
    } else {
      // Per-group executed counts and digests: with one group this prints
      // exactly the classic line; sharded runs add one line per group.
      std::uint64_t executed_total = 0;
      for (core::ReplicationGroup* group : groups) group->replicas[args.host]->quiesce();
      for (core::ReplicationGroup* group : groups) {
        executed_total += group->replicas[args.host]->executed();
      }
      std::printf("host %u: executed %llu txns, delivered %llu frames, digest %016llx\n",
                  args.host, static_cast<unsigned long long>(executed_total),
                  static_cast<unsigned long long>(transport.messages_delivered()),
                  static_cast<unsigned long long>(
                      groups.front()->replicas[args.host]->state_digest()));
      if (args.shards > 1) {
        for (core::ReplicationGroup* group : groups) {
          std::printf("host %u: group %u executed %llu txns, digest %016llx\n", args.host,
                      group->id,
                      static_cast<unsigned long long>(group->replicas[args.host]->executed()),
                      static_cast<unsigned long long>(
                          group->replicas[args.host]->state_digest()));
        }
      }
      if (args.pipelined) {
        // The zero-copy and coalescing proof obligations of pipelined mode.
        std::printf("host %u: batch bytes copied %llu, writev %llu calls / %llu records, "
                    "tob batch limit %zu\n",
                    args.host,
                    static_cast<unsigned long long>(
                        splice_stats().batch_bytes_copied.load(std::memory_order_relaxed)),
                    static_cast<unsigned long long>(transport.writev_calls()),
                    static_cast<unsigned long long>(transport.writev_records()),
                    groups.front()->tob.nodes[args.host]->batch_limit());
      }
    }
  }

  if (args.split_at_ms > 0 && args.host != kClientHost) {
    // The rebalance gate: this host runs one replica per group, and every
    // replica counts "mig.commits" once when it delivers the ::mig-commit.
    const std::uint64_t commits = tracer.metrics().counter("mig.commits").value();
    std::printf("host %u: mig commits=%llu rows_out=%llu rows_in=%llu forwards=%llu\n",
                args.host, static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(tracer.metrics().counter("mig.rows_out").value()),
                static_cast<unsigned long long>(tracer.metrics().counter("mig.rows_in").value()),
                static_cast<unsigned long long>(
                    tracer.metrics().counter("mig.forwards").value()));
    if (commits == 0) {
      std::fprintf(stderr, "host %u: range split did not commit on this host\n", args.host);
      exit_code = 1;
    }
  }

  if (!args.trace_path.empty()) {
    obs::export_jsonl_file(tracer.snapshot(), args.trace_path);
  }
  transport.shutdown();
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "check") == 0) {
    if (argc < 3) usage();
    return run_check(argc - 2, argv + 2);
  }

  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--mode") {
      const std::string mode = value();
      if (mode == "pbr") {
        args.pbr = true;
      } else if (mode == "smr") {
        args.pbr = false;
      } else {
        usage();
      }
    } else if (flag == "--host") {
      args.host = static_cast<std::uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (flag == "--base-port") {
      args.base_port = static_cast<std::uint16_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (flag == "--txns") {
      args.txns = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--clients") {
      args.clients = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--pipelined") {
      args.pipelined = true;
    } else if (flag == "--run-for-ms") {
      args.run_for_ms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else if (flag == "--rejoin") {
      args.rejoin = true;
    } else if (flag == "--suspect-ms") {
      args.suspect_ms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--shards") {
      args.shards = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--cross-shard-pct") {
      args.cross_shard_pct = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--read-pct") {
      args.read_pct = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--epoch") {
      args.epoch = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--split-at-ms") {
      args.split_at_ms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--help" || flag == "-h") {
      print_usage(stdout);
      return 0;
    } else {
      usage();
    }
  }
  if (args.host >= kHostCount) usage();
  if (args.clients == 0) usage();
  if (args.pipelined && args.pbr) usage();  // the pipeline is the SMR path
  if (args.shards == 0 || (args.shards > 1 && args.pbr)) usage();  // sharding is SMR-only
  if (args.cross_shard_pct > 100) usage();
  if (args.read_pct > 100 || args.cross_shard_pct + args.read_pct > 100) usage();
  if (args.read_pct > 0 && args.shards < 2) usage();  // pair reads need 2 groups
  // Rejoin is the SMR snapshot path; host 0 serves the snapshots (and holds
  // the Paxos leader), so it is never the one restarting.
  if (args.rejoin && (args.pbr || args.host == 0 || args.host >= kClientHost)) usage();
  // The split moves keys from group 0 to group 1, so it needs both to exist.
  if (args.split_at_ms > 0 && (args.pbr || args.shards < 2)) usage();
  return run_node(args);
}
