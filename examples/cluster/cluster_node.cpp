// One OS process of a real localhost ShadowDB cluster.
//
// Every process — three server hosts plus one client host — runs this same
// binary with the same `--base-port`, differing only in `--host`. Each
// executes the identical cluster assembly against its own net::TcpTransport,
// so node identities agree cluster-wide and the transports route frames by
// NodeId alone; each process then executes only its local nodes, exchanging
// checksummed wire frames over real TCP sockets. The clock epoch is the
// machine's monotonic-clock origin, shared by all processes, which makes the
// per-process trace timestamps comparable.
//
//   cluster_node --mode pbr --host 0 --base-port 35200 --trace t0.jsonl &
//   cluster_node --mode pbr --host 1 --base-port 35200 --trace t1.jsonl &
//   cluster_node --mode pbr --host 2 --base-port 35200 --trace t2.jsonl &
//   cluster_node --mode pbr --host 3 --base-port 35200 --trace t3.jsonl --txns 50
//   cluster_node check t0.jsonl t1.jsonl t2.jsonl t3.jsonl
//
// The client process (the highest host index) exits 0 iff every transaction
// committed; `check` merges the per-process traces and replays them through
// the offline checker (total order, at-most-once, durability, strict
// serializability), exiting 0 iff the execution was correct. The launcher
// `run_cluster.sh` scripts exactly this.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/shadowdb.hpp"
#include "net/tcp_transport.hpp"
#include "obs/checker.hpp"
#include "workload/bank.hpp"

namespace {

using namespace shadow;

constexpr std::size_t kServerHosts = 3;
constexpr std::size_t kHostCount = kServerHosts + 1;  // + client host
constexpr std::size_t kClientHost = kServerHosts;

struct Args {
  bool pbr = true;
  bool pipelined = false;   // SMR only: 3-stage pipeline + adaptive batching
  std::uint32_t host = 0;
  std::uint16_t base_port = 35200;
  std::size_t txns = 50;    // total, split across --clients
  std::size_t clients = 1;  // closed-loop clients (part of the topology:
                            // every process must pass the same value)
  std::uint64_t run_for_ms = 20000;  // server lifetime / client deadline
  std::string trace_path;
  bool rejoin = false;           // SMR only: restarted process, rejoin via snapshot
  std::uint64_t suspect_ms = 10000;  // SMR failure-detection suspicion timeout
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: cluster_node --mode pbr|smr --host 0..%zu --base-port P"
               " [--txns N] [--clients C] [--pipelined] [--run-for-ms M] [--trace FILE]\n"
               "       [--rejoin] [--suspect-ms M]\n"
               "       cluster_node check TRACE...\n"
               "  --pipelined (smr only) runs each process as a 3-stage pipeline\n"
               "  (I/O / consensus / DB executor threads) with adaptive batching\n"
               "  --rejoin (smr, hosts 1..%zu) marks this process as a crash-restart:\n"
               "  it fetches a snapshot from host 0's replica and resumes mid-stream\n",
               kHostCount - 1, kServerHosts - 1);
  std::exit(2);
}

int run_check(int argc, char** argv) {
  std::vector<obs::Trace> traces;
  for (int i = 0; i < argc; ++i) {
    traces.push_back(obs::parse_jsonl_file(argv[i]));
  }
  const obs::Trace merged = obs::merge_traces(traces);
  const obs::CheckResult result = obs::check_trace(merged);
  std::printf("%s\n", result.summary().c_str());
  return result.ok() ? 0 : 1;
}

int run_node(const Args& args) {
  net::TcpOptions options;
  options.local_host = args.host;
  for (std::size_t h = 0; h < kHostCount; ++h) {
    options.hosts.push_back(net::TcpHostAddr{
        "127.0.0.1", static_cast<std::uint16_t>(args.base_port + h)});
  }
  options.seed = 42;
  // CLOCK_MONOTONIC's origin, identical for every process on this machine:
  // now() values (and so trace timestamps) are cluster-comparable.
  options.epoch = std::chrono::steady_clock::time_point{};

  net::TcpTransport transport(options);
  if (!transport.start()) {
    std::fprintf(stderr, "host %u: cannot bind 127.0.0.1:%u (sockets unavailable?)\n",
                 args.host, args.base_port + args.host);
    return 3;
  }

  obs::Tracer tracer({.capacity = 1 << 19, .record_messages = false});
  tracer.attach(transport);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{1000, 0};

  core::ClusterOptions opts;
  opts.db_replicas = 3;  // all three server hosts run active replicas
  opts.db_spares = 0;
  opts.registry = registry;
  opts.tracer = &tracer;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  opts.smr.pipelined_execution = args.pipelined;
  opts.smr.suspect_timeout = args.suspect_ms * 1000;
  opts.tob_adaptive_batching = args.pipelined;

  // Identical assembly in every process; only local nodes execute here.
  core::PbrCluster pbr;
  core::SmrCluster smr;
  if (args.pbr) {
    pbr = core::make_pbr_cluster(transport, opts);
  } else {
    smr = core::make_smr_cluster(transport, opts);
  }
  const net::HostId client_host = transport.add_host();  // the 4th table entry
  std::vector<NodeId> client_nodes;
  for (std::size_t c = 0; c < args.clients; ++c) {
    client_nodes.push_back(transport.add_node("client" + std::to_string(c + 1), client_host));
  }

  core::DbClient::Options client_options;
  client_options.mode = args.pbr ? core::DbClient::Mode::kDirect : core::DbClient::Mode::kTob;
  client_options.targets = args.pbr ? pbr.request_targets() : smr.broadcast_targets();
  client_options.tracer = &tracer;
  std::vector<std::unique_ptr<core::DbClient>> clients;
  if (args.host == kClientHost) {
    for (std::size_t c = 0; c < args.clients; ++c) {
      // Split the transaction budget; the first clients take the remainder.
      client_options.txn_limit =
          args.txns / args.clients + (c < args.txns % args.clients ? 1 : 0);
      auto rng = std::make_shared<Rng>(7 + c);
      clients.push_back(std::make_unique<core::DbClient>(
          transport, client_nodes[c], ClientId{static_cast<std::uint32_t>(c + 1)},
          client_options, [rng, bank]() {
            return std::make_pair(std::string(workload::bank::kDepositProc),
                                  workload::bank::make_deposit(*rng, bank));
          }));
    }
  }

  if (args.rejoin) {
    // Crash-restart: this process replaces a SIGKILLed incarnation of the
    // same host. Pause our TOB node, ask host 0's replica for a snapshot,
    // and resume mid-stream. The rejoin sequence number is the shared
    // monotonic clock in µs — unique across this host's incarnations.
    const auto seq = static_cast<RequestSeq>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    smr.replicas[args.host]->start_rejoin(smr.tob_nodes[0], smr.replica_nodes[0], seq);
  }

  // The topology is frozen: hand the sockets to the transport I/O thread.
  if (args.pipelined && !transport.start_pipeline()) {
    std::fprintf(stderr, "host %u: start_pipeline failed, running single-threaded\n",
                 args.host);
  }

  int exit_code = 0;
  if (args.host == kClientHost) {
    for (auto& client : clients) client->start();
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::milliseconds(args.run_for_ms);
    auto all_done = [&clients] {
      for (auto& client : clients) {
        if (!client->done()) return false;
      }
      return true;
    };
    while (!all_done() && std::chrono::steady_clock::now() < deadline) {
      transport.poll_once(2000);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    transport.run_for(200000);  // let final acks/replication drain
    std::uint64_t committed = 0;
    std::uint64_t retries = 0;
    for (auto& client : clients) {
      committed += client->committed();
      retries += client->retries();
    }
    std::printf(
        "client: committed %llu/%zu over %zu clients in %.2f s — %.0f txn/s wall-clock, "
        "retries %llu, delivered %llu frames\n",
        static_cast<unsigned long long>(committed), args.txns, args.clients, secs,
        secs > 0 ? static_cast<double>(committed) / secs : 0.0,
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(transport.messages_delivered()));
    exit_code = (all_done() && committed == args.txns) ? 0 : 1;
  } else {
    transport.run_for(args.run_for_ms * 1000);
    if (!args.pbr) smr.replicas[args.host]->quiesce();
    const std::uint64_t executed = args.pbr ? pbr.replicas[args.host]->executed()
                                            : smr.replicas[args.host]->executed();
    std::printf("host %u: executed %llu txns, delivered %llu frames, digest %016llx\n",
                args.host, static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(transport.messages_delivered()),
                static_cast<unsigned long long>(
                    args.pbr ? pbr.replicas[args.host]->state_digest()
                             : smr.replicas[args.host]->state_digest()));
    if (args.pipelined) {
      // The zero-copy and coalescing proof obligations of pipelined mode.
      std::printf("host %u: batch bytes copied %llu, writev %llu calls / %llu records, "
                  "tob batch limit %zu\n",
                  args.host,
                  static_cast<unsigned long long>(
                      splice_stats().batch_bytes_copied.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(transport.writev_calls()),
                  static_cast<unsigned long long>(transport.writev_records()),
                  smr.tob.nodes[args.host]->batch_limit());
    }
  }

  if (!args.trace_path.empty()) {
    obs::export_jsonl_file(tracer.snapshot(), args.trace_path);
  }
  transport.shutdown();
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "check") == 0) {
    if (argc < 3) usage();
    return run_check(argc - 2, argv + 2);
  }

  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--mode") {
      const std::string mode = value();
      if (mode == "pbr") {
        args.pbr = true;
      } else if (mode == "smr") {
        args.pbr = false;
      } else {
        usage();
      }
    } else if (flag == "--host") {
      args.host = static_cast<std::uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (flag == "--base-port") {
      args.base_port = static_cast<std::uint16_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (flag == "--txns") {
      args.txns = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--clients") {
      args.clients = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--pipelined") {
      args.pipelined = true;
    } else if (flag == "--run-for-ms") {
      args.run_for_ms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else if (flag == "--rejoin") {
      args.rejoin = true;
    } else if (flag == "--suspect-ms") {
      args.suspect_ms = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      usage();
    }
  }
  if (args.host >= kHostCount) usage();
  if (args.clients == 0) usage();
  if (args.pipelined && args.pbr) usage();  // the pipeline is the SMR path
  // Rejoin is the SMR snapshot path; host 0 serves the snapshots (and holds
  // the Paxos leader), so it is never the one restarting.
  if (args.rejoin && (args.pbr || args.host == 0 || args.host >= kClientHost)) usage();
  return run_node(args);
}
