#!/usr/bin/env bash
# Chaos mode for the real localhost ShadowDB-SMR cluster: SIGKILL server
# processes mid-load and restart them with --rejoin, which fetches a snapshot
# from host 0's replica and resumes the restarted TOB node mid-stream.
#
#   run_chaos_cluster.sh [txns] [base_port] [run_ms] [cycles] [clients] [shards] [xs_pct] [read_pct]
#
# Hosts 1 and 2 are killed alternately (`cycles` times total); host 0 — the
# Paxos leader and snapshot server — always survives, since the acceptors
# keep their promises in memory only. A SIGKILLed process loses its trace
# (exactly like its in-memory state); every surviving incarnation exports one
# trace generation, and the merged generations must still pass the offline
# checker.
#
# With `shards` > 1 every server process participates in that many
# independent consensus groups; a SIGKILLed process loses its slice of ALL
# groups at once and the restart rejoins each group from its own snapshot,
# at per-group resume points that are independent of each other. Restarted
# incarnations carry --epoch so their group_info trace events distinguish
# incarnations. `read_pct` (default 0, sharded only) makes that % of
# transactions cross-shard snapshot reads, so kills land mid-read-fanout too.
#
# Exits 0 iff every transaction committed, every restart rejoined, AND the
# merged traces pass total order, at-most-once, durability, strict
# serializability and (sharded) cross-shard atomicity.
set -u

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
  sed -n '2,26p' "$0" | sed 's/^# \{0,1\}//'
  exit 0
fi

TXNS="${1:-40000}"
BASE_PORT="${2:-$((36200 + RANDOM % 1000))}"
RUN_MS="${3:-60000}"
CYCLES="${4:-5}"
CLIENTS="${5:-2}"
SHARDS="${6:-1}"
XS_PCT="${7:-10}"
READ_PCT="${8:-0}"
SUSPECT_MS=120000  # keep false suspicions out of the restart windows
BIN="$(dirname "$0")/cluster_node"
[ -x "$BIN" ] || BIN="${CLUSTER_NODE:-cluster_node}"

SHARD_ARGS=()
[ "$SHARDS" -gt 1 ] && SHARD_ARGS=(--shards "$SHARDS" --cross-shard-pct "$XS_PCT")
[ "$READ_PCT" -gt 0 ] && SHARD_ARGS+=(--read-pct "$READ_PCT")

WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

START_MS="$(date +%s%3N)"
remaining_ms() {
  local left=$((RUN_MS - ($(date +%s%3N) - START_MS)))
  echo $((left > 5000 ? left : 5000))
}

launch() {  # launch HOST GENERATION [--rejoin]
  local h="$1" gen="$2"; shift 2
  "$BIN" --mode smr --host "$h" --base-port "$BASE_PORT" \
         --trace "$WORK/t${h}.g${gen}.jsonl" --run-for-ms "$(remaining_ms)" \
         --clients "$CLIENTS" --suspect-ms "$SUSPECT_MS" \
         ${SHARD_ARGS[@]+"${SHARD_ARGS[@]}"} --epoch "$gen" "$@" &
  SERVER_PID[$h]=$!
}

echo "== ShadowDB-SMR chaos on 127.0.0.1:${BASE_PORT}-$((BASE_PORT + 3)):" \
     "${TXNS} txns, ${CLIENTS} clients, ${CYCLES} kill/restart cycles" \
     "$([ "$SHARDS" -gt 1 ] && echo ", ${SHARDS} shards (${XS_PCT}% cross)")$([ "$READ_PCT" -gt 0 ] && echo ", ${READ_PCT}% reads")=="
declare -a SERVER_PID
for h in 0 1 2; do launch "$h" 0; done
sleep 0.2

"$BIN" --mode smr --host 3 --base-port "$BASE_PORT" \
       --trace "$WORK/t3.jsonl" --txns "$TXNS" --run-for-ms "$RUN_MS" \
       --clients "$CLIENTS" --suspect-ms "$SUSPECT_MS" \
       ${SHARD_ARGS[@]+"${SHARD_ARGS[@]}"} &
CLIENT_PID=$!

GEN1=0; GEN2=0
for ((c = 1; c <= CYCLES; ++c)); do
  sleep 1.0
  if ((c % 2)); then victim=1; gen=$((++GEN1)); else victim=2; gen=$((++GEN2)); fi
  echo "-- cycle $c: SIGKILL host $victim (pid ${SERVER_PID[$victim]}), restart with --rejoin"
  kill -9 "${SERVER_PID[$victim]}" 2>/dev/null
  wait "${SERVER_PID[$victim]}" 2>/dev/null
  sleep 0.5
  launch "$victim" "$gen" --rejoin
done

wait "$CLIENT_PID"
CLIENT_RC=$?
wait "${SERVER_PID[0]}" "${SERVER_PID[1]}" "${SERVER_PID[2]}" 2>/dev/null

"$BIN" check "$WORK"/t*.jsonl
CHECK_RC=$?

if [ "$CLIENT_RC" -eq 0 ] && [ "$CHECK_RC" -eq 0 ]; then
  echo "PASS: survived ${CYCLES} kill/restart cycles under load; checker found no violations"
  exit 0
fi
echo "FAIL: client rc=$CLIENT_RC checker rc=$CHECK_RC"
exit 1
