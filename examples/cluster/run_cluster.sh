#!/usr/bin/env bash
# Launches a real localhost ShadowDB cluster — three server processes plus a
# closed-loop bank-workload client — over TCP sockets, then merges the
# per-process traces and replays them through the offline checker.
#
#   run_cluster.sh [pbr|smr] [txns] [base_port] [run_ms] [clients] [pipelined] [shards] [xs_pct] [split_ms] [read_pct]
#
# `clients` (default 1) fans the transaction budget across that many
# closed-loop clients; `pipelined` (any non-empty value, smr only) runs every
# process as the 3-stage pipeline with adaptive batching; `shards` (default 1,
# smr only) partitions the bank keyspace across that many consensus groups
# with `xs_pct`% (default 10) of transactions running as cross-shard 2PC
# transfers; `split_ms` (sharded smr only) rebalances a quarter of the bank
# keyspace from group 0 to group 1 at that wall-clock offset, concurrent with
# the workload — server processes then also assert the migration committed;
# `read_pct` (default 0, sharded smr only) makes that % of transactions
# cross-shard bank.balance2 pair reads on the lock-free snapshot-read path.
#
# Exits 0 iff every transaction committed, every server exited clean (with
# `split_ms`: committed the range split), AND the merged trace passes total
# order, at-most-once, durability, strict serializability and (sharded)
# cross-shard atomicity.
set -u

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
  sed -n '2,22p' "$0" | sed 's/^# \{0,1\}//'
  exit 0
fi

MODE="${1:-pbr}"
TXNS="${2:-50}"
BASE_PORT="${3:-$((35200 + RANDOM % 1000))}"
RUN_MS="${4:-20000}"
CLIENTS="${5:-1}"
PIPELINED="${6:-}"
SHARDS="${7:-1}"
XS_PCT="${8:-10}"
SPLIT_MS="${9:-0}"
READ_PCT="${10:-0}"
BIN="$(dirname "$0")/cluster_node"
[ -x "$BIN" ] || BIN="${CLUSTER_NODE:-cluster_node}"

EXTRA=(--clients "$CLIENTS")
[ -n "$PIPELINED" ] && EXTRA+=(--pipelined)
[ "$SHARDS" -gt 1 ] && EXTRA+=(--shards "$SHARDS" --cross-shard-pct "$XS_PCT")
[ "$READ_PCT" -gt 0 ] && EXTRA+=(--read-pct "$READ_PCT")
[ "$SPLIT_MS" -gt 0 ] && EXTRA+=(--split-at-ms "$SPLIT_MS")

WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

echo "== ShadowDB-${MODE^^} on 127.0.0.1:${BASE_PORT}-$((BASE_PORT + 3)), ${TXNS} txns," \
     "${CLIENTS} clients${PIPELINED:+, pipelined}$([ "$SHARDS" -gt 1 ] && echo ", ${SHARDS} shards (${XS_PCT}% cross)")$([ "$READ_PCT" -gt 0 ] && echo ", ${READ_PCT}% reads")$([ "$SPLIT_MS" -gt 0 ] && echo ", split @ ${SPLIT_MS}ms") =="
declare -a SERVER_PID
for h in 0 1 2; do
  "$BIN" --mode "$MODE" --host "$h" --base-port "$BASE_PORT" \
         --trace "$WORK/t$h.jsonl" --run-for-ms "$RUN_MS" "${EXTRA[@]}" &
  SERVER_PID[$h]=$!
done
sleep 0.2

"$BIN" --mode "$MODE" --host 3 --base-port "$BASE_PORT" \
       --trace "$WORK/t3.jsonl" --txns "$TXNS" --run-for-ms "$RUN_MS" "${EXTRA[@]}"
CLIENT_RC=$?

SERVER_RC=0
for h in 0 1 2; do
  wait "${SERVER_PID[$h]}" || SERVER_RC=1
done

"$BIN" check "$WORK"/t*.jsonl
CHECK_RC=$?

if [ "$CLIENT_RC" -eq 0 ] && [ "$SERVER_RC" -eq 0 ] && [ "$CHECK_RC" -eq 0 ]; then
  echo "PASS: workload committed and the trace checker found no violations"
  exit 0
fi
echo "FAIL: client rc=$CLIENT_RC server rc=$SERVER_RC checker rc=$CHECK_RC"
exit 1
