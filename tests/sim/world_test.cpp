// Unit tests for the discrete-event world: clock, CPU busy model, FIFO
// channels, crash and partition injection, timers.
#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace shadow::sim {
namespace {

TEST(World, ClockStartsAtZeroAndAdvances) {
  World world;
  EXPECT_EQ(world.now(), 0u);
  bool fired = false;
  world.schedule(1000, [&] { fired = true; });
  world.run_until(999);
  EXPECT_FALSE(fired);
  world.run_until(1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(world.now(), 1000u);
}

TEST(World, MessageDeliveryInvokesHandler) {
  World world;
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  int received = 0;
  world.set_handler(b, [&](net::NodeContext&, const Message& m) {
    EXPECT_EQ(m.header, "ping");
    EXPECT_EQ(m.from, a);
    ++received;
  });
  world.post(a, b, make_signal("ping"));
  world.run_until(1000000);
  EXPECT_EQ(received, 1);
}

TEST(World, FifoPerChannel) {
  World world;
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  std::vector<int> order;
  world.set_handler(b, [&](net::NodeContext&, const Message& m) {
    order.push_back(static_cast<int>(msg_body<int>(m)));
  });
  for (int i = 0; i < 50; ++i) world.post(a, b, make_msg("n", i));
  world.run_until(10000000);
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(World, CpuChargeSerializesAMachine) {
  World world;
  const MachineId m = world.add_machine();
  const NodeId a = world.add_node("a", m);
  const NodeId src = world.add_node("src");
  std::vector<Time> completion_times;
  world.set_handler(a, [&](net::NodeContext& ctx, const Message&) {
    ctx.charge(1000);  // 1 ms of CPU per message
    completion_times.push_back(ctx.now());
  });
  // Two messages arriving (nearly) together must be processed back to back.
  world.post(src, a, make_signal("x"));
  world.post(src, a, make_signal("x"));
  world.run_until(1000000);
  ASSERT_EQ(completion_times.size(), 2u);
  EXPECT_GE(completion_times[1], completion_times[0] + 1000);
}

TEST(World, CoLocatedNodesShareCpu) {
  World world;
  const MachineId m = world.add_machine();
  const NodeId a = world.add_node("a", m);
  const NodeId b = world.add_node("b", m);
  const NodeId src = world.add_node("src");
  Time a_done = 0;
  Time b_done = 0;
  world.set_handler(a, [&](net::NodeContext& ctx, const Message&) {
    ctx.charge(5000);
    a_done = ctx.now();
  });
  world.set_handler(b, [&](net::NodeContext& ctx, const Message&) {
    ctx.charge(5000);
    b_done = ctx.now();
  });
  world.post(src, a, make_signal("x"));
  world.post(src, b, make_signal("x"));
  world.run_until(1000000);
  // One of the two had to wait for the shared CPU.
  EXPECT_GE(std::max(a_done, b_done), 10000u);
}

TEST(World, CrashedNodeStopsReceiving) {
  World world;
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  int received = 0;
  world.set_handler(b, [&](net::NodeContext&, const Message&) { ++received; });
  world.post(a, b, make_signal("one"));
  world.run_until(100000);
  EXPECT_EQ(received, 1);
  world.crash(b);
  EXPECT_TRUE(world.crashed(b));
  world.post(a, b, make_signal("two"));
  world.run_until(200000);
  EXPECT_EQ(received, 1);
}

TEST(World, PartitionBlocksAndHeals) {
  World world;
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  int received = 0;
  world.set_handler(b, [&](net::NodeContext&, const Message&) { ++received; });
  world.set_partitioned(a, b, true);
  world.post(a, b, make_signal("x"));
  world.run_until(100000);
  EXPECT_EQ(received, 0);
  world.set_partitioned(a, b, false);
  world.post(a, b, make_signal("x"));
  world.run_until(200000);
  EXPECT_EQ(received, 1);
}

TEST(World, TimersFireAndCancel) {
  World world;
  const NodeId a = world.add_node("a");
  int fired = 0;
  world.schedule_timer_for_node(a, 1000, [&](net::NodeContext&) { ++fired; });
  const TimerId cancelled = world.schedule_timer_for_node(a, 2000, [&](net::NodeContext&) { ++fired; });
  world.cancel(cancelled);
  world.run_until(10000);
  EXPECT_EQ(fired, 1);
}

TEST(World, TimerOnCrashedNodeDoesNotFire) {
  World world;
  const NodeId a = world.add_node("a");
  int fired = 0;
  world.schedule_timer_for_node(a, 1000, [&](net::NodeContext&) { ++fired; });
  world.crash(a);
  world.run_until(10000);
  EXPECT_EQ(fired, 0);
}

TEST(World, SendsReleasedAtCompletionTime) {
  World world;
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  const NodeId src = world.add_node("src");
  Time sent_at = 0;
  Time received_at = 0;
  world.set_handler(a, [&](net::NodeContext& ctx, const Message&) {
    ctx.charge(3000);
    ctx.send(b, make_signal("fwd"));
    sent_at = ctx.now();
  });
  world.set_handler(b, [&](net::NodeContext& ctx, const Message&) { received_at = ctx.now(); });
  world.post(src, a, make_signal("go"));
  world.run_until(1000000);
  EXPECT_GE(sent_at, 3000u);
  EXPECT_GT(received_at, sent_at);
}

TEST(World, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    World world(seed);
    const NodeId a = world.add_node("a");
    const NodeId b = world.add_node("b");
    std::vector<Time> arrivals;
    world.set_handler(b, [&](net::NodeContext& ctx, const Message&) { arrivals.push_back(ctx.now()); });
    for (int i = 0; i < 20; ++i) world.post(a, b, make_signal("x"));
    world.run_until(1000000);
    return arrivals;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // jitter differs across seeds
}

}  // namespace
}  // namespace shadow::sim
