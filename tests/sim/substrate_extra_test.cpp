// Remaining substrate coverage: the bandwidth model, machine-level crashes,
// event-queue draining, and the GPM runtime's tier cost ordering.
#include <gtest/gtest.h>

#include "gpm/runtime.hpp"
#include "sim/world.hpp"

namespace shadow {
namespace {

TEST(Bandwidth, LargeMessagesTakeProportionallyLonger) {
  sim::World world(3, sim::NetworkConfig{100, 20, 125.0, 0.0});  // no jitter
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  std::vector<net::Time> arrivals;
  world.set_handler(b, [&](net::NodeContext& ctx, const sim::Message&) {
    arrivals.push_back(ctx.now());
  });
  // 125 B/µs: a 125 kB message needs ~1000 µs of transmission alone.
  world.post(a, b, sim::make_msg("small", 0, 125));
  world.run_until(10'000'000);
  world.post(a, b, sim::make_msg("large", 0, 125'000));
  world.run_until(20'000'000);
  ASSERT_EQ(arrivals.size(), 2u);
  const net::Time small_latency = arrivals[0];
  const net::Time large_latency = arrivals[1] - 10'000'000;
  EXPECT_NEAR(static_cast<double>(large_latency - small_latency), 999.0, 5.0);
}

TEST(MachineCrash, TakesDownAllCoLocatedNodes) {
  sim::World world(5);
  const sim::MachineId machine = world.add_machine();
  const NodeId a = world.add_node("a", machine);
  const NodeId b = world.add_node("b", machine);
  const NodeId other = world.add_node("other");
  int received = 0;
  world.set_handler(a, [&](net::NodeContext&, const sim::Message&) { ++received; });
  world.set_handler(b, [&](net::NodeContext&, const sim::Message&) { ++received; });
  world.crash_machine(machine);
  EXPECT_TRUE(world.crashed(a));
  EXPECT_TRUE(world.crashed(b));
  EXPECT_FALSE(world.crashed(other));
  world.post(other, a, sim::make_signal("x"));
  world.post(other, b, sim::make_signal("x"));
  world.run_until(1'000'000);
  EXPECT_EQ(received, 0);
}

TEST(WorldRun, DrainsEventQueue) {
  sim::World world(7);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  int hops = 0;
  world.set_handler(b, [&](net::NodeContext& ctx, const sim::Message&) {
    if (++hops < 10) ctx.send(a, sim::make_signal("pong"));
  });
  world.set_handler(a, [&](net::NodeContext& ctx, const sim::Message&) {
    ctx.send(b, sim::make_signal("ping"));
  });
  world.post(a, b, sim::make_signal("ping"));
  const std::size_t processed = world.run();
  EXPECT_TRUE(world.idle());
  EXPECT_GT(processed, 10u);
  EXPECT_EQ(hops, 10);
}

TEST(WorldRun, MaxEventsBoundsExecution) {
  sim::World world(9);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  world.set_handler(b, [&](net::NodeContext& ctx, const sim::Message&) {
    ctx.send(b, sim::make_signal("self"));  // infinite self-loop
  });
  world.post(a, b, sim::make_signal("go"));
  const std::size_t processed = world.run(100);
  EXPECT_EQ(processed, 100u);
  EXPECT_FALSE(world.idle());
}

TEST(GpmRuntime, TierCostsOrderInterpretedAboveCompiled) {
  const gpm::CostModel costs;
  const std::uint64_t work = 1000;
  const net::Time interpreted = costs.cost_us(gpm::ExecutionTier::kInterpreted, work);
  const net::Time compiled = costs.cost_us(gpm::ExecutionTier::kCompiled, work);
  EXPECT_GT(interpreted, 10 * compiled);
  // More work never costs less, in any tier.
  for (auto tier : {gpm::ExecutionTier::kInterpreted, gpm::ExecutionTier::kInterpretedOpt,
                    gpm::ExecutionTier::kCompiled}) {
    EXPECT_LE(costs.cost_us(tier, 10), costs.cost_us(tier, 1000));
  }
}

TEST(GpmRuntime, HostChargesTierCosts) {
  // The same echo process deployed at two tiers: the interpreted node's
  // response is delayed by the larger virtual CPU charge.
  auto make_echo = [] {
    return gpm::Process::make([](const gpm::Process& self, const sim::Message& msg) {
      gpm::StepResult result;
      result.next = std::make_shared<const gpm::Process>(self);
      result.outputs.push_back(gpm::SendDirective{msg.from, sim::make_signal("echo")});
      result.work = 2000;
      return result;
    });
  };
  auto run_tier = [&](gpm::ExecutionTier tier) {
    sim::World world(11, sim::NetworkConfig{100, 20, 125.0, 0.0});
    const NodeId node = world.add_node("p");
    const NodeId probe = world.add_node("probe");
    gpm::ProcessHost host(world, node, make_echo(), tier);
    net::Time echoed_at = 0;
    world.set_handler(probe, [&](net::NodeContext& ctx, const sim::Message&) {
      echoed_at = ctx.now();
    });
    world.post(probe, node, sim::make_signal("ping"));
    world.run_until(10'000'000);
    EXPECT_EQ(host.steps(), 1u);
    EXPECT_EQ(host.total_work(), 2000u);
    return echoed_at;
  };
  const net::Time interpreted = run_tier(gpm::ExecutionTier::kInterpreted);
  const net::Time compiled = run_tier(gpm::ExecutionTier::kCompiled);
  EXPECT_GT(interpreted, compiled + 10'000);  // ~18 ms vs ~1.6 ms of CPU
}

TEST(GpmRuntime, DelayedSendDirectivesActAsTimers) {
  sim::World world(13, sim::NetworkConfig{100, 20, 125.0, 0.0});
  const NodeId node = world.add_node("p");
  const NodeId probe = world.add_node("probe");
  auto process = gpm::Process::make([](const gpm::Process& self, const sim::Message& msg) {
    gpm::StepResult result;
    result.next = std::make_shared<const gpm::Process>(self);
    if (msg.header == "start") {
      // The ILF's "d" component: send after a 5 ms delay.
      result.outputs.push_back(gpm::SendDirective{msg.from, sim::make_signal("late"), 5000});
    }
    return result;
  });
  gpm::ProcessHost host(world, node, process);
  net::Time arrived = 0;
  world.set_handler(probe, [&](net::NodeContext& ctx, const sim::Message& msg) {
    if (msg.header == "late") arrived = ctx.now();
  });
  world.post(probe, node, sim::make_signal("start"));
  world.run_until(10'000'000);
  EXPECT_GE(arrived, 5000u);
  EXPECT_LT(arrived, 7000u);
}

}  // namespace
}  // namespace shadow
