// Backend-parameterized conformance tests of the net::Transport contract:
// the simulator (sim::World) and the real-socket backend (net::TcpTransport)
// must agree on timer semantics (in-order firing, cancellation, stop
// suppression), on rejecting structurally valid frames whose header has no
// registered codec (traced drop, never a crash), and on the zero-copy
// multicast guarantee (one frame encode per fan-out, observable both through
// Transport::encode_count and the tracer's `net.encode_count` metric).
//
// The TCP instantiation uses a single-host transport, so every delivery runs
// the loopback path — which by design is the same validate/decode/dispatch
// path socket reads take. A TCP-only test drives the socket read path proper
// with a raw client connection writing crafted records.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"
#include "wire/framing.hpp"
#include "wire/registry.hpp"

namespace shadow::net {
namespace {

// -- test codec ---------------------------------------------------------------

struct PingBody {
  std::uint64_t value = 0;
};

constexpr const char* kPingHeader = "net-test/ping";
constexpr const char* kPokeHeader = "net-test/poke";

}  // namespace
}  // namespace shadow::net

namespace shadow::wire {
template <>
struct Codec<net::PingBody> {
  static void encode(BytesWriter& w, const net::PingBody& v) { w.u64(v.value); }
  static net::PingBody decode(BytesReader& r) { return {r.u64()}; }
};
}  // namespace shadow::wire

namespace shadow::net {
namespace {

/// Records wire drops so tests can assert on them uniformly across backends
/// (the backends expose drop counters under different names).
struct DropRecorder final : TransportObserver {
  std::vector<std::pair<std::string, wire::FrameStatus>> drops;
  void on_wire_drop(Time, NodeId, NodeId, const std::string& header, std::size_t,
                    wire::FrameStatus reason) override {
    drops.emplace_back(header, reason);
  }
};

enum class Backend { kSim, kTcp };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Tcp";
}

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kSim) {
      world_ = std::make_unique<sim::World>(7);
      // Activate the byte path so sim deliveries encode/decode real frames,
      // matching what the TCP backend always does.
      world_->set_wire_fidelity(true);
      transport_ = world_.get();
    } else {
      TcpOptions options;
      options.local_host = 0;
      options.hosts = {TcpHostAddr{}};  // one host, ephemeral port
      options.seed = 7;
      tcp_ = std::make_unique<TcpTransport>(options);
      if (!tcp_->start()) GTEST_SKIP() << "sockets unavailable in this environment";
      transport_ = tcp_.get();
    }
    transport_->add_observer(&drops_);
    host0_ = transport_->add_host();
  }

  /// All conformance nodes live on one host: the TCP instantiation has a
  /// single-entry host table, and co-location is immaterial to the contract.
  NodeId add_node(const std::string& name) { return transport_->add_node(name, host0_); }

  Transport& transport() { return *transport_; }

  /// Runs the backend's event loop for (at least) `duration` microseconds of
  /// its own clock — virtual time for the sim, wall-clock for TCP.
  void settle(Time duration = 50000) {
    if (world_ != nullptr) {
      world_->run_until(world_->now() + duration);
    } else {
      tcp_->run_for(duration);
    }
  }

  std::unique_ptr<sim::World> world_;
  HostId host0_{};
  std::unique_ptr<TcpTransport> tcp_;
  Transport* transport_ = nullptr;
  DropRecorder drops_;
};

// -- timer semantics ----------------------------------------------------------

TEST_P(TransportConformanceTest, TimersFireInDeadlineThenFifoOrder) {
  Transport& t = transport();
  const NodeId node = add_node("timers");
  std::vector<int> fired;
  const Time base = t.now();
  // Deadline order beats schedule order; equal deadlines fire FIFO.
  t.schedule_timer_for_node(node, base + 30000, [&](NodeContext&) { fired.push_back(3); });
  t.schedule_timer_for_node(node, base + 10000, [&](NodeContext&) { fired.push_back(1); });
  t.schedule_timer_for_node(node, base + 20000, [&](NodeContext&) { fired.push_back(2); });
  t.schedule_timer_for_node(node, base + 20000, [&](NodeContext&) { fired.push_back(4); });
  settle(80000);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 3}));
}

TEST_P(TransportConformanceTest, CancelledTimersNeverFire) {
  Transport& t = transport();
  const NodeId node = add_node("timers");
  std::vector<int> fired;
  const Time base = t.now();
  const TimerId doomed =
      t.schedule_timer_for_node(node, base + 10000, [&](NodeContext&) { fired.push_back(1); });
  t.schedule_timer_for_node(node, base + 20000, [&](NodeContext&) { fired.push_back(2); });
  t.cancel(doomed);
  settle(80000);
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST_P(TransportConformanceTest, StopSuppressesPendingTimersAndDeliveries) {
  Transport& t = transport();
  const NodeId a = add_node("a");
  const NodeId b = add_node("b");
  int b_events = 0;
  t.set_handler(b, [&](NodeContext&, const Message&) { ++b_events; });
  const Time base = t.now();
  t.schedule_timer_for_node(b, base + 10000, [&](NodeContext&) { ++b_events; });
  t.post(a, b, make_msg(kPingHeader, PingBody{1}));
  t.stop(b);
  EXPECT_TRUE(t.stopped(b));
  settle(80000);
  EXPECT_EQ(b_events, 0) << "a stopped node's timers and deliveries must be suppressed";
}

TEST_P(TransportConformanceTest, TimerContextCanSendAndChainTimers) {
  Transport& t = transport();
  const NodeId a = add_node("a");
  const NodeId b = add_node("b");
  std::uint64_t received = 0;
  t.set_handler(b, [&](NodeContext&, const Message& msg) {
    received = msg_body<PingBody>(msg).value;
  });
  int chained = 0;
  t.schedule_timer_for_node(a, t.now() + 5000, [&](NodeContext& ctx) {
    ctx.send(b, make_msg(kPingHeader, PingBody{17}));
    ctx.set_timer(5000, [&](NodeContext&) { ++chained; });
  });
  settle(80000);
  EXPECT_EQ(received, 17u);
  EXPECT_EQ(chained, 1);
}

// -- unknown-header rejection -------------------------------------------------

/// A structurally valid frame (checksum passes) whose header no codec was
/// ever registered for — what a peer speaking a newer protocol would send.
Message foreign_message() {
  const std::string header = "net-test/from-the-future";
  SHADOW_CHECK(!wire::registry().contains(header));
  Bytes body{0xde, 0xad, 0xbe, 0xef};
  Message msg;
  msg.header = header;
  msg.body = std::make_shared<const std::any>(std::uint32_t{0});
  wire::SegmentedBytes encoded;
  encoded.append(ByteView::owning(std::move(body)));
  msg.encoded_body = std::make_shared<const wire::SegmentedBytes>(std::move(encoded));
  msg.wire_size = wire::frame_size(msg.header.size(), msg.encoded_body->size());
  return msg;
}

TEST_P(TransportConformanceTest, UnknownHeaderIsDroppedCleanlyNotCrashed) {
  Transport& t = transport();
  const NodeId a = add_node("a");
  const NodeId b = add_node("b");
  int delivered = 0;
  std::string last_header;
  t.set_handler(b, [&](NodeContext&, const Message& msg) {
    ++delivered;
    last_header = msg.header;
  });

  t.post(a, b, foreign_message());
  settle(80000);
  EXPECT_EQ(delivered, 0) << "handler must not see an undecodable message";
  ASSERT_EQ(drops_.drops.size(), 1u);
  EXPECT_EQ(drops_.drops[0].first, "net-test/from-the-future");
  EXPECT_EQ(drops_.drops[0].second, wire::FrameStatus::kUnknownHeader);

  // The transport survives: a registered message on the same link delivers.
  t.post(a, b, make_msg(kPingHeader, PingBody{5}));
  settle(80000);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(last_header, kPingHeader);
}

// -- zero-copy multicast ------------------------------------------------------

TEST_P(TransportConformanceTest, MulticastEncodesTheFrameExactlyOnce) {
  Transport& t = transport();
  obs::Tracer tracer({.capacity = 1024, .record_messages = false});
  tracer.attach(t);

  const NodeId src = add_node("src");
  std::vector<NodeId> sinks;
  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    const NodeId sink = t.add_node("sink" + std::to_string(i), host0_);
    t.set_handler(sink, [&](NodeContext&, const Message& msg) {
      EXPECT_EQ(msg_body<PingBody>(msg).value, 99u);
      ++delivered;
    });
    sinks.push_back(sink);
  }
  t.set_handler(src, [&](NodeContext& ctx, const Message&) {
    ctx.multicast(sinks, make_msg(kPingHeader, PingBody{99}));
  });

  const std::uint64_t encodes_before = t.encode_count();
  t.post(src, src, make_signal(kPokeHeader));
  settle(80000);

  EXPECT_EQ(delivered, 3);
  // One encode for the poke signal, one — not three — for the fan-out.
  EXPECT_EQ(t.encode_count() - encodes_before, 2u);
  EXPECT_EQ(tracer.metrics().counters().at("net.encode_count").value(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kTcp), backend_name);

// -- TCP socket read path -----------------------------------------------------

/// Writes crafted records straight onto a raw client socket: the receive path
/// (length-prefix parse, frame validation, registry lookup) must absorb an
/// unknown-header frame and a corrupted frame as traced drops and still
/// deliver the valid record behind them on the same connection.
TEST(TcpTransportRawSocket, RejectsUnknownHeaderAndDamageWithoutDesync) {
  TcpOptions options;
  options.local_host = 0;
  options.hosts = {TcpHostAddr{}};
  TcpTransport transport(options);
  if (!transport.start()) GTEST_SKIP() << "sockets unavailable in this environment";
  DropRecorder drops;
  transport.add_observer(&drops);

  const NodeId sink = transport.add_node("sink");
  std::uint64_t received = 0;
  transport.set_handler(sink, [&](NodeContext&, const Message& msg) {
    received = msg_body<PingBody>(msg).value;
  });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(transport.listen_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);

  const auto write_record = [&](const Bytes& frame) {
    Bytes record;
    const std::uint32_t len = static_cast<std::uint32_t>(8 + frame.size());
    for (int shift = 0; shift < 32; shift += 8) {
      record.push_back(static_cast<std::uint8_t>(len >> shift));
    }
    for (int word = 0; word < 2; ++word) {  // from = to = node 0
      for (int i = 0; i < 4; ++i) record.push_back(0);
    }
    record.insert(record.end(), frame.begin(), frame.end());
    ASSERT_EQ(::send(fd, record.data(), record.size(), 0),
              static_cast<ssize_t>(record.size()));
  };

  write_record(wire::encode_frame("net-test/from-the-future", Bytes{1, 2, 3}));
  Bytes damaged = wire::encode_frame("net-test/from-the-future", Bytes{1, 2, 3});
  damaged.back() ^= 0xff;  // breaks the checksum
  write_record(damaged);
  wire::registry().ensure<PingBody>(kPingHeader);
  write_record(wire::encode_frame(kPingHeader, wire::encode_body(PingBody{41})));

  transport.run_for(200000);
  ::close(fd);

  EXPECT_EQ(received, 41u) << "the valid record behind the rejects must deliver";
  ASSERT_EQ(drops.drops.size(), 2u);
  EXPECT_EQ(drops.drops[0].second, wire::FrameStatus::kUnknownHeader);
  EXPECT_NE(drops.drops[1].second, wire::FrameStatus::kOk);
  EXPECT_EQ(transport.wire_drops(), 2u);
}

}  // namespace
}  // namespace shadow::net
