// End-to-end ShadowDB over real TCP sockets, in-process.
//
// Four TcpTransport instances — three server hosts and one client host —
// run side by side in one test process, each executing the identical cluster
// assembly (so NodeIds agree across "processes") but only its own local
// nodes. Every protocol message crosses a real localhost socket as a
// checksummed wire frame; only the routing table is shared. The bank
// workload runs to completion under both ShadowDB modes (PBR and SMR), and
// the per-host traces — comparable because the transports share a clock
// epoch — are merged and replayed through the offline checker, which
// verifies total order, at-most-once, durability, and strict
// serializability across the whole cluster.
//
// Skips (rather than fails) when the environment forbids sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/shadowdb.hpp"
#include "net/tcp_transport.hpp"
#include "obs/checker.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

constexpr std::size_t kServerHosts = 3;
constexpr std::size_t kHostCount = kServerHosts + 1;  // + client host
constexpr std::size_t kClientHost = kServerHosts;
constexpr std::size_t kTxns = 25;

/// One "process" of the cluster: a TCP transport plus the objects its local
/// nodes are served by. All processes build the full assembly; remote nodes'
/// objects stay inert (their timers are suppressed by the transport).
struct Process {
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<obs::Tracer> tracer;
  PbrCluster pbr;
  SmrCluster smr;
  std::shared_ptr<workload::ProcedureRegistry> registry;
  NodeId client_node{};
  std::unique_ptr<DbClient> client;
};

enum class Mode { kPbr, kSmr, kSmrPipelined };

class TcpClusterE2eTest : public ::testing::TestWithParam<Mode> {
 protected:
  static bool pbr() { return GetParam() == Mode::kPbr; }
  static bool pipelined() { return GetParam() == Mode::kSmrPipelined; }

  /// Binds all transports (ephemeral ports), exchanges the discovered ports,
  /// and runs the identical assembly in each. Returns false if sockets are
  /// unavailable.
  bool bring_up() {
    const auto epoch = std::chrono::steady_clock::now();
    std::vector<net::TcpHostAddr> hosts(kHostCount);
    for (std::size_t h = 0; h < kHostCount; ++h) {
      net::TcpOptions options;
      options.local_host = static_cast<std::uint32_t>(h);
      options.hosts = hosts;
      options.seed = 42;
      options.epoch = epoch;
      auto transport = std::make_unique<net::TcpTransport>(options);
      if (!transport->start()) return false;
      processes_.push_back(Process{});
      processes_.back().transport = std::move(transport);
    }
    for (auto& p : processes_) {
      for (std::size_t h = 0; h < kHostCount; ++h) {
        p.transport->set_host_port(net::HostId{static_cast<std::uint32_t>(h)},
                                   processes_[h].transport->listen_port());
      }
    }
    for (auto& p : processes_) assemble(p);
    return true;
  }

  void assemble(Process& p) {
    net::TcpTransport& t = *p.transport;
    p.tracer = std::make_unique<obs::Tracer>(
        obs::TracerOptions{.capacity = 1 << 18, .record_messages = false});
    p.tracer->attach(t);

    p.registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*p.registry);

    ClusterOptions opts;
    opts.db_replicas = 3;  // >= 3 replicas, all active
    opts.db_spares = 0;
    opts.registry = p.registry;
    opts.tracer = p.tracer.get();
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank_); };
    // Pipelined mode: per-process I/O + consensus + DB-executor threads,
    // decided batches spliced across SPSC rings, adaptive proposal sizing.
    opts.smr.pipelined_execution = pipelined();
    opts.tob_adaptive_batching = pipelined();

    if (pbr()) {
      p.pbr = make_pbr_cluster(t, opts);
    } else {
      p.smr = make_smr_cluster(t, opts);
    }

    // The client node exists in every process's node table; the closed loop
    // only runs where it is local (host kClientHost).
    p.client_node = t.add_node("client1");
    DbClient::Options options;
    options.mode = pbr() ? DbClient::Mode::kDirect : DbClient::Mode::kTob;
    options.targets = pbr() ? p.pbr.request_targets() : p.smr.broadcast_targets();
    options.txn_limit = kTxns;
    options.retry_timeout = 2000000;
    options.tracer = p.tracer.get();
    auto rng = std::make_shared<Rng>(7);
    auto cfg = bank_;
    p.client = std::make_unique<DbClient>(
        t, p.client_node, ClientId{1}, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        });

    // Topology frozen: hand the sockets to this "process"'s I/O thread. The
    // test thread remains the consensus thread of all four transports.
    if (pipelined()) ASSERT_TRUE(t.start_pipeline());
  }

  /// Round-robin event-loop pump across all "processes".
  void pump_for(std::chrono::milliseconds duration) {
    const auto until = std::chrono::steady_clock::now() + duration;
    while (std::chrono::steady_clock::now() < until) {
      for (auto& p : processes_) p.transport->poll_once(300);
    }
  }

  DbClient& client() { return *processes_[kClientHost].client; }

  /// Stats of the replica local to server host `h`, read from that host's
  /// own process (the only one where the object actually executed). A
  /// pipelined replica is quiesced first — its executor thread owns the
  /// engine until the pipeline drains.
  std::uint64_t replica_executed(std::size_t h) {
    Process& p = processes_[h];
    if (pbr()) return p.pbr.replicas[h]->executed();
    p.smr.replicas[h]->quiesce();
    return p.smr.replicas[h]->executed();
  }
  std::uint64_t replica_digest(std::size_t h) {
    Process& p = processes_[h];
    if (pbr()) return p.pbr.replicas[h]->state_digest();
    p.smr.replicas[h]->quiesce();
    return p.smr.replicas[h]->state_digest();
  }

  workload::bank::BankConfig bank_{1000, 0};
  std::vector<Process> processes_;
};

TEST_P(TcpClusterE2eTest, BankWorkloadCommitsAndPassesTheChecker) {
  const SpliceStats splice_base = splice_stats();
  if (!bring_up()) GTEST_SKIP() << "sockets unavailable in this environment";

  client().start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (!client().done() && std::chrono::steady_clock::now() < deadline) {
    for (auto& p : processes_) p.transport->poll_once(300);
  }
  ASSERT_TRUE(client().done()) << "cluster did not complete the workload in time";
  EXPECT_EQ(client().committed(), kTxns);

  // Let in-flight replication drain, then every active replica must have
  // executed every transaction and converged on the same state.
  pump_for(std::chrono::milliseconds(500));
  for (std::size_t h = 0; h < kServerHosts; ++h) {
    EXPECT_EQ(replica_executed(h), kTxns) << "replica on host " << h;
  }
  EXPECT_EQ(replica_digest(0), replica_digest(1));
  EXPECT_EQ(replica_digest(1), replica_digest(2));

  // Real bytes moved: the server hosts exchanged frames over the sockets.
  for (std::size_t h = 0; h < kHostCount; ++h) {
    EXPECT_GT(processes_[h].transport->messages_delivered(), 0u) << "host " << h;
    EXPECT_EQ(processes_[h].transport->wire_drops(), 0u) << "host " << h;
  }

  // Merge the per-process traces and replay them through the offline
  // checker: total order, at-most-once, durability, strict serializability.
  std::vector<obs::Trace> traces;
  for (auto& p : processes_) traces.push_back(p.tracer->snapshot());
  const obs::Trace merged = obs::merge_traces(traces);
  const obs::CheckResult check = obs::check_trace(merged);
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, kTxns);
  EXPECT_EQ(check.replicas_checked, kServerHosts);

  // Zero-copy acceptance over real sockets: the scatter-gather send path and
  // the owned-buffer receive path moved every batch without copying its
  // encoded bytes, and each batch was encoded at most once. In SMR mode
  // every transaction rides a consensus batch (client retries during TCP
  // warm-up can add a re-wrap, hence the slack); in PBR mode TOB only
  // carries reconfigurations, so a clean run encodes nothing (slack for
  // heartbeat-suspicion reconfigs on a stalled CI machine).
  const SpliceStats& splices = splice_stats();
  EXPECT_EQ(splices.batch_bytes_copied, splice_base.batch_bytes_copied);
  if (!pbr()) {
    EXPECT_GE(splices.batch_encodes - splice_base.batch_encodes, 1u);
    EXPECT_LE(splices.batch_encodes - splice_base.batch_encodes, kTxns * 2);
  } else {
    EXPECT_LE(splices.batch_encodes - splice_base.batch_encodes, 5u);
  }

  // Pipelined mode: the decided batches crossed two thread boundaries
  // (I/O → consensus as frames, consensus → executor as handoffs) and still
  // copied zero payload bytes; the send path coalesced queued records into
  // scatter-gather writes (records per writev >= 1 by construction).
  if (pipelined()) {
    for (std::size_t h = 0; h < kHostCount; ++h) {
      EXPECT_TRUE(processes_[h].transport->pipelined()) << "host " << h;
      EXPECT_GE(processes_[h].transport->writev_records(),
                processes_[h].transport->writev_calls())
          << "host " << h;
    }
  }
}

/// Two replication groups (--shards 2) in every process, pipelined, with the
/// mixed workload routed through the ShardRouter: deposits go straight to
/// the owning group's TOB, adjacent-account transfers take the TOB-ordered
/// 2PC path across both groups over real sockets. Per-group replica digests
/// must agree host-to-host and the merged trace must pass the extended
/// checker (per-group total order + real time, cross-shard atomicity). This
/// is also the multi-group target of the TSan gate in scripts/check.sh.
TEST(TcpShardedClusterE2e, MixedWorkloadCommitsAndPassesTheChecker) {
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kShardTxns = 60;
  struct Proc {
    std::unique_ptr<net::TcpTransport> transport;
    std::unique_ptr<obs::Tracer> tracer;
    ShardedSmrCluster cluster;
    std::shared_ptr<workload::ProcedureRegistry> registry;
    std::unique_ptr<DbClient> client;
  };
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<net::TcpHostAddr> hosts(kHostCount);
  std::vector<Proc> procs;
  for (std::size_t h = 0; h < kHostCount; ++h) {
    net::TcpOptions options;
    options.local_host = static_cast<std::uint32_t>(h);
    options.hosts = hosts;
    options.seed = 42;
    options.epoch = epoch;
    auto transport = std::make_unique<net::TcpTransport>(options);
    if (!transport->start()) GTEST_SKIP() << "sockets unavailable in this environment";
    procs.push_back(Proc{});
    procs.back().transport = std::move(transport);
  }
  for (auto& p : procs) {
    for (std::size_t h = 0; h < kHostCount; ++h) {
      p.transport->set_host_port(net::HostId{static_cast<std::uint32_t>(h)},
                                 procs[h].transport->listen_port());
    }
  }

  const workload::bank::BankConfig bank{1000, 0};
  for (auto& p : procs) {
    net::TcpTransport& t = *p.transport;
    p.tracer = std::make_unique<obs::Tracer>(
        obs::TracerOptions{.capacity = 1 << 18, .record_messages = false});
    p.tracer->attach(t);
    p.registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*p.registry);

    ClusterOptions opts;
    opts.db_replicas = 3;
    opts.db_spares = 0;
    opts.registry = p.registry;
    opts.tracer = p.tracer.get();
    opts.loader = [bank](db::Engine& e) { workload::bank::load(e, bank); };
    opts.smr.pipelined_execution = true;
    opts.tob_adaptive_batching = true;
    p.cluster = make_sharded_smr_cluster(t, opts, kShards);

    const NodeId client_node = t.add_node("client1");
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.router = p.cluster.router.get();
    options.retry_conflict_aborts = true;
    options.txn_limit = kShardTxns;
    options.tracer = p.tracer.get();
    auto rng = std::make_shared<Rng>(7);
    p.client = std::make_unique<DbClient>(
        t, client_node, ClientId{1}, options, [rng, bank]() {
          if (rng->next() % 100 < 20) {
            const auto from = static_cast<std::int64_t>(
                rng->next() % static_cast<std::uint64_t>(bank.accounts));
            return std::make_pair(
                std::string(workload::bank::kTransferProc),
                workload::Params{db::Value(from), db::Value((from + 1) % bank.accounts),
                                 db::Value(std::int64_t{1})});
          }
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, bank));
        });
    ASSERT_TRUE(t.start_pipeline());
  }

  DbClient& client = *procs[kClientHost].client;
  client.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (!client.done() && std::chrono::steady_clock::now() < deadline) {
    for (auto& p : procs) p.transport->poll_once(300);
  }
  ASSERT_TRUE(client.done()) << "sharded cluster did not complete the workload in time";
  EXPECT_EQ(client.committed(), kShardTxns);
  EXPECT_GT(procs[kClientHost].cluster.router->cross_shard_count(), 0u);

  // Drain in-flight replication, then each group's replicas must agree
  // host-to-host (each host executes its own replica of every group).
  const auto drain = std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < drain) {
    for (auto& p : procs) p.transport->poll_once(300);
  }
  for (std::size_t g = 0; g < kShards; ++g) {
    std::uint64_t first = 0;
    for (std::size_t h = 0; h < kServerHosts; ++h) {
      procs[h].cluster.groups[g].replicas[h]->quiesce();
      const std::uint64_t digest = procs[h].cluster.groups[g].replicas[h]->state_digest();
      if (h == 0) {
        first = digest;
      } else {
        EXPECT_EQ(digest, first) << "group " << g << " host " << h;
      }
    }
  }

  std::vector<obs::Trace> traces;
  for (auto& p : procs) traces.push_back(p.tracer->snapshot());
  const obs::CheckResult check = obs::check_trace(obs::merge_traces(traces));
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, kShardTxns);
  EXPECT_EQ(check.replicas_checked, kServerHosts * kShards);
}

INSTANTIATE_TEST_SUITE_P(Modes, TcpClusterE2eTest,
                         ::testing::Values(Mode::kPbr, Mode::kSmr, Mode::kSmrPipelined),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           switch (info.param) {
                             case Mode::kPbr: return std::string("Pbr");
                             case Mode::kSmr: return std::string("Smr");
                             default: return std::string("SmrPipelined");
                           }
                         });

}  // namespace
}  // namespace shadow::core
