// TCP chaos hardening: the real-socket transport under connection failure.
//
//   * Inbound streams that die mid-record — at every byte offset of a valid
//     wire record — are accounted as traced drops, never parsed as garbage.
//   * A dead peer is retried with capped exponential backoff (seeded
//     jitter), observable through the reconnect/backoff observer hooks and
//     the `reconnect_attempts` counter.
//   * An established peer dying fires on_peer_down exactly once; traffic
//     queued during the outage is replayed verbatim when the restarted peer
//     (on a new port) comes back, and on_peer_up reports the downtime.
//   * A full ShadowDB-SMR cluster over four in-process TCP transports
//     survives a crash-restart: one server "process" is torn down mid-load,
//     rebuilt from scratch on a fresh port, and rejoined via snapshot state
//     transfer — the cluster converges and the merged traces (including the
//     dead incarnation's generation) pass the offline checker.
//
// Skips (rather than fails) when the environment forbids sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/shadowdb.hpp"
#include "net/tcp_transport.hpp"
#include "obs/checker.hpp"
#include "wire/framing.hpp"
#include "workload/bank.hpp"

namespace shadow::net {
namespace {

struct RecordingObserver final : TransportObserver {
  struct Drop {
    NodeId from{};
    NodeId to{};
    std::size_t size = 0;
    wire::FrameStatus reason{};
  };
  struct Attempt {
    Time at = 0;
    std::uint64_t attempt = 0;
    Time backoff = 0;
  };
  std::vector<Drop> drops;
  std::vector<Attempt> attempts;
  std::size_t peer_down = 0;
  std::size_t peer_up = 0;
  Time last_downtime = 0;

  void on_wire_drop(Time /*t*/, NodeId from, NodeId to, const std::string& /*header*/,
                    std::size_t wire_size, wire::FrameStatus reason) override {
    drops.push_back(Drop{from, to, wire_size, reason});
  }
  void on_reconnect_attempt(Time t, HostId /*peer*/, std::uint64_t attempt,
                            Time backoff) override {
    attempts.push_back(Attempt{t, attempt, backoff});
  }
  void on_peer_down(Time /*t*/, HostId /*peer*/) override { ++peer_down; }
  void on_peer_up(Time /*t*/, HostId /*peer*/, Time downtime) override {
    ++peer_up;
    last_downtime = downtime;
  }
};

/// Plain blocking client socket to 127.0.0.1:port, or -1.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void append_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

// A peer dying mid-record must surface as an accounted drop, not as a parse
// of half a frame. Exhaustively: for every byte offset of a valid wire
// record, a raw socket sends exactly that prefix and disconnects; the
// transport must trace one truncation drop per partial record (with the
// buffered size), deliver the one complete record exactly once, and never
// mistake a prefix for a full frame.
TEST(TcpChaos, PartialInboundFramesAreDroppedAtEveryByteOffset) {
  TcpOptions options;
  options.hosts = {TcpHostAddr{}};  // one host, ephemeral port
  TcpTransport transport(options);
  if (!transport.start()) GTEST_SKIP() << "sockets unavailable in this environment";

  const HostId h0 = transport.add_host();
  const NodeId sink = transport.add_node("sink", h0);
  std::size_t received = 0;
  transport.set_handler(sink, [&](NodeContext&, const Message& m) {
    if (m.header == "chaos-ping") ++received;
  });
  RecordingObserver observer;
  transport.add_observer(&observer);

  // One complete wire record as a peer would write it:
  // [record_len u32][from u32][to u32][frame], little-endian.
  const Bytes frame = wire::encode_frame("chaos-ping", {});
  Bytes record;
  append_u32le(record, static_cast<std::uint32_t>(8 + frame.size()));
  append_u32le(record, sink.value);
  append_u32le(record, sink.value);
  record.insert(record.end(), frame.begin(), frame.end());

  std::size_t expected_drops = 0;
  for (std::size_t off = 0; off <= record.size(); ++off) {
    const int fd = raw_connect(transport.listen_port());
    ASSERT_GE(fd, 0) << "offset " << off;
    std::size_t sent = 0;
    while (sent < off) {
      const ssize_t n = ::send(fd, record.data() + sent, off - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "offset " << off;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);

    const bool complete = off == record.size();
    if (!complete && off > 0) ++expected_drops;
    const std::size_t expected_received = complete ? 1 : 0;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((observer.drops.size() < expected_drops || received < expected_received) &&
           std::chrono::steady_clock::now() < deadline) {
      transport.poll_once(2000);
    }
    ASSERT_EQ(observer.drops.size(), expected_drops) << "offset " << off;
  }

  EXPECT_EQ(received, 1u);  // only the complete record delivered, exactly once
  EXPECT_EQ(transport.wire_drops(), expected_drops);
  EXPECT_EQ(observer.drops.size(), record.size() - 1);  // one per partial offset
  for (std::size_t i = 0; i < observer.drops.size(); ++i) {
    const RecordingObserver::Drop& drop = observer.drops[i];
    // Drop i came from the send of offset i+1 and buffered exactly that much.
    EXPECT_EQ(drop.size, i + 1) << "drop " << i;
    EXPECT_EQ(drop.reason, wire::FrameStatus::kTruncated) << "drop " << i;
    // Once the routing prologue was complete, the drop is attributed.
    if (drop.size >= 12) {
      EXPECT_EQ(drop.to.value, sink.value) << "drop " << i;
    }
  }
}

// A dead peer costs ever fewer syscalls: consecutive connect failures double
// the (pre-jitter) retry delay up to the cap, the attempt counter counts the
// outage, and actual inter-attempt spacing respects the jitter floor.
TEST(TcpChaos, ReconnectBackoffIsCappedExponential) {
  // A port that refuses connections: bind an ephemeral listener, note the
  // port, close it again.
  std::uint16_t dead_port = 0;
  {
    TcpOptions probe_options;
    probe_options.hosts = {TcpHostAddr{}};
    TcpTransport probe(probe_options);
    if (!probe.start()) GTEST_SKIP() << "sockets unavailable in this environment";
    dead_port = probe.listen_port();
    probe.shutdown();
  }

  TcpOptions options;
  options.local_host = 0;
  options.hosts = {TcpHostAddr{}, TcpHostAddr{"127.0.0.1", dead_port}};
  options.connect_retry = 2000;        // 2 ms base, so the test runs in ~50 ms
  options.connect_retry_cap = 16000;   // capped after three doublings
  options.connect_retry_jitter = 0.25;
  TcpTransport transport(options);
  if (!transport.start()) GTEST_SKIP() << "sockets unavailable in this environment";

  const HostId h0 = transport.add_host();
  const HostId h1 = transport.add_host();
  const NodeId local = transport.add_node("local", h0);
  const NodeId remote = transport.add_node("remote", h1);
  RecordingObserver observer;
  transport.add_observer(&observer);

  // One queued message keeps the transport trying to reach the dead peer.
  transport.post(local, remote, make_signal("chaos-ping"));

  constexpr std::size_t kAttempts = 7;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (observer.attempts.size() < kAttempts &&
         std::chrono::steady_clock::now() < deadline) {
    transport.poll_once(2000);
  }
  ASSERT_GE(observer.attempts.size(), kAttempts) << "reconnects stalled";

  for (std::size_t k = 0; k < kAttempts; ++k) {
    const RecordingObserver::Attempt& a = observer.attempts[k];
    EXPECT_EQ(a.attempt, k + 1) << "attempt " << k;
    const Time expected =
        std::min<Time>(options.connect_retry << k, options.connect_retry_cap);
    EXPECT_EQ(a.backoff, expected) << "attempt " << k;
    if (k > 0) {
      // The next attempt waited at least the jittered delay of the previous
      // one (jitter 0.25 → at least 3/4 of the pre-jitter backoff; -1 for
      // the truncation in the jitter multiply).
      const Time floor = observer.attempts[k - 1].backoff * 3 / 4 - 1;
      EXPECT_GE(a.at - observer.attempts[k - 1].at, floor) << "attempt " << k;
    }
  }
  EXPECT_EQ(transport.reconnect_attempts(), observer.attempts.size());
  EXPECT_EQ(transport.peer_down_total(), 0u);  // never established, so no outage
}

// Established-connection death is one observable outage: on_peer_down fires
// once, traffic sent during the outage queues, and when the peer restarts on
// a brand-new port (patched via set_host_port, exactly what a crash-restart
// does) on_peer_up reports the downtime and the queued record is replayed.
TEST(TcpChaos, PeerOutageQueuesTrafficUntilRestartOnNewPort) {
  const auto epoch = std::chrono::steady_clock::now();
  auto make_transport = [&epoch](std::uint32_t local,
                                 std::vector<TcpHostAddr> hosts) {
    TcpOptions options;
    options.local_host = local;
    options.hosts = std::move(hosts);
    options.epoch = epoch;
    options.connect_retry = 5000;  // recover quickly once the peer is back
    options.connect_retry_cap = 50000;
    return std::make_unique<TcpTransport>(options);
  };
  // Identical two-node assembly on both transports: a on host 0, b on host 1.
  auto assemble = [](TcpTransport& t) {
    const HostId h0 = t.add_host();
    const HostId h1 = t.add_host();
    return std::make_pair(t.add_node("a", h0), t.add_node("b", h1));
  };

  auto a = make_transport(0, {TcpHostAddr{}, TcpHostAddr{}});
  if (!a->start()) GTEST_SKIP() << "sockets unavailable in this environment";
  auto b = make_transport(1, {TcpHostAddr{}, TcpHostAddr{}});
  ASSERT_TRUE(b->start());
  a->set_host_port(HostId{1}, b->listen_port());
  b->set_host_port(HostId{0}, a->listen_port());
  const auto [node_a, node_b] = assemble(*a);
  assemble(*b);
  std::size_t b_received = 0;
  b->set_handler(node_b, [&](NodeContext&, const Message& m) {
    if (m.header == "chaos-ping") ++b_received;
  });
  RecordingObserver observer;
  a->add_observer(&observer);

  auto pump_until = [&](auto done) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!done() && std::chrono::steady_clock::now() < deadline) {
      a->poll_once(2000);
      if (b != nullptr) b->poll_once(2000);
    }
    return done();
  };

  a->post(node_a, node_b, make_signal("chaos-ping"));
  ASSERT_TRUE(pump_until([&] { return b_received == 1; }));
  EXPECT_EQ(observer.peer_up, 1u);        // first-ever connect
  EXPECT_EQ(observer.last_downtime, 0u);  // ... has no preceding outage

  // The peer process dies: its listener and the established connection go
  // away. The sender must notice exactly one outage.
  b.reset();
  ASSERT_TRUE(pump_until([&] { return observer.peer_down == 1; }));
  EXPECT_EQ(a->peer_down_total(), 1u);

  // Sent into the outage: queues on the sender (retained across the dead
  // connection, replayed whole on the replacement).
  a->post(node_a, node_b, make_signal("chaos-ping"));

  // The peer restarts as a fresh process on a fresh ephemeral port; only the
  // routing-table patch connects the two incarnations.
  b = make_transport(1, {TcpHostAddr{"127.0.0.1", 0}, TcpHostAddr{}});
  ASSERT_TRUE(b->start());
  b->set_host_port(HostId{0}, a->listen_port());
  b->set_host_port(HostId{1}, b->listen_port());
  const auto [a2, b2] = assemble(*b);
  (void)a2;
  b->set_handler(b2, [&](NodeContext&, const Message& m) {
    if (m.header == "chaos-ping") ++b_received;
  });
  a->set_host_port(HostId{1}, b->listen_port());

  ASSERT_TRUE(pump_until([&] { return b_received == 2; }));
  EXPECT_EQ(observer.peer_up, 2u);
  EXPECT_GT(observer.last_downtime, 0u);
  EXPECT_EQ(observer.peer_down, 1u);
  EXPECT_EQ(a->wire_drops(), 0u);
}

}  // namespace
}  // namespace shadow::net

namespace shadow::core {
namespace {

constexpr std::size_t kServerHosts = 3;
constexpr std::size_t kHostCount = kServerHosts + 1;  // + client host
constexpr std::size_t kClientHost = kServerHosts;
constexpr std::size_t kTxns = 40;

/// One "process" of the cluster, as in the plain TCP e2e test.
struct Process {
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<obs::Tracer> tracer;
  SmrCluster smr;
  std::shared_ptr<workload::ProcedureRegistry> registry;
  NodeId client_node{};
  std::unique_ptr<DbClient> client;
};

// The in-process equivalent of run_chaos_cluster.sh's kill/restart cycle:
// four TCP transports run the SMR cluster, host 1's "process" is destroyed
// mid-load (sockets, transport, tracer, replica state — everything an OS
// process would lose to SIGKILL), rebuilt from scratch on a brand-new
// ephemeral port, and rejoined via snapshot state transfer. The cluster must
// finish the workload, converge on one state digest, and the merged trace
// generations — including the dead incarnation's — must pass the checker.
class TcpSmrCrashRestartTest : public ::testing::Test {
 protected:
  bool bring_up() {
    epoch_ = std::chrono::steady_clock::now();
    std::vector<net::TcpHostAddr> hosts(kHostCount);
    for (std::size_t h = 0; h < kHostCount; ++h) {
      auto transport = make_transport(static_cast<std::uint32_t>(h), hosts);
      if (!transport->start()) return false;
      processes_.push_back(Process{});
      processes_.back().transport = std::move(transport);
    }
    for (auto& p : processes_) {
      for (std::size_t h = 0; h < kHostCount; ++h) {
        p.transport->set_host_port(net::HostId{static_cast<std::uint32_t>(h)},
                                   processes_[h].transport->listen_port());
      }
    }
    for (auto& p : processes_) assemble(p);
    return true;
  }

  std::unique_ptr<net::TcpTransport> make_transport(std::uint32_t local,
                                                    std::vector<net::TcpHostAddr> hosts) {
    net::TcpOptions options;
    options.local_host = local;
    options.hosts = std::move(hosts);
    options.seed = 42;
    options.epoch = epoch_;  // shared: traces are cluster-comparable
    options.connect_retry = 10000;  // pick restarted peers up quickly
    options.connect_retry_cap = 100000;
    return std::make_unique<net::TcpTransport>(options);
  }

  void assemble(Process& p) {
    net::TcpTransport& t = *p.transport;
    p.tracer = std::make_unique<obs::Tracer>(
        obs::TracerOptions{.capacity = 1 << 18, .record_messages = false});
    p.tracer->attach(t);

    p.registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*p.registry);

    ClusterOptions opts;
    opts.db_replicas = 3;
    opts.db_spares = 0;
    opts.registry = p.registry;
    opts.tracer = p.tracer.get();
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank_); };
    // Keep failure detection out of the restart window: the rejoin protocol,
    // not spare promotion, is under test (the launcher script does the same).
    opts.smr.suspect_timeout = 600000000;  // 600 s

    p.smr = make_smr_cluster(t, opts);

    p.client_node = t.add_node("client1");
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.targets = p.smr.broadcast_targets();
    options.txn_limit = kTxns;
    options.retry_timeout = 2000000;
    options.tracer = p.tracer.get();
    auto rng = std::make_shared<Rng>(7);
    auto cfg = bank_;
    p.client = std::make_unique<DbClient>(
        t, p.client_node, ClientId{1}, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        });
  }

  bool pump_until(std::chrono::seconds budget, auto done) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!done() && std::chrono::steady_clock::now() < deadline) {
      for (auto& p : processes_) p.transport->poll_once(300);
    }
    return done();
  }

  void pump_for(std::chrono::milliseconds duration) {
    const auto until = std::chrono::steady_clock::now() + duration;
    while (std::chrono::steady_clock::now() < until) {
      for (auto& p : processes_) p.transport->poll_once(300);
    }
  }

  DbClient& client() { return *processes_[kClientHost].client; }

  std::uint64_t replica_executed(std::size_t h) {
    processes_[h].smr.replicas[h]->quiesce();
    return processes_[h].smr.replicas[h]->executed();
  }
  std::uint64_t replica_digest(std::size_t h) {
    processes_[h].smr.replicas[h]->quiesce();
    return processes_[h].smr.replicas[h]->state_digest();
  }

  std::chrono::steady_clock::time_point epoch_;
  workload::bank::BankConfig bank_{1000, 0};
  std::vector<Process> processes_;
};

TEST_F(TcpSmrCrashRestartTest, RestartedProcessRejoinsViaSnapshotMidLoad) {
  if (!bring_up()) GTEST_SKIP() << "sockets unavailable in this environment";

  client().start();
  ASSERT_TRUE(pump_until(std::chrono::seconds(60),
                         [&] { return client().committed() >= kTxns / 4; }))
      << "cluster made no progress before the crash";

  // "SIGKILL" host 1: keep the dead incarnation's trace generation (a real
  // SIGKILL would lose it — keeping it only gives the checker more to verify)
  // and destroy everything else it owned, sockets included.
  const obs::Trace gen0 = processes_[1].tracer->snapshot();
  processes_[1] = Process{};

  // Restart it as a brand-new process: fresh ephemeral port, identical
  // assembly, empty state. Patch the new port into every routing table.
  std::vector<net::TcpHostAddr> hosts(kHostCount);
  processes_[1].transport = make_transport(1, hosts);
  ASSERT_TRUE(processes_[1].transport->start());
  for (std::size_t h = 0; h < kHostCount; ++h) {
    processes_[1].transport->set_host_port(net::HostId{static_cast<std::uint32_t>(h)},
                                           processes_[h].transport->listen_port());
    processes_[h].transport->set_host_port(net::HostId{1},
                                           processes_[1].transport->listen_port());
  }
  assemble(processes_[1]);

  // Rejoin mid-stream: pause the fresh TOB node, fetch a snapshot from host
  // 0's replica, resume delivery at the snapshot's slot. The sequence number
  // must be unique across this host's incarnations (the launcher script uses
  // the shared monotonic clock; so does this).
  const auto seq = static_cast<RequestSeq>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  processes_[1].smr.replicas[1]->start_rejoin(processes_[1].smr.tob_nodes[0],
                                              processes_[1].smr.replica_nodes[0], seq);

  ASSERT_TRUE(pump_until(std::chrono::seconds(90), [&] { return client().done(); }))
      << "cluster did not finish the workload after the restart";
  EXPECT_EQ(client().committed(), kTxns);
  pump_for(std::chrono::milliseconds(500));  // let replication drain

  // The never-crashed replicas executed everything; the restarted one holds
  // the same state (snapshot + resumed deliveries), whatever fraction it
  // re-executed itself.
  EXPECT_EQ(replica_executed(0), kTxns);
  EXPECT_EQ(replica_executed(2), kTxns);
  EXPECT_LE(replica_executed(1), kTxns);
  EXPECT_EQ(replica_digest(0), replica_digest(1));
  EXPECT_EQ(replica_digest(1), replica_digest(2));

  // Both of host 1's trace generations merge with the survivors' traces and
  // the whole history still checks out.
  std::vector<obs::Trace> traces;
  traces.push_back(gen0);
  for (auto& p : processes_) traces.push_back(p.tracer->snapshot());
  const obs::CheckResult check = obs::check_trace(obs::merge_traces(traces));
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, kTxns);
  EXPECT_EQ(check.replicas_checked, kServerHosts);
}

}  // namespace
}  // namespace shadow::core
