// Property-based safety sweeps for the consensus modules.
//
// The paper proves safety in Nuprl; our substitution checks the same
// invariants on every execution across many seeded schedules with crash and
// partition injection (DESIGN.md §2). Each parameterized instance is one
// random schedule; the SafetyRecorder's online checks throw on violation
// and the end-of-run checks verify the global properties.
#include <gtest/gtest.h>

#include <memory>

#include "sim/world.hpp"
#include "consensus/paxos.hpp"
#include "consensus/two_third.hpp"
#include "loe/properties.hpp"
#include "tob/tob.hpp"

namespace shadow::consensus {
namespace {

/// One randomized failure schedule over a TOB deployment.
struct Schedule {
  std::uint64_t seed;
  tob::Protocol protocol;
  std::size_t nodes;
  std::size_t crashes;      // how many service nodes to crash
  bool use_partition;       // additionally cut one link for a while
};

class ConsensusScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ConsensusScheduleTest, SafetyHoldsUnderRandomSchedules) {
  const Schedule schedule = GetParam();
  Rng rng(schedule.seed);
  sim::World world(schedule.seed);
  SafetyRecorder safety;

  tob::TobConfig config;
  config.protocol = schedule.protocol;
  for (std::size_t i = 0; i < schedule.nodes; ++i) {
    config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
  }
  tob::TobService service = tob::make_service(world, config, &safety);

  const NodeId client = world.add_node("client");
  std::size_t acks = 0;
  world.set_handler(client, [&acks](net::NodeContext&, const sim::Message& msg) {
    if (msg.header == tob::kAckHeader) ++acks;
  });

  // Broadcast a stream of commands spread over virtual time and nodes,
  // interleaved with the failure schedule.
  constexpr RequestSeq kCommands = 60;
  for (RequestSeq s = 1; s <= kCommands; ++s) {
    const net::Time at = s * 50000 + rng.uniform(0, 20000);
    const std::size_t target = rng.index(schedule.nodes);
    world.schedule(at - world.now() + 1, [&world, &config, client, target, s]() {
      tob::BroadcastBody body{Command{ClientId{1}, s, "payload"}};
      world.post(client, config.nodes[target],
                 sim::make_msg(tob::kBroadcastHeader, std::move(body)));
    });
  }

  // Crash schedule: crash up to `crashes` distinct non-zero nodes at random
  // times. (Node 0 stays alive so at least one stable proposer exists; the
  // dedicated failover tests cover leader crashes.)
  std::set<std::size_t> crashed;
  for (std::size_t c = 0; c < schedule.crashes; ++c) {
    const std::size_t victim = 1 + rng.index(schedule.nodes - 1);
    if (!crashed.insert(victim).second) continue;
    const net::Time at = rng.uniform(100000, 2500000);
    world.schedule(at, [&world, &config, victim]() { world.crash(config.nodes[victim]); });
  }
  if (schedule.use_partition) {
    const std::size_t a = rng.index(schedule.nodes);
    std::size_t b = rng.index(schedule.nodes);
    if (b == a) b = (b + 1) % schedule.nodes;
    world.schedule(rng.uniform(100000, 1000000), [&world, &config, a, b]() {
      world.set_partitioned(config.nodes[a], config.nodes[b], true);
    });
    world.schedule(rng.uniform(1500000, 2500000), [&world, &config, a, b]() {
      world.set_partitioned(config.nodes[a], config.nodes[b], false);
    });
  }

  world.run_until(120000000);

  // Safety: machine-checked.
  EXPECT_TRUE(safety.check_agreement().ok) << safety.check_agreement().detail;
  EXPECT_TRUE(safety.check_validity().ok) << safety.check_validity().detail;
  EXPECT_TRUE(safety.check_integrity().ok);
  if (schedule.protocol == tob::Protocol::kPaxos) {
    const std::size_t quorum = schedule.nodes / 2 + 1;
    EXPECT_TRUE(safety.check_chosen_stability(quorum).ok)
        << safety.check_chosen_stability(quorum).detail;
  }

  // Total order across the surviving nodes' delivery logs.
  std::vector<std::vector<Command>> logs;
  for (const auto& node : service.nodes) {
    if (!world.crashed(node->node())) logs.push_back(node->delivery_log());
  }
  EXPECT_TRUE(loe::check_prefix_consistency(logs).ok);
  for (const auto& log : logs) EXPECT_TRUE(loe::check_no_duplicates(log).ok);

  // Liveness (under the schedule's failure budget): the surviving majority/
  // two-thirds keeps delivering everything that was broadcast to a live node.
  const std::size_t f_budget =
      schedule.protocol == tob::Protocol::kPaxos ? (schedule.nodes - 1) / 2
                                                 : (schedule.nodes - 1) / 3;
  if (crashed.size() <= f_budget) {
    for (const auto& log : logs) {
      EXPECT_GT(log.size(), kCommands / 2)
          << "surviving nodes should deliver most commands";
    }
  }
}

std::vector<Schedule> make_schedules() {
  std::vector<Schedule> schedules;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    schedules.push_back({seed, tob::Protocol::kPaxos, 3, 1, false});
    schedules.push_back({seed + 100, tob::Protocol::kPaxos, 5, 2, seed % 2 == 0});
    schedules.push_back({seed + 200, tob::Protocol::kTwoThird, 4, 1, false});
    schedules.push_back({seed + 300, tob::Protocol::kTwoThird, 7, 2, seed % 2 == 1});
  }
  return schedules;
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, ConsensusScheduleTest,
                         ::testing::ValuesIn(make_schedules()),
                         [](const ::testing::TestParamInfo<Schedule>& info) {
                           const Schedule& s = info.param;
                           return std::string(s.protocol == tob::Protocol::kPaxos ? "paxos"
                                                                                  : "twothird") +
                                  "_n" + std::to_string(s.nodes) + "_c" +
                                  std::to_string(s.crashes) + (s.use_partition ? "_part" : "") +
                                  "_seed" + std::to_string(s.seed);
                         });

// ---- targeted Paxos invariants -----------------------------------------------

TEST(PaxosInvariants, PromiseMonotonicityEnforcedOnline) {
  SafetyRecorder safety;
  safety.on_promise(NodeId{1}, Ballot{3, NodeId{0}});
  safety.on_promise(NodeId{1}, Ballot{5, NodeId{1}});  // ok: increases
  // The Google disk-corruption bug of Sec. II-D: a promise going backwards.
  EXPECT_THROW(safety.on_promise(NodeId{1}, Ballot{2, NodeId{0}}), InvariantViolation);
}

TEST(PaxosInvariants, AcceptBelowPromiseRejected) {
  SafetyRecorder safety;
  safety.on_promise(NodeId{1}, Ballot{5, NodeId{0}});
  EXPECT_THROW(safety.on_accept(NodeId{1}, Ballot{3, NodeId{0}}, 0, Batch{}),
               InvariantViolation);
}

TEST(PaxosInvariants, ConflictingDecisionCaught) {
  SafetyRecorder safety;
  const Batch a{Command{ClientId{1}, 1, "a"}};
  const Batch b{Command{ClientId{1}, 2, "b"}};
  safety.on_propose(0, a);
  safety.on_propose(0, b);
  safety.on_decide(NodeId{0}, 0, a);
  EXPECT_THROW(safety.on_decide(NodeId{1}, 0, b), InvariantViolation);
}

TEST(PaxosInvariants, ValidityCatchesInventedCommands) {
  SafetyRecorder safety;
  const Batch proposed{Command{ClientId{1}, 1, "a"}};
  const Batch invented{Command{ClientId{9}, 9, "ghost"}};
  safety.on_propose(0, proposed);
  safety.on_decide(NodeId{0}, 0, invented);
  EXPECT_FALSE(safety.check_validity().ok);
}

TEST(TwoThirdInvariants, RequiresEnoughPeers) {
  TwoThirdConfig config;
  config.peers = {NodeId{0}, NodeId{1}, NodeId{2}};  // n=3 cannot tolerate f=1
  EXPECT_THROW(TwoThirdModule(NodeId{0}, config), PreconditionViolation);
}

TEST(PaxosInvariants, RequiresThreePeers) {
  PaxosConfig config;
  config.peers = {NodeId{0}, NodeId{1}};
  EXPECT_THROW(PaxosModule(NodeId{0}, config), PreconditionViolation);
}

}  // namespace
}  // namespace shadow::consensus
