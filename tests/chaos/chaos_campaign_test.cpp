// Chaos engine tests: plan generation is deterministic and budgeted, seeded
// campaigns against the simulated SMR cluster survive with zero checker
// violations, the catch-and-minimize path works (a deliberately injected
// ack-without-execution safety bug is caught by the durability checker and
// shrunk to a single-event plan), and the specific schedules that once
// wedged the cluster stay fixed.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"

namespace shadow::chaos {
namespace {

bool has_crash_event(const Plan& plan) {
  return std::any_of(plan.events.begin(), plan.events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kCrashReplica || e.kind == FaultKind::kCrashTobNode ||
           e.kind == FaultKind::kCrashPair;
  });
}

CampaignConfig small_config() {
  CampaignConfig config;
  config.clients = 2;
  config.txns_per_client = 40;
  config.minimize = false;  // tests drive minimize_plan explicitly
  return config;
}

TEST(ChaosPlan, IsDeterministicSortedAndWithinBudgets) {
  const PlanConfig pc;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Plan a = make_plan(seed, pc);
    const Plan b = make_plan(seed, pc);
    ASSERT_EQ(a.events.size(), b.events.size()) << "seed " << seed;
    ASSERT_EQ(a.describe(), b.describe()) << "seed " << seed;

    ASSERT_GE(a.events.size(), pc.min_events) << "seed " << seed;
    ASSERT_LE(a.events.size(), pc.max_events) << "seed " << seed;
    std::size_t replica_crashes = 0;
    std::size_t tob_crashes = 0;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      const FaultEvent& e = a.events[i];
      ASSERT_GE(e.at, pc.earliest) << "seed " << seed;
      ASSERT_LE(e.at, pc.latest) << "seed " << seed;
      if (i > 0) {
        ASSERT_GE(e.at, a.events[i - 1].at) << "seed " << seed;
      }
      if (e.kind == FaultKind::kCrashReplica) replica_crashes += 1;
      if (e.kind == FaultKind::kCrashPair) replica_crashes += 2;
      if (e.kind == FaultKind::kCrashTobNode) tob_crashes += 1;
    }
    // The fault-model budgets: a Paxos quorum and at least one active
    // replica always survive.
    ASSERT_LE(replica_crashes, 2u) << "seed " << seed;
    ASSERT_LE(tob_crashes, 1u) << "seed " << seed;
  }
}

TEST(ChaosCampaign, SeededCampaignSurvivesWithZeroViolations) {
  CampaignConfig config = small_config();
  config.seed = 20140623;
  config.plans = 4;
  const CampaignResult result = run_campaign(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outcomes.size(), config.plans);
  for (const PlanOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.completed) << outcome.plan.describe();
    EXPECT_TRUE(outcome.check.ok()) << outcome.check.summary();
    EXPECT_EQ(outcome.committed, config.clients * config.txns_per_client);
    EXPECT_GT(outcome.faults_injected, 0u);
  }
  EXPECT_EQ(result.total_committed,
            config.plans * config.clients * config.txns_per_client);
}

TEST(ChaosCampaign, RunPlanIsDeterministic) {
  const CampaignConfig config = small_config();
  const Plan plan = make_plan(99, config.plan);
  const PlanOutcome a = run_plan(plan, config);
  const PlanOutcome b = run_plan(plan, config);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.virtual_duration, b.virtual_duration);
  EXPECT_EQ(a.check.ok(), b.check.ok());
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

// The campaign's reason to exist: a safety bug must be caught by the offline
// checker and shrunk to a committable reproducer. We seed an
// ack-before-persist bug through the saboteur hook — whenever the plan
// contains a crash, the trace grows a committed ack for a transaction no
// replica ever executed — and assert the durability checker flags it and the
// greedy minimizer shrinks the schedule to a single crash event (well within
// the <= 3 events a human debugger would ask for).
TEST(ChaosCampaign, SeededSafetyBugIsCaughtAndMinimized) {
  CampaignConfig config = small_config();
  config.saboteur = [](const Plan& plan, obs::Trace& trace) {
    if (!has_crash_event(plan)) return;
    obs::TraceEvent forged;
    forged.time = trace.events.empty() ? 1 : trace.events.back().time + 1;
    forged.kind = obs::EventKind::kTxnAck;
    forged.node = NodeId{999};
    forged.client = ClientId{77};
    forged.seq = 1;
    forged.a = 1;  // acknowledged committed — but never executed anywhere
    trace.events.push_back(forged);
  };

  // A seed whose plan mixes crash and non-crash events, so minimization has
  // something real to discard.
  std::uint64_t seed = 1;
  Plan plan;
  for (;; ++seed) {
    plan = make_plan(seed, config.plan);
    if (plan.events.size() >= 3 && has_crash_event(plan)) break;
  }

  const PlanOutcome outcome = run_plan(plan, config);
  ASSERT_FALSE(outcome.ok()) << "saboteur bug went undetected";
  ASSERT_FALSE(outcome.check.violations.empty());
  bool durability = false;
  for (const obs::Violation& v : outcome.check.violations) {
    if (v.invariant == "durability") durability = true;
  }
  EXPECT_TRUE(durability) << outcome.check.summary();

  const Plan minimized = minimize_plan(plan, config);
  ASSERT_LE(minimized.events.size(), 3u) << minimized.describe();
  ASSERT_EQ(minimized.events.size(), 1u) << minimized.describe();
  EXPECT_TRUE(has_crash_event(minimized));
  // The minimized plan still reproduces.
  EXPECT_FALSE(run_plan(minimized, config).ok());
}

// Regression: these seeds once wedged the cluster forever — a crashed TOB
// node shrank the quorum to "every survivor must answer", and one message
// lost to a transient link fault left the Paxos scout/commander waiting with
// no retransmission. Fixed by tick-driven P1a/P2a re-sends (acceptors are
// pure responders, so retransmission is idempotent). Kept at full campaign
// scale so the schedules match the original failures.
TEST(ChaosCampaign, PaxosRetransmissionWedgeStaysFixed) {
  CampaignConfig config;  // the bench driver's defaults, where the bug surfaced
  for (const std::uint64_t seed : {16443001165750773812ULL, 6211272334259144864ULL}) {
    const PlanOutcome outcome = replay(seed, config);
    EXPECT_TRUE(outcome.completed)
        << "seed " << seed << " wedged again:\n" << outcome.plan.describe();
    EXPECT_TRUE(outcome.check.ok()) << outcome.check.summary();
  }
}

// Pinned sharded schedules: with --shards 2 every fault lands on the
// target's node in BOTH groups at once (a machine hosts one slice per
// group), so a crash-restart must drive two independent per-group rejoins —
// each resuming from its own group's snapshot point — while cross-shard 2PC
// traffic keeps flowing. The first seed pairs a crash-pair with a link
// fault; the second stacks two partitions, a link fault, and a leader TOB
// crash. Both must complete with clean merged-trace checks.
TEST(ChaosCampaign, ShardedMultiGroupCrashScheduleStaysFixed) {
  CampaignConfig config;
  config.shards = 2;
  for (const std::uint64_t seed : {1310552918490157286ULL, 15996139959407692321ULL}) {
    const PlanOutcome outcome = replay(seed, config);
    EXPECT_TRUE(outcome.completed)
        << "seed " << seed << " wedged:\n" << outcome.plan.describe();
    EXPECT_TRUE(outcome.check.ok()) << outcome.check.summary();
    EXPECT_GT(outcome.faults_injected, 0u);
  }
}

// A small sharded campaign (fresh seeds each run would flake; this is a
// fixed-seed smoke of the sharded fault loop at test-sized scale).
TEST(ChaosCampaign, ShardedCampaignSurvivesWithZeroViolations) {
  CampaignConfig config = small_config();
  config.seed = 20260809;
  config.plans = 3;
  config.shards = 2;
  config.cross_shard_pct = 20;
  const CampaignResult result = run_campaign(config);
  ASSERT_TRUE(result.ok());
  for (const PlanOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.completed) << outcome.plan.describe();
    EXPECT_TRUE(outcome.check.ok()) << outcome.check.summary();
    EXPECT_EQ(outcome.committed, config.clients * config.txns_per_client);
  }
}

}  // namespace
}  // namespace shadow::chaos
