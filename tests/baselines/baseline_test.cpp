// Tests for the baseline servers: standalone execution, eager (H2-style)
// and semi-sync (MySQL-style) replication, lock-contention behaviour under
// concurrent clients, and at-most-once semantics.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "baselines/baseline_server.hpp"
#include "core/client.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"

namespace shadow::baselines {
namespace {

std::shared_ptr<const workload::ProcedureRegistry> bank_registry() {
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  return registry;
}

core::DbClient make_bank_client(sim::World& world, NodeId target, ClientId id,
                                std::size_t txns, std::uint64_t seed,
                                const workload::bank::BankConfig& bank) {
  const NodeId node = world.add_node("client" + std::to_string(id.value));
  core::DbClient::Options options;
  options.targets = {target};
  options.txn_limit = txns;
  auto rng = std::make_shared<Rng>(seed);
  return core::DbClient(world, node, id, options, [rng, bank]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, bank));
  });
}

TEST(Standalone, ServesBankTransactions) {
  sim::World world(1);
  workload::bank::BankConfig bank{500, 0};
  auto engine = std::make_shared<db::Engine>(db::make_h2_traits());
  workload::bank::load(*engine, bank);
  StandaloneDb dbx = make_standalone(world, engine, bank_registry());
  core::DbClient client = make_bank_client(world, dbx.node(), ClientId{1}, 80, 3, bank);
  client.start();
  world.run_until(60000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 80u);
  EXPECT_EQ(dbx.server->committed(), 80u);
}

TEST(Standalone, DeduplicatesRetries) {
  sim::World world(2);
  workload::bank::BankConfig bank{100, 0};
  auto engine = std::make_shared<db::Engine>(db::make_h2_traits());
  workload::bank::load(*engine, bank);
  StandaloneDb dbx = make_standalone(world, engine, bank_registry());

  const NodeId node = world.add_node("retry-client");
  core::DbClient::Options options;
  options.targets = {dbx.node()};
  options.txn_limit = 30;
  options.retry_timeout = 300;  // far below one round trip
  auto rng = std::make_shared<Rng>(5);
  workload::bank::BankConfig cfg = bank;
  core::DbClient client(world, node, ClientId{2}, options, [rng, cfg]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, cfg));
  });
  client.start();
  world.run_until(60000000);
  EXPECT_TRUE(client.done());
  EXPECT_GT(client.retries(), 0u);
  const std::int64_t total = workload::bank::total_balance(*engine);
  // Every deposit in [1, 100]; conservation implies exactly-once.
  EXPECT_GE(total, 100 * 1000 + 30);
  EXPECT_LE(total, 100 * 1000 + 30 * 100);
}

TEST(H2Repl, ReplicatesEagerlyAndConverges) {
  sim::World world(3);
  workload::bank::BankConfig bank{300, 0};
  auto loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  ReplicatedDb dbx = make_h2_repl(world, bank_registry(), loader);
  core::DbClient client = make_bank_client(world, dbx.node(), ClientId{1}, 50, 7, bank);
  client.start();
  world.run_until(60000000);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 50u);
  // Eager replication: secondary holds the same state once quiescent.
  EXPECT_EQ(dbx.primary->engine().state_digest(), dbx.secondary->engine().state_digest());
}

TEST(MysqlRepl, SemiSyncCommitsAndConverges) {
  sim::World world(4);
  workload::bank::BankConfig bank{300, 0};
  auto loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  ReplicatedDb dbx =
      make_mysql_repl(world, bank_registry(), loader, db::make_mysql_memory_traits());
  core::DbClient client = make_bank_client(world, dbx.node(), ClientId{1}, 50, 9, bank);
  client.start();
  world.run_until(60000000);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 50u);
  EXPECT_EQ(dbx.primary->engine().state_digest(), dbx.secondary->engine().state_digest());
}

TEST(H2Repl, HoldsLocksAcrossReplicationRoundTrip) {
  // With table locks held across the sync round trip, two concurrent
  // clients' update transactions serialize: throughput is bounded by the
  // lock-hold time, not by server CPU. Compare the latency of a contended
  // run against an uncontended one.
  workload::bank::BankConfig bank{300, 0};
  auto loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };

  auto run = [&](std::size_t n_clients) {
    sim::World world(11);
    ReplicatedDb dbx = make_h2_repl(world, bank_registry(), loader);
    std::vector<std::unique_ptr<core::DbClient>> clients;
    for (std::size_t i = 0; i < n_clients; ++i) {
      const NodeId node = world.add_node("c" + std::to_string(i));
      core::DbClient::Options options;
      options.targets = {dbx.node()};
      options.txn_limit = 40;
      auto rng = std::make_shared<Rng>(100 + i);
      workload::bank::BankConfig cfg = bank;
      clients.push_back(std::make_unique<core::DbClient>(
          world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, options, [rng, cfg]() {
            return std::make_pair(std::string(workload::bank::kDepositProc),
                                  workload::bank::make_deposit(*rng, cfg));
          }));
    }
    for (auto& c : clients) c->start();
    world.run_until(600000000);
    double mean = 0;
    for (auto& c : clients) {
      EXPECT_TRUE(c->done());
      mean += c->latencies().mean_ms();
    }
    return mean / static_cast<double>(n_clients);
  };

  const double solo = run(1);
  const double contended = run(8);
  EXPECT_GT(contended, solo * 3.0) << "table locks must serialize concurrent writers";
}

TEST(MysqlRepl, RowLockEngineAllowsTpccConcurrency) {
  sim::World world(13);
  const auto tpcc_cfg = workload::tpcc::TpccConfig::small();
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::tpcc::register_procedures(*registry);
  auto loader = [&tpcc_cfg](db::Engine& e) { workload::tpcc::load(e, tpcc_cfg, 7); };
  ReplicatedDb dbx = make_mysql_repl(world, registry, loader, db::make_innodb_traits());

  std::vector<std::unique_ptr<core::DbClient>> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId node = world.add_node("c" + std::to_string(i));
    core::DbClient::Options options;
    options.targets = {dbx.node()};
    options.txn_limit = 50;
    options.retry_timeout = 30000000;  // lock waits can be long; do not resend
    auto gen = std::make_shared<workload::tpcc::TxnGenerator>(tpcc_cfg, 100 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, options, [gen]() {
          auto txn = gen->next();
          return std::make_pair(txn.proc, txn.params);
        }));
  }
  for (auto& c : clients) c->start();
  world.run_until(1200000000);
  std::uint64_t committed = 0;
  for (auto& c : clients) {
    EXPECT_TRUE(c->done());
    committed += c->committed();
  }
  EXPECT_GT(committed, 180u);  // ~1 % new-order rollbacks plus rare timeouts
  EXPECT_EQ(dbx.primary->engine().state_digest(), dbx.secondary->engine().state_digest());
}

}  // namespace
}  // namespace shadow::baselines
