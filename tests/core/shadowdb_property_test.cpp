// Randomized failure-schedule sweeps for both ShadowDB protocols.
//
// Each parameterized case crashes a random replica at a random time while a
// client stream runs, then machine-checks the paper's properties: every
// answered transaction survives (Durability, via balance conservation),
// replicas of the final configuration agree (State-agreement, via digests
// across *diverse* engines), execution is at-most-once despite retries, and
// the consensus layer's safety held throughout.
#include <gtest/gtest.h>

#include <memory>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct Scenario {
  std::uint64_t seed;
  bool smr;            // SMR or PBR
  std::size_t victim;  // which replica to crash (0 = primary for PBR)
  net::Time crash_at;
};

class ShadowDbScheduleTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ShadowDbScheduleTest, PropertiesHoldAcrossCrashSchedules) {
  const Scenario scenario = GetParam();
  sim::World world(scenario.seed);
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{800, 0};

  ClusterOptions opts;
  opts.registry = registry;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  // Diverse engines on purpose: digests must agree across implementations.
  opts.pbr.suspect_timeout = 1500000;
  opts.pbr.hb_period = 300000;
  opts.smr.suspect_timeout = 1500000;
  opts.smr.hb_period = 300000;

  std::optional<PbrCluster> pbr;
  std::optional<SmrCluster> smr;
  std::vector<NodeId> replica_nodes;
  if (scenario.smr) {
    smr.emplace(make_smr_cluster(world, opts));
    replica_nodes = smr->replica_nodes;
  } else {
    pbr.emplace(make_pbr_cluster(world, opts));
    replica_nodes = pbr->replica_nodes;
  }

  std::int64_t generated_total = 0;
  const NodeId client_node = world.add_node("client");
  DbClient::Options copts;
  copts.txn_limit = 260;
  copts.retry_timeout = 700000;
  if (scenario.smr) {
    copts.mode = DbClient::Mode::kTob;
    copts.targets = smr->broadcast_targets();
  } else {
    copts.mode = DbClient::Mode::kDirect;
    copts.targets = pbr->request_targets();
  }
  auto rng = std::make_shared<Rng>(scenario.seed * 31);
  DbClient client(world, client_node, ClientId{1}, copts,
                  [rng, &bank, &generated_total]() {
                    auto params = workload::bank::make_deposit(*rng, bank);
                    generated_total += params[1].as_int();
                    return std::make_pair(std::string(workload::bank::kDepositProc),
                                          std::move(params));
                  });
  client.start();

  world.run_until(scenario.crash_at);
  world.crash(replica_nodes[scenario.victim]);
  world.run_until(1200000000);

  ASSERT_TRUE(client.done()) << "committed only " << client.committed();
  EXPECT_EQ(client.committed() + client.aborted(), 260u);
  EXPECT_EQ(client.aborted(), 0u);

  // Consensus safety held throughout the run (recovery used the TOB).
  const auto& safety = scenario.smr ? smr->safety : pbr->safety;
  EXPECT_TRUE(safety->check_agreement().ok) << safety->check_agreement().detail;
  EXPECT_TRUE(safety->check_validity().ok) << safety->check_validity().detail;

  // Identify the final configuration's live members.
  std::vector<db::Engine*> survivors;
  if (scenario.smr) {
    for (std::size_t i = 0; i < replica_nodes.size(); ++i) {
      if (world.crashed(replica_nodes[i])) continue;
      auto& replica = *smr->replicas[i];
      const auto& group = replica.group();
      if (replica.active() &&
          std::find(group.begin(), group.end(), replica_nodes[i]) != group.end()) {
        survivors.push_back(&replica.engine());
      }
    }
  } else {
    ConfigSeq latest = 0;
    for (std::size_t i = 0; i < replica_nodes.size(); ++i) {
      if (!world.crashed(replica_nodes[i])) {
        latest = std::max(latest, pbr->replicas[i]->config_seq());
      }
    }
    for (std::size_t i = 0; i < replica_nodes.size(); ++i) {
      if (world.crashed(replica_nodes[i])) continue;
      auto& replica = *pbr->replicas[i];
      const auto& members = replica.members();
      if (replica.config_seq() == latest &&
          std::find(members.begin(), members.end(), replica_nodes[i]) != members.end()) {
        survivors.push_back(&replica.engine());
      }
    }
  }
  ASSERT_FALSE(survivors.empty());

  // Durability + at-most-once: conservation of money on every survivor of
  // the final configuration, and State-agreement between them.
  const std::int64_t expected = 1000 * bank.accounts + generated_total;
  for (db::Engine* engine : survivors) {
    EXPECT_EQ(workload::bank::total_balance(*engine), expected)
        << "durability/at-most-once violated on " << engine->traits().name;
  }
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[0]->state_digest(), survivors[i]->state_digest())
        << "state-agreement violated";
  }
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const net::Time crash_at = 50000 + seed * 37000;
    scenarios.push_back({seed, false, 0, crash_at});       // PBR: crash primary
    scenarios.push_back({seed + 50, false, 1, crash_at});  // PBR: crash backup
    scenarios.push_back({seed + 100, true, 0, crash_at});  // SMR: crash replica 0
    scenarios.push_back({seed + 150, true, 1, crash_at});  // SMR: crash replica 1
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(CrashSchedules, ShadowDbScheduleTest,
                         ::testing::ValuesIn(make_scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           const Scenario& s = info.param;
                           return std::string(s.smr ? "smr" : "pbr") + "_victim" +
                                  std::to_string(s.victim) + "_seed" +
                                  std::to_string(s.seed);
                         });

}  // namespace
}  // namespace shadow::core
