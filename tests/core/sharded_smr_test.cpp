// End-to-end tests of the sharded deployment: N independent consensus groups
// over one simulated world, single-shard transactions routed straight to
// their group, cross-shard transfers through the TOB-ordered 2PC path, and
// the extended offline checker (per-group orders + cross-group strict
// serializability + cross-shard atomicity) over the recorded trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/codecs.hpp"
#include "core/shadowdb.hpp"
#include "db/sql.hpp"
#include "obs/checker.hpp"
#include "sim/world.hpp"
#include "wire/registry.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct ShardedFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  ShardedSmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{200, 0};

  explicit ShardedFixture(std::size_t shards, std::uint64_t seed = 1, ClusterOptions opts = {})
      : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    if (!opts.loader) {
      opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    }
    cluster = make_sharded_smr_cluster(world, opts, shards);
  }

  /// A closed-loop client issuing `next` through the router.
  DbClient& add_client(std::size_t txns, DbClient::NextTxnFn next) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.router = cluster.router.get();
    options.retry_conflict_aborts = true;
    options.txn_limit = txns;
    options.tracer = &tracer;
    clients.push_back(std::make_unique<DbClient>(world, node, id, options, std::move(next)));
    return *clients.back();
  }

  /// Mixed workload: `cross_pct`% adjacent-account transfers (always
  /// cross-shard for shards > 1), deposits otherwise.
  DbClient& add_mixed_client(std::size_t txns, std::uint64_t seed, std::size_t cross_pct) {
    auto rng = std::make_shared<Rng>(seed);
    const auto cfg = bank;
    return add_client(txns, [rng, cfg, cross_pct]() {
      if (rng->next() % 100 < cross_pct) {
        const auto from =
            static_cast<std::int64_t>(rng->next() % static_cast<std::uint64_t>(cfg.accounts));
        return std::make_pair(
            std::string(workload::bank::kTransferProc),
            workload::Params{db::Value(from), db::Value((from + 1) % cfg.accounts),
                             db::Value(std::int64_t{1})});
      }
      return std::make_pair(std::string(workload::bank::kDepositProc),
                            workload::bank::make_deposit(*rng, cfg));
    });
  }

  void run_all(net::Time limit) {
    for (auto& c : clients) c->start();
    world.run_until(limit);
  }

  /// The balance of `key` as recorded by the replica states of the group
  /// that OWNS the key (the authoritative copy in a sharded deployment).
  std::int64_t owned_balance(std::int64_t key) {
    const GroupId g = cluster.router->shard_of_key(key);
    db::Engine& engine = cluster.groups[g].replicas[0]->engine();
    const db::TxnId txn = engine.begin();
    const db::ExecResult r =
        engine.execute(txn, db::make_select(workload::bank::kTable, {db::Value(key)}));
    engine.commit(txn);
    EXPECT_TRUE(r.ok() && !r.rows.empty()) << "account " << key;
    return r.rows.empty() ? 0 : r.rows[0][2].as_int();
  }

  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

TEST(ShardedSmr, CrossShardTransfersCommitAndConserveMoney) {
  ShardedFixture fx(2);
  // Transfers only: global money is conserved exactly, so the authoritative
  // per-owner balances must still sum to the initial total.
  const std::int64_t initial_total = fx.bank.accounts * 1000;  // loader seeds 1000 each
  auto rng = std::make_shared<Rng>(11);
  const auto cfg = fx.bank;
  DbClient& client =
      fx.add_client(150, [rng, cfg]() {
        const auto from =
            static_cast<std::int64_t>(rng->next() % static_cast<std::uint64_t>(cfg.accounts));
        return std::make_pair(
            std::string(workload::bank::kTransferProc),
            workload::Params{db::Value(from), db::Value((from + 1) % cfg.accounts),
                             db::Value(std::int64_t{1})});
      });
  fx.run_all(120000000);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 150u);

  std::int64_t total = 0;
  for (std::int64_t k = 0; k < fx.bank.accounts; ++k) total += fx.owned_balance(k);
  EXPECT_EQ(total, initial_total) << "2PC transfers must conserve global money";

  // Per-group replica agreement: both replicas of each group converged.
  for (const ReplicationGroup& g : fx.cluster.groups) {
    ASSERT_GE(g.replicas.size(), 2u);
    EXPECT_EQ(g.replicas[0]->state_digest(), g.replicas[1]->state_digest())
        << "group " << g.id;
  }

  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 150u);
  EXPECT_GE(check.replicas_checked, 4u);  // 2 groups x >= 2 replicas
}

TEST(ShardedSmr, MixedWorkloadPassesExtendedChecker) {
  ShardedFixture fx(3, 5);
  fx.add_mixed_client(120, 21, 25);
  fx.add_mixed_client(120, 22, 25);
  fx.run_all(180000000);
  for (auto& c : fx.clients) {
    ASSERT_TRUE(c->done());
    EXPECT_EQ(c->committed() + c->aborted(), 120u);
    EXPECT_EQ(c->aborted(), 0u) << "seeded funds never overdraft on amount-1 transfers";
  }
  EXPECT_GT(fx.cluster.router->cross_shard_count(), 0u);
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 240u);
}

TEST(ShardedSmr, CrossShardOverdraftAbortsAtomically) {
  ShardedFixture fx(2);
  // Account 1 (group 1) holds 1000; a 10^6 transfer must vote NO at the
  // debtor group and abort on BOTH groups — the creditor side must not
  // apply its staged credit.
  auto step = std::make_shared<int>(0);
  DbClient& client = fx.add_client(3, [step]() {
    const int s = (*step)++;
    if (s == 1) {
      return std::make_pair(
          std::string(workload::bank::kTransferProc),
          workload::Params{db::Value(std::int64_t{1}), db::Value(std::int64_t{2}),
                           db::Value(std::int64_t{1000000})});
    }
    // Surrounding committed transfers prove the lane stays live.
    return std::make_pair(
        std::string(workload::bank::kTransferProc),
        workload::Params{db::Value(std::int64_t{4}), db::Value(std::int64_t{5}),
                         db::Value(std::int64_t{1})});
  });
  fx.run_all(60000000);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 2u);
  EXPECT_EQ(client.aborted(), 1u);
  EXPECT_EQ(fx.owned_balance(1), 1000);
  EXPECT_EQ(fx.owned_balance(2), 1000) << "creditor group must not apply an aborted credit";
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(ShardedSmr, SingleShardDeploymentMatchesClassicCounters) {
  // shards = 1 through the sharded assembly still commits everything and
  // reports zero cross-shard traffic (the router degenerates to a constant).
  ShardedFixture fx(1);
  fx.add_mixed_client(60, 31, 20);
  fx.run_all(60000000);
  ASSERT_TRUE(fx.clients[0]->done());
  EXPECT_EQ(fx.clients[0]->committed(), 60u);
  EXPECT_EQ(fx.cluster.router->cross_shard_count(), 0u);
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(ShardedSmr, WireCodecRegistrationIsIdempotentAcrossGroups) {
  // Four groups assemble in one process, each calling
  // register_wire_codecs(); a second sharded world in the same process
  // re-registers everything again. Any double-registration or type clash
  // would CHECK-fail inside the registry.
  ShardedFixture a(4, 2);
  register_wire_codecs();
  register_wire_codecs();
  ShardedFixture b(2, 3);
  a.add_mixed_client(40, 41, 30);
  b.add_mixed_client(40, 42, 30);
  a.run_all(60000000);
  b.run_all(60000000);
  EXPECT_EQ(a.clients[0]->committed(), 40u);
  EXPECT_EQ(b.clients[0]->committed(), 40u);
}

TEST(ShardedSmr, GroupMetricsAreNamespaced) {
  ShardedFixture fx(2);
  fx.add_mixed_client(50, 51, 20);
  fx.run_all(60000000);
  ASSERT_TRUE(fx.clients[0]->done());
  // Each group counts its own encodes under group.<id>.*, so two groups in
  // one process never collide in the metrics registry.
  auto& metrics = fx.tracer.metrics();
  EXPECT_GT(metrics.counter("group.0.net.batch_encode_count").value(), 0u);
  EXPECT_GT(metrics.counter("group.1.net.batch_encode_count").value(), 0u);
  EXPECT_GT(metrics.counter("router.txns_total").value(), 0u);
}

}  // namespace
}  // namespace shadow::core
