// End-to-end tests of dynamic shard rebalancing (core/migrate.hpp): a
// TOB-ordered `::mig-split` freezes a key range, the receiving group pulls
// the frozen rows from any donor replica as a filtered v2 state-transfer
// stream, and a delivery-ordered `::mig-commit` atomically flips routing in
// every group's RoutingView — all under live transfer load, with the merged
// trace passing the full offline checker.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/migrate.hpp"
#include "core/shadowdb.hpp"
#include "db/sql.hpp"
#include "obs/checker.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

// Keys of `accounts mod 2 == 0` in [kLo, kHi) migrate from group 0 to 1.
constexpr std::int64_t kLo = 50;
constexpr std::int64_t kHi = 100;

struct MigrateFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  ShardedSmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{200, 0};

  explicit MigrateFixture(std::uint64_t seed = 1) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    ClusterOptions opts;
    opts.registry = registry;
    opts.tracer = &tracer;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    cluster = make_sharded_smr_cluster(world, opts, 2);
  }

  RangeSpec split_spec() const {
    RangeSpec spec;
    spec.mid = 1;
    spec.table = workload::bank::kTable;
    spec.lo = kLo;
    spec.hi = kHi;
    spec.from = 0;
    spec.to = 1;
    spec.donor = cluster.groups[0].replica_nodes[0];
    return spec;
  }

  /// Schedules an administrator that broadcasts the split into EVERY group's
  /// log, with unconditional rebroadcasts (TOB dedup collapses them).
  void broadcast_split_at(net::Time at, const RangeSpec& spec, int rebroadcasts = 6) {
    const NodeId admin = world.add_node("mig-admin");
    for (int i = 0; i < rebroadcasts; ++i) {
      world.schedule_timer_for_node(
          admin, at + static_cast<net::Time>(i) * 500000,
          [this, spec, admin](net::NodeContext& ctx) {
            workload::TxnRequest req = make_split_request(spec);
            req.reply_to = admin;
            for (GroupId g = 0; g < cluster.router->shard_count(); ++g) {
              tob::BroadcastBody body{
                  tob::Command{req.client, req.seq, workload::encode_request(req)}};
              ctx.send(cluster.router->tob_targets(g)[0],
                       net::make_msg(tob::kBroadcastHeader, std::move(body)));
            }
          });
    }
  }

  /// Transfers only (conserving, amount 1): adjacent pairs are cross-shard
  /// from the start; same-parity (k, k+2) pairs are single-shard under the
  /// base partition and straddle groups once exactly one endpoint migrates.
  DbClient& add_transfer_client(std::size_t txns, std::uint64_t seed) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.router = cluster.router.get();
    options.retry_conflict_aborts = true;
    options.txn_limit = txns;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    const auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(world, node, id, options, [rng, cfg]() {
      const auto from =
          static_cast<std::int64_t>(rng->next() % static_cast<std::uint64_t>(cfg.accounts - 2));
      const std::int64_t to = rng->next() % 2 == 0 ? from + 1 : from + 2;
      return std::make_pair(
          std::string(workload::bank::kTransferProc),
          workload::Params{db::Value(from), db::Value(to), db::Value(std::int64_t{1})});
    }));
    return *clients.back();
  }

  void run_all(net::Time limit) {
    for (auto& c : clients) c->start();
    world.run_until(limit);
  }

  /// Post-migration owner of `key`: the base partition with the one override
  /// the tests perform applied.
  GroupId owner_of(std::int64_t key) const {
    const GroupId base = cluster.router->shard_of_key(key);
    if (base == 0 && key >= kLo && key < kHi) return 1;
    return base;
  }

  /// Balance of `key` read from a live replica of its (post-flip) owner.
  std::int64_t owned_balance(std::int64_t key) {
    db::Engine& engine = live_engine(owner_of(key));
    const db::TxnId txn = engine.begin();
    const db::ExecResult r =
        engine.execute(txn, db::make_select(workload::bank::kTable, {db::Value(key)}));
    engine.commit(txn);
    EXPECT_TRUE(r.ok() && !r.rows.empty()) << "account " << key;
    return r.rows.empty() ? 0 : r.rows[0][2].as_int();
  }

  db::Engine& live_engine(GroupId g) {
    for (auto& r : cluster.groups[g].replicas) {
      if (r->active() && !world.crashed(r->node())) return r->engine();
    }
    ADD_FAILURE() << "no live replica in group " << g;
    return cluster.groups[g].replicas[0]->engine();
  }

  std::uint64_t metric(const std::string& name) {
    return tracer.metrics().counter(name).value();
  }

  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

TEST(ShardMigration, SplitRangeMovesKeysUnderLoad) {
  MigrateFixture fx(7);
  const std::int64_t initial_total = fx.bank.accounts * 1000;
  DbClient& a = fx.add_transfer_client(220, 101);
  DbClient& b = fx.add_transfer_client(220, 102);
  fx.broadcast_split_at(3000000, fx.split_spec());
  fx.run_all(300000000);
  ASSERT_TRUE(a.done());
  ASSERT_TRUE(b.done());
  EXPECT_EQ(a.committed() + b.committed(), 440u)
      << "frozen-range and epoch aborts must be retried to commitment";

  // The migration committed in every replica of both groups (2 active x 2
  // groups; a stale rebroadcast must never double-commit).
  EXPECT_EQ(fx.metric("mig.commits"), 4u);
  EXPECT_EQ(fx.metric("mig.buffer_miss"), 0u);
  // The donor kept forwarding base-routed traffic for the moved range.
  EXPECT_GT(fx.metric("mig.forwards"), 0u);

  // Conservation over the POST-FLIP owners: the moved rows live in group 1
  // at their donor-frozen-plus-later-writes values, and nowhere else served.
  std::int64_t total = 0;
  for (std::int64_t k = 0; k < fx.bank.accounts; ++k) total += fx.owned_balance(k);
  EXPECT_EQ(total, initial_total);

  // The donor dropped its copy of the moved rows at the flip.
  db::Engine& donor = fx.cluster.groups[0].replicas[0]->engine();
  const db::TxnId txn = donor.begin();
  const db::ExecResult gone =
      donor.execute(txn, db::make_select(workload::bank::kTable, {db::Value(std::int64_t{50})}));
  donor.commit(txn);
  EXPECT_TRUE(gone.ok() && gone.rows.empty()) << "moved row still present on the donor";

  // Replica agreement within each group, and the merged trace passes every
  // offline checker (total order, at-most-once, strict serializability,
  // durability, cross-shard atomicity).
  for (const ReplicationGroup& g : fx.cluster.groups) {
    EXPECT_EQ(g.replicas[0]->state_digest(), g.replicas[1]->state_digest()) << "group " << g.id;
  }
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 440u);
}

TEST(ShardMigration, DonorKilledMidTransferIsTakenOver) {
  MigrateFixture fx(13);
  const std::int64_t initial_total = fx.bank.accounts * 1000;
  DbClient& a = fx.add_transfer_client(180, 201);
  const RangeSpec spec = fx.split_spec();
  fx.broadcast_split_at(3000000, spec);
  // Kill the preferred donor right as the pull handshake starts: the
  // receivers rotate to the surviving donor replica (identical frozen
  // state), and the donor group's failure detector later promotes the spare,
  // which inherits the routing overrides through the snapshot rider.
  fx.world.schedule_timer_for_node(fx.world.add_node("killer"), 3030000,
                                   [&fx, spec](net::NodeContext&) {
                                     fx.world.crash(spec.donor);
                                   });
  fx.run_all(400000000);
  ASSERT_TRUE(a.done());
  EXPECT_EQ(a.committed(), 180u);

  EXPECT_GE(fx.metric("mig.commits"), 3u) << "both groups' survivors must commit the flip";
  EXPECT_EQ(fx.metric("mig.buffer_miss"), 0u);

  std::int64_t total = 0;
  for (std::int64_t k = 0; k < fx.bank.accounts; ++k) total += fx.owned_balance(k);
  EXPECT_EQ(total, initial_total);

  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
}

}  // namespace
}  // namespace shadow::core
