// ShardRouter unit suite: the partition function is a pure, rebalance-free
// function of the request — every client and replica must compute identical
// participant sets forever, because 2PC correctness and offline checkability
// both hang on that determinism.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "workload/bank.hpp"
#include "workload/messages.hpp"

namespace shadow::core {
namespace {

workload::TxnRequest make_req(const std::string& proc, workload::Params params) {
  workload::TxnRequest req;
  req.client = ClientId{1};
  req.seq = 1;
  req.proc = proc;
  req.params = std::move(params);
  return req;
}

TEST(ShardRouter, KeyToGroupIsStableAndCoversAllGroups) {
  ShardRouter router(4);
  std::vector<std::size_t> hits(4, 0);
  for (std::int64_t key = 0; key < 1000; ++key) {
    const GroupId g = router.shard_of_key(key);
    ASSERT_LT(g, 4u);
    ASSERT_EQ(g, router.shard_of_key(key)) << "unstable mapping for key " << key;
    ++hits[g];
  }
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(hits[g], 250u) << "modulo partition must balance a dense keyspace";
  }
}

TEST(ShardRouter, DeterministicAcrossIndependentInstances) {
  // Two routers built independently (as every process of a cluster does)
  // agree on every mapping — there is no hidden state to rebalance.
  ShardRouter a(3);
  ShardRouter b(3);
  a.install_default_extractors();
  b.install_default_extractors();
  for (std::int64_t key = 0; key < 500; ++key) {
    ASSERT_EQ(a.shard_of_key(key), b.shard_of_key(key));
  }
  for (std::int64_t from = 0; from < 60; ++from) {
    const auto req = make_req(std::string(workload::bank::kTransferProc),
                              {db::Value(from), db::Value(from + 7), db::Value(1)});
    ASSERT_EQ(a.shards_of(req), b.shards_of(req));
    ASSERT_EQ(a.coordinator_of(req), b.coordinator_of(req));
  }
}

TEST(ShardRouter, ParticipantSetsAreSortedDedupedAndCorrect) {
  ShardRouter router(2);
  router.install_default_extractors();

  // Single-shard: both accounts even → one participant.
  const auto same = make_req(std::string(workload::bank::kTransferProc),
                             {db::Value(2), db::Value(4), db::Value(1)});
  EXPECT_EQ(router.shards_of(same), (std::vector<GroupId>{0}));
  EXPECT_FALSE(router.cross_shard(same));

  // Cross-shard: adjacent accounts differ mod 2; participants sorted.
  const auto cross = make_req(std::string(workload::bank::kTransferProc),
                              {db::Value(3), db::Value(4), db::Value(1)});
  EXPECT_EQ(router.shards_of(cross), (std::vector<GroupId>{0, 1}));
  EXPECT_TRUE(router.cross_shard(cross));
  EXPECT_EQ(router.coordinator_of(cross), 0u);

  // Deposits are always single-shard.
  const auto dep =
      make_req(std::string(workload::bank::kDepositProc), {db::Value(5), db::Value(10)});
  EXPECT_EQ(router.shards_of(dep), (std::vector<GroupId>{1}));
  EXPECT_FALSE(router.cross_shard(dep));
}

TEST(ShardRouter, KeylessAndUnknownProceduresPinToGroupZero) {
  ShardRouter router(4);
  router.install_default_extractors();
  const auto audit = make_req(std::string(workload::bank::kAuditProc), {});
  EXPECT_EQ(router.shards_of(audit), (std::vector<GroupId>{0}));
  EXPECT_FALSE(router.cross_shard(audit));

  const auto unknown = make_req("not.registered", {db::Value(17)});
  EXPECT_EQ(router.shards_of(unknown), (std::vector<GroupId>{0}));
  EXPECT_EQ(router.coordinator_of(unknown), 0u);
}

TEST(ShardRouter, TpccStaysSingleWarehouseSingleShard) {
  ShardRouter router(4);
  router.install_default_extractors();
  for (std::int64_t w = 0; w < 16; ++w) {
    const auto req = make_req("tpcc.new_order", {db::Value(w), db::Value(1), db::Value(2)});
    const auto groups = router.shards_of(req);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], router.shard_of_key(w));
    EXPECT_FALSE(router.cross_shard(req));
  }
}

TEST(ShardRouter, RouteReturnsCoordinatorTargetsAndCounts) {
  ShardRouter router(2);
  router.install_default_extractors();
  const std::vector<NodeId> tob0 = {NodeId{10}, NodeId{11}};
  const std::vector<NodeId> tob1 = {NodeId{20}, NodeId{21}};
  router.set_group_targets(0, tob0, {NodeId{12}});
  router.set_group_targets(1, tob1, {NodeId{22}});

  const auto dep1 =
      make_req(std::string(workload::bank::kDepositProc), {db::Value(1), db::Value(5)});
  EXPECT_EQ(router.route(dep1), tob1);
  const auto cross = make_req(std::string(workload::bank::kTransferProc),
                              {db::Value(1), db::Value(2), db::Value(1)});
  EXPECT_EQ(router.route(cross), tob0);  // coordinator = first participant

  EXPECT_EQ(router.routed_count(), 2u);
  EXPECT_EQ(router.cross_shard_count(), 1u);
  EXPECT_DOUBLE_EQ(router.cross_shard_ratio(), 0.5);
}

TEST(ShardRouter, SingleShardDeploymentNeverCrosses) {
  ShardRouter router(1);
  router.install_default_extractors();
  for (std::int64_t from = 0; from < 32; ++from) {
    const auto req = make_req(std::string(workload::bank::kTransferProc),
                              {db::Value(from), db::Value(from + 1), db::Value(1)});
    EXPECT_FALSE(router.cross_shard(req));
    EXPECT_EQ(router.shards_of(req), (std::vector<GroupId>{0}));
  }
}

// ---- RangeOverride boundary semantics ---------------------------------------
// A migrated range is [lo, hi): the low bound MOVES with the range, the high
// bound STAYS. Off-by-one here silently splits ownership of a boundary key
// between donor and target — both would accept writes — so the exact
// boundary behavior gets its own tests.

TEST(RoutingView, OverrideLowBoundIsInclusive) {
  ShardRouter router(4);
  router.install_default_extractors();
  RoutingView view(&router);
  // Pick lo so the base owner is its shard; move [lo, lo+8) to group to.
  const std::int64_t lo = 12;
  const GroupId from = router.shard_of_key(lo);
  const GroupId to = (from + 1) % 4;
  view.install(RangeOverride{workload::bank::kTable, lo, lo + 8, from, to});
  EXPECT_EQ(view.shard_of(workload::bank::kTable, lo), to)
      << "key == lo is part of the migrated range";
}

TEST(RoutingView, OverrideHighBoundIsExclusive) {
  ShardRouter router(4);
  router.install_default_extractors();
  RoutingView view(&router);
  // lo and hi both base-owned by the same group (mod-4: 12 and 16 → g0), so
  // the hi assertion really exercises the bound, not the from-filter.
  const std::int64_t lo = 12;
  const std::int64_t hi = 16;
  const GroupId from = router.shard_of_key(lo);
  ASSERT_EQ(router.shard_of_key(hi), from);
  const GroupId to = (from + 1) % 4;
  view.install(RangeOverride{workload::bank::kTable, lo, hi, from, to});
  EXPECT_EQ(view.shard_of(workload::bank::kTable, hi), from)
      << "key == hi stays with its base owner even though `from` owns it";
  EXPECT_EQ(view.shard_of(workload::bank::kTable, lo), to)
      << "the from-owned key inside [lo, hi) moves";
  EXPECT_EQ(view.shard_of(workload::bank::kTable, lo - 4), from)
      << "the from-owned key just below the range stays";
}

TEST(RoutingView, OverrideOnlyMovesKeysOwnedByFrom) {
  ShardRouter router(4);
  router.install_default_extractors();
  RoutingView view(&router);
  // The range [0, 8) spans keys of all four mod-4 base owners; an override
  // naming from=g0 must move only g0's keys inside it.
  view.install(RangeOverride{workload::bank::kTable, 0, 8, 0, 2});
  for (std::int64_t k = 0; k < 8; ++k) {
    const GroupId base = router.shard_of_key(k);
    const GroupId expect = base == 0 ? 2 : base;
    EXPECT_EQ(view.shard_of(workload::bank::kTable, k), expect) << "key " << k;
  }
}

TEST(RoutingView, ChainedOverridesApplyInInstallOrder) {
  ShardRouter router(4);
  router.install_default_extractors();
  RoutingView view(&router);
  const std::int64_t lo = 8;  // base owner g0 under mod-4
  ASSERT_EQ(router.shard_of_key(lo), 0u);
  view.install(RangeOverride{workload::bank::kTable, lo, lo + 4, 0, 1});
  view.install(RangeOverride{workload::bank::kTable, lo, lo + 4, 1, 3});
  EXPECT_EQ(view.shard_of(workload::bank::kTable, lo), 3u)
      << "a re-migrated range follows the full override chain";
  EXPECT_EQ(view.epoch(), 2u);
}

TEST(RoutingView, OverridesAreScopedToTheirTable) {
  ShardRouter router(4);
  router.install_default_extractors();
  RoutingView view(&router);
  const std::int64_t lo = 12;
  const GroupId from = router.shard_of_key(lo);
  view.install(RangeOverride{"warehouse", lo, lo + 8, from, (from + 1) % 4});
  EXPECT_EQ(view.shard_of(workload::bank::kTable, lo), from)
      << "an override on another table must not move this one's keys";
}

}  // namespace
}  // namespace shadow::core
