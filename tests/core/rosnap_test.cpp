// End-to-end tests of the lock-free read-only snapshot path (core/rosnap.*):
// cross-shard reads pick a consistent per-group version cut via the ro-snap
// exchange and execute against version history without ever touching the
// lock manager, concurrent transfers stay atomic under observation, session
// floors give read-your-writes and monotonic reads, and the offline checker
// verifies every recorded cut against the committed 2PC positions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/shadowdb.hpp"
#include "db/sql.hpp"
#include "obs/checker.hpp"
#include "sim/world.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct RoFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  ShardedSmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{200, 0};

  explicit RoFixture(std::size_t shards, std::uint64_t seed = 1, ClusterOptions opts = {})
      : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    if (!opts.loader) {
      opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    }
    cluster = make_sharded_smr_cluster(world, opts, shards);
  }

  DbClient& add_client(std::size_t txns, DbClient::NextTxnFn next) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.router = cluster.router.get();
    options.retry_conflict_aborts = true;
    options.txn_limit = txns;
    options.tracer = &tracer;
    clients.push_back(std::make_unique<DbClient>(world, node, id, options, std::move(next)));
    return *clients.back();
  }

  void run_all(net::Time limit) {
    for (auto& c : clients) c->start();
    world.run_until(limit);
  }

  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

workload::Params two_keys(std::int64_t a, std::int64_t b) {
  return workload::Params{db::Value(a), db::Value(b)};
}

/// Transfers move money strictly within disjoint account pairs (2k, 2k+1)
/// while readers snapshot-read exactly those pairs: every balance2 answer
/// must sum to the pair's invariant 2000. A torn read — debit applied on one
/// shard, credit not yet visible on the other — would break the sum. With 2
/// shards, accounts 2k and 2k+1 always live on different groups, so every
/// transfer is cross-shard 2PC and every pair read is a cross-shard cut.
TEST(RoSnap, CrossShardSnapshotReadsObserveTransfersAtomically) {
  RoFixture fx(2);
  auto wrng = std::make_shared<Rng>(7);
  const auto cfg = fx.bank;
  DbClient& writer = fx.add_client(150, [wrng, cfg]() {
    const std::int64_t pair =
        static_cast<std::int64_t>(wrng->next() % static_cast<std::uint64_t>(cfg.accounts / 2));
    const bool flip = wrng->next() % 2 == 0;
    const std::int64_t from = 2 * pair + (flip ? 1 : 0);
    const std::int64_t to = 2 * pair + (flip ? 0 : 1);
    return std::make_pair(std::string(workload::bank::kTransferProc),
                          workload::Params{db::Value(from), db::Value(to),
                                           db::Value(std::int64_t{1})});
  });
  auto rrng = std::make_shared<Rng>(8);
  DbClient& reader = fx.add_client(150, [rrng, cfg]() {
    const std::int64_t pair =
        static_cast<std::int64_t>(rrng->next() % static_cast<std::uint64_t>(cfg.accounts / 2));
    return std::make_pair(std::string(workload::bank::kBalance2Proc),
                          two_keys(2 * pair, 2 * pair + 1));
  });
  std::size_t pair_sums_checked = 0;
  reader.set_response_hook([&](const workload::TxnResponse& resp) {
    if (!resp.committed) return;
    ASSERT_EQ(resp.rows.size(), 2u) << "balance2 returns one row per account";
    const std::int64_t sum = resp.rows[0][2].as_int() + resp.rows[1][2].as_int();
    EXPECT_EQ(sum, 2000) << "torn snapshot: pair invariant broken";
    ++pair_sums_checked;
  });
  fx.run_all(240000000);
  ASSERT_TRUE(writer.done());
  ASSERT_TRUE(reader.done());
  EXPECT_EQ(writer.committed(), 150u);
  EXPECT_EQ(reader.committed(), 150u);
  EXPECT_EQ(reader.ro_committed(), 150u) << "every pair read must take the snapshot path";
  EXPECT_EQ(reader.conflict_retries(), 0u)
      << "snapshot reads never touch the lock manager, so they cannot conflict";
  EXPECT_GT(pair_sums_checked, 0u);

  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_GT(check.ro_cuts_checked, 0u) << "checker must have real cuts to examine";
}

/// Read-your-writes across the 2PC/RO boundary: a client that just committed
/// a cross-shard transfer must observe it in its own immediately-following
/// snapshot read (session floors force the cut past the commit position).
TEST(RoSnap, ReadYourWritesAcrossCommitThenSnapshotRead) {
  RoFixture fx(2);
  // deposit(0, +5), transfer(0 -> 1, 3), then read the pair: the read MUST
  // see 1000+5-3 = 1002 / 1000+3 = 1003, not any earlier version.
  auto step = std::make_shared<int>(0);
  DbClient& client = fx.add_client(30, [step]() {
    const int s = (*step)++ % 3;
    if (s == 0) {
      return std::make_pair(std::string(workload::bank::kDepositProc),
                            workload::Params{db::Value(std::int64_t{0}),
                                             db::Value(std::int64_t{5})});
    }
    if (s == 1) {
      return std::make_pair(std::string(workload::bank::kTransferProc),
                            workload::Params{db::Value(std::int64_t{0}),
                                             db::Value(std::int64_t{1}),
                                             db::Value(std::int64_t{3})});
    }
    return std::make_pair(std::string(workload::bank::kBalance2Proc), two_keys(0, 1));
  });
  std::int64_t expected0 = 1000;
  std::int64_t expected1 = 1000;
  std::size_t reads_checked = 0;
  client.set_response_hook([&](const workload::TxnResponse& resp) {
    if (!resp.committed) return;
    if (resp.rows.size() == 2) {  // the balance2 answer of this round
      expected0 += 5 - 3;
      expected1 += 3;
      EXPECT_EQ(resp.rows[0][2].as_int(), expected0)
          << "snapshot read missed the client's own committed writes";
      EXPECT_EQ(resp.rows[1][2].as_int(), expected1);
      ++reads_checked;
    }
  });
  fx.run_all(120000000);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 30u);
  EXPECT_EQ(reads_checked, 10u);
  EXPECT_EQ(client.ro_committed(), 10u);
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
}

/// Single-shard reads skip the snap exchange entirely (one versioned read at
/// the replica's current state) and still count as snapshot-path commits.
TEST(RoSnap, SingleShardReadsSkipSnapExchange) {
  RoFixture fx(2);
  auto rng = std::make_shared<Rng>(9);
  const auto cfg = fx.bank;
  DbClient& reader = fx.add_client(50, [rng, cfg]() {
    const auto key =
        static_cast<std::int64_t>(rng->next() % static_cast<std::uint64_t>(cfg.accounts));
    return std::make_pair(std::string(workload::bank::kBalanceProc),
                          workload::Params{db::Value(key)});
  });
  std::size_t rows_seen = 0;
  reader.set_response_hook([&](const workload::TxnResponse& resp) {
    if (!resp.committed) return;
    ASSERT_EQ(resp.rows.size(), 1u);
    EXPECT_EQ(resp.rows[0][2].as_int(), 1000) << "loader seeds every account with 1000";
    ++rows_seen;
  });
  fx.run_all(60000000);
  ASSERT_TRUE(reader.done());
  EXPECT_EQ(reader.committed(), 50u);
  EXPECT_EQ(reader.ro_committed(), 50u);
  EXPECT_EQ(rows_seen, 50u);
  // Single-shard cuts have one group: the checker records no cross-shard cut.
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.ro_cuts_checked, 0u);
}

/// bank.audit scans every group at the cut and returns one sum row per
/// group; under a transfer-only workload the global total is invariant, so
/// the per-group sums must always add up to accounts * 1000.
TEST(RoSnap, CrossShardAuditSumsAreConservedUnderTransfers) {
  RoFixture fx(3);
  const std::int64_t total = fx.bank.accounts * 1000;
  auto wrng = std::make_shared<Rng>(17);
  const auto cfg = fx.bank;
  DbClient& writer = fx.add_client(120, [wrng, cfg]() {
    const auto from =
        static_cast<std::int64_t>(wrng->next() % static_cast<std::uint64_t>(cfg.accounts));
    return std::make_pair(std::string(workload::bank::kTransferProc),
                          workload::Params{db::Value(from),
                                           db::Value((from + 1) % cfg.accounts),
                                           db::Value(std::int64_t{1})});
  });
  DbClient& auditor = fx.add_client(40, []() {
    return std::make_pair(std::string(workload::bank::kAuditProc), workload::Params{});
  });
  std::size_t audits_checked = 0;
  auditor.set_response_hook([&](const workload::TxnResponse& resp) {
    if (!resp.committed) return;
    ASSERT_EQ(resp.rows.size(), 3u) << "one sum row per group";
    std::int64_t sum = 0;
    for (const db::Row& row : resp.rows) {
      ASSERT_EQ(row.size(), 1u);
      sum += row[0].as_int();
    }
    EXPECT_EQ(sum, total) << "audit cut tore a transfer apart";
    ++audits_checked;
  });
  fx.run_all(240000000);
  ASSERT_TRUE(writer.done());
  ASSERT_TRUE(auditor.done());
  EXPECT_EQ(auditor.ro_committed(), 40u);
  EXPECT_EQ(audits_checked, 40u);
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_GT(check.ro_cuts_checked, 0u);
}

}  // namespace
}  // namespace shadow::core
