// End-to-end tests of ShadowDB-SMR: ordered execution through the broadcast
// service, first-answer semantics, at-most-once, crash transparency, and
// reconfiguration with snapshot state transfer.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct SmrFixture {
  sim::World world;
  // Every test records a full trace; tests assert the offline checker's
  // verdict (total order, at-most-once, strict serializability) post-run.
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  SmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{1000, 0};

  explicit SmrFixture(std::uint64_t seed = 1, ClusterOptions opts = {}) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    if (!opts.loader) {
      opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    }
    cluster = make_smr_cluster(world, opts);
  }

  DbClient& add_client(std::size_t txns, std::uint64_t seed) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.targets = cluster.broadcast_targets();
    options.txn_limit = txns;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(
        world, node, id, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        }));
    return *clients.back();
  }

  void run_all(net::Time limit) {
    for (auto& c : clients) c->start();
    world.run_until(limit);
  }

  /// Replays the recorded trace through the offline checker.
  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

TEST(ShadowDbSmr, ExecutesTransactionsOnAllReplicas) {
  SmrFixture fx;
  DbClient& client = fx.add_client(50, 99);
  fx.run_all(60000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 50u);
  // Both active replicas executed every transaction.
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 50u);
  EXPECT_EQ(fx.cluster.replicas[1]->executed(), 50u);
  // Deterministic sequential execution leaves identical states.
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());

  // The offline checker agrees, with non-vacuous coverage — and its verdict
  // survives a JSONL export / re-parse round trip of the trace.
  const obs::CheckResult direct = fx.check();
  EXPECT_TRUE(direct.ok()) << direct.summary();
  EXPECT_GE(direct.replicas_checked, 2u);
  EXPECT_GE(direct.committed_txns_checked, 50u);

  const std::string path = ::testing::TempDir() + "smr_e2e_trace.jsonl";
  obs::export_jsonl_file(fx.tracer.snapshot(), path);
  const obs::Trace reparsed = obs::parse_jsonl_file(path);
  const obs::CheckResult parsed_check = obs::check_trace(reparsed);
  EXPECT_TRUE(parsed_check.ok()) << parsed_check.summary();
  EXPECT_EQ(parsed_check.executions_checked, direct.executions_checked);
  EXPECT_EQ(parsed_check.committed_txns_checked, direct.committed_txns_checked);
}

TEST(ShadowDbSmr, DiverseEnginesConverge) {
  // Default cluster deploys H2-like and HSQLDB-like replicas; digests must
  // still agree (the N-version-programming bet of Sec. III-C).
  SmrFixture fx(7);
  fx.add_client(100, 3);
  fx.add_client(100, 4);
  fx.run_all(120000000);
  for (auto& c : fx.clients) ASSERT_TRUE(c->done());
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());
}

TEST(ShadowDbSmr, ReplicaCrashIsTransparent) {
  SmrFixture fx;
  DbClient& client = fx.add_client(200, 5);
  client.start();
  fx.world.run_until(100000);
  // Crash one database replica mid-run: "the protocol proceeds normally
  // with no interruptions as long as at least one replica survives."
  fx.world.crash(fx.cluster.replica_nodes[1]);
  fx.world.run_until(300000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 200u);
  EXPECT_EQ(client.retries(), 0u) << "a replica crash must not even cause retries";
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 200u);
}

TEST(ShadowDbSmr, AtMostOnceUnderClientRetries) {
  // Aggressive client timeout forces resends; dedup must keep execution
  // exactly-once per sequence number.
  ClusterOptions opts;
  SmrFixture fx(3, opts);
  const ClientId id{77};
  const NodeId node = fx.world.add_node("retry-client");
  DbClient::Options options;
  options.mode = DbClient::Mode::kTob;
  options.targets = fx.cluster.broadcast_targets();
  options.txn_limit = 40;
  options.retry_timeout = 30000;  // 30 ms: shorter than some commit latencies
  auto rng = std::make_shared<Rng>(17);
  auto cfg = fx.bank;
  DbClient client(fx.world, node, id, options, [rng, cfg]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, cfg));
  });
  client.start();
  fx.world.run_until(120000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 40u);
  // Despite retries, each deposit applied exactly once.
  auto* replica = fx.cluster.replicas[0].get();
  EXPECT_EQ(replica->executed(), 40u);
  // The trace-level at-most-once invariant holds despite the resends.
  const obs::CheckResult check = obs::check_trace(fx.tracer.snapshot());
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(ShadowDbSmr, ReconfigurationBringsInSpareViaSnapshot) {
  ClusterOptions opts;
  opts.smr.suspect_timeout = 3000000;  // 3 s detection for a faster test
  SmrFixture fx(11, opts);
  DbClient& client = fx.add_client(400, 23);
  client.start();
  fx.world.run_until(200000);
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(600000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 400u);
  // The spare (replica 2) was activated and caught up to the survivor.
  EXPECT_TRUE(fx.cluster.replicas[2]->active());
  EXPECT_EQ(fx.cluster.replicas[1]->state_digest(), fx.cluster.replicas[2]->state_digest());
  // The checker excludes the crashed replica from order agreement but still
  // demands durability of every answered transaction on the survivors.
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 400u);
}

TEST(ShadowDbSmr, BankBalancePreservedAcrossCrash) {
  SmrFixture fx(13);
  DbClient& client = fx.add_client(150, 29);
  client.start();
  fx.world.run_until(150000);
  fx.world.crash(fx.cluster.replica_nodes[1]);
  fx.world.run_until(300000000);
  ASSERT_TRUE(client.done());
  // Conservation: total balance == initial + all committed deposits, and the
  // survivor reflects every answered transaction (durability).
  EXPECT_EQ(client.committed(), 150u);
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 150u);
}

}  // namespace
}  // namespace shadow::core
