// Chain replication tests (extension module): head/tail routing, pipelined
// update flow, tail-read consistency, and crash recovery at each chain
// position via the TOB-agreed reconfiguration.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct ChainFixture {
  sim::World world;
  ChainCluster cluster;
  workload::bank::BankConfig bank{500, 0};
  std::int64_t generated_total = 0;

  explicit ChainFixture(std::uint64_t seed = 1, std::size_t chain_len = 3,
                        net::Time suspect_timeout = 2000000)
      : world(seed) {
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    ClusterOptions opts;
    opts.registry = registry;
    opts.machines = chain_len + 1;
    opts.db_replicas = chain_len;
    opts.db_spares = 1;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    ChainConfig chain_config;
    chain_config.suspect_timeout = suspect_timeout;
    chain_config.hb_period = 400000;
    chain_config.read_only_procs = {workload::bank::kBalanceProc,
                                    workload::bank::kAuditProc};
    cluster = make_chain_cluster(world, opts, chain_config);
  }

  std::unique_ptr<DbClient> make_client(ClientId id, std::size_t txns,
                                        double read_fraction = 0.0) {
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kDirect;
    options.targets = cluster.request_targets();
    options.txn_limit = txns;
    options.retry_timeout = 1000000;
    auto rng = std::make_shared<Rng>(id.value * 97 + 3);
    auto cfg = bank;
    return std::make_unique<DbClient>(
        world, node, id, options, [this, rng, cfg, read_fraction]() {
          if (rng->uniform01() < read_fraction) {
            return std::make_pair(
                std::string(workload::bank::kBalanceProc),
                workload::Params{db::Value(static_cast<std::int64_t>(
                    rng->uniform(0, static_cast<std::uint64_t>(cfg.accounts - 1))))});
          }
          auto params = workload::bank::make_deposit(*rng, cfg);
          generated_total += params[1].as_int();
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                std::move(params));
        });
  }
};

TEST(ChainReplication, UpdatesFlowHeadToTailAndTailAnswers) {
  ChainFixture fx;
  auto client = fx.make_client(ClientId{1}, 50);
  client->start();
  fx.world.run_until(60000000);
  ASSERT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 50u);
  // Every chain member executed every update, in order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fx.cluster.replicas[i]->executed(), 50u) << "position " << i;
  }
  EXPECT_TRUE(fx.cluster.replicas[0]->is_head());
  EXPECT_TRUE(fx.cluster.replicas[2]->is_tail());
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[2]->state_digest());
}

TEST(ChainReplication, ReadsAreServedByTheTail) {
  ChainFixture fx;
  auto client = fx.make_client(ClientId{1}, 60, /*read_fraction=*/0.5);
  client->start();
  fx.world.run_until(120000000);
  ASSERT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 60u);
  // The tail executed everything (updates + reads); the head only updates.
  EXPECT_GT(fx.cluster.replicas[2]->executed(), fx.cluster.replicas[0]->executed());
}

TEST(ChainReplication, AnsweredUpdateIsInEveryReplica) {
  // Chain's durability is stronger than PBR's: the tail answers only after
  // the update passed through the whole chain.
  ChainFixture fx;
  auto client = fx.make_client(ClientId{1}, 40);
  client->start();
  fx.world.run_until(60000000);
  ASSERT_TRUE(client->done());
  const std::int64_t expected = 1000 * fx.bank.accounts + fx.generated_total;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(workload::bank::total_balance(fx.cluster.replicas[i]->engine()), expected);
  }
}

class ChainCrashTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainCrashTest, RecoversFromCrashAtAnyPosition) {
  const std::size_t victim = GetParam();
  ChainFixture fx(11 + victim);
  auto client = fx.make_client(ClientId{1}, 250);
  client->start();
  fx.world.run_until(150000);
  fx.world.crash(fx.cluster.replica_nodes[victim]);
  fx.world.run_until(900000000);
  ASSERT_TRUE(client->done()) << "committed " << client->committed();
  EXPECT_EQ(client->committed(), 250u);

  // The new chain: old members minus the victim, spare appended at the tail.
  const std::int64_t expected = 1000 * fx.bank.accounts + fx.generated_total;
  std::size_t verified = 0;
  for (std::size_t i = 0; i < fx.cluster.replicas.size(); ++i) {
    if (fx.world.crashed(fx.cluster.replica_nodes[i])) continue;
    auto& replica = *fx.cluster.replicas[i];
    const auto& chain = replica.chain();
    if (std::find(chain.begin(), chain.end(), fx.cluster.replica_nodes[i]) == chain.end()) {
      continue;
    }
    EXPECT_EQ(replica.config_seq(), 1u);
    EXPECT_EQ(workload::bank::total_balance(replica.engine()), expected)
        << "replica " << i;
    ++verified;
  }
  EXPECT_EQ(verified, 3u);  // two survivors + the activated spare
}

std::string position_name(const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* names[] = {"head", "middle", "tail"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Positions, ChainCrashTest, ::testing::Values(0u, 1u, 2u),
                         position_name);

TEST(ChainReplication, NoAckTrafficInNormalCase) {
  // Structural property: the chain answers from the tail without any
  // up-chain acknowledgements (count messages by header).
  ChainFixture fx;
  struct Counter final : sim::WorldObserver {
    std::map<std::string, int> sends;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      ++sends[m.header];
    }
  } counter;
  fx.world.add_observer(&counter);
  auto client = fx.make_client(ClientId{1}, 30);
  client->start();
  fx.world.run_until(60000000);
  ASSERT_TRUE(client->done());
  EXPECT_EQ(counter.sends["repl-fwd"], 2 * 30);  // head→mid, mid→tail per txn
  EXPECT_EQ(counter.sends["pbr-ack"], 0);
  EXPECT_EQ(counter.sends["chain-recovered"], 0);
}

}  // namespace
}  // namespace shadow::core
