// End-to-end tests of ShadowDB-PBR: the hand-written normal case, redirects,
// at-most-once, the TOB-driven seven-step recovery, catch-up vs snapshot
// state transfer, and the paper's Durability and State-agreement properties.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct PbrFixture {
  sim::World world;
  // Every test records a full trace; tests assert the offline checker's
  // verdict (total order, at-most-once, strict serializability) post-run.
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  PbrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{1000, 0};

  explicit PbrFixture(std::uint64_t seed = 1, ClusterOptions opts = {}) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    // The paper runs the broadcast service interpreted with PBR (recovery
    // traffic only); tests keep that configuration.
    opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
    if (!opts.loader) {
      opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    }
    cluster = make_pbr_cluster(world, opts);
  }

  DbClient& add_client(std::size_t txns, std::uint64_t seed,
                       net::Time retry_timeout = 2000000) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kDirect;
    options.targets = cluster.request_targets();
    options.txn_limit = txns;
    options.retry_timeout = retry_timeout;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(
        world, node, id, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        }));
    return *clients.back();
  }

  /// Replays the recorded trace through the offline checker.
  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

TEST(ShadowDbPbr, NormalCaseCommitsOnPrimaryAndBackup) {
  PbrFixture fx;
  DbClient& client = fx.add_client(60, 99);
  client.start();
  fx.world.run_until(60000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 60u);
  EXPECT_TRUE(fx.cluster.replicas[0]->is_primary());
  // Primary and backup executed everything; identical states.
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 60u);
  EXPECT_EQ(fx.cluster.replicas[1]->executed(), 60u);
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());

  // The offline checker agrees, with non-vacuous coverage — and its verdict
  // survives a JSONL export / re-parse round trip of the trace.
  const obs::CheckResult direct = fx.check();
  EXPECT_TRUE(direct.ok()) << direct.summary();
  EXPECT_GE(direct.replicas_checked, 2u);
  EXPECT_EQ(direct.committed_txns_checked, 60u);

  const std::string path = ::testing::TempDir() + "pbr_e2e_trace.jsonl";
  obs::export_jsonl_file(fx.tracer.snapshot(), path);
  const obs::CheckResult parsed_check = obs::check_trace(obs::parse_jsonl_file(path));
  EXPECT_TRUE(parsed_check.ok()) << parsed_check.summary();
  EXPECT_EQ(parsed_check.executions_checked, direct.executions_checked);
}

TEST(ShadowDbPbr, BackupRedirectsClientsToPrimary) {
  PbrFixture fx;
  const ClientId id{5};
  const NodeId node = fx.world.add_node("client5");
  DbClient::Options options;
  options.mode = DbClient::Mode::kDirect;
  // Deliberately aim at the backup first.
  options.targets = {fx.cluster.replica_nodes[1], fx.cluster.replica_nodes[0]};
  options.txn_limit = 5;
  auto rng = std::make_shared<Rng>(3);
  auto cfg = fx.bank;
  DbClient client(fx.world, node, id, options, [rng, cfg]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, cfg));
  });
  client.start();
  fx.world.run_until(30000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 5u);
  EXPECT_GE(client.retries(), 1u);  // first contact was redirected
}

TEST(ShadowDbPbr, AtMostOnceUnderAggressiveRetries) {
  PbrFixture fx(17);
  DbClient& client = fx.add_client(50, 21, /*retry_timeout=*/500);  // 0.5 ms
  client.start();
  fx.world.run_until(120000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 50u);
  EXPECT_GT(client.retries(), 0u);
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 50u) << "duplicates must be no-ops";
  // Resent requests surface as dedup-table answers in the trace, never as
  // second executions.
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 50u);
}

TEST(ShadowDbPbr, PrimaryCrashRecoversViaSpare) {
  ClusterOptions opts;
  opts.pbr.suspect_timeout = 2000000;  // 2 s detection for test speed
  opts.pbr.hb_period = 400000;
  PbrFixture fx(23, opts);
  DbClient& client = fx.add_client(300, 31);
  client.start();
  fx.world.run_until(150000);  // mid-run: plenty of transactions still queued
  // Crash the primary: the backup must detect it, reconfigure through the
  // broadcast service, become primary, and bring in the spare via snapshot.
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(900000000);
  EXPECT_TRUE(client.done()) << "committed " << client.committed();
  EXPECT_EQ(client.committed(), 300u);
  EXPECT_TRUE(fx.cluster.replicas[1]->is_primary());
  EXPECT_EQ(fx.cluster.replicas[1]->config_seq(), 1u);
  // State-agreement: the new configuration's replicas agree.
  EXPECT_EQ(fx.cluster.replicas[1]->state_digest(), fx.cluster.replicas[2]->state_digest());
  // The crashed primary's unacknowledged suffix is excluded from order
  // agreement; every answered transaction must still be durable and the
  // survivors' execution orders must still respect real time.
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 300u);
}

TEST(ShadowDbPbr, BackupCrashRecoversWithCatchupOrSnapshot) {
  ClusterOptions opts;
  opts.pbr.suspect_timeout = 2000000;
  opts.pbr.hb_period = 400000;
  PbrFixture fx(29, opts);
  DbClient& client = fx.add_client(300, 37);
  client.start();
  fx.world.run_until(150000);
  fx.world.crash(fx.cluster.replica_nodes[1]);
  fx.world.run_until(900000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 300u);
  // Old primary stays primary (it has the longest log).
  EXPECT_TRUE(fx.cluster.replicas[0]->is_primary());
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[2]->state_digest());
}

TEST(ShadowDbPbr, DurabilityAcrossPrimaryCrash) {
  // Durability: "Once a client receives a transaction's answer, the
  // execution of this transaction is permanently reflected in the state of
  // the surviving replicas." Deposits answered before the crash must be in
  // the survivors' balance total exactly once.
  ClusterOptions opts;
  opts.pbr.suspect_timeout = 2000000;
  opts.pbr.hb_period = 400000;
  PbrFixture fx(31, opts);

  std::int64_t generated_total = 0;
  const ClientId id{9};
  const NodeId node = fx.world.add_node("client9");
  DbClient::Options options;
  options.mode = DbClient::Mode::kDirect;
  options.targets = fx.cluster.request_targets();
  options.txn_limit = 500;
  auto rng = std::make_shared<Rng>(41);
  auto cfg = fx.bank;
  DbClient client(fx.world, node, id, options, [rng, cfg, &generated_total]() {
    auto params = workload::bank::make_deposit(*rng, cfg);
    generated_total += params[1].as_int();
    return std::make_pair(std::string(workload::bank::kDepositProc), std::move(params));
  });
  client.start();
  fx.world.run_until(200000);
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(900000000);
  ASSERT_TRUE(client.done());
  ASSERT_EQ(client.committed(), 500u);

  // State-agreement across the new configuration:
  ASSERT_EQ(fx.cluster.replicas[1]->state_digest(), fx.cluster.replicas[2]->state_digest());
  // Conservation: every answered deposit applied exactly once, despite
  // client retries with the same sequence numbers (at-most-once).
  const std::int64_t initial = 1000 * fx.bank.accounts;
  EXPECT_EQ(workload::bank::total_balance(fx.cluster.replicas[1]->engine()),
            initial + generated_total);
}

TEST(ShadowDbPbr, NoFalseRecoveryWithoutFailures) {
  ClusterOptions opts;
  opts.pbr.suspect_timeout = 1500000;
  opts.pbr.hb_period = 300000;
  PbrFixture fx(37, opts);
  DbClient& client = fx.add_client(100, 43);
  client.start();
  fx.world.run_until(120000000);
  EXPECT_TRUE(client.done());
  EXPECT_EQ(fx.cluster.replicas[0]->config_seq(), 0u)
      << "heartbeats must prevent spurious reconfigurations";
}

}  // namespace
}  // namespace shadow::core
