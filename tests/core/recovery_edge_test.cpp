// Edge cases of the recovery procedures: "If failures occur during recovery,
// the procedure is restarted" (Sec. III-A step 7), double crashes, catch-up
// vs snapshot selection, and recovery under continuous client load.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct Fixture {
  sim::World world;
  PbrCluster cluster;
  workload::bank::BankConfig bank{600, 0};
  std::int64_t generated_total = 0;
  std::unique_ptr<DbClient> client;

  explicit Fixture(std::uint64_t seed, std::size_t replicas = 2, std::size_t spares = 2)
      : world(seed) {
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    ClusterOptions opts;
    opts.registry = registry;
    opts.machines = replicas + spares;
    opts.db_replicas = replicas;
    opts.db_spares = spares;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    opts.pbr.suspect_timeout = 1500000;
    opts.pbr.hb_period = 300000;
    cluster = make_pbr_cluster(world, opts);

    const NodeId node = world.add_node("client");
    DbClient::Options copts;
    copts.mode = DbClient::Mode::kDirect;
    copts.targets = cluster.request_targets();
    copts.txn_limit = 300;
    copts.retry_timeout = 700000;
    auto rng = std::make_shared<Rng>(seed * 7 + 1);
    auto cfg = bank;
    client = std::make_unique<DbClient>(world, node, ClientId{1}, copts,
                                        [this, rng, cfg]() {
                                          auto params = workload::bank::make_deposit(*rng, cfg);
                                          generated_total += params[1].as_int();
                                          return std::make_pair(
                                              std::string(workload::bank::kDepositProc),
                                              std::move(params));
                                        });
  }

  std::int64_t expected_total() const { return 1000 * bank.accounts + generated_total; }
};

TEST(RecoveryEdge, SecondCrashAfterRecoveryPreservesDurability) {
  // Sequential failures, each within the f=1 budget of its configuration:
  // crash the primary, let the recovery complete, then crash the new
  // primary. Every answered transaction must survive into configuration 2.
  Fixture fx(3);
  fx.client->start();
  fx.world.run_until(100000);
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(8000000);  // recovery 1 completes; the client finishes
  ASSERT_TRUE(fx.client->done());
  ASSERT_EQ(fx.client->committed(), 300u);
  fx.world.crash(fx.cluster.replica_nodes[1]);  // the config-1 primary
  fx.world.run_until(1200000000);

  ConfigSeq latest = 0;
  for (std::size_t i = 2; i < fx.cluster.replicas.size(); ++i) {
    latest = std::max(latest, fx.cluster.replicas[i]->config_seq());
  }
  EXPECT_GE(latest, 2u) << "the recovery procedure must run again";
  EXPECT_EQ(workload::bank::total_balance(fx.cluster.replicas[2]->engine()),
            fx.expected_total());
  EXPECT_EQ(fx.cluster.replicas[2]->state_digest(), fx.cluster.replicas[3]->state_digest());
}

TEST(RecoveryEdge, SecondCrashDuringRecoveryStillRestoresAvailability) {
  // "If failures occur during recovery, the procedure is restarted." Here
  // the second crash lands *inside* the first recovery, killing both
  // replicas that held the committed data — beyond the f=1 budget, so
  // durability of already-answered transactions is not guaranteed. What the
  // protocol does promise is that the procedure restarts, the spares take
  // over, and the service becomes available again (clients complete).
  Fixture fx(3);
  fx.client->start();
  fx.world.run_until(100000);
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(1800000);  // suspicion fired, recovery under way
  fx.world.crash(fx.cluster.replica_nodes[1]);
  fx.world.run_until(1200000000);

  ASSERT_TRUE(fx.client->done()) << "committed " << fx.client->committed();
  EXPECT_EQ(fx.client->committed(), 300u);
  ConfigSeq latest = 0;
  for (std::size_t i = 2; i < fx.cluster.replicas.size(); ++i) {
    latest = std::max(latest, fx.cluster.replicas[i]->config_seq());
  }
  EXPECT_GE(latest, 2u);
  // The new configuration's members agree with each other (state-agreement
  // holds per configuration even when durability across >f failures can't).
  EXPECT_EQ(fx.cluster.replicas[2]->state_digest(), fx.cluster.replicas[3]->state_digest());
}

TEST(RecoveryEdge, CatchupUsedWhenCacheCovers) {
  // A freshly-started spare has sequence 0; with a cache larger than the
  // executed history, the new primary must use catch-up, not a snapshot.
  Fixture fx(5);
  struct Counter final : sim::WorldObserver {
    int catchups = 0;
    int snapshots = 0;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == kPbrCatchupHeader) ++catchups;
      if (m.header == kPbrSnapBeginHeader) ++snapshots;
    }
  } counter;
  fx.world.add_observer(&counter);
  fx.client->start();
  fx.world.run_until(100000);
  fx.world.crash(fx.cluster.replica_nodes[0]);
  fx.world.run_until(600000000);
  ASSERT_TRUE(fx.client->done());
  EXPECT_GT(counter.catchups, 0);
  EXPECT_EQ(counter.snapshots, 0) << "cache covered the gap; no snapshot needed";
}

TEST(RecoveryEdge, SnapshotUsedWhenCacheTooSmall) {
  sim::World world(7);
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{600, 0};
  ClusterOptions opts;
  opts.registry = registry;
  opts.machines = 3;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  opts.pbr.suspect_timeout = 1500000;
  opts.pbr.hb_period = 300000;
  opts.pbr.txn_cache_max = 16;  // far less than the executed history
  PbrCluster cluster = make_pbr_cluster(world, opts);

  struct Counter final : sim::WorldObserver {
    int snapshots = 0;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == kPbrSnapBeginHeader) ++snapshots;
    }
  } counter;
  world.add_observer(&counter);

  const NodeId node = world.add_node("client");
  DbClient::Options copts;
  copts.mode = DbClient::Mode::kDirect;
  copts.targets = cluster.request_targets();
  copts.txn_limit = 200;
  copts.retry_timeout = 700000;
  auto rng = std::make_shared<Rng>(11);
  DbClient client(world, node, ClientId{1}, copts, [rng, bank]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, bank));
  });
  client.start();
  world.run_until(200000);  // well more than 16 transactions executed
  world.crash(cluster.replica_nodes[0]);
  world.run_until(600000000);
  ASSERT_TRUE(client.done());
  EXPECT_GT(counter.snapshots, 0) << "spare at seq 0 needed a full snapshot";
  EXPECT_EQ(cluster.replicas[1]->state_digest(), cluster.replicas[2]->state_digest());
}

TEST(RecoveryEdge, DeposedPrimaryStopsAnsweringAfterFalseSuspicion) {
  // Partition the primary away from the backup long enough to be suspected,
  // then heal: the old primary must not serve clients against the stale
  // configuration (it learns of the new configuration via the TOB delivery
  // when the partition heals and steps down).
  Fixture fx(13, /*replicas=*/2, /*spares=*/2);
  fx.client->start();
  fx.world.run_until(100000);
  fx.world.set_partitioned(fx.cluster.replica_nodes[0], fx.cluster.replica_nodes[1], true);
  fx.world.run_until(4000000);  // both sides suspect each other; TOB decides one winner
  fx.world.set_partitioned(fx.cluster.replica_nodes[0], fx.cluster.replica_nodes[1], false);
  fx.world.run_until(1200000000);
  ASSERT_TRUE(fx.client->done()) << "committed " << fx.client->committed();

  // Whatever configuration won, at most one replica believes it is primary.
  int primaries = 0;
  for (const auto& replica : fx.cluster.replicas) {
    if (!fx.world.crashed(replica->node()) && replica->is_primary()) ++primaries;
  }
  EXPECT_EQ(primaries, 1);
  // Conservation still holds on the winning configuration's primary.
  for (const auto& replica : fx.cluster.replicas) {
    if (replica->is_primary()) {
      EXPECT_EQ(workload::bank::total_balance(replica->engine()), fx.expected_total());
    }
  }
}

}  // namespace
}  // namespace shadow::core
