// Unit tests for the Logic of Events substrate: event orderings, causal
// order, happens-before, well-formedness, and the generic property checkers.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "loe/event_order.hpp"
#include "loe/properties.hpp"
#include "loe/recorder.hpp"

namespace shadow::loe {
namespace {

Event make_event(EventKind kind, NodeId loc, net::Time time, std::uint64_t uid = 0,
                 std::int64_t info = 0) {
  Event e;
  e.kind = kind;
  e.loc = loc;
  e.time = time;
  e.msg_uid = uid;
  e.info = info;
  return e;
}

TEST(EventOrder, LocalPredecessorChainsPerLocation) {
  EventOrder order;
  const EventId a0 = order.append(make_event(EventKind::kInternal, NodeId{0}, 1));
  const EventId b0 = order.append(make_event(EventKind::kInternal, NodeId{1}, 2));
  const EventId a1 = order.append(make_event(EventKind::kInternal, NodeId{0}, 3));
  EXPECT_EQ(order.at(a0).local_pred, kNoEvent);
  EXPECT_EQ(order.at(a1).local_pred, a0);
  EXPECT_EQ(order.at(b0).local_pred, kNoEvent);
  EXPECT_EQ(order.last_at(NodeId{0}), a1);
  EXPECT_EQ(order.events_at(NodeId{0}), (std::vector<EventId>{a0, a1}));
}

TEST(EventOrder, SendReceiveMatchedByUid) {
  EventOrder order;
  const EventId send = order.append(make_event(EventKind::kSend, NodeId{0}, 1, 42));
  EventId recv;
  {
    Event e = make_event(EventKind::kReceive, NodeId{1}, 2, 42);
    e.caused_by = order.send_of(42);
    recv = order.append(e);
  }
  EXPECT_EQ(order.at(recv).caused_by, send);
  order.check_well_formed();
}

TEST(EventOrder, HappensBeforeFollowsLocalAndMessageEdges) {
  // p0: e0 --send--> p1: e2 ; p0: e1 after e0 ; p2: e3 concurrent.
  EventOrder order;
  const EventId e0 = order.append(make_event(EventKind::kSend, NodeId{0}, 1, 7));
  const EventId e1 = order.append(make_event(EventKind::kInternal, NodeId{0}, 2));
  Event r = make_event(EventKind::kReceive, NodeId{1}, 3, 7);
  r.caused_by = order.send_of(7);
  const EventId e2 = order.append(r);
  const EventId e3 = order.append(make_event(EventKind::kInternal, NodeId{2}, 1));

  EXPECT_TRUE(order.happens_before(e0, e1));   // local order
  EXPECT_TRUE(order.happens_before(e0, e2));   // message edge
  EXPECT_FALSE(order.happens_before(e1, e2));  // e1 concurrent with e2
  EXPECT_FALSE(order.happens_before(e2, e0));  // no time travel
  EXPECT_FALSE(order.happens_before(e3, e2));  // isolated location
  EXPECT_FALSE(order.happens_before(e0, e0));  // irreflexive
}

TEST(EventOrder, HappensBeforeTransitiveAcrossChains) {
  // A chain p0 → p1 → p2 and the transitive pair (start, end).
  EventOrder order;
  const EventId s0 = order.append(make_event(EventKind::kSend, NodeId{0}, 1, 1));
  Event r1 = make_event(EventKind::kReceive, NodeId{1}, 2, 1);
  r1.caused_by = order.send_of(1);
  order.append(r1);
  const EventId s1 = order.append(make_event(EventKind::kSend, NodeId{1}, 3, 2));
  (void)s1;
  Event r2 = make_event(EventKind::kReceive, NodeId{2}, 4, 2);
  r2.caused_by = order.send_of(2);
  const EventId end = order.append(r2);
  EXPECT_TRUE(order.happens_before(s0, end));
}

TEST(EventOrder, WellFormednessCatchesBadCause) {
  EventOrder order;
  order.append(make_event(EventKind::kSend, NodeId{0}, 5, 9));
  Event bad = make_event(EventKind::kReceive, NodeId{1}, 1, 9);  // receive before send
  bad.caused_by = order.send_of(9);
  order.append(bad);
  EXPECT_FALSE(check_causal_well_formed(order).ok);
}

TEST(Properties, PrefixConsistencyDetectsDivergence) {
  std::vector<std::vector<int>> consistent{{1, 2, 3}, {1, 2}, {1, 2, 3, 4}};
  EXPECT_TRUE(check_prefix_consistency(consistent).ok);
  std::vector<std::vector<int>> diverged{{1, 2, 3}, {1, 9}};
  EXPECT_FALSE(check_prefix_consistency(diverged).ok);
}

TEST(Properties, NoDuplicatesChecker) {
  EXPECT_TRUE(check_no_duplicates(std::vector<int>{1, 2, 3}).ok);
  EXPECT_FALSE(check_no_duplicates(std::vector<int>{1, 2, 1}).ok);
}

TEST(Properties, ProgressCheckerFindsNonIncrease) {
  EventOrder order;
  order.append(make_event(EventKind::kSend, NodeId{0}, 1, 1, 5));
  order.append(make_event(EventKind::kSend, NodeId{0}, 2, 2, 7));
  order.append(make_event(EventKind::kSend, NodeId{0}, 3, 3, 7));  // not strict
  const ClockFn clock = [](const Event& e) -> std::optional<std::int64_t> {
    return e.kind == EventKind::kSend ? std::optional<std::int64_t>(e.info) : std::nullopt;
  };
  const CheckResult result = check_progress_strict_increase(order, clock);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("progress violated"), std::string::npos);
}

TEST(Properties, ClockConditionC2ViolationReported) {
  EventOrder order;
  order.append(make_event(EventKind::kSend, NodeId{0}, 1, 1, 10));
  Event recv = make_event(EventKind::kReceive, NodeId{1}, 2, 1, 10);
  recv.caused_by = order.send_of(1);
  order.append(recv);
  // LC(recv) == LC(send): C2 violated.
  const ClockFn clock = [](const Event& e) -> std::optional<std::int64_t> { return e.info; };
  const CheckResult result = check_clock_condition(order, clock);
  EXPECT_FALSE(result.ok);
}

TEST(Recorder, CapturesSimulatedTraffic) {
  sim::World world(3);
  Recorder recorder(world);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  int bounces = 0;
  world.set_handler(b, [&](net::NodeContext& ctx, const sim::Message&) {
    if (++bounces < 5) ctx.send(a, sim::make_signal("pong"));
  });
  world.set_handler(a, [&](net::NodeContext& ctx, const sim::Message&) {
    ctx.send(b, sim::make_signal("ping"));
  });
  world.post(a, b, sim::make_signal("ping"));
  world.run_until(10000000);

  const EventOrder& order = recorder.order();
  EXPECT_GE(order.size(), 10u);  // sends + receives of the bounce chain
  order.check_well_formed();
  // Every receive has a matching recorded send.
  for (const Event& e : order.events()) {
    if (e.kind == EventKind::kReceive) {
      ASSERT_NE(e.caused_by, kNoEvent);
      EXPECT_EQ(order.at(e.caused_by).msg_uid, e.msg_uid);
    }
  }
}

TEST(Recorder, CrashEventsRecorded) {
  sim::World world(4);
  Recorder recorder(world);
  const NodeId a = world.add_node("a");
  world.crash(a);
  bool saw_crash = false;
  for (const Event& e : recorder.order().events()) {
    if (e.kind == EventKind::kCrash && e.loc == a) saw_crash = true;
  }
  EXPECT_TRUE(saw_crash);
}

}  // namespace
}  // namespace shadow::loe
