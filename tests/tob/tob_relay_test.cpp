// Tests for the broadcast service's leader-relay path: non-leader frontends
// forward pending commands to the Paxos leader instead of racing slot
// proposals; relays fall back to local proposal when the leader dies.
#include <gtest/gtest.h>

#include "consensus/paxos.hpp"
#include "loe/properties.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"

namespace shadow::tob {
namespace {

struct RelayFixture {
  sim::World world;
  consensus::SafetyRecorder safety;
  TobConfig config;
  TobService service;
  NodeId client;
  std::vector<AckBody> acks;

  explicit RelayFixture(std::uint64_t seed = 5) : world(seed) {
    config.protocol = Protocol::kPaxos;
    for (int i = 0; i < 3; ++i) config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
    config.relay_timeout = 300000;  // quick fallback for the crash test
    service = make_service(world, config, &safety);
    client = world.add_node("client");
    world.set_handler(client, [this](net::NodeContext&, const sim::Message& msg) {
      if (msg.header == kAckHeader) acks.push_back(sim::msg_body<AckBody>(msg));
    });
  }

  void broadcast(std::size_t target, RequestSeq seq) {
    world.post(client, config.nodes[target],
               sim::make_msg(kBroadcastHeader,
                             BroadcastBody{Command{ClientId{1}, seq, "x"}}));
  }
};

TEST(TobRelay, NonLeaderFrontendsRelayToTheLeader) {
  RelayFixture fx;
  // Warm up so node 0 is the established leader.
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);

  struct Counter final : sim::WorldObserver {
    int relays = 0;
    int proposes = 0;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == "tob-relay") ++relays;
      if (m.header == "px-propose") ++proposes;
    }
  } counter;
  fx.world.add_observer(&counter);

  // Commands entering at the non-leader frontends get relayed, and only the
  // leader proposes (3 px-propose fan-outs per batch, no slot races).
  for (RequestSeq s = 2; s <= 11; ++s) fx.broadcast(1 + s % 2, s);
  fx.world.run_until(5000000);
  EXPECT_EQ(fx.acks.size(), 11u);
  EXPECT_GT(counter.relays, 0);

  // All delivery logs identical.
  std::vector<std::vector<Command>> logs;
  for (const auto& node : fx.service.nodes) logs.push_back(node->delivery_log());
  EXPECT_TRUE(loe::check_prefix_consistency(logs).ok);
  for (const auto& log : logs) EXPECT_EQ(log.size(), 11u);
}

TEST(TobRelay, RelayToDeadLeaderFallsBackToLocalProposal) {
  RelayFixture fx(7);
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);
  ASSERT_EQ(fx.acks.size(), 1u);

  // Kill the leader, then inject via a surviving non-leader frontend: the
  // relay times out, node 1 proposes itself, Paxos elects a new leader.
  fx.world.crash(fx.config.nodes[0]);
  for (RequestSeq s = 2; s <= 6; ++s) fx.broadcast(1, s);
  fx.world.run_until(60000000);
  EXPECT_EQ(fx.acks.size(), 6u);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 6u);
  EXPECT_EQ(fx.service.nodes[2]->delivered_count(), 6u);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_TRUE(fx.safety.check_validity().ok);
}

TEST(TobRelay, RelayForwardsTheOriginalEncodedBytes) {
  // Zero-copy claim on the relay path, with real bytes on every link: a
  // command entering at a non-leader frontend is encoded exactly once (the
  // relay wrap); the leader's proposal and every Paxos hop splice those
  // bytes. The 2a the leader sends must carry a batch byte-identical to the
  // relayed one.
  RelayFixture fx;
  fx.world.set_wire_fidelity(true);
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);  // node 0 is now the established leader
  ASSERT_EQ(fx.acks.size(), 1u);

  struct Capture final : sim::WorldObserver {
    std::vector<consensus::EncodedBatch> relayed;
    std::vector<consensus::EncodedBatch> proposed_2a;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == kRelayHeader) {
        relayed.push_back(net::msg_body<RelayBody>(m).batch);
      }
      if (m.header == consensus::kP2aHeader) {
        proposed_2a.push_back(net::msg_body<consensus::P2aBody>(m).pvalue.batch);
      }
    }
  } capture;
  fx.world.add_observer(&capture);

  const SpliceStats base = splice_stats();
  fx.broadcast(1, 2);
  fx.world.run_until(5000000);
  EXPECT_EQ(fx.acks.size(), 2u);
  for (const auto& node : fx.service.nodes) EXPECT_EQ(node->delivered_count(), 2u);

  ASSERT_FALSE(capture.relayed.empty());
  bool reproposed_verbatim = false;
  for (const consensus::EncodedBatch& batch : capture.proposed_2a) {
    if (batch == capture.relayed.front()) reproposed_verbatim = true;
  }
  EXPECT_TRUE(reproposed_verbatim) << "no 2a carried the relayed bytes";

  const SpliceStats& now = splice_stats();
  EXPECT_EQ(now.batch_encodes - base.batch_encodes, 1u)
      << "the relay wrap must be the batch's only encode";
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied)
      << "relay/propose path must not copy encoded bytes";
  EXPECT_GT(now.batch_splices, base.batch_splices);
}

TEST(TobRelay, ReproposalAfterLeaderChangeSplicesTheOriginalBytes) {
  // Failover re-proposal: slot 0 is accepted at the survivors but never
  // learned (the proposer died before any decision), so the next leader must
  // adopt the pvalue from the 1b responses and re-propose it — reusing the
  // encoded bytes the acceptors already hold, never serializing them again.
  RelayFixture fx(7);
  fx.world.set_wire_fidelity(true);

  const Command cmd1{ClientId{1}, 1, "x"};
  const consensus::EncodedBatch slot0_batch{Batch{cmd1}};  // THE one encode of cmd1
  const NodeId dead_leader = fx.config.nodes[0];

  struct Capture final : sim::WorldObserver {
    consensus::EncodedBatch expected;
    NodeId dead;
    int slot0_reproposals = 0;
    void on_send(net::Time, NodeId from, NodeId, const sim::Message& m) override {
      if (from == dead || m.header != consensus::kP2aHeader) return;
      const auto& pv = net::msg_body<consensus::P2aBody>(m).pvalue;
      if (pv.slot == 0 && pv.batch == expected) ++slot0_reproposals;
    }
  } capture;
  capture.expected = slot0_batch;
  capture.dead = dead_leader;
  fx.world.add_observer(&capture);

  const SpliceStats base = splice_stats();
  // The dying proposer's 2a reaches both survivors; its decision never will:
  // the 2a is put on the wire first, then the proposer crashes before
  // running anything (in-flight frames still arrive — only the destination
  // is checked at delivery).
  for (const std::size_t acceptor : {std::size_t{1}, std::size_t{2}}) {
    fx.world.post(dead_leader, fx.config.nodes[acceptor],
                  sim::make_msg(consensus::kP2aHeader,
                                consensus::P2aBody{consensus::PValue{
                                    consensus::Ballot{1, dead_leader}, 0, slot0_batch}}));
  }
  fx.world.crash(dead_leader);
  fx.world.run_until(200000);

  fx.broadcast(1, 2);
  fx.world.run_until(60000000);

  EXPECT_EQ(fx.acks.size(), 1u);  // only cmd 2 entered through a frontend
  ASSERT_EQ(fx.service.nodes[1]->delivery_log().size(), 2u);
  EXPECT_EQ(fx.service.nodes[1]->delivery_log()[0], cmd1)
      << "the re-proposed slot must deliver first";
  EXPECT_EQ(fx.service.nodes[2]->delivery_log(), fx.service.nodes[1]->delivery_log());
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_GT(capture.slot0_reproposals, 0)
      << "no survivor re-proposed slot 0 with the original bytes";

  // cmd1's batch was never encoded again: the only encodes charged to the
  // failover window belong to cmd2 (its relay wrap toward the dead leader,
  // the fallback local proposal, and at most one rebuild after losing a
  // slot race), and no already-encoded byte was copied anywhere.
  const SpliceStats& now = splice_stats();
  EXPECT_GE(now.batch_encodes - base.batch_encodes, 1u);
  EXPECT_LE(now.batch_encodes - base.batch_encodes, 3u);
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied);
}

TEST(TobRelay, ClientRetryDuringFailoverIsDeduplicated) {
  RelayFixture fx(9);
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);
  fx.world.crash(fx.config.nodes[0]);
  // The same command retried at both surviving frontends (a client timeout
  // retry): delivered exactly once, acked to both submissions at most.
  fx.broadcast(1, 2);
  fx.broadcast(2, 2);
  fx.world.run_until(60000000);
  std::size_t delivered_twos = 0;
  for (const Command& cmd : fx.service.nodes[1]->delivery_log()) {
    if (cmd.seq == 2) ++delivered_twos;
  }
  EXPECT_EQ(delivered_twos, 1u) << "no-duplication across frontends";
}

}  // namespace
}  // namespace shadow::tob
