// Tests for the broadcast service's leader-relay path: non-leader frontends
// forward pending commands to the Paxos leader instead of racing slot
// proposals; relays fall back to local proposal when the leader dies.
#include <gtest/gtest.h>

#include "loe/properties.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"

namespace shadow::tob {
namespace {

struct RelayFixture {
  sim::World world;
  consensus::SafetyRecorder safety;
  TobConfig config;
  TobService service;
  NodeId client;
  std::vector<AckBody> acks;

  explicit RelayFixture(std::uint64_t seed = 5) : world(seed) {
    config.protocol = Protocol::kPaxos;
    for (int i = 0; i < 3; ++i) config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
    config.relay_timeout = 300000;  // quick fallback for the crash test
    service = make_service(world, config, &safety);
    client = world.add_node("client");
    world.set_handler(client, [this](net::NodeContext&, const sim::Message& msg) {
      if (msg.header == kAckHeader) acks.push_back(sim::msg_body<AckBody>(msg));
    });
  }

  void broadcast(std::size_t target, RequestSeq seq) {
    world.post(client, config.nodes[target],
               sim::make_msg(kBroadcastHeader,
                             BroadcastBody{Command{ClientId{1}, seq, "x"}}));
  }
};

TEST(TobRelay, NonLeaderFrontendsRelayToTheLeader) {
  RelayFixture fx;
  // Warm up so node 0 is the established leader.
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);

  struct Counter final : sim::WorldObserver {
    int relays = 0;
    int proposes = 0;
    void on_send(net::Time, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == "tob-relay") ++relays;
      if (m.header == "px-propose") ++proposes;
    }
  } counter;
  fx.world.add_observer(&counter);

  // Commands entering at the non-leader frontends get relayed, and only the
  // leader proposes (3 px-propose fan-outs per batch, no slot races).
  for (RequestSeq s = 2; s <= 11; ++s) fx.broadcast(1 + s % 2, s);
  fx.world.run_until(5000000);
  EXPECT_EQ(fx.acks.size(), 11u);
  EXPECT_GT(counter.relays, 0);

  // All delivery logs identical.
  std::vector<std::vector<Command>> logs;
  for (const auto& node : fx.service.nodes) logs.push_back(node->delivery_log());
  EXPECT_TRUE(loe::check_prefix_consistency(logs).ok);
  for (const auto& log : logs) EXPECT_EQ(log.size(), 11u);
}

TEST(TobRelay, RelayToDeadLeaderFallsBackToLocalProposal) {
  RelayFixture fx(7);
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);
  ASSERT_EQ(fx.acks.size(), 1u);

  // Kill the leader, then inject via a surviving non-leader frontend: the
  // relay times out, node 1 proposes itself, Paxos elects a new leader.
  fx.world.crash(fx.config.nodes[0]);
  for (RequestSeq s = 2; s <= 6; ++s) fx.broadcast(1, s);
  fx.world.run_until(60000000);
  EXPECT_EQ(fx.acks.size(), 6u);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 6u);
  EXPECT_EQ(fx.service.nodes[2]->delivered_count(), 6u);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_TRUE(fx.safety.check_validity().ok);
}

TEST(TobRelay, ClientRetryDuringFailoverIsDeduplicated) {
  RelayFixture fx(9);
  fx.broadcast(0, 1);
  fx.world.run_until(1000000);
  fx.world.crash(fx.config.nodes[0]);
  // The same command retried at both surviving frontends (a client timeout
  // retry): delivered exactly once, acked to both submissions at most.
  fx.broadcast(1, 2);
  fx.broadcast(2, 2);
  fx.world.run_until(60000000);
  std::size_t delivered_twos = 0;
  for (const Command& cmd : fx.service.nodes[1]->delivery_log()) {
    if (cmd.seq == 2) ++delivered_twos;
  }
  EXPECT_EQ(delivered_twos, 1u) << "no-duplication across frontends";
}

}  // namespace
}  // namespace shadow::tob
