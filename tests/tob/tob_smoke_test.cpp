// End-to-end smoke tests of the total order broadcast service over both
// consensus modules: delivery, total order, acks, safety properties.
#include <gtest/gtest.h>

#include "loe/properties.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"

namespace shadow::tob {
namespace {

struct Fixture {
  sim::World world;
  consensus::SafetyRecorder safety;
  std::vector<NodeId> service_nodes;
  NodeId client_node;
  TobService service;
  std::vector<AckBody> acks;

  explicit Fixture(Protocol protocol, std::size_t n, std::uint64_t seed = 1) : world(seed) {
    TobConfig config;
    config.protocol = protocol;
    for (std::size_t i = 0; i < n; ++i) {
      config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
    }
    service_nodes = config.nodes;
    client_node = world.add_node("client");
    world.set_handler(client_node, [this](net::NodeContext&, const sim::Message& msg) {
      if (msg.header == kAckHeader) acks.push_back(sim::msg_body<AckBody>(msg));
    });
    service = make_service(world, config, &safety);
  }

  void broadcast(std::size_t target, ClientId client, RequestSeq seq,
                 std::string payload = "p") {
    Command cmd{client, seq, std::move(payload)};
    world.post(client_node, service_nodes[target],
               sim::make_msg(kBroadcastHeader, BroadcastBody{std::move(cmd)}));
  }

  std::vector<std::vector<Command>> logs() const {
    std::vector<std::vector<Command>> out;
    for (const auto& node : service.nodes) out.push_back(node->delivery_log());
    return out;
  }
};

TEST(TobPaxos, SingleBroadcastDeliversEverywhereAndAcks) {
  Fixture fx(Protocol::kPaxos, 3);
  fx.broadcast(0, ClientId{1}, 1);
  fx.world.run_until(2000000);
  for (const auto& node : fx.service.nodes) {
    ASSERT_EQ(node->delivered_count(), 1u) << "node " << to_string(node->node());
  }
  ASSERT_EQ(fx.acks.size(), 1u);
  EXPECT_EQ(fx.acks[0].client.value, 1u);
  EXPECT_EQ(fx.acks[0].seq, 1u);
}

TEST(TobPaxos, ManyBroadcastsTotallyOrdered) {
  Fixture fx(Protocol::kPaxos, 3);
  // Spray commands across all three service nodes.
  for (RequestSeq s = 1; s <= 60; ++s) fx.broadcast(s % 3, ClientId{static_cast<std::uint32_t>(1 + s % 4)}, s);
  fx.world.run_until(30000000);
  const auto logs = fx.logs();
  for (const auto& log : logs) EXPECT_EQ(log.size(), 60u);
  EXPECT_TRUE(loe::check_prefix_consistency(logs).ok);
  for (const auto& log : logs) EXPECT_TRUE(loe::check_no_duplicates(log).ok);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_TRUE(fx.safety.check_validity().ok);
  EXPECT_TRUE(fx.safety.check_chosen_stability(2).ok);
  EXPECT_EQ(fx.acks.size(), 60u);
}

TEST(TobPaxos, SurvivesMinorityCrash) {
  Fixture fx(Protocol::kPaxos, 3);
  for (RequestSeq s = 1; s <= 10; ++s) fx.broadcast(0, ClientId{1}, s);
  fx.world.run_until(5000000);
  // Crash a non-proposing service node (a minority), keep broadcasting.
  fx.world.crash(fx.service_nodes[2]);
  for (RequestSeq s = 11; s <= 20; ++s) fx.broadcast(0, ClientId{1}, s);
  fx.world.run_until(20000000);
  EXPECT_EQ(fx.service.nodes[0]->delivered_count(), 20u);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 20u);
  auto logs = fx.logs();
  logs.pop_back();  // the crashed node's log is a (shorter) prefix
  EXPECT_TRUE(loe::check_prefix_consistency(fx.logs()).ok);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_EQ(fx.acks.size(), 20u);
}

TEST(TobPaxos, LeaderCrashFailsOver) {
  Fixture fx(Protocol::kPaxos, 3);
  for (RequestSeq s = 1; s <= 5; ++s) fx.broadcast(1, ClientId{1}, s);
  fx.world.run_until(5000000);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 5u);
  // Node 0 bootstraps as leader; crash it and broadcast via node 1.
  fx.world.crash(fx.service_nodes[0]);
  for (RequestSeq s = 6; s <= 10; ++s) fx.broadcast(1, ClientId{1}, s);
  fx.world.run_until(60000000);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 10u);
  EXPECT_EQ(fx.service.nodes[2]->delivered_count(), 10u);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_TRUE(fx.safety.check_validity().ok);
}

TEST(TobTwoThird, BroadcastsDeliverTotallyOrdered) {
  Fixture fx(Protocol::kTwoThird, 4);
  for (RequestSeq s = 1; s <= 40; ++s) fx.broadcast(s % 4, ClientId{2}, s);
  fx.world.run_until(30000000);
  for (const auto& node : fx.service.nodes) EXPECT_EQ(node->delivered_count(), 40u);
  EXPECT_TRUE(loe::check_prefix_consistency(fx.logs()).ok);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
  EXPECT_TRUE(fx.safety.check_validity().ok);
  EXPECT_EQ(fx.acks.size(), 40u);
}

TEST(TobTwoThird, SurvivesOneCrashOfFour) {
  Fixture fx(Protocol::kTwoThird, 4);
  for (RequestSeq s = 1; s <= 10; ++s) fx.broadcast(0, ClientId{1}, s);
  fx.world.run_until(10000000);
  fx.world.crash(fx.service_nodes[3]);
  for (RequestSeq s = 11; s <= 20; ++s) fx.broadcast(1, ClientId{1}, s);
  fx.world.run_until(60000000);
  EXPECT_EQ(fx.service.nodes[0]->delivered_count(), 20u);
  EXPECT_EQ(fx.service.nodes[1]->delivered_count(), 20u);
  EXPECT_EQ(fx.service.nodes[2]->delivered_count(), 20u);
  EXPECT_TRUE(fx.safety.check_agreement().ok);
}

}  // namespace
}  // namespace shadow::tob
