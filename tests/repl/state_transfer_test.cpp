// Tests for the unified state-transfer engine (src/repl/): the LZSS block
// codec, the versioned wire layout (v1 pinned byte-for-byte against the
// historical per-protocol stream), full/delta/compressed v2 streams between
// engines, and the SMR rejoin path end to end — including a delta rejoin
// after a write burst and recovery from seeded corruption of a compressed
// snapshot frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/shadowdb.hpp"
#include "net/message.hpp"
#include "obs/checker.hpp"
#include "repl/compress.hpp"
#include "repl/state_transfer.hpp"
#include "repl/wire.hpp"
#include "sim/world.hpp"
#include "wire/codec.hpp"
#include "workload/bank.hpp"

namespace shadow::repl {
namespace {

// ---------------------------------------------------------------- compress --

Bytes repetitive_bytes(std::size_t n) {
  static const char pattern[] = "accounts|bigint|balance|row-payload-";
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    for (const char c : pattern) {
      if (out.size() >= n) break;
      out.push_back(static_cast<std::uint8_t>(c));
    }
  }
  return out;
}

Bytes noise_bytes(std::size_t n, std::uint64_t seed) {
  Bytes out;
  out.reserve(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    out.push_back(static_cast<std::uint8_t>(x >> 33));
  }
  return out;
}

TEST(ReplCompress, RoundTripsAndShrinksRepetitiveData) {
  const Bytes raw = repetitive_bytes(10 * 1024);
  const Bytes packed = compress_block(raw);
  ASSERT_LT(packed.size(), raw.size());
  Bytes back;
  ASSERT_TRUE(decompress_block(packed, raw.size(), back));
  EXPECT_EQ(back, raw);
}

TEST(ReplCompress, RoundTripsIncompressibleData) {
  const Bytes raw = noise_bytes(4096, 99);
  const Bytes packed = compress_block(raw);
  Bytes back;
  ASSERT_TRUE(decompress_block(packed, raw.size(), back));
  EXPECT_EQ(back, raw);
}

TEST(ReplCompress, RoundTripsEmptyInput) {
  const Bytes packed = compress_block({});
  Bytes back;
  ASSERT_TRUE(decompress_block(packed, 0, back));
  EXPECT_TRUE(back.empty());
}

TEST(ReplCompress, RejectsMalformedInput) {
  const Bytes raw = repetitive_bytes(2048);
  const Bytes packed = compress_block(raw);
  Bytes back;
  // Truncated stream: output cannot reach raw_len.
  Bytes cut(packed.begin(), packed.begin() + packed.size() / 2);
  EXPECT_FALSE(decompress_block(cut, raw.size(), back));
  // Length lies: decoded size disagrees with the declared raw_len.
  EXPECT_FALSE(decompress_block(packed, raw.size() + 1, back));
  EXPECT_FALSE(decompress_block(packed, raw.size() - 1, back));
}

// ------------------------------------------------------- v1 wire layout pin --

// The v1 bodies must encode in the exact historical field order — PBR, chain
// and SMR all shipped these bytes before the extraction, and a rolling
// upgrade decodes them across versions. Hand-build the byte stream with the
// writer primitives and require the codec to match it.
TEST(ReplWire, V1BeginEncodesInHistoricalFieldOrder) {
  SnapBeginBody begin;
  begin.config = 3;
  begin.dedup_seqs = {{7, 42}};
  begin.order = 21;

  BytesWriter w;
  w.u64(3);   // config
  w.u32(0);   // schemas: empty vector
  w.u32(1);   // dedup_seqs: one pair
  w.u64(7);   //   client (integral codec widens to u64)
  w.u64(42);  //   seq
  w.u64(21);  // order
  EXPECT_EQ(wire::encode_body(begin), w.take());
}

TEST(ReplWire, V1DoneEncodesInHistoricalFieldOrder) {
  SnapDoneBody done;
  done.config = 5;
  done.rows = 1000;
  done.resume_slot = 17;
  done.resume_index = 33;
  done.control_keys = {{9, 4}};

  BytesWriter w;
  w.u64(5);     // config
  w.u64(1000);  // rows
  w.u64(17);    // resume_slot
  w.u64(33);    // resume_index
  w.u32(1);     // control_keys: one pair
  w.u64(9);
  w.u64(4);
  EXPECT_EQ(wire::encode_body(done), w.take());
}

TEST(ReplWire, V2BodiesRoundTrip) {
  SnapBegin2Body begin;
  begin.base.config = 2;
  begin.base.order = 40;
  begin.mode = static_cast<std::uint8_t>(TransferMode::kDelta);
  begin.state_version = 77;
  begin.tag = 5;
  const auto b2 = wire::decode_body<SnapBegin2Body>(wire::encode_body(begin));
  EXPECT_EQ(b2.base.config, 2u);
  EXPECT_EQ(b2.base.order, 40u);
  EXPECT_EQ(b2.mode, begin.mode);
  EXPECT_EQ(b2.state_version, 77u);
  EXPECT_EQ(b2.tag, 5u);

  SnapBatch2Body batch;
  batch.table = "accounts";
  batch.flags = kBatchCompressed | kBatchDeltaUpsert;
  batch.raw_len = 123;
  batch.rows = 4;
  batch.payload = {1, 2, 3};
  batch.tag = 5;
  const auto t2 = wire::decode_body<SnapBatch2Body>(wire::encode_body(batch));
  EXPECT_EQ(t2.table, "accounts");
  EXPECT_EQ(t2.flags, batch.flags);
  EXPECT_EQ(t2.raw_len, 123u);
  EXPECT_EQ(t2.rows, 4u);
  EXPECT_EQ(t2.payload, batch.payload);

  SnapDelete2Body del;
  del.table = "accounts";
  del.keys = {db::Key{{db::Value(static_cast<std::int64_t>(8))}}};
  del.tag = 5;
  const auto d2 = wire::decode_body<SnapDelete2Body>(wire::encode_body(del));
  EXPECT_EQ(d2.table, "accounts");
  ASSERT_EQ(d2.keys.size(), 1u);
  EXPECT_EQ(d2.tag, 5u);
}

// ----------------------------------------------------- engine-level streams --

db::TableSchema kv_schema() {
  return db::TableSchema{"kv",
                         {{"k", db::ColumnType::kBigInt},
                          {"v", db::ColumnType::kBigInt},
                          {"s", db::ColumnType::kVarchar}},
                         {0}};
}

void put(db::Engine& e, std::int64_t k, std::int64_t v, const std::string& s = "payload") {
  const db::TxnId t = e.begin();
  ASSERT_TRUE(e.execute(t, db::make_insert("kv", {db::Value(k), db::Value(v), db::Value(s)})).ok());
  ASSERT_TRUE(e.commit(t).ok());
}

void bump(db::Engine& e, std::int64_t k, std::int64_t delta) {
  const db::TxnId t = e.begin();
  ASSERT_TRUE(
      e.execute(t, db::make_update("kv", {db::Value(k)}, {{1, db::SetOp::kAdd, db::Value(delta)}}))
          .ok());
  ASSERT_TRUE(e.commit(t).ok());
}

void erase(db::Engine& e, std::int64_t k) {
  const db::TxnId t = e.begin();
  ASSERT_TRUE(e.execute(t, db::make_delete("kv", {db::Value(k)})).ok());
  ASSERT_TRUE(e.commit(t).ok());
}

/// Records every frame a node sends: header plus exact encoded body bytes.
struct FrameLog final : net::TransportObserver {
  std::vector<std::pair<std::string, Bytes>> frames;
  void on_send(net::Time, NodeId, NodeId, const net::Message& m) override {
    frames.emplace_back(m.header, m.encoded_body ? m.encoded_body->flatten() : Bytes{});
  }
};

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t digest_frames(const std::vector<std::pair<std::string, Bytes>>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [header, body] : frames) {
    h = fnv1a(h, header.data(), header.size());
    h = fnv1a(h, body.data(), body.size());
  }
  return h;
}

/// Two engines on two sim nodes; "go" at the sender starts a stream, the
/// receiver dispatches frames into a Receiver state machine.
struct StreamFixture {
  sim::World world{1};
  db::Engine sender{db::make_h2_traits()};
  db::Engine receiver{db::make_h2_traits()};
  NodeId sender_node;
  NodeId receiver_node;
  StateTransfer::Receiver rx;
  SendStats stats;
  std::uint64_t finished_order = 0;
  bool finished = false;
  obs::Tracer tracer{{.capacity = 1 << 16, .record_messages = false}};

  // The codec registry binds one body type per header process-wide, so the
  // v1 and v2 streams mount on distinct test headers (as the real protocols
  // do: smr-snap-* vs repl-snap-*2).
  static constexpr const char* kBegin = "t-begin";
  static constexpr const char* kBatch = "t-batch";
  static constexpr const char* kDone = "t-done";
  static constexpr const char* kBegin2 = "t-begin2";
  static constexpr const char* kBatch2 = "t-batch2";
  static constexpr const char* kDone2 = "t-done2";
  static constexpr const char* kDel2 = "t-del2";

  StreamFixture() {
    sender_node = world.add_node("sender");
    receiver_node = world.add_node("receiver");
    rx = StateTransfer::Receiver({&tracer, receiver_node});
  }

  void wire_receiver_v1() {
    world.set_handler(receiver_node, [this](net::NodeContext& ctx, const net::Message& m) {
      if (m.header == kBegin) {
        rx.begin_full(receiver, net::msg_body<SnapBeginBody>(m));
      } else if (m.header == kBatch) {
        rx.on_batch(ctx, receiver, net::msg_body<SnapBatchBody>(m), m.from);
      } else if (m.header == kDone) {
        finished_order = rx.finish(receiver);
        finished = true;
      }
    });
  }

  void wire_receiver_v2(bool drop_first_batch = false) {
    world.set_handler(receiver_node, [this, drop_first_batch,
                                      dropped = false](net::NodeContext& ctx,
                                                       const net::Message& m) mutable {
      if (m.header == kBegin2) {
        rx.begin_v2(receiver, net::msg_body<SnapBegin2Body>(m));
      } else if (m.header == kBatch2) {
        if (drop_first_batch && !dropped) {
          dropped = true;  // simulates a checksum-dropped frame
          return;
        }
        ASSERT_TRUE(rx.on_batch2(ctx, receiver, net::msg_body<SnapBatch2Body>(m), m.from));
      } else if (m.header == kDel2) {
        rx.on_delete2(ctx, receiver, net::msg_body<SnapDelete2Body>(m));
      } else if (m.header == kDone2) {
        const auto& done = net::msg_body<SnapDone2Body>(m);
        if (!rx.complete(done)) return;  // gap: a real protocol re-requests
        finished_order = rx.finish(receiver);
        finished = true;
      }
    });
  }

  void send_v1(SnapBeginBody begin, SnapDoneBody done, bool done_carries_rows) {
    world.set_handler(sender_node, [this, begin = std::move(begin), done = std::move(done),
                                    done_carries_rows](net::NodeContext& ctx,
                                                       const net::Message&) {
      StateTransfer::SendV1 spec;
      spec.headers = {kBegin, kBatch, kDone, ""};
      spec.begin = begin;
      spec.done = done;
      spec.done_carries_rows = done_carries_rows;
      spec.tracer = &tracer;
      stats = StateTransfer::send_full_v1(ctx, sender, receiver_node, spec);
    });
    world.post(receiver_node, sender_node, net::make_signal("go"));
    world.run_until(world.now() + 10000000);
  }

  void send_v2(StateTransfer::SendV2 spec) {
    world.set_handler(sender_node,
                      [this, spec = std::move(spec)](net::NodeContext& ctx, const net::Message&) {
                        auto s = spec;
                        s.headers = {kBegin2, kBatch2, kDone2, kDel2};
                        s.tracer = &tracer;
                        stats = StateTransfer::send_v2(ctx, sender, receiver_node, s);
                      });
    world.post(receiver_node, sender_node, net::make_signal("go"));
    world.run_until(world.now() + 10000000);
  }
};

// The pinned digest of a v1 stream for a fixed database: headers plus every
// encoded body byte, in order. The extraction promised byte-identical wire
// behavior for uncompressed full transfers — any change to the codec field
// order, the batch chunking, or the stream shape changes this value and must
// be treated as a wire-format break.
constexpr std::uint64_t kV1StreamGoldenDigest = 0x7436af5c00f9c078ULL;

TEST(ReplStateTransfer, V1FullStreamMatchesGoldenDigestAndRestores) {
  StreamFixture fx;
  fx.sender.create_table(kv_schema());
  for (std::int64_t k = 0; k < 100; ++k) put(fx.sender, k, k * 10, "row-" + std::to_string(k));

  FrameLog log;
  fx.world.add_observer(&log);
  fx.wire_receiver_v1();

  SnapBeginBody begin;
  begin.config = 7;
  begin.order = 33;
  begin.dedup_seqs = {{1, 5}};
  SnapDoneBody done(7);
  done.resume_slot = 12;
  done.resume_index = 34;
  fx.send_v1(begin, done, /*done_carries_rows=*/true);

  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(fx.finished_order, 33u);
  EXPECT_EQ(fx.stats.rows, 100u);
  EXPECT_EQ(fx.stats.raw_bytes, fx.stats.wire_bytes);
  EXPECT_EQ(fx.receiver.state_digest(), fx.sender.state_digest());
  EXPECT_EQ(fx.receiver.total_rows(), 100u);

  // Drop the sender's kick-off signal; everything else is the stream itself.
  std::vector<std::pair<std::string, Bytes>> stream;
  for (auto& f : log.frames) {
    if (f.first != "go") stream.push_back(std::move(f));
  }
  ASSERT_GE(stream.size(), 3u);  // begin + >=1 batch + done
  EXPECT_EQ(stream.front().first, StreamFixture::kBegin);
  EXPECT_EQ(stream.back().first, StreamFixture::kDone);
  const std::uint64_t digest = digest_frames(stream);
  EXPECT_EQ(digest, kV1StreamGoldenDigest)
      << "v1 state-transfer wire bytes changed (got 0x" << std::hex << digest
      << "); this is a wire-format break";
}

TEST(ReplStateTransfer, V2CompressedFullStreamRestoresAndShrinks) {
  StreamFixture fx;
  fx.sender.create_table(kv_schema());
  fx.sender.set_state_version(9);
  for (std::int64_t k = 0; k < 400; ++k) put(fx.sender, k, k, "payload-padding-padding");

  fx.wire_receiver_v2();
  StateTransfer::SendV2 spec;
  spec.compress = true;
  spec.done_carries_rows = true;
  fx.send_v2(std::move(spec));

  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(fx.stats.rows, 400u);
  EXPECT_FALSE(fx.stats.delta);
  EXPECT_LT(fx.stats.wire_bytes, fx.stats.raw_bytes);
  EXPECT_EQ(fx.receiver.state_digest(), fx.sender.state_digest());
  // A full restore never observed history before the sender's version: the
  // receiver can serve deltas from 9 on, but not from below it.
  EXPECT_EQ(fx.receiver.state_version(), 9u);
  EXPECT_EQ(fx.receiver.delta_floor(), 9u);
  EXPECT_FALSE(fx.receiver.delta_valid(3));
  EXPECT_TRUE(fx.receiver.delta_valid(9));
  // Counters feed the Fig. 10(b) byte-volume table.
  EXPECT_EQ(fx.tracer.metrics().counter("repl.bytes_raw").value(), fx.stats.raw_bytes);
  EXPECT_EQ(fx.tracer.metrics().counter("repl.bytes_wire").value(), fx.stats.wire_bytes);
  EXPECT_EQ(fx.tracer.metrics().counter("repl.delta_hits").value(), 0u);
}

TEST(ReplStateTransfer, V2DeltaShipsOnlyTouchedKeys) {
  StreamFixture fx;
  fx.sender.create_table(kv_schema());
  fx.sender.set_state_version(1);
  for (std::int64_t k = 0; k < 300; ++k) put(fx.sender, k, k, "payload-padding-padding");

  // Bring the receiver to the sender's version 1 state with a full copy.
  fx.wire_receiver_v2();
  {
    StateTransfer::SendV2 spec;
    spec.done_carries_rows = true;
    fx.send_v2(std::move(spec));
  }
  ASSERT_TRUE(fx.finished);
  const std::size_t full_wire = fx.stats.wire_bytes;
  ASSERT_EQ(fx.receiver.state_version(), 1u);

  // A small write burst at version 2: 10 updates, 5 deletes, 5 inserts.
  fx.sender.set_state_version(2);
  for (std::int64_t k = 0; k < 10; ++k) bump(fx.sender, k, 1000);
  for (std::int64_t k = 290; k < 295; ++k) erase(fx.sender, k);
  for (std::int64_t k = 300; k < 305; ++k) put(fx.sender, k, k, "fresh");

  fx.finished = false;
  fx.rx = StateTransfer::Receiver({&fx.tracer, fx.receiver_node});
  StateTransfer::SendV2 spec;
  spec.compress = true;
  spec.done_carries_rows = true;
  spec.delta_since = fx.receiver.state_version();
  fx.send_v2(std::move(spec));

  ASSERT_TRUE(fx.finished);
  EXPECT_TRUE(fx.stats.delta);
  EXPECT_EQ(fx.stats.rows, 15u);  // 10 updated + 5 inserted current rows
  EXPECT_LT(fx.stats.raw_bytes, full_wire / 3) << "delta must be far below a full copy";
  EXPECT_EQ(fx.receiver.state_digest(), fx.sender.state_digest());
  EXPECT_EQ(fx.receiver.total_rows(), 300u);  // 300 - 5 deleted + 5 inserted
  EXPECT_EQ(fx.receiver.state_version(), 2u);
  EXPECT_EQ(fx.tracer.metrics().counter("repl.delta_hits").value(), 1u);
}

TEST(ReplStateTransfer, V2DeltaRequestBelowFloorFallsBackToFull) {
  StreamFixture fx;
  fx.sender.create_table(kv_schema());
  fx.sender.set_state_version(4);
  for (std::int64_t k = 0; k < 50; ++k) put(fx.sender, k, k);
  // A restored engine cannot serve deltas below its floor.
  const db::Engine::Snapshot snap = fx.sender.snapshot();
  fx.sender.reset_for_restore(snap.schemas);
  for (const auto& b : snap.batches) fx.sender.restore_batch(b);
  fx.sender.set_delta_floor(4);
  fx.sender.set_state_version(4);

  fx.wire_receiver_v2();
  StateTransfer::SendV2 spec;
  spec.done_carries_rows = true;
  spec.delta_since = 2;  // below the sender's floor
  fx.send_v2(std::move(spec));

  ASSERT_TRUE(fx.finished);
  EXPECT_FALSE(fx.stats.delta);
  EXPECT_EQ(fx.receiver.state_digest(), fx.sender.state_digest());
}

TEST(ReplStateTransfer, DroppedFrameLeavesStreamIncomplete) {
  StreamFixture fx;
  fx.sender.create_table(kv_schema());
  fx.sender.set_state_version(3);
  for (std::int64_t k = 0; k < 500; ++k) put(fx.sender, k, k, "padding-padding-padding");

  fx.wire_receiver_v2(/*drop_first_batch=*/true);
  StateTransfer::SendV2 spec;
  spec.done_carries_rows = true;
  fx.send_v2(std::move(spec));

  // The gap is detected at `done` (frames_seen < announced): finish never
  // runs, the receiver still awaits, and a real protocol re-requests.
  EXPECT_FALSE(fx.finished);
  EXPECT_TRUE(fx.rx.awaiting());
}

TEST(ReplStateTransfer, UnwrapRejectsMalformedCompressedPayload) {
  SnapBatch2Body body;
  body.table = "kv";
  body.flags = kBatchCompressed;
  body.raw_len = 4096;
  body.payload = noise_bytes(64, 7);
  db::Engine::SnapshotBatch out;
  EXPECT_FALSE(StateTransfer::unwrap_batch(body, out));
  // An uncompressed frame whose payload length disagrees with raw_len is
  // equally malformed.
  body.flags = 0;
  EXPECT_FALSE(StateTransfer::unwrap_batch(body, out));
}

}  // namespace
}  // namespace shadow::repl

// -------------------------------------------------- SMR rejoin, end to end --

namespace shadow::core {
namespace {

struct RejoinFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  SmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{500, 0};

  explicit RejoinFixture(std::uint64_t seed = 1) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    ClusterOptions opts;
    opts.registry = registry;
    opts.tracer = &tracer;
    opts.smr.transfer_compression = true;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    cluster = make_smr_cluster(world, opts);
  }

  DbClient& add_client(std::size_t txns, std::uint64_t seed) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.targets = cluster.broadcast_targets();
    options.txn_limit = txns;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(world, node, id, options, [rng, cfg]() {
      return std::make_pair(std::string(workload::bank::kDepositProc),
                            workload::bank::make_deposit(*rng, cfg));
    }));
    return *clients.back();
  }

  std::uint64_t counter(const std::string& name) {
    return tracer.metrics().counter(name).value();
  }
};

TEST(SmrRejoin, CrashRestartWithRetainedStateRejoinsViaDelta) {
  // Simulator crash-restart: the replica object survives with its engine
  // intact, so its state version is a valid delta baseline — the donor must
  // ship only the rows the write burst touched, not the whole bank.
  RejoinFixture fx;
  DbClient& client = fx.add_client(150, 11);
  client.start();
  fx.world.run_until(400000);  // a prefix of the workload commits

  // Broadcast the rejoin request via a live peer's TOB node (the joiner's
  // own is paused until the snapshot names its resume point).
  fx.cluster.replicas[1]->start_rejoin(fx.cluster.tob_nodes[0], fx.cluster.replica_nodes[0],
                                       1000);
  fx.world.run_until(60000000);

  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 150u);
  EXPECT_GE(fx.counter("repl.delta_hits"), 1u);
  // The delta must be far smaller than the serialized bank: the counters
  // account row payload bytes across all streams of the run.
  EXPECT_GT(fx.counter("repl.bytes_raw"), 0u);

  fx.cluster.replicas[0]->quiesce();
  fx.cluster.replicas[1]->quiesce();
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());
  EXPECT_EQ(workload::bank::total_balance(fx.cluster.replicas[1]->engine()),
            workload::bank::total_balance(fx.cluster.replicas[0]->engine()));

  const obs::CheckResult check = obs::check_trace(fx.tracer.snapshot());
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(SmrRejoin, CorruptedCompressedSnapshotFramesAreDroppedAndRetried) {
  // Seeded corruption on the donor→joiner link while a compressed snapshot
  // streams: corrupted frames fail the wire checksum, are dropped and traced
  // as msg_drop, the incomplete stream is detected (v2 frame count) and the
  // rejoin retries with a fresh request until a clean stream lands.
  RejoinFixture fx(20140623);
  DbClient& client = fx.add_client(150, 12);
  client.start();
  fx.world.run_until(400000);

  fx.world.set_link_fault(fx.cluster.replica_nodes[0], fx.cluster.replica_nodes[1],
                          {.corrupt_prob = 0.5});
  fx.cluster.replicas[1]->start_rejoin(fx.cluster.tob_nodes[0], fx.cluster.replica_nodes[0],
                                       1000);
  fx.world.run_until(4000000);  // several stream attempts under corruption
  fx.world.clear_link_fault(fx.cluster.replica_nodes[0], fx.cluster.replica_nodes[1]);
  fx.world.run_until(60000000);

  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.committed(), 150u);
  EXPECT_GT(fx.world.wire_drops(), 0u) << "the fault must have hit the stream";
  EXPECT_GE(fx.counter("net.wire_drops"), 1u);  // traced as msg_drop events

  fx.cluster.replicas[0]->quiesce();
  fx.cluster.replicas[1]->quiesce();
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());

  const obs::CheckResult check = obs::check_trace(fx.tracer.snapshot());
  EXPECT_TRUE(check.ok()) << check.summary();
}

}  // namespace
}  // namespace shadow::core
