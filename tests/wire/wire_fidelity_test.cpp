// End-to-end tests of the network's byte path: wire-fidelity mode (every
// message is encoded to a real frame at send and decoded at delivery — a
// round-trip proof over the full protocol stack) and byte-level fault
// injection (seeded corruption/truncation detected by the frame checksum and
// surfaced as message drops, which the protocols must absorb via retries).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/world.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "wire/framing.hpp"
#include "workload/bank.hpp"

namespace shadow::core {
namespace {

struct PbrFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  PbrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{1000, 0};

  explicit PbrFixture(std::uint64_t seed = 1, ClusterOptions opts = {}) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    cluster = make_pbr_cluster(world, opts);
  }

  /// Adds a client on a node the test knows (so it can fault its links).
  std::pair<DbClient*, NodeId> add_client(std::size_t txns, std::uint64_t seed,
                                          net::Time retry_timeout = 2000000) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kDirect;
    options.targets = cluster.request_targets();
    options.txn_limit = txns;
    options.retry_timeout = retry_timeout;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(
        world, node, id, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        }));
    return {clients.back().get(), node};
  }

  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

struct SmrFixture {
  sim::World world;
  obs::Tracer tracer{{.capacity = 1 << 20, .record_messages = false}};
  SmrCluster cluster;
  std::vector<std::unique_ptr<DbClient>> clients;
  workload::bank::BankConfig bank{1000, 0};

  explicit SmrFixture(std::uint64_t seed = 1, ClusterOptions opts = {}) : world(seed) {
    tracer.attach(world);
    auto registry = std::make_shared<workload::ProcedureRegistry>();
    workload::bank::register_procedures(*registry);
    opts.registry = registry;
    opts.tracer = &tracer;
    opts.loader = [this](db::Engine& e) { workload::bank::load(e, bank); };
    cluster = make_smr_cluster(world, opts);
  }

  std::pair<DbClient*, NodeId> add_client(std::size_t txns, std::uint64_t seed,
                                          net::Time retry_timeout = 2000000) {
    const ClientId id{static_cast<std::uint32_t>(clients.size() + 1)};
    const NodeId node = world.add_node("client" + std::to_string(id.value));
    DbClient::Options options;
    options.mode = DbClient::Mode::kTob;
    options.targets = cluster.broadcast_targets();
    options.txn_limit = txns;
    options.retry_timeout = retry_timeout;
    options.tracer = &tracer;
    auto rng = std::make_shared<Rng>(seed);
    auto cfg = bank;
    clients.push_back(std::make_unique<DbClient>(
        world, node, id, options, [rng, cfg]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, cfg));
        }));
    return {clients.back().get(), node};
  }

  obs::CheckResult check() const { return obs::check_trace(tracer.snapshot()); }
};

// ---------------------------------------------------------- wire fidelity --

TEST(WireFidelity, PbrEndToEndWithRealBytesOnEveryLink) {
  const SpliceStats splice_base = splice_stats();
  PbrFixture fx;
  fx.world.set_wire_fidelity(true);
  auto [client, node] = fx.add_client(60, 99);
  client->start();
  fx.world.run_until(60000000);
  EXPECT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 60u);
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 60u);
  EXPECT_EQ(fx.cluster.replicas[1]->executed(), 60u);
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());
  EXPECT_EQ(fx.world.wire_drops(), 0u) << "no faults installed: nothing may drop";
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 60u);

  // Zero-copy acceptance: no already-encoded batch byte was copied anywhere.
  // PBR orders client transactions primary→backup directly; TOB (and thus
  // consensus batches) only carries reconfigurations, of which a fault-free
  // run has none — so the encode count is exactly zero here.
  const SpliceStats& splices = splice_stats();
  EXPECT_EQ(splices.batch_bytes_copied, splice_base.batch_bytes_copied);
  EXPECT_EQ(splices.batch_encodes, splice_base.batch_encodes);
  fx.tracer.sync_batch_stats();
  EXPECT_EQ(fx.tracer.metrics().counter("net.batch_bytes_copied").value(), 0u);
  EXPECT_EQ(fx.tracer.metrics().counter("net.batch_encode_count").value(), 0u);
}

TEST(WireFidelity, SmrEndToEndWithRealBytesOnEveryLink) {
  const SpliceStats splice_base = splice_stats();
  SmrFixture fx;
  fx.world.set_wire_fidelity(true);
  auto [client, node] = fx.add_client(50, 7);
  client->start();
  fx.world.run_until(60000000);
  EXPECT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 50u);
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());
  EXPECT_EQ(fx.world.wire_drops(), 0u);
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_GE(check.committed_txns_checked, 50u);

  // Zero-copy acceptance, as in the PBR run above.
  const SpliceStats& splices = splice_stats();
  EXPECT_EQ(splices.batch_bytes_copied, splice_base.batch_bytes_copied);
  EXPECT_GE(splices.batch_encodes - splice_base.batch_encodes, 1u);
  EXPECT_LE(splices.batch_encodes - splice_base.batch_encodes, 50u);
  fx.tracer.sync_batch_stats();
  EXPECT_EQ(fx.tracer.metrics().counter("net.batch_bytes_copied").value(), 0u);
  EXPECT_EQ(fx.tracer.metrics().counter("net.batch_encode_count").value(),
            splices.batch_encodes - splice_base.batch_encodes);
}

TEST(WireFidelity, DeliveredBodiesAreFreshDecodes) {
  // In fidelity mode the handler must receive a body decoded from the frame
  // bytes, not the sender's object: mutable state cannot be smuggled through
  // the type-erased shared_ptr body.
  sim::World world(3);
  world.set_wire_fidelity(true);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  const sim::Message sent = sim::make_msg("fresh-check", std::string("payload"));
  const std::any* received = nullptr;
  std::string received_value;
  world.set_handler(b, [&](net::NodeContext&, const sim::Message& m) {
    received = m.body.get();
    received_value = sim::msg_body<std::string>(m);
  });
  world.post(a, b, sent);
  world.run_until(1000000);
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received_value, "payload");
  EXPECT_NE(received, sent.body.get()) << "handler saw the sender's body object";
}

// ----------------------------------------------------- byte-level faults --

TEST(WireFault, CorruptionIsDetectedDroppedAndRetriedPbr) {
  PbrFixture fx(11);
  auto [client, client_node] = fx.add_client(40, 13, /*retry_timeout=*/500000);
  // Corrupt ~15% of the frames the client sends at the primary. The frame
  // checksum must catch every flip; the client's resend path must absorb the
  // losses; dedup keeps the retries at-most-once.
  fx.world.set_link_fault(client_node, fx.cluster.replica_nodes[0],
                          {.corrupt_prob = 0.15, .truncate_prob = 0.0});
  client->start();
  fx.world.run_until(300000000);
  EXPECT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 40u);
  EXPECT_GT(fx.world.frames_faulted(), 0u) << "fault model never fired: test is vacuous";
  EXPECT_GT(fx.world.wire_drops(), 0u) << "corrupted frames must be dropped";
  EXPECT_GT(client->retries(), 0u) << "drops must surface as client retries";
  EXPECT_EQ(fx.cluster.replicas[0]->executed(), 40u) << "retries must dedup";

  // The drops are observable: counted in metrics and present in the trace.
  EXPECT_EQ(fx.tracer.metrics().counter("net.wire_drops").value(), fx.world.wire_drops());
  std::uint64_t drop_events = 0;
  bool checksum_reason = false;
  for (const obs::TraceEvent& e : fx.tracer.snapshot().events) {
    if (e.kind != obs::EventKind::kMsgDrop) continue;
    ++drop_events;
    if (e.c == static_cast<std::uint64_t>(wire::FrameStatus::kChecksumMismatch)) {
      checksum_reason = true;
    }
  }
  EXPECT_EQ(drop_events, fx.world.wire_drops());
  EXPECT_TRUE(checksum_reason) << "at least one drop must be a checksum catch";

  // And the run still satisfies every offline invariant.
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.committed_txns_checked, 40u);
}

TEST(WireFault, TruncationIsDetectedDroppedAndRetriedSmr) {
  SmrFixture fx(17);
  auto [client, client_node] = fx.add_client(30, 19, /*retry_timeout=*/500000);
  fx.world.set_wire_fidelity(true);  // faults compose with full fidelity
  fx.world.set_link_fault(client_node, fx.cluster.tob_nodes[0],
                          {.corrupt_prob = 0.0, .truncate_prob = 0.2});
  client->start();
  fx.world.run_until(300000000);
  EXPECT_TRUE(client->done());
  EXPECT_EQ(client->committed(), 30u);
  EXPECT_GT(fx.world.wire_drops(), 0u);
  EXPECT_GT(client->retries(), 0u);
  EXPECT_EQ(fx.cluster.replicas[0]->state_digest(), fx.cluster.replicas[1]->state_digest());
  const obs::CheckResult check = fx.check();
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_GE(check.committed_txns_checked, 30u);
}

TEST(WireFault, ClearLinkFaultStopsTheDamage) {
  sim::World world(5);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  std::uint64_t delivered = 0;
  world.set_handler(b, [&](net::NodeContext&, const sim::Message&) { ++delivered; });
  world.set_link_fault(a, b, {.corrupt_prob = 1.0, .truncate_prob = 0.0});
  for (int i = 0; i < 20; ++i) world.post(a, b, sim::make_msg("blast", i));
  world.run_until(10000000);
  EXPECT_EQ(delivered, 0u) << "every frame was corrupted; none may deliver";
  EXPECT_EQ(world.wire_drops(), 20u);

  world.clear_link_fault(a, b);
  for (int i = 0; i < 20; ++i) world.post(a, b, sim::make_msg("blast", i));
  world.run_until(20000000);
  EXPECT_EQ(delivered, 20u) << "healed link must deliver everything";
  EXPECT_EQ(world.wire_drops(), 20u) << "no further drops after the fault is cleared";
}

}  // namespace
}  // namespace shadow::core
