// Round-trip tests for the wire codec layer: every registered message type
// must encode → decode → re-encode byte-identically, `make_msg` must report
// the exact frame length, and damaged frames (truncation, seeded single-byte
// corruption) must be rejected by frame validation — never decoded as valid.
//
// The corruption trials draw from an RNG seeded by SHADOW_WIRE_SEED (default
// 1); scripts/check.sh re-runs the suite under several seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "sim/world.hpp"
#include "baselines/baseline_server.hpp"
#include "common/rng.hpp"
#include "consensus/paxos.hpp"
#include "consensus/two_third.hpp"
#include "core/chain.hpp"
#include "core/pbr.hpp"
#include "core/rosnap.hpp"
#include "core/smr.hpp"
#include "core/twopc.hpp"
#include "db/wire.hpp"
#include "sim/message.hpp"
#include "tob/tob.hpp"
#include "wire/framing.hpp"
#include "wire/registry.hpp"
#include "workload/messages.hpp"

namespace shadow::wire {
namespace {

std::uint64_t corruption_seed() {
  if (const char* env = std::getenv("SHADOW_WIRE_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

workload::TxnRequest sample_request() {
  workload::TxnRequest req;
  req.client = ClientId{7};
  req.seq = 42;
  req.reply_to = NodeId{3};
  req.proc = "deposit";
  req.params = {db::Value(std::int64_t{12}), db::Value(std::string("acct-12")),
                db::Value(3.5), db::Value()};
  return req;
}

consensus::Command sample_command(RequestSeq seq) {
  return consensus::Command{ClientId{9}, seq, workload::encode_request(sample_request())};
}

consensus::Batch sample_batch(std::size_t n) {
  consensus::Batch batch;
  for (std::size_t i = 0; i < n; ++i) batch.push_back(sample_command(i + 1));
  return batch;
}

db::Statement sample_statement() {
  db::Statement stmt;
  stmt.kind = db::Statement::Kind::kUpdate;
  stmt.table = "accounts";
  stmt.sets = {{1, db::SetOp::kAdd, db::Value(std::int64_t{5})}};
  stmt.where = {{0, db::CmpOp::kEq, db::Value(std::int64_t{12})}};
  return stmt;
}

/// One representative message per registered header; building them (via
/// make_msg) also populates the registry exactly as production code does.
std::vector<sim::Message> sample_messages() {
  using consensus::Ballot;
  using consensus::PValue;
  const Ballot ballot{3, NodeId{1}};
  const workload::TxnRequest req = sample_request();

  std::vector<sim::Message> samples;
  // consensus / paxos
  samples.push_back(sim::make_msg(consensus::kP1aHeader, consensus::P1aBody{ballot}));
  samples.push_back(sim::make_msg(
      consensus::kP1bHeader,
      consensus::P1bBody{ballot, ballot,
                         {PValue{ballot, 4, consensus::EncodedBatch{sample_batch(2)}}}}));
  samples.push_back(sim::make_msg(
      consensus::kP2aHeader,
      consensus::P2aBody{PValue{ballot, 5, consensus::EncodedBatch{sample_batch(1)}}}));
  samples.push_back(sim::make_msg(consensus::kP2bHeader, consensus::P2bBody{ballot, ballot, 5}));
  samples.push_back(sim::make_msg(
      consensus::kDecisionHeader,
      consensus::DecisionBody{6, consensus::EncodedBatch{sample_batch(3)}}));
  samples.push_back(sim::make_msg(
      consensus::kProposeHeader,
      consensus::ProposeBody{7, consensus::EncodedBatch{sample_batch(2)}}));
  // consensus / two-third
  samples.push_back(sim::make_msg(
      consensus::kVoteHeader,
      consensus::VoteBody{8, 1, consensus::EncodedBatch{sample_batch(1)}}));
  samples.push_back(sim::make_msg(
      consensus::kTwoThirdDecideHeader,
      consensus::DecideBody{8, consensus::EncodedBatch{sample_batch(1)}}));
  // tob
  samples.push_back(sim::make_msg(tob::kBroadcastHeader,
                                  tob::BroadcastBody{sample_command(11)}));
  samples.push_back(sim::make_msg(tob::kAckHeader, tob::AckBody{ClientId{9}, 11, 2}));
  samples.push_back(sim::make_msg(
      tob::kDeliverHeader,
      tob::DeliverBody{9, 3, consensus::EncodedBatch{consensus::Batch{sample_command(11)}}}));
  samples.push_back(sim::make_msg(
      tob::kRelayHeader,
      tob::RelayBody{consensus::EncodedBatch{consensus::Batch{sample_command(12)}},
                     {NodeId{4}}}));
  // workload
  samples.push_back(workload::make_request_msg(req));
  samples.push_back(workload::make_response_msg(
      workload::TxnResponse{ClientId{7}, 42, true, {req.params}, ""}));
  // core replication bodies under the PBR, chain, and SMR header families.
  const core::ReplForwardBody fwd{2, 17, req};
  const core::ReplAckBody ack{2, 17};
  const core::ReplElectBody elect{3, 20};
  core::ReplCatchupBody catchup;
  catchup.config = 3;
  catchup.txns = {{18, req}, {19, req}};
  core::ReplSnapBeginBody begin;
  begin.config = 3;
  begin.schemas = {db::TableSchema{
      "accounts",
      {{"id", db::ColumnType::kBigInt}, {"balance", db::ColumnType::kBigInt}},
      {0}}};
  begin.dedup_seqs = {{7, 42}};
  begin.order = 21;
  const core::ReplSnapBatchBody batch{{"accounts", Bytes{1, 2, 3, 4}, 2}};
  const core::ReplSnapDoneBody done{3, 2};
  samples.push_back(sim::make_msg(core::kReplFwdHeader, fwd));
  samples.push_back(sim::make_msg(core::kPbrAckHeader, ack));
  for (const char* header : {core::kPbrElectHeader, core::kChainElectHeader}) {
    samples.push_back(sim::make_msg(header, elect));
  }
  for (const char* header : {core::kPbrCatchupHeader, core::kChainCatchupHeader}) {
    samples.push_back(sim::make_msg(header, catchup));
  }
  for (const char* header : {core::kPbrSnapBeginHeader, core::kChainSnapBeginHeader,
                             core::kSnapBeginHeader}) {
    samples.push_back(sim::make_msg(header, begin));
  }
  for (const char* header : {core::kPbrSnapBatchHeader, core::kChainSnapBatchHeader,
                             core::kSnapBatchHeader}) {
    samples.push_back(sim::make_msg(header, batch));
  }
  for (const char* header : {core::kPbrSnapDoneHeader, core::kChainSnapDoneHeader,
                             core::kSnapDoneHeader, core::kPbrRecoveredHeader,
                             core::kChainRecoveredHeader}) {
    samples.push_back(sim::make_msg(header, done));
  }
  samples.push_back(sim::make_msg(core::kPbrRedirectHeader,
                                  core::RedirectBody{NodeId{2}, 3, true}));
  samples.push_back(sim::make_msg(core::kPbrDeliverHeader, sample_command(13)));
  samples.push_back(sim::make_msg(core::kChainDeliverHeader, sample_command(13)));
  samples.push_back(sim::make_msg(
      "smr-deliver", core::DeliverHandoff{5, 6, sample_command(14)}));
  // read-only snapshot protocol (core/rosnap.hpp) — exercise every optional
  // section: a prepared set, a decide ring entry with participants, and the
  // per-client decided high-water map the torn-cut rule disambiguates with.
  samples.push_back(sim::make_msg(core::kRoSnapHeader,
                                  core::RoSnapBody{core::kRoBeginBit | 7, 42, 1}));
  {
    core::RoSnapRespBody snap;
    snap.group = 1;
    snap.seq = 42;
    snap.position = 75;
    snap.floor = 18;
    snap.serving = 1;
    snap.prepared = {{7, 41}};
    core::RoSnapRespBody::Decide d;
    d.client = 7;
    d.seq = 40;
    d.decide_pos = 73;
    d.committed = 1;
    d.participants = {0, 1};
    snap.decides.push_back(std::move(d));
    snap.last_decided = {{7, 40}, {9, 12}};
    samples.push_back(sim::make_msg(core::kRoSnapRespHeader, snap));
  }
  {
    core::RoReadBody read;
    read.req = req;
    read.version = 75;
    read.floor = 18;
    read.group = 1;
    read.hops = 1;
    samples.push_back(sim::make_msg(core::kRoReadHeader, read));
  }
  {
    core::RoReadRespBody resp;
    resp.client = core::kRoBeginBit | 7;
    resp.seq = 42;
    resp.group = 1;
    resp.served_group = 0;  // forwarded mid-migration
    resp.version = 75;
    resp.ok = 1;
    resp.rows = {{db::Value(std::int64_t{12}), db::Value(std::int64_t{500})}};
    samples.push_back(sim::make_msg(core::kRoReadRespHeader, resp));
  }
  // 2PC snapshot rider, including the decided high-water map a rejoiner
  // must restore to keep answering RO snap exchanges correctly.
  {
    core::XsSnapBody xs;
    core::XsSnapBody::PrepEntry prep;
    prep.orig = workload::encode_request(req);
    prep.prepare_index = 11;
    prep.coordinator = 0;
    prep.vote_yes = 1;
    xs.prepared.push_back(std::move(prep));
    core::XsSnapBody::ParkEntry park;
    park.index = 12;
    park.orig = prep.orig;
    xs.parked.push_back(std::move(park));
    core::XsSnapBody::CoordEntry coord;
    coord.orig = park.orig;
    coord.participants = {0, 1};
    coord.votes = {{1, 1}};
    coord.decided = 1;
    coord.commit = 1;
    coord.epoch = 2;
    xs.coords.push_back(std::move(coord));
    xs.last_decided = {{7, 40}};
    samples.push_back(sim::make_msg(core::kXsSnapHeader, xs));
  }
  // baselines
  samples.push_back(sim::make_msg(
      baselines::kReplicateHeader,
      baselines::ReplicateBody{99, {sample_statement(), sample_statement()}}));
  samples.push_back(sim::make_msg(baselines::kReplicateAckHeader,
                                  baselines::ReplicateAckBody{99}));
  return samples;
}

TEST(WireCodec, EveryRegisteredTypeRoundTripsByteIdentically) {
  const std::vector<sim::Message> samples = sample_messages();
  std::set<std::string> covered;
  for (const sim::Message& m : samples) {
    SCOPED_TRACE(m.header);
    covered.insert(m.header);
    ASSERT_NE(m.encoded_body, nullptr);
    // decode the body bytes through the header's registered codec...
    const auto decoded = registry().decode(m.header, *m.encoded_body);
    // ...and re-encode: byte-identical, every time (segment boundaries are
    // invisible to the content comparison).
    const SegmentedBytes reencoded = registry().encode_segments(m.header, *decoded);
    EXPECT_TRUE(reencoded == *m.encoded_body) << "re-encode must be byte-identical";
    // The advertised wire size is the exact frame length.
    const SegmentedBytes frame = encode_frame_segments(m.header, *m.encoded_body);
    EXPECT_EQ(frame.size(), m.wire_size);
    EXPECT_EQ(frame.size(), frame_size(m.header.size(), m.encoded_body->size()));
    // And the frame itself validates and splits back into header + body.
    SegmentedFrameView view;
    ASSERT_EQ(decode_frame_segments(frame, view), FrameStatus::kOk);
    EXPECT_EQ(view.header, m.header);
    EXPECT_TRUE(view.body == *m.encoded_body);
  }
  // The samples above must cover every header this binary registered: a new
  // message type added to the stack without a sample here fails the suite.
  for (const std::string& header : registry().headers()) {
    EXPECT_TRUE(covered.count(header) > 0)
        << "no round-trip sample for registered header '" << header << "'";
  }
}

TEST(WireCodec, DecodeRejectsEveryTruncation) {
  for (const sim::Message& m : sample_messages()) {
    SCOPED_TRACE(m.header);
    const Bytes frame = encode_frame_segments(m.header, *m.encoded_body).flatten();
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::uint8_t> prefix(frame.data(), len);
      FrameView view;
      ASSERT_NE(decode_frame(prefix, view), FrameStatus::kOk)
          << "a " << len << "-byte prefix of a " << frame.size()
          << "-byte frame must not validate";
    }
  }
}

TEST(WireCodec, DecodeRejectsSeededCorruption) {
  Rng rng(corruption_seed());
  std::uint64_t checksum_catches = 0;
  for (const sim::Message& m : sample_messages()) {
    SCOPED_TRACE(m.header);
    const Bytes frame = encode_frame_segments(m.header, *m.encoded_body).flatten();
    for (int trial = 0; trial < 64; ++trial) {
      Bytes damaged = frame;
      const std::size_t pos = rng.index(damaged.size());
      damaged[pos] ^= static_cast<std::uint8_t>(1 + rng.index(255));
      FrameView view;
      const FrameStatus status = decode_frame(damaged, view);
      ASSERT_NE(status, FrameStatus::kOk)
          << "flipping byte " << pos << " must not leave a valid frame";
      if (status == FrameStatus::kChecksumMismatch) ++checksum_catches;
    }
  }
  // Most flips land in the payload, where only the checksum can catch them.
  EXPECT_GT(checksum_catches, 0u);
}

TEST(WireCodec, SignalsFrameWithEmptyBody) {
  const sim::Message hb = sim::make_signal("pbr-hb");
  EXPECT_EQ(hb.wire_size, kFrameOverhead + std::string("pbr-hb").size());
  const Bytes frame = encode_frame(hb.header, {});
  EXPECT_EQ(frame.size(), hb.wire_size);
  FrameView view;
  ASSERT_EQ(decode_frame(frame, view), FrameStatus::kOk);
  EXPECT_EQ(view.header, "pbr-hb");
  EXPECT_TRUE(view.body.empty());
}

TEST(WireCodec, ExplicitWireSizeMustBePositive) {
  struct Opaque {};  // no codec: callers must state an honest size
  EXPECT_NO_THROW(sim::make_msg("opaque", Opaque{}, 64));
  EXPECT_THROW(sim::make_msg("opaque", Opaque{}, 0), PreconditionViolation);
}

// Regression for the old `sizeof(T) + header + 24` default wire-size
// estimate: a proposal batching 100 commands is tens of kilobytes on the
// wire, but sizeof(ProposeBody) is two pointers and a count — the estimate
// missed the heap-owned payload entirely and undercounted by ~99%.
TEST(WireCodec, ExactSizeReplacesSizeofEstimateForLargeBatches) {
  const consensus::ProposeBody body{1, consensus::EncodedBatch{sample_batch(100)}};
  const std::string header = consensus::kProposeHeader;
  const std::size_t old_estimate = sizeof(consensus::ProposeBody) + header.size() + 24;
  const sim::Message m = sim::make_msg(header, body);
  EXPECT_EQ(m.wire_size, frame_size(header.size(), body_size(body)));
  EXPECT_GT(m.wire_size, 100 * 40u) << "100 encoded commands cannot fit in 4 KB";
  EXPECT_GT(m.wire_size, 10 * old_estimate)
      << "the sizeof-based estimate undercounted the batch by >10x";
}

}  // namespace
}  // namespace shadow::wire
