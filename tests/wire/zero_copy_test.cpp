// The zero-copy payload path, tested at the byte level: a batch is encoded
// exactly once and travels thereafter as a spliced sub-frame. These tests pin
// the three claims the counters advertise — re-framing splices instead of
// re-encoding, decoded batches share the received frame's buffer, and a
// corrupted sub-frame dies on the frame checksum and is traced as a drop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consensus/types.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"
#include "wire/codec.hpp"
#include "wire/framing.hpp"

namespace shadow::wire {
namespace {

consensus::Batch sample_batch(std::size_t n, std::size_t payload_len = 32) {
  consensus::Batch batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(consensus::Command{
        ClientId{7}, i + 1, std::string(payload_len, static_cast<char>('a' + i % 26))});
  }
  return batch;
}

/// Byte offset of the batch payload inside a tob-deliver frame:
/// [24-byte prologue][header][slot u64][base_index u64][count u32][len u32].
std::size_t deliver_payload_offset(const std::string& header) {
  return kFrameOverhead + header.size() + 8 + 8 + 4 + 4;
}

TEST(ZeroCopySubFrame, RoundTripSharesTheOriginalBufferWithoutReencoding) {
  const consensus::EncodedBatch original{sample_batch(5)};
  const SpliceStats base = splice_stats();

  BytesWriter w;
  Codec<consensus::EncodedBatch>::encode(w, original);
  const SegmentedBytes encoded = w.take_segments();

  BytesReader r(encoded);
  const consensus::EncodedBatch decoded = Codec<consensus::EncodedBatch>::decode(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(decoded, original);  // payload-byte equality == command equality
  EXPECT_EQ(decoded.size(), original.size());
  EXPECT_EQ(decoded.commands(), original.commands());

  // The round trip moved no payload bytes: encode spliced the original
  // buffer, decode handed back a view into it.
  ASSERT_EQ(original.payload().segments().size(), 1u);
  ASSERT_EQ(decoded.payload().segments().size(), 1u);
  EXPECT_EQ(decoded.payload().segments()[0].owner(), original.payload().segments()[0].owner());
  EXPECT_EQ(decoded.payload().segments()[0].data(), original.payload().segments()[0].data());

  const SpliceStats& now = splice_stats();
  EXPECT_EQ(now.batch_encodes, base.batch_encodes) << "round trip must not re-encode";
  EXPECT_EQ(now.batch_splices - base.batch_splices, 1u);
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied);
}

TEST(ZeroCopySubFrame, BuilderFoldsRelayedUnitsBySpliceAndFreshCommandsByOneEncode) {
  // What the tob leader does per proposal: merge relayed sub-frames (by
  // reference) with locally pending commands (one fresh encode for all).
  const consensus::EncodedBatch relayed_a{sample_batch(3)};
  const consensus::EncodedBatch relayed_b{sample_batch(2, 64)};
  const SpliceStats base = splice_stats();

  consensus::BatchBuilder builder;
  builder.add(relayed_a);
  builder.add(consensus::Command{ClientId{9}, 100, "local"});
  builder.add(relayed_b);
  const consensus::EncodedBatch merged = builder.build();

  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged.commands()[0], relayed_a.commands()[0]);
  EXPECT_EQ(merged.commands()[3].payload, "local");
  EXPECT_EQ(merged.commands()[4], relayed_b.commands()[0]);

  bool shares_a = false;
  bool shares_b = false;
  for (const ByteView& seg : merged.payload().segments()) {
    if (seg.owner() == relayed_a.payload().segments()[0].owner()) shares_a = true;
    if (seg.owner() == relayed_b.payload().segments()[0].owner()) shares_b = true;
  }
  EXPECT_TRUE(shares_a) << "relayed unit A was copied instead of spliced";
  EXPECT_TRUE(shares_b) << "relayed unit B was copied instead of spliced";

  const SpliceStats& now = splice_stats();
  EXPECT_EQ(now.batch_encodes - base.batch_encodes, 1u) << "one encode for the fresh region";
  EXPECT_EQ(now.batch_splices - base.batch_splices, 2u);
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied);
}

TEST(ZeroCopySubFrame, FiveHopsReframeByteIdenticallyWithoutReencoding) {
  // Relay/re-propose chain: each hop decodes a received body and frames the
  // batch again. Every hop's output must be byte-identical to the first and
  // the command region must never be serialized again.
  const consensus::EncodedBatch origin{sample_batch(8)};
  const SpliceStats base = splice_stats();

  const SegmentedBytes first = encode_body_segments(tob::DeliverBody{3, 0, origin});
  SegmentedBytes prev = first;
  consensus::EncodedBatch last = origin;
  for (int hop = 0; hop < 5; ++hop) {
    const tob::DeliverBody received = decode_body<tob::DeliverBody>(prev);
    last = received.batch;
    prev = encode_body_segments(tob::DeliverBody{3, 0, received.batch});
    EXPECT_TRUE(prev == first) << "hop " << hop << " changed the bytes";
  }
  EXPECT_EQ(last.commands(), origin.commands());

  const SpliceStats& now = splice_stats();
  EXPECT_EQ(now.batch_encodes, base.batch_encodes) << "a hop re-encoded the batch";
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied);
  EXPECT_EQ(now.batch_splices - base.batch_splices, 6u);  // one per framing
}

TEST(ZeroCopySubFrame, DecodedBatchSharesTheReceivedFrameBuffer) {
  // Receive path: a peer reads the frame into one contiguous owned buffer
  // (the socket read). Decoding must hand the batch payload back as a view
  // into that buffer — the same bytes, not a copy.
  const consensus::EncodedBatch batch{sample_batch(6, 48)};
  const std::string header = tob::kDeliverHeader;
  const SegmentedBytes body = encode_body_segments(tob::DeliverBody{4, 0, batch});
  Bytes contiguous = encode_frame_segments(header, body).flatten();
  SegmentedBytes received;
  received.append(ByteView::owning(std::move(contiguous)));
  const OwnedBytes owner = received.segments()[0].owner();

  const SpliceStats base = splice_stats();
  SegmentedFrameView view;
  ASSERT_EQ(decode_frame_segments(received, view), FrameStatus::kOk);
  EXPECT_EQ(view.header, header);

  BytesReader r(view.body);
  const tob::DeliverBody decoded = Codec<tob::DeliverBody>::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded.batch, batch);

  ASSERT_EQ(decoded.batch.payload().segments().size(), 1u);
  const ByteView& payload = decoded.batch.payload().segments()[0];
  EXPECT_EQ(payload.owner(), owner) << "payload must share the received buffer";
  EXPECT_EQ(payload.data(), owner->data() + deliver_payload_offset(header));
  EXPECT_EQ(payload.size(), batch.payload_size());

  const SpliceStats& now = splice_stats();
  EXPECT_EQ(now.batch_encodes, base.batch_encodes);
  EXPECT_EQ(now.batch_bytes_copied, base.batch_bytes_copied);
}

TEST(ZeroCopySubFrame, FlippedByteInsideTheSplicedSubFrameFailsTheChecksum) {
  // Corruption inside the spliced region is indistinguishable from any other
  // payload damage: the frame checksum covers the sub-frame bytes it never
  // copied, so a single flipped bit anywhere in the batch payload kills the
  // frame.
  const consensus::EncodedBatch batch{sample_batch(4, 100)};
  const std::string header = tob::kDeliverHeader;
  const SegmentedBytes body = encode_body_segments(tob::DeliverBody{2, 7, batch});
  const Bytes pristine = encode_frame_segments(header, body).flatten();

  const std::size_t payload_offset = deliver_payload_offset(header);
  const std::size_t payload_len = batch.payload_size();
  ASSERT_EQ(payload_offset + payload_len, pristine.size())
      << "offset math out of sync with the deliver codec";

  FrameView ok;
  ASSERT_EQ(decode_frame(pristine, ok), FrameStatus::kOk);

  const std::size_t positions[] = {payload_offset, payload_offset + payload_len / 2,
                                   payload_offset + payload_len - 1};
  for (const std::size_t pos : positions) {
    Bytes corrupted = pristine;
    corrupted[pos] ^= 0x01;
    FrameView view;
    EXPECT_EQ(decode_frame(corrupted, view), FrameStatus::kChecksumMismatch)
        << "flip at offset " << pos << " survived";
  }
}

TEST(ZeroCopySubFrame, CorruptedSubFrameIsDroppedAndTracedAsMsgDrop) {
  // End-to-end: seeded single-byte corruption on a link whose frames are
  // ~99% spliced batch payload. Every flip lands in (or near) the sub-frame,
  // every frame dies on the checksum, and every death is traced as msg_drop.
  sim::World world(21);
  obs::Tracer tracer({.capacity = 1 << 12, .record_messages = false});
  tracer.attach(world);
  world.set_wire_fidelity(true);
  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  std::uint64_t delivered = 0;
  world.set_handler(b, [&](net::NodeContext&, const sim::Message&) { ++delivered; });
  world.set_link_fault(a, b, {.corrupt_prob = 1.0, .truncate_prob = 0.0});

  for (std::uint64_t i = 0; i < 10; ++i) {
    consensus::Batch one;
    one.push_back(consensus::Command{ClientId{3}, i + 1, std::string(4096, 'z')});
    world.post(a, b,
               sim::make_msg(tob::kDeliverHeader,
                             tob::DeliverBody{i, i, consensus::EncodedBatch{std::move(one)}}));
  }
  world.run_until(10000000);

  EXPECT_EQ(delivered, 0u) << "corrupted frames must never deliver";
  EXPECT_EQ(world.frames_faulted(), 10u);
  EXPECT_EQ(world.wire_drops(), 10u);

  std::uint64_t drops = 0;
  std::uint64_t checksum_drops = 0;
  for (const obs::TraceEvent& e : tracer.snapshot().events) {
    if (e.kind != obs::EventKind::kMsgDrop) continue;
    ++drops;
    if (e.c == static_cast<std::uint64_t>(FrameStatus::kChecksumMismatch)) ++checksum_drops;
  }
  EXPECT_EQ(drops, 10u) << "every wire drop must appear in the trace";
  // A flip can land in the 24-byte prologue and report kBadMagic/kTruncated
  // instead; with the payload dominating the frame that is the rare case.
  EXPECT_GE(checksum_drops, 8u);
}

}  // namespace
}  // namespace shadow::wire
