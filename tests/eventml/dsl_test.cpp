// Unit tests for the embedded EventML DSL: values, each combinator's
// semantics (Base, State, Compose, Parallel, Once), shared-node memoization,
// interpreter parity, and the GPM compilation boundary.
#include <gtest/gtest.h>

#include "eventml/compile.hpp"
#include "common/rng.hpp"
#include "eventml/instance.hpp"

namespace shadow::eventml {
namespace {

// ---- values -------------------------------------------------------------------

TEST(Value, StructuralEquality) {
  EXPECT_TRUE(value_eq(Value::integer(5), Value::integer(5)));
  EXPECT_FALSE(value_eq(Value::integer(5), Value::integer(6)));
  EXPECT_FALSE(value_eq(Value::integer(5), Value::str("5")));
  EXPECT_TRUE(value_eq(Value::unit(), Value::unit()));
  EXPECT_TRUE(value_eq(Value::pair(Value::integer(1), Value::str("x")),
                       Value::pair(Value::integer(1), Value::str("x"))));
  EXPECT_FALSE(value_eq(Value::pair(Value::integer(1), Value::str("x")),
                        Value::pair(Value::integer(1), Value::str("y"))));
  EXPECT_TRUE(value_eq(Value::list({Value::integer(1), Value::integer(2)}),
                       Value::list({Value::integer(1), Value::integer(2)})));
  EXPECT_FALSE(value_eq(Value::list({Value::integer(1)}),
                        Value::list({Value::integer(1), Value::integer(2)})));
  EXPECT_TRUE(value_eq(Value::send(NodeId{1}, "h", Value::integer(3)),
                       Value::send(NodeId{1}, "h", Value::integer(3))));
  EXPECT_FALSE(value_eq(Value::send(NodeId{1}, "h", Value::integer(3)),
                        Value::send(NodeId{2}, "h", Value::integer(3))));
}

TEST(Value, AccessorsThrowOnTypeMismatch) {
  EXPECT_THROW(Value::integer(1)->as_str(), InvariantViolation);
  EXPECT_THROW(Value::str("x")->as_int(), InvariantViolation);
  EXPECT_THROW(Value::unit()->as_pair(), InvariantViolation);
  EXPECT_EQ(fst(Value::pair(Value::integer(1), Value::integer(2)))->as_int(), 1);
  EXPECT_EQ(snd(Value::pair(Value::integer(1), Value::integer(2)))->as_int(), 2);
}

TEST(Value, RenderingForWitnesses) {
  EXPECT_EQ(value_str(Value::integer(-3)), "-3");
  EXPECT_EQ(value_str(Value::str("hi")), "\"hi\"");
  EXPECT_EQ(value_str(Value::pair(Value::integer(1), Value::unit())), "(1, ())");
  EXPECT_EQ(value_str(Value::list({Value::integer(1), Value::integer(2)})), "[1, 2]");
}

TEST(Value, WireSizeGrowsWithContent) {
  EXPECT_LT(value_wire_size(Value::integer(1)),
            value_wire_size(Value::pair(Value::integer(1), Value::str("hello world"))));
  EXPECT_EQ(value_wire_size(Value::integer(1)), 8u);
}

// ---- combinators ---------------------------------------------------------------

TEST(Combinators, BaseRecognizesHeaderOnly) {
  Instance instance(base("ping"), NodeId{0});
  const auto hit = instance.on_event("ping", Value::integer(7));
  ASSERT_TRUE(hit.recognized);
  ASSERT_EQ(hit.outputs.size(), 1u);
  EXPECT_EQ(hit.outputs[0]->as_int(), 7);
  const auto miss = instance.on_event("pong", Value::integer(7));
  EXPECT_FALSE(miss.recognized);
  EXPECT_TRUE(miss.outputs.empty());
}

TEST(Combinators, StateFoldsAcrossEvents) {
  UpdateFn sum = [](NodeId, const ValuePtr& in, const ValuePtr& state) {
    return Value::integer(state->as_int() + in->as_int());
  };
  Instance instance(state_class("Sum", Value::integer(0), sum, base("n")), NodeId{0});
  EXPECT_EQ(instance.on_event("n", Value::integer(3)).outputs[0]->as_int(), 3);
  EXPECT_EQ(instance.on_event("n", Value::integer(4)).outputs[0]->as_int(), 7);
  EXPECT_EQ(instance.state_of("Sum")->as_int(), 7);
  EXPECT_FALSE(instance.on_event("x", Value::unit()).recognized);
  EXPECT_EQ(instance.state_of("Sum")->as_int(), 7) << "unrecognized events must not update";
}

TEST(Combinators, ComposeRequiresAllInputs) {
  HandlerFn add = [](NodeId, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{
        Value::integer(inputs[0]->as_int() + inputs[1]->as_int())};
  };
  // Compose over two different headers never fires (one input missing).
  Instance impossible(compose("Add", add, {base("a"), base("b")}), NodeId{0});
  EXPECT_FALSE(impossible.on_event("a", Value::integer(1)).recognized);
  EXPECT_FALSE(impossible.on_event("b", Value::integer(1)).recognized);

  // Compose over the same event's recognizer and a state machine fires.
  UpdateFn count = [](NodeId, const ValuePtr&, const ValuePtr& state) {
    return Value::integer(state->as_int() + 1);
  };
  Instance counting(
      compose("AddCount", add,
              {base("a"), state_class("Count", Value::integer(0), count, base("a"))}),
      NodeId{0});
  EXPECT_EQ(counting.on_event("a", Value::integer(10)).outputs[0]->as_int(), 11);
  EXPECT_EQ(counting.on_event("a", Value::integer(10)).outputs[0]->as_int(), 12);
}

TEST(Combinators, ParallelMergesOutputs) {
  HandlerFn echo = [](NodeId, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{inputs[0]};
  };
  Instance instance(parallel("Both", {compose("EchoA", echo, {base("a")}),
                                      compose("EchoB", echo, {base("b")})}),
                    NodeId{0});
  const auto on_a = instance.on_event("a", Value::integer(1));
  EXPECT_TRUE(on_a.recognized);
  EXPECT_EQ(on_a.outputs.size(), 1u);
  const auto on_c = instance.on_event("c", Value::integer(1));
  EXPECT_FALSE(on_c.recognized);
}

TEST(Combinators, OnceFiresExactlyOnce) {
  Instance instance(once("First", base("x")), NodeId{0});
  EXPECT_TRUE(instance.on_event("x", Value::integer(1)).recognized);
  EXPECT_FALSE(instance.on_event("x", Value::integer(2)).recognized);
  EXPECT_FALSE(instance.on_event("x", Value::integer(3)).recognized);
}

TEST(Combinators, SharedStateNodeUpdatesOncePerEvent) {
  // The same State object referenced twice must fold each event once —
  // the memoization the optimizer's CSE relies on.
  UpdateFn count = [](NodeId, const ValuePtr&, const ValuePtr& state) {
    return Value::integer(state->as_int() + 1);
  };
  ClassPtr counter = state_class("C", Value::integer(0), count, base("t"));
  HandlerFn both = [](NodeId, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{
        Value::pair(inputs[0], inputs[1])};
  };
  Instance instance(compose("Pair", both, {counter, counter}), NodeId{0});
  const auto result = instance.on_event("t", Value::unit());
  ASSERT_TRUE(result.recognized);
  EXPECT_EQ(fst(result.outputs[0])->as_int(), 1);
  EXPECT_EQ(snd(result.outputs[0])->as_int(), 1);
  EXPECT_EQ(instance.state_of("C")->as_int(), 1) << "one event, one update";
}

TEST(Combinators, InstanceCopyIsASnapshot) {
  UpdateFn count = [](NodeId, const ValuePtr&, const ValuePtr& state) {
    return Value::integer(state->as_int() + 1);
  };
  Instance a(state_class("C", Value::integer(0), count, base("t")), NodeId{0});
  a.on_event("t", Value::unit());
  Instance b = a;  // value semantics: b snapshots state 1
  a.on_event("t", Value::unit());
  EXPECT_EQ(a.state_of("C")->as_int(), 2);
  EXPECT_EQ(b.state_of("C")->as_int(), 1);
}

TEST(Combinators, WorklistInterpreterMatchesRecursive) {
  UpdateFn count = [](NodeId, const ValuePtr&, const ValuePtr& state) {
    return Value::integer(state->as_int() + 1);
  };
  HandlerFn pack = [](NodeId slf, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{Value::send(slf, "out", inputs[1])};
  };
  ClassPtr root = parallel(
      "Main", {compose("P", pack,
                       {base("t"), state_class("C", Value::integer(0), count, base("t"))}),
               once("O", base("u"))});
  Instance recursive(root, NodeId{3}, InterpreterKind::kRecursive);
  Instance worklist(root, NodeId{3}, InterpreterKind::kWorklist);
  shadow::Rng rng(5);
  const char* headers[] = {"t", "u", "v"};
  for (int i = 0; i < 300; ++i) {
    const char* header = headers[rng.index(3)];
    const ValuePtr body = Value::integer(static_cast<std::int64_t>(rng.uniform(0, 9)));
    const auto ra = recursive.on_event(header, body);
    const auto rb = worklist.on_event(header, body);
    ASSERT_EQ(ra.recognized, rb.recognized) << "event " << i;
    ASSERT_EQ(ra.outputs.size(), rb.outputs.size()) << "event " << i;
    for (std::size_t k = 0; k < ra.outputs.size(); ++k) {
      EXPECT_TRUE(value_eq(ra.outputs[k], rb.outputs[k]));
    }
  }
  EXPECT_EQ(recursive.state_of("C")->as_int(), worklist.state_of("C")->as_int());
}

// ---- GPM boundary ----------------------------------------------------------------

TEST(Compile, DirectivesBecomeSends) {
  HandlerFn reply = [](NodeId, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{Value::send(NodeId{9}, "reply", inputs[0])};
  };
  Spec spec;
  spec.name = "echo";
  spec.main = compose("Echo", reply, {base("req")});
  const gpm::SystemGenerator gen = compile_to_gpm(spec, {NodeId{0}});
  auto process = gen(NodeId{0});
  const gpm::StepResult result = process->step(make_dsl_msg("req", Value::integer(5)));
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].to, NodeId{9});
  EXPECT_EQ(result.outputs[0].msg.header, "reply");
  EXPECT_GT(result.work, 0u);
}

TEST(Compile, NonDirectiveOutputsGoToTheTap) {
  HandlerFn produce = [](NodeId, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{inputs[0]};  // a plain value, not a send
  };
  Spec spec;
  spec.name = "tapper";
  spec.main = compose("Tap", produce, {base("in")});
  std::vector<std::int64_t> tapped;
  const gpm::SystemGenerator gen =
      compile_to_gpm(spec, {NodeId{0}}, InterpreterKind::kRecursive,
                     [&tapped](NodeId, const ValuePtr& v) { tapped.push_back(v->as_int()); });
  auto process = gen(NodeId{0});
  auto r1 = process->step(make_dsl_msg("in", Value::integer(5)));
  r1.next->step(make_dsl_msg("in", Value::integer(6)));
  EXPECT_EQ(tapped, (std::vector<std::int64_t>{5, 6}));
}

TEST(Compile, HaltedProcessStaysHalted) {
  auto halt = gpm::Process::halt();
  EXPECT_TRUE(halt->halted());
  const gpm::StepResult result = halt->step(net::make_signal("x"));
  EXPECT_TRUE(result.next->halted());
  EXPECT_TRUE(result.outputs.empty());
}

}  // namespace
}  // namespace shadow::eventml
