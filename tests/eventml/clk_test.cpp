// The paper's running example (Sec. II-C): the CLK specification of
// Lamport's logical clocks, compiled to GPM, deployed on a simulated world,
// with its correctness properties machine-checked over the recorded Logic
// of Events ordering — the runtime-verification analogue of the Nuprl
// proofs of Figs. 5 and 6.
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "eventml/compile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/clk.hpp"
#include "gpm/runtime.hpp"
#include "loe/properties.hpp"
#include "loe/recorder.hpp"

namespace shadow::eventml {
namespace {

using specs::ClkParams;
using specs::kClkMsgHeader;

/// Extracts the logical-clock timestamp of a CLK message (for LoE).
std::int64_t clk_timestamp(const net::Message& msg) {
  if (msg.header != kClkMsgHeader || !msg.has_body()) return -1;
  const ValuePtr* body = net::msg_body_if<ValuePtr>(msg);
  if (body == nullptr) return -1;
  return snd(*body)->as_int();
}

struct ClkWorld {
  sim::World world;
  std::vector<NodeId> locs;
  loe::Recorder recorder;
  std::vector<std::unique_ptr<gpm::ProcessHost>> hosts;

  explicit ClkWorld(std::size_t n, InterpreterKind interp = InterpreterKind::kRecursive,
                    bool optimized = false, std::uint64_t seed = 5)
      : world(seed), recorder(world, clk_timestamp) {
    for (std::size_t i = 0; i < n; ++i) locs.push_back(world.add_node("p" + std::to_string(i)));
    // `handle` forwards the value, incremented, to the next location —
    // an endless token passing around the ring.
    ClkParams params;
    params.locs = locs;
    params.handle = [ring = locs](NodeId slf, const ValuePtr& value) {
      const std::size_t self_idx = static_cast<std::size_t>(
          std::find(ring.begin(), ring.end(), slf) - ring.begin());
      return std::make_pair(Value::integer(value->as_int() + 1),
                            ring[(self_idx + 1) % ring.size()]);
    };
    Spec spec = specs::make_clk_spec(std::move(params));
    if (optimized) spec.main = optimize(spec.main).root;
    hosts = gpm::deploy(world, compile_to_gpm(spec, locs, interp), locs);
  }

  void inject(std::size_t target, std::int64_t value, std::int64_t timestamp) {
    world.post(locs[target], locs[target],
               make_dsl_msg(kClkMsgHeader, specs::clk_msg_body(Value::integer(value), timestamp)));
  }
};

/// Builds the per-event logical clock assignment "ClockVal@e" (Fig. 5):
/// sends are stamped with the sender's post-update clock; a receive's clock
/// is the updated clock, which CLK puts on the send it emits while handling
/// the receive — i.e. the next send at the same location.
loe::ClockFn clock_of_event(const loe::EventOrder& order) {
  auto table = std::make_shared<std::vector<std::optional<std::int64_t>>>(order.size());
  // Assign each receive the clock of the first later send at its location.
  for (const loe::Event& e : order.events()) {
    if (e.kind != loe::EventKind::kSend || e.header != kClkMsgHeader) continue;
    for (loe::EventId p = e.local_pred; p != loe::kNoEvent; p = order.at(p).local_pred) {
      const loe::Event& prev = order.at(p);
      if (prev.kind == loe::EventKind::kSend && prev.header == kClkMsgHeader) break;
      if (prev.kind == loe::EventKind::kReceive && prev.header == kClkMsgHeader &&
          !(*table)[p].has_value()) {
        (*table)[p] = e.info;
      }
    }
  }
  return [table](const loe::Event& e) { return (*table)[e.id]; };
}

TEST(Clk, TokenCirculatesAndClocksAdvance) {
  ClkWorld clk(3);
  clk.inject(0, 0, 0);
  clk.world.run_until(100000);
  EXPECT_GT(clk.world.messages_delivered(), 20u);
  for (const auto& host : clk.hosts) EXPECT_GT(host->steps(), 5u);
}

TEST(Clk, ClockConditionHolds) {
  ClkWorld clk(4);
  clk.inject(0, 0, 0);
  clk.inject(2, 100, 0);  // two concurrent tokens
  clk.world.run_until(200000);
  const loe::EventOrder& order = clk.recorder.order();
  ASSERT_GT(order.size(), 50u);
  EXPECT_TRUE(loe::check_causal_well_formed(order).ok);
  // Sends carry the sender's clock in the message timestamp (for C2).
  const loe::ClockFn send_clock = [](const loe::Event& e) -> std::optional<std::int64_t> {
    if (e.kind != loe::EventKind::kSend || e.header != kClkMsgHeader || e.info < 0) {
      return std::nullopt;
    }
    return e.info;
  };
  const loe::CheckResult result =
      loe::check_clock_condition(order, clock_of_event(order), send_clock);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Clk, ProgressPropertyStrictIncrease) {
  // The paper's `progress strict_inc on clock1 then clock2 in Clock` — the
  // clock a location attaches to consecutive sends strictly increases.
  ClkWorld clk(3);
  clk.inject(1, 5, 2);
  clk.world.run_until(150000);
  const loe::ClockFn send_clock = [](const loe::Event& e) -> std::optional<std::int64_t> {
    if (e.kind != loe::EventKind::kSend || e.header != kClkMsgHeader) return std::nullopt;
    return e.info;
  };
  const loe::CheckResult result =
      loe::check_progress_strict_increase(clk.recorder.order(), send_clock);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Clk, SpecMatchesPaperShape) {
  Spec spec = specs::make_clk_spec(
      {{NodeId{0}}, [](NodeId, const ValuePtr& v) { return std::make_pair(v, NodeId{0}); }});
  const AstStats stats = spec.stats();
  // Fig. 3's structure: Handler = on_msg o (msg'base, Clock = State(msg'base)).
  EXPECT_EQ(stats.total_nodes, 4u);     // Compose, Base, State, Base (shared source)
  EXPECT_EQ(stats.distinct_nodes, 4u);  // pre-optimization: no sharing
  ASSERT_EQ(spec.properties.size(), 2u);
  EXPECT_EQ(spec.properties[0].name, "strict_inc");
  EXPECT_EQ(spec.properties[1].name, "clock_condition");
}

TEST(Clk, HaltOutsideLocs) {
  // `main Handler @ locs`: a location outside locs runs the halted process
  // (Fig. 7, line 10).
  Spec spec = specs::make_clk_spec(
      {{NodeId{0}}, [](NodeId, const ValuePtr& v) { return std::make_pair(v, NodeId{0}); }});
  const gpm::SystemGenerator gen = compile_to_gpm(spec, {NodeId{0}});
  EXPECT_FALSE(gen(NodeId{0})->halted());
  EXPECT_TRUE(gen(NodeId{1})->halted());
}

TEST(Clk, InterpreterDiversityIdenticalTraces) {
  // Sec. III-C: the SML and OCaml interpreters must agree. Run the same
  // seeded world under both interpreters; the recorded event orderings must
  // be identical event for event.
  auto run = [](InterpreterKind interp) {
    ClkWorld clk(3, interp);
    clk.inject(0, 0, 0);
    clk.world.run_until(100000);
    std::vector<std::tuple<std::uint8_t, std::uint32_t, std::int64_t>> trace;
    for (const loe::Event& e : clk.recorder.order().events()) {
      trace.emplace_back(static_cast<std::uint8_t>(e.kind), e.loc.value, e.info);
    }
    return trace;
  };
  const auto recursive = run(InterpreterKind::kRecursive);
  const auto worklist = run(InterpreterKind::kWorklist);
  ASSERT_FALSE(recursive.empty());
  EXPECT_EQ(recursive, worklist);
}

TEST(Clk, OptimizedProgramBehavesIdentically) {
  auto run = [](bool optimized) {
    ClkWorld clk(3, InterpreterKind::kRecursive, optimized);
    clk.inject(0, 0, 0);
    clk.world.run_until(100000);
    std::vector<std::pair<std::uint32_t, std::int64_t>> trace;
    for (const loe::Event& e : clk.recorder.order().events()) {
      trace.emplace_back(e.loc.value, e.info);
    }
    return trace;
  };
  // The optimized program is faster, so the cut-off catches the two runs at
  // slightly different points in the (identical) behaviour: compare the
  // common prefix.
  auto original = run(false);
  auto optimized = run(true);
  const std::size_t n = std::min(original.size(), optimized.size());
  ASSERT_GT(n, 50u);
  original.resize(n);
  optimized.resize(n);
  EXPECT_EQ(original, optimized);
}

TEST(Clk, OptimizerReducesWork) {
  // The same message workload must cost less abstract work on the optimized
  // program ("reduce the execution time ... by a factor of two or more").
  auto total_work = [](bool optimized) {
    ClkWorld clk(3, InterpreterKind::kRecursive, optimized);
    clk.inject(0, 0, 0);
    clk.world.run_until(100000);
    std::uint64_t work = 0;
    for (const auto& host : clk.hosts) work += host->total_work();
    return work;
  };
  const std::uint64_t unopt = total_work(false);
  const std::uint64_t opt = total_work(true);
  EXPECT_LT(opt * 3, unopt * 2) << "optimizer should save at least ~1/3 of the work";
}

}  // namespace
}  // namespace shadow::eventml
