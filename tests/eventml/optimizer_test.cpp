// Optimizer tests: CSE sharing, weight reduction, and — the paper's key
// guarantee (Fig. 7) — bisimulation between the original and optimized
// programs, established by lock-step differential execution over randomized
// message traces.
#include <gtest/gtest.h>

#include "eventml/compile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/clk.hpp"
#include "common/rng.hpp"
#include "gpm/bisimulation.hpp"

namespace shadow::eventml {
namespace {

Spec ring_clk_spec(std::vector<NodeId> locs) {
  specs::ClkParams params;
  params.locs = locs;
  params.handle = [ring = locs](NodeId slf, const ValuePtr& value) {
    const std::size_t idx = static_cast<std::size_t>(
        std::find(ring.begin(), ring.end(), slf) - ring.begin());
    return std::make_pair(Value::integer(value->as_int() + 1), ring[(idx + 1) % ring.size()]);
  };
  return specs::make_clk_spec(std::move(params));
}

/// A deeper artificial spec exercising Parallel/Once and repeated subtrees.
Spec layered_spec() {
  ClassPtr ping = base("ping");
  ClassPtr pong = base("pong");
  UpdateFn count_up = [](NodeId, const ValuePtr&, const ValuePtr& state) {
    return Value::integer(state->as_int() + 1);
  };
  ClassPtr ping_count = state_class("PingCount", Value::integer(0), count_up, ping);
  // The same named state machine expressed twice: CSE must unify them.
  ClassPtr ping_count_dup = state_class("PingCount", Value::integer(0), count_up, base("ping"));
  HandlerFn reply = [](NodeId slf, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{
        Value::send(slf, "pong", Value::integer(inputs[1]->as_int() + inputs[2]->as_int()))};
  };
  ClassPtr handler = compose("Reply", reply, {ping, ping_count, ping_count_dup});
  ClassPtr first_pong = once("FirstPong", pong);
  HandlerFn note = [](NodeId slf, const std::vector<ValuePtr>& inputs) {
    return std::vector<ValuePtr>{Value::send(slf, "noted", inputs[0])};
  };
  ClassPtr noter = compose("Noter", note, {std::move(first_pong)});
  Spec spec;
  spec.name = "layered";
  spec.main = parallel("Main", {std::move(handler), std::move(noter)});
  return spec;
}

std::vector<net::Message> random_trace(std::size_t n, std::uint64_t seed) {
  shadow::Rng rng(seed);
  const char* headers[] = {"ping", "pong", "msg", "noise"};
  std::vector<net::Message> trace;
  for (std::size_t i = 0; i < n; ++i) {
    const char* header = headers[rng.index(4)];
    ValuePtr body =
        std::string(header) == "msg"
            ? specs::clk_msg_body(Value::integer(static_cast<std::int64_t>(rng.uniform(0, 50))),
                                  static_cast<std::int64_t>(rng.uniform(0, 30)))
            : Value::integer(static_cast<std::int64_t>(rng.uniform(0, 100)));
    trace.push_back(make_dsl_msg(header, std::move(body)));
  }
  return trace;
}

bool dsl_body_eq(const net::Message& a, const net::Message& b) {
  const ValuePtr* va = net::msg_body_if<ValuePtr>(a);
  const ValuePtr* vb = net::msg_body_if<ValuePtr>(b);
  if ((va == nullptr) != (vb == nullptr)) return false;
  return va == nullptr || value_eq(*va, *vb);
}

TEST(Optimizer, CseSharesIdenticalSubtrees) {
  const Spec spec = layered_spec();
  const OptimizeResult result = optimize(spec.main);
  // 10 node references; "ping" is already shared once by construction.
  EXPECT_EQ(result.before.total_nodes, 10u);
  EXPECT_EQ(result.before.distinct_nodes, 9u);
  // CSE unifies the duplicated base("ping") and the duplicated PingCount.
  EXPECT_EQ(result.after.total_nodes, 10u);
  EXPECT_EQ(result.after.distinct_nodes, 7u);
}

TEST(Optimizer, FusionReducesWeights) {
  const Spec spec = layered_spec();
  const OptimizeResult result = optimize(spec.main, OptimizerConfig{0.5});
  EXPECT_LT(result.after.total_weight, result.before.total_weight);
}

TEST(Optimizer, ClkBisimilarToOptimized) {
  const std::vector<NodeId> locs{NodeId{0}, NodeId{1}, NodeId{2}};
  const Spec spec = ring_clk_spec(locs);
  const OptimizeResult opt = optimize(spec.main);
  Spec opt_spec = spec;
  opt_spec.main = opt.root;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto original = compile_to_gpm(spec, locs)(locs[0]);
    const auto optimized = compile_to_gpm(opt_spec, locs)(locs[0]);
    const gpm::BisimResult result =
        gpm::check_bisimilar(original, optimized, random_trace(300, seed), dsl_body_eq);
    EXPECT_TRUE(result.bisimilar) << "seed " << seed << ": " << result.detail;
  }
}

TEST(Optimizer, LayeredBisimilarToOptimized) {
  const Spec spec = layered_spec();
  const OptimizeResult opt = optimize(spec.main);
  Spec opt_spec = spec;
  opt_spec.main = opt.root;
  const std::vector<NodeId> locs{NodeId{4}};

  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    const auto original = compile_to_gpm(spec, locs)(locs[0]);
    const auto optimized = compile_to_gpm(opt_spec, locs)(locs[0]);
    const gpm::BisimResult result =
        gpm::check_bisimilar(original, optimized, random_trace(300, seed), dsl_body_eq);
    EXPECT_TRUE(result.bisimilar) << "seed " << seed << ": " << result.detail;
  }
}

TEST(Optimizer, DetectsGenuinelyDifferentPrograms) {
  // Negative control: the checker must catch a divergent program.
  const std::vector<NodeId> locs{NodeId{0}};
  const Spec a = ring_clk_spec(locs);
  Spec b = a;
  UpdateFn broken = [](NodeId, const ValuePtr& input, const ValuePtr& state) {
    return Value::integer(std::max(snd(input)->as_int(), state->as_int()));  // no +1
  };
  b.main = compose("Handler",
                   [](NodeId slf, const std::vector<ValuePtr>& inputs) {
                     return std::vector<ValuePtr>{Value::send(
                         slf, specs::kClkMsgHeader,
                         specs::clk_msg_body(fst(inputs[0]), inputs[1]->as_int()))};
                   },
                   {base(specs::kClkMsgHeader),
                    state_class("Clock", Value::integer(0), broken,
                                base(specs::kClkMsgHeader))});
  const gpm::BisimResult result =
      gpm::check_bisimilar(compile_to_gpm(a, locs)(locs[0]), compile_to_gpm(b, locs)(locs[0]),
                           random_trace(200, 3), dsl_body_eq);
  EXPECT_FALSE(result.bisimilar);
}

TEST(Optimizer, BothInterpretersAgreeOnOptimizedProgram) {
  const Spec spec = layered_spec();
  const OptimizeResult opt = optimize(spec.main);
  Spec opt_spec = spec;
  opt_spec.main = opt.root;
  const std::vector<NodeId> locs{NodeId{2}};
  const auto recursive = compile_to_gpm(opt_spec, locs, InterpreterKind::kRecursive)(locs[0]);
  const auto worklist = compile_to_gpm(opt_spec, locs, InterpreterKind::kWorklist)(locs[0]);
  const gpm::BisimResult result =
      gpm::check_bisimilar(recursive, worklist, random_trace(400, 21), dsl_body_eq);
  EXPECT_TRUE(result.bisimilar) << result.detail;
}

}  // namespace
}  // namespace shadow::eventml
