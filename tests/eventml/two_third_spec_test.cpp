// Verification of the EventML-DSL TwoThird consensus specification — the
// methodology demonstrated on a real consensus protocol, as the paper does
// after CLK (Sec. II-D): run the constructive specification on simulated
// locations under seeded schedules (including crashes) and machine-check
// agreement, validity, integrity and termination; plus deterministic unit
// drives of the state machine and the optimizer bisimulation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/world.hpp"
#include "common/rng.hpp"
#include "eventml/compile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/two_third.hpp"
#include "gpm/bisimulation.hpp"
#include "gpm/runtime.hpp"
#include "loe/recorder.hpp"

namespace shadow::eventml::specs {
namespace {

net::Message propose_msg(std::int64_t value) {
  return make_dsl_msg(kTTProposeHeader, Value::integer(value));
}

net::Message vote_msg(NodeId sender, std::int64_t round, std::int64_t est) {
  return make_dsl_msg(kTTVoteHeader,
                      Value::pair(Value::loc(sender),
                                  Value::pair(Value::integer(round), Value::integer(est))));
}

// ---- deterministic unit drives of the state machine ---------------------------

class TwoThirdInstanceTest : public ::testing::Test {
 protected:
  TwoThirdInstanceTest() {
    for (std::uint32_t i = 0; i < 4; ++i) locs_.push_back(NodeId{i});
    spec_ = make_two_third_spec({locs_});
    instance_ = std::make_unique<Instance>(spec_.main, locs_[0]);
  }

  Instance::EventResult feed(const net::Message& msg) {
    const ValuePtr* body = net::msg_body_if<ValuePtr>(msg);
    return instance_->on_event(msg.header, *body);
  }

  std::vector<NodeId> locs_;
  Spec spec_;
  std::unique_ptr<Instance> instance_;
};

TEST_F(TwoThirdInstanceTest, ProposeTriggersVoteBroadcast) {
  const auto result = feed(propose_msg(42));
  ASSERT_TRUE(result.recognized);
  ASSERT_EQ(result.outputs.size(), 4u);  // a vote to every location
  for (const ValuePtr& out : result.outputs) {
    ASSERT_TRUE(out->is_directive());
    EXPECT_EQ(out->as_directive().header, kTTVoteHeader);
  }
  EXPECT_FALSE(two_third_decision(*instance_).has_value());
}

TEST_F(TwoThirdInstanceTest, UnanimousRoundZeroDecides) {
  feed(propose_msg(42));
  feed(vote_msg(locs_[0], 0, 42));
  feed(vote_msg(locs_[1], 0, 42));
  const auto result = feed(vote_msg(locs_[2], 0, 42));  // 3rd vote = threshold
  ASSERT_TRUE(two_third_decision(*instance_).has_value());
  EXPECT_EQ(*two_third_decision(*instance_), 42);
  // The decision is announced to the other locations.
  std::size_t decides = 0;
  for (const ValuePtr& out : result.outputs) {
    if (out->as_directive().header == kTTDecideHeader) ++decides;
  }
  EXPECT_EQ(decides, 3u);
}

TEST_F(TwoThirdInstanceTest, SplitRoundAdoptsSmallestMostFrequentAndAdvances) {
  feed(propose_msg(9));
  feed(vote_msg(locs_[0], 0, 9));
  feed(vote_msg(locs_[1], 0, 5));
  const auto result = feed(vote_msg(locs_[2], 0, 5));
  // 2 of 3 received votes say 5: not > 2n/3 of n, so adopt 5, round 1.
  EXPECT_FALSE(two_third_decision(*instance_).has_value());
  EXPECT_EQ(two_third_round(*instance_), 1);
  // A fresh vote for round 1 with estimate 5 was broadcast.
  bool vote_for_5 = false;
  for (const ValuePtr& out : result.outputs) {
    const Directive& d = out->as_directive();
    if (d.header == kTTVoteHeader && fst(snd(d.body))->as_int() == 1 &&
        snd(snd(d.body))->as_int() == 5) {
      vote_for_5 = true;
    }
  }
  EXPECT_TRUE(vote_for_5);
}

TEST_F(TwoThirdInstanceTest, AdoptsEstimateFromFirstVoteWithoutProposal) {
  const auto result = feed(vote_msg(locs_[1], 0, 7));
  ASSERT_TRUE(result.recognized);
  // We adopted 7 and voted ourselves.
  bool voted = false;
  for (const ValuePtr& out : result.outputs) {
    if (out->as_directive().header == kTTVoteHeader) voted = true;
  }
  EXPECT_TRUE(voted);
}

TEST_F(TwoThirdInstanceTest, DecidedInstanceAnswersVotesWithDecision) {
  feed(propose_msg(1));
  feed(vote_msg(locs_[0], 0, 1));
  feed(vote_msg(locs_[1], 0, 1));
  feed(vote_msg(locs_[2], 0, 1));
  ASSERT_TRUE(two_third_decision(*instance_).has_value());
  const auto late = feed(vote_msg(locs_[3], 0, 99));
  ASSERT_EQ(late.outputs.size(), 1u);
  const Directive& d = late.outputs[0]->as_directive();
  EXPECT_EQ(d.header, kTTDecideHeader);
  EXPECT_EQ(d.to, locs_[3]);
  EXPECT_EQ(d.body->as_int(), 1);
  // Integrity: the decision did not change.
  EXPECT_EQ(*two_third_decision(*instance_), 1);
}

TEST_F(TwoThirdInstanceTest, DuplicateVotesIgnored) {
  feed(propose_msg(3));
  feed(vote_msg(locs_[1], 0, 3));
  feed(vote_msg(locs_[1], 0, 3));  // duplicate: still only 2 distinct voters
  EXPECT_FALSE(two_third_decision(*instance_).has_value());
}

// ---- deployed runs with the LoE recorder ----------------------------------------

struct Deployment {
  sim::World world;
  std::vector<NodeId> locs;
  Spec spec;
  loe::Recorder recorder;
  std::vector<std::unique_ptr<gpm::ProcessHost>> hosts;

  explicit Deployment(std::size_t n, std::uint64_t seed)
      : world(seed), recorder(world, [](const net::Message& m) -> std::int64_t {
          if (m.header != kTTDecideHeader || !m.has_body()) return -1;
          const ValuePtr* body = net::msg_body_if<ValuePtr>(m);
          return body != nullptr && (*body)->is_int() ? (*body)->as_int() : -1;
        }) {
    for (std::size_t i = 0; i < n; ++i) locs.push_back(world.add_node("p" + std::to_string(i)));
    spec = make_two_third_spec({locs});
    hosts = gpm::deploy(world, compile_to_gpm(spec, locs), locs);
  }

  void propose(std::size_t loc, std::int64_t value) {
    world.post(locs[loc], locs[loc], propose_msg(value));
  }

  /// Values carried by tt-decide messages, plus how many locations touched one.
  std::pair<std::set<std::int64_t>, std::set<std::uint32_t>> decisions() const {
    std::set<std::int64_t> values;
    std::set<std::uint32_t> involved;
    for (const loe::Event& e : recorder.order().events()) {
      if (e.header != kTTDecideHeader || e.info < 0) continue;
      values.insert(e.info);
      involved.insert(e.loc.value);
    }
    return {values, involved};
  }
};

TEST(TwoThirdDeployed, AllLocationsAgreeOnOneValue) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Deployment dep(4, seed);
    Rng rng(seed);
    for (std::size_t i = 0; i < 4; ++i) {
      dep.propose(i, static_cast<std::int64_t>(rng.uniform(1, 5)));
    }
    dep.world.run_until(10000000);
    const auto [values, involved] = dep.decisions();
    ASSERT_EQ(values.size(), 1u) << "agreement violated at seed " << seed;
    EXPECT_EQ(involved.size(), 4u) << "termination: every location learns";
  }
}

TEST(TwoThirdDeployed, DecidedValueWasProposed) {
  Deployment dep(7, 3);
  std::set<std::int64_t> proposed;
  Rng rng(17);
  for (std::size_t i = 0; i < 7; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform(10, 20));
    proposed.insert(v);
    dep.propose(i, v);
  }
  dep.world.run_until(20000000);
  const auto [values, involved] = dep.decisions();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_TRUE(proposed.count(*values.begin()) > 0) << "validity violated";
}

TEST(TwoThirdDeployed, ToleratesFCrashes) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Deployment dep(7, seed);  // n=7 tolerates f=2
    Rng rng(seed);
    for (std::size_t i = 0; i < 7; ++i) {
      dep.propose(i, static_cast<std::int64_t>(rng.uniform(1, 3)));
    }
    // Crash two locations shortly after the proposals go out.
    dep.world.schedule(rng.uniform(100, 1500), [&dep] { dep.world.crash(dep.locs[5]); });
    dep.world.schedule(rng.uniform(100, 1500), [&dep] { dep.world.crash(dep.locs[6]); });
    dep.world.run_until(30000000);
    const auto [values, involved] = dep.decisions();
    ASSERT_LE(values.size(), 1u) << "agreement violated at seed " << seed;
    ASSERT_EQ(values.size(), 1u) << "termination violated at seed " << seed;
  }
}

TEST(TwoThirdDeployed, OptimizedSpecBisimilar) {
  std::vector<NodeId> locs;
  for (std::uint32_t i = 0; i < 4; ++i) locs.push_back(NodeId{i});
  const Spec spec = make_two_third_spec({locs});
  const OptimizeResult opt = optimize(spec.main);
  Spec opt_spec = spec;
  opt_spec.main = opt.root;
  // TTInputs appears twice (inside the State and as a Compose input): CSE
  // must share it.
  EXPECT_LT(opt.after.distinct_nodes, opt.before.total_nodes);

  Rng rng(7);
  std::vector<net::Message> trace;
  for (int i = 0; i < 400; ++i) {
    switch (rng.uniform(0, 2)) {
      case 0: trace.push_back(propose_msg(static_cast<std::int64_t>(rng.uniform(1, 4)))); break;
      case 1:
        trace.push_back(vote_msg(locs[rng.index(4)],
                                 static_cast<std::int64_t>(rng.uniform(0, 2)),
                                 static_cast<std::int64_t>(rng.uniform(1, 4))));
        break;
      default:
        trace.push_back(make_dsl_msg(kTTDecideHeader,
                                     Value::integer(static_cast<std::int64_t>(rng.uniform(1, 4)))));
    }
  }
  const gpm::BisimResult result = gpm::check_bisimilar(
      compile_to_gpm(spec, locs)(locs[0]), compile_to_gpm(opt_spec, locs)(locs[0]), trace,
      [](const net::Message& a, const net::Message& b) {
        const ValuePtr* va = net::msg_body_if<ValuePtr>(a);
        const ValuePtr* vb = net::msg_body_if<ValuePtr>(b);
        return va != nullptr && vb != nullptr && value_eq(*va, *vb);
      });
  EXPECT_TRUE(result.bisimilar) << result.detail;
}

TEST(TwoThirdSpec, StatsForTableOne) {
  std::vector<NodeId> locs;
  for (std::uint32_t i = 0; i < 4; ++i) locs.push_back(NodeId{i});
  const Spec spec = make_two_third_spec({locs});
  const AstStats stats = spec.stats();
  // TwoThird is markedly larger than CLK (the paper: 646N vs 79N).
  EXPECT_GT(stats.total_nodes, 8u);
  EXPECT_EQ(spec.properties.size(), 4u);
}

}  // namespace
}  // namespace shadow::eventml::specs
