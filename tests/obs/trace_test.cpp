// Unit tests for the trace recorder: ring-buffer overflow behavior, JSONL
// export/parse round-trip, derived metrics, and World observer attachment.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "wire/codec.hpp"
#include "wire/framing.hpp"
#include "sim/world.hpp"

namespace shadow::obs {
namespace {

TEST(Tracer, RingOverflowKeepsNewestEventsOldestFirst) {
  Tracer tracer({.capacity = 4, .record_messages = true});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tracer.tob_decide(/*t=*/i * 100, NodeId{1}, /*slot=*/i, /*batch_size=*/1);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);

  const Trace trace = tracer.snapshot();
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.dropped, 6u);
  // The survivors are the newest four, materialized oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.events[i].kind, EventKind::kTobDecide);
    EXPECT_EQ(trace.events[i].a, 7 + i);                // slot
    EXPECT_EQ(trace.events[i].time, (7 + i) * 100);     // ascending times
  }
}

TEST(Tracer, SnapshotBeforeOverflowIsComplete) {
  Tracer tracer({.capacity = 16, .record_messages = true});
  tracer.tob_broadcast(5, NodeId{2}, ClientId{7}, 3);
  tracer.on_crash(6, NodeId{2});
  const Trace trace = tracer.snapshot();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.dropped, 0u);
  EXPECT_EQ(trace.events[0].kind, EventKind::kTobBroadcast);
  EXPECT_EQ(trace.events[0].client.value, 7u);
  EXPECT_EQ(trace.events[0].seq, 3u);
  EXPECT_EQ(trace.events[1].kind, EventKind::kCrash);
}

TEST(Trace, JsonlRoundTripPreservesEventsAndLabels) {
  Tracer tracer;
  tracer.txn_begin(10, NodeId{9}, ClientId{1}, 1, "deposit");
  tracer.txn_execute(40, NodeId{3}, ClientId{1}, 1, /*order=*/0, /*duplicate=*/false,
                     /*committed=*/true, "deposit");
  tracer.txn_execute(41, NodeId{4}, ClientId{1}, 1, kUnordered, /*duplicate=*/true,
                     /*committed=*/true, "deposit");
  tracer.txn_ack(60, NodeId{9}, ClientId{1}, 1, /*committed=*/true);
  tracer.ballot(70, NodeId{3}, /*round=*/2, NodeId{4}, BallotPhase::kPreempted);
  tracer.state_transfer(80, NodeId{5}, StatePhase::kBatch, /*bytes=*/51200, NodeId{3});
  tracer.recover(90, NodeId{5}, /*up_to_order=*/17);

  const Trace original = tracer.snapshot();
  std::ostringstream out;
  export_jsonl(original, out);

  std::istringstream in(out.str());
  const Trace parsed = parse_jsonl(in);

  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    const TraceEvent& a = original.events[i];
    const TraceEvent& b = parsed.events[i];
    EXPECT_EQ(a.time, b.time) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.client, b.client) << "event " << i;
    EXPECT_EQ(a.seq, b.seq) << "event " << i;
    EXPECT_EQ(a.a, b.a) << "event " << i;
    EXPECT_EQ(a.b, b.b) << "event " << i;
    EXPECT_EQ(a.c, b.c) << "event " << i;
    EXPECT_EQ(original.label_of(a), parsed.label_of(b)) << "event " << i;
  }
  // The kUnordered sentinel survives the round trip exactly.
  EXPECT_EQ(parsed.events[2].a, kUnordered);
  EXPECT_EQ(parsed.label_of(parsed.events[0]), "deposit");
}

TEST(Trace, JsonlEscapesLabelCharacters) {
  Tracer tracer;
  tracer.txn_begin(1, NodeId{1}, ClientId{1}, 1, "odd \"proc\"\\name\n\ttab");
  std::ostringstream out;
  export_jsonl(tracer.snapshot(), out);
  std::istringstream in(out.str());
  const Trace parsed = parse_jsonl(in);
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.label_of(parsed.events[0]), "odd \"proc\"\\name\n\ttab");
}

TEST(Trace, ParseRejectsMalformedLines) {
  {
    std::istringstream in("{\"t\":1,\"node\":2}\n");  // missing kind
    EXPECT_THROW(parse_jsonl(in), std::runtime_error);
  }
  {
    std::istringstream in("{\"t\":1,\"kind\":\"no-such-kind\",\"node\":2}\n");
    EXPECT_THROW(parse_jsonl(in), std::runtime_error);
  }
  {
    std::istringstream in("{\"kind\":\"crash\",\"node\":2}\n");  // missing time
    EXPECT_THROW(parse_jsonl(in), std::runtime_error);
  }
}

TEST(Tracer, DerivesComponentMetricsFromHooks) {
  Tracer tracer;
  tracer.tob_propose(100, NodeId{0}, /*slot=*/0, /*batch_size=*/4);
  tracer.tob_decide(350, NodeId{0}, /*slot=*/0, /*batch_size=*/4);
  tracer.tob_decide(360, NodeId{1}, /*slot=*/0, /*batch_size=*/4);  // same slot, other learner
  tracer.txn_begin(1000, NodeId{9}, ClientId{1}, 1, "deposit");
  tracer.txn_ack(1500, NodeId{9}, ClientId{1}, 1, /*committed=*/true);
  tracer.txn_execute(1200, NodeId{2}, ClientId{1}, 1, 0, /*duplicate=*/true,
                     /*committed=*/true, "deposit");

  MetricsRegistry& m = tracer.metrics();
  EXPECT_EQ(m.counter("tob.proposals").value(), 1u);
  EXPECT_EQ(m.counter("tob.decisions").value(), 1u);  // counted once per slot
  EXPECT_EQ(m.counter("txn.committed").value(), 1u);
  EXPECT_EQ(m.counter("txn.duplicates_suppressed").value(), 1u);
  // Decide latency measured from the first propose to the first decide.
  ASSERT_EQ(m.histogram("tob.decide_latency_us").count(), 1u);
  EXPECT_EQ(m.histogram("tob.decide_latency_us").sum(), 250u);
  // End-to-end transaction latency from begin to committed ack.
  ASSERT_EQ(m.histogram("txn.latency_us").count(), 1u);
  EXPECT_EQ(m.histogram("txn.latency_us").sum(), 500u);
  EXPECT_EQ(m.histogram("tob.batch_size").max(), 4u);
  // The formatted block mentions every touched metric.
  const std::string block = m.format();
  EXPECT_NE(block.find("tob.decide_latency_us"), std::string::npos);
  EXPECT_NE(block.find("txn.committed"), std::string::npos);
}

TEST(Tracer, AttachedToWorldRecordsNetworkAndCrashes) {
  sim::World world(1);
  Tracer tracer({.capacity = 1024, .record_messages = true});
  tracer.attach(world);

  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  world.set_handler(b, [](net::NodeContext&, const sim::Message&) {});
  const sim::Message ping = sim::make_msg("ping", std::string("x"));
  const std::size_t ping_bytes = ping.wire_size;
  EXPECT_EQ(ping_bytes,
            wire::frame_size(4, wire::body_size(std::string("x"))));  // exact, not estimated
  world.post(a, b, ping);
  world.run_until(1000000);
  world.crash(b);

  EXPECT_EQ(tracer.metrics().counter("net.messages").value(), 1u);
  EXPECT_EQ(tracer.metrics().counter("net.bytes").value(), ping_bytes);
  EXPECT_EQ(tracer.metrics().counter("net.bytes.ping").value(), ping_bytes);
  EXPECT_EQ(tracer.metrics().counter("replica.crashes").value(), 1u);

  const Trace trace = tracer.snapshot();
  bool saw_send = false;
  bool saw_deliver = false;
  bool saw_crash = false;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == EventKind::kMsgSend) {
      saw_send = true;
      EXPECT_EQ(trace.label_of(e), "ping");
      EXPECT_EQ(e.node, a);
      EXPECT_EQ(e.a, b.value);
      EXPECT_EQ(e.b, ping_bytes);
    }
    if (e.kind == EventKind::kMsgDeliver) {
      saw_deliver = true;
      EXPECT_EQ(e.node, b);
    }
    if (e.kind == EventKind::kCrash) {
      saw_crash = true;
      EXPECT_EQ(e.node, b);
    }
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_crash);
}

TEST(Tracer, RecordMessagesOffStillCountsNetworkMetrics) {
  sim::World world(1);
  Tracer tracer({.capacity = 1024, .record_messages = false});
  tracer.attach(world);

  const NodeId a = world.add_node("a");
  const NodeId b = world.add_node("b");
  world.set_handler(b, [](net::NodeContext&, const sim::Message&) {});
  world.post(a, b, sim::make_msg("ping", std::string("x")));
  world.run_until(1000000);

  EXPECT_EQ(tracer.metrics().counter("net.messages").value(), 1u);
  for (const TraceEvent& e : tracer.snapshot().events) {
    EXPECT_NE(e.kind, EventKind::kMsgSend);
    EXPECT_NE(e.kind, EventKind::kMsgDeliver);
  }
}

}  // namespace
}  // namespace shadow::obs
