// Unit tests for the offline trace checker: a clean trace passes with
// non-vacuous coverage, and each seeded invariant violation — total-order
// divergence, double execution, strict-serializability inversion, lost
// durability — is detected.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/checker.hpp"
#include "obs/trace.hpp"

namespace shadow::obs {
namespace {

/// Hand-building traces event by event keeps each test a readable script of
/// one execution; the builder only fills the fields the checker reads.
struct TraceBuilder {
  Trace trace;

  std::uint32_t label(const std::string& s) {
    const auto it = std::find(trace.strings.begin(), trace.strings.end(), s);
    if (it != trace.strings.end()) {
      return static_cast<std::uint32_t>(it - trace.strings.begin());
    }
    trace.strings.push_back(s);
    return static_cast<std::uint32_t>(trace.strings.size() - 1);
  }

  TraceEvent& add(net::Time t, EventKind kind, NodeId node) {
    TraceEvent e;
    e.time = t;
    e.kind = kind;
    e.node = node;
    trace.events.push_back(e);
    return trace.events.back();
  }

  void begin(net::Time t, ClientId c, RequestSeq s) {
    TraceEvent& e = add(t, EventKind::kTxnBegin, NodeId{100 + c.value});
    e.client = c;
    e.seq = s;
    e.label = label("deposit");
  }

  void execute(net::Time t, NodeId node, ClientId c, RequestSeq s, std::uint64_t order,
               bool duplicate = false, const std::string& proc = "deposit") {
    TraceEvent& e = add(t, EventKind::kTxnExecute, node);
    e.client = c;
    e.seq = s;
    e.a = order;
    e.b = duplicate ? 1 : 0;
    e.c = 1;  // committed
    e.label = label(proc);
  }

  void ack(net::Time t, ClientId c, RequestSeq s, bool committed = true) {
    TraceEvent& e = add(t, EventKind::kTxnAck, NodeId{100 + c.value});
    e.client = c;
    e.seq = s;
    e.a = committed ? 1 : 0;
  }

  void deliver(net::Time t, NodeId node, std::uint64_t index, ClientId c, RequestSeq s) {
    TraceEvent& e = add(t, EventKind::kTobDeliver, node);
    e.client = c;
    e.seq = s;
    e.a = index;  // slot == index in these hand-built traces
    e.b = index;
  }

  void crash(net::Time t, NodeId node) { add(t, EventKind::kCrash, node); }

  void group_info(NodeId node, std::uint64_t group) {
    TraceEvent& e = add(0, EventKind::kGroupInfo, node);
    e.a = group;
  }

  void xs_phase(net::Time t, NodeId node, ClientId c, RequestSeq s, XsPhase phase,
                std::uint64_t group, std::uint64_t pos = 0) {
    TraceEvent& e = add(t, EventKind::kXsPhase, node);
    e.client = c;
    e.seq = s;
    e.a = static_cast<std::uint64_t>(phase);
    e.b = group;
    e.c = pos;
    e.label = label("transfer");
  }

  void ro_cut(net::Time t, ClientId c, RequestSeq s, std::uint64_t group,
              std::uint64_t version, std::uint64_t parts) {
    TraceEvent& e = add(t, EventKind::kRoCut, NodeId{100 + c.value});
    e.client = c;
    e.seq = s;
    e.a = group;
    e.b = version;
    e.c = parts;
  }
};

bool has_violation(const CheckResult& result, const std::string& invariant) {
  return std::any_of(result.violations.begin(), result.violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

/// Two replicas execute two transactions in the same order, both acked after
/// execution: every invariant holds and the coverage counters are non-zero.
TEST(Checker, CleanTracePassesWithCoverage) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.deliver(20, NodeId{1}, 0, ClientId{1}, 1);
  b.deliver(21, NodeId{2}, 0, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{2}, ClientId{1}, 1, 0);
  b.ack(40, ClientId{1}, 1);
  b.begin(50, ClientId{2}, 1);
  b.deliver(60, NodeId{1}, 1, ClientId{2}, 1);
  b.deliver(61, NodeId{2}, 1, ClientId{2}, 1);
  b.execute(70, NodeId{1}, ClientId{2}, 1, 1);
  b.execute(71, NodeId{2}, ClientId{2}, 1, 1);
  b.ack(80, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.replicas_checked, 2u);
  EXPECT_EQ(result.executions_checked, 4u);
  EXPECT_EQ(result.committed_txns_checked, 2u);
  EXPECT_NE(result.summary().find("PASSED"), std::string::npos);
}

TEST(Checker, EmptyTracePassesVacuously) {
  const CheckResult result = check_trace(Trace{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.replicas_checked, 0u);
  EXPECT_EQ(result.executions_checked, 0u);
}

/// Replica 1 executes (c1#1, c2#1); replica 2 executes them in the opposite
/// order at the same indices — the replicas diverge.
TEST(Checker, DetectsExecutionOrderDivergence) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.begin(11, ClientId{2}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{1}, ClientId{2}, 1, 1);
  b.execute(30, NodeId{2}, ClientId{2}, 1, 0);
  b.execute(31, NodeId{2}, ClientId{1}, 1, 1);
  b.ack(40, ClientId{1}, 1);
  b.ack(41, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "total-order")) << result.summary();
  EXPECT_NE(result.summary().find("FAILED"), std::string::npos);
}

/// TOB learners disagree on which command occupies delivery index 0. Crash
/// status does not excuse this: consensus safety covers crashed learners too.
TEST(Checker, DetectsTobDeliveryDivergenceEvenOnCrashedNode) {
  TraceBuilder b;
  b.deliver(20, NodeId{1}, 0, ClientId{1}, 1);
  b.deliver(21, NodeId{2}, 0, ClientId{2}, 7);
  b.crash(30, NodeId{2});

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "total-order")) << result.summary();
}

/// One replica executes the same (client, seq) twice without the dedup table
/// marking the second as a duplicate.
TEST(Checker, DetectsDoubleExecutionOfSameTransaction) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(35, NodeId{1}, ClientId{1}, 1, 1);  // re-executed, not flagged duplicate
  b.ack(40, ClientId{1}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "at-most-once")) << result.summary();
}

/// One replica executes two different transactions at the same order index.
TEST(Checker, DetectsDoubleExecutionOfSameOrderIndex) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.begin(11, ClientId{2}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{1}, ClientId{2}, 1, 0);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "at-most-once")) << result.summary();
}

/// A duplicate answer served from the dedup table is NOT a violation.
TEST(Checker, ToleratesDedupTableDuplicates) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(35, NodeId{1}, ClientId{1}, 1, kUnordered, /*duplicate=*/true);
  b.ack(40, ClientId{1}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// c2#1 was submitted (t=50) after c1#1 was acknowledged (t=40), yet the
/// agreed order serializes c2#1 first — a real-time inversion.
TEST(Checker, DetectsStrictSerializabilityInversion) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 1);  // c1#1 at order 1
  b.ack(40, ClientId{1}, 1);
  b.begin(50, ClientId{2}, 1);  // submitted after c1#1's answer...
  b.execute(60, NodeId{1}, ClientId{2}, 1, 0);  // ...but serialized before it
  b.ack(70, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "strict-serializability")) << result.summary();
}

/// Same interleaving in the agreed order, but c2#1 began before c1#1 was
/// acked — concurrent transactions may serialize either way.
TEST(Checker, AllowsConcurrentTransactionsInEitherOrder) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.begin(15, ClientId{2}, 1);  // concurrent with c1#1
  b.execute(30, NodeId{1}, ClientId{2}, 1, 0);
  b.execute(31, NodeId{1}, ClientId{1}, 1, 1);
  b.ack(40, ClientId{1}, 1);
  b.ack(41, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// A committed answer whose transaction only ever executed on a replica that
/// later crashed: the answer is not durable.
TEST(Checker, DetectsLostDurability) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.ack(40, ClientId{1}, 1);
  b.crash(50, NodeId{1});  // the only replica that executed it is gone

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "durability")) << result.summary();
}

/// The same crash is harmless when a surviving replica also executed the
/// transaction.
TEST(Checker, DurabilitySatisfiedByAnySurvivingReplica) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{2}, ClientId{1}, 1, 0);
  b.ack(40, ClientId{1}, 1);
  b.crash(50, NodeId{1});

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// A crashed primary's unacknowledged suffix may diverge from the order the
/// next configuration commits; by default crashed replicas are excluded from
/// the execution-order agreement check.
TEST(Checker, CrashedReplicaDivergenceToleratedByDefault) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.begin(11, ClientId{2}, 1);
  // Old primary executed c2#1 at order 1 but crashed before anyone acked it.
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{1}, ClientId{2}, 1, 1);
  b.crash(35, NodeId{1});
  // The new configuration re-executes order 0 identically but orders a
  // different transaction at index 1.
  b.execute(40, NodeId{2}, ClientId{1}, 1, 0);
  b.ack(45, ClientId{1}, 1);

  EXPECT_TRUE(check_trace(b.trace).ok());

  CheckOptions strict;
  strict.include_crashed_in_order_check = true;
  // With the crashed node included there is no divergence either (its log is
  // a superset at disjoint indices) — extend replica 2 to disagree at index 1.
  b.begin(46, ClientId{3}, 1);
  b.execute(50, NodeId{2}, ClientId{3}, 1, 1);
  b.ack(55, ClientId{3}, 1);
  EXPECT_TRUE(check_trace(b.trace).ok());
  EXPECT_FALSE(check_trace(b.trace, strict).ok());
}

/// Internal procedures (reconfigurations, "::"-prefixed) are not client
/// transactions and never count toward the checks.
TEST(Checker, IgnoresInternalProcedures) {
  TraceBuilder b;
  b.execute(30, NodeId{1}, ClientId{0}, 1, 0, false, "::reconfig");
  b.execute(31, NodeId{2}, ClientId{0}, 2, 0, false, "::view-change");

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.executions_checked, 0u);
}

/// Aborted answers carry no durability or ordering obligation.
TEST(Checker, AbortedAnswersAreNotChecked) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.ack(40, ClientId{1}, 1, /*committed=*/false);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.committed_txns_checked, 0u);
}

/// The violation cap keeps a systematically broken trace's report bounded.
TEST(Checker, ViolationReportIsCapped) {
  TraceBuilder b;
  for (std::uint64_t i = 0; i < 100; ++i) {
    // Every index executed twice on the same replica.
    b.execute(10 + i, NodeId{1}, ClientId{1}, i + 1, i);
    b.execute(11 + i, NodeId{1}, ClientId{2}, i + 1, i);
  }
  CheckOptions options;
  options.max_violations = 5;
  const CheckResult result = check_trace(b.trace, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.violations.size(), 5u);
}

// ---- sharded traces ---------------------------------------------------------

/// A 2PC decision applied as commit on one shard but abort on the other: the
/// transfer is half-applied and the checker must reject the trace. This is
/// the seeded isolation violation the sharded e2e gates rely on being
/// detectable.
TEST(Checker, DetectsCrossShardCommitAbortSplit) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.begin(10, ClientId{1}, 1);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kPrepare, 0);
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kPrepare, 1);
  b.xs_phase(30, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0);
  b.xs_phase(31, NodeId{2}, ClientId{1}, 1, XsPhase::kAbort, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "cross-shard-atomicity")) << result.summary();
}

/// One group applying BOTH decisions for the same transaction is equally
/// broken (a replayed decide flipping the verdict).
TEST(Checker, DetectsConflictingDecisionsWithinOneGroup) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kPrepare, 0);
  b.xs_phase(30, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0);
  b.xs_phase(40, NodeId{1}, ClientId{1}, 1, XsPhase::kAbort, 0);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "cross-shard-atomicity")) << result.summary();
}

/// Uniform decisions — commit everywhere, or abort everywhere — pass.
TEST(Checker, UniformCrossShardDecisionsPass) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0);
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kCommit, 1);
  b.xs_phase(30, NodeId{1}, ClientId{2}, 1, XsPhase::kAbort, 0);
  b.xs_phase(31, NodeId{2}, ClientId{2}, 1, XsPhase::kAbort, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// Nodes of different groups legitimately execute different transactions at
/// the same order index — order agreement is scoped to the group. A
/// single-group trace with the same events would be a total-order violation.
TEST(Checker, OrderAgreementIsScopedPerGroup) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.begin(11, ClientId{2}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{2}, ClientId{2}, 1, 0);  // same index, different txn
  b.ack(40, ClientId{1}, 1);
  b.ack(41, ClientId{2}, 1);
  EXPECT_FALSE(check_trace(b.trace).ok());  // one group: divergence

  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  EXPECT_TRUE(check_trace(b.trace).ok()) << check_trace(b.trace).summary();
}

/// Two groups serializing two concurrent committed transactions in opposite
/// orders is NOT a violation: with no conflict information in the trace the
/// transactions may commute (and under no-wait 2PC, concurrently-committed
/// ones provably do). Regression test for an over-strict cross-group cycle
/// check that rejected exactly this.
TEST(Checker, AllowsOppositePositionsInDifferentGroups) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.begin(10, ClientId{1}, 1);
  b.begin(11, ClientId{2}, 1);  // concurrent with c1#1
  // Group 0 serializes c1#1 before c2#1; group 1 the other way around.
  b.execute(30, NodeId{1}, ClientId{1}, 1, 0);
  b.execute(31, NodeId{1}, ClientId{2}, 1, 1);
  b.execute(30, NodeId{2}, ClientId{2}, 1, 0);
  b.execute(31, NodeId{2}, ClientId{1}, 1, 1);
  b.ack(40, ClientId{1}, 1);
  b.ack(41, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.committed_txns_checked, 2u);
}

/// The real-time scan still applies within each group of a sharded trace.
TEST(Checker, DetectsRealTimeInversionInsideOneGroupOfShardedTrace) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.begin(10, ClientId{1}, 1);
  b.execute(30, NodeId{1}, ClientId{1}, 1, 1);
  b.ack(40, ClientId{1}, 1);
  b.begin(50, ClientId{2}, 1);                  // after c1#1's answer...
  b.execute(60, NodeId{1}, ClientId{2}, 1, 0);  // ...but serialized before it in group 0
  b.ack(70, ClientId{2}, 1);
  // Group 1 does unrelated clean work.
  b.begin(12, ClientId{3}, 1);
  b.execute(35, NodeId{2}, ClientId{3}, 1, 0);
  b.ack(45, ClientId{3}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "strict-serializability")) << result.summary();
}

// ---- read-only snapshot cuts ------------------------------------------------

/// A committed cross-shard transfer applied at position 5 on group 0 and 9 on
/// group 1. A read-only cut pinned at {g0: 5, g1: 8} sees the transfer's
/// debit but not its credit — a torn read the checker must reject. This is
/// the seeded violation the snapshot-read e2e gates rely on being detectable.
TEST(Checker, DetectsTornSnapshotReadCut) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0, /*pos=*/5);
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kCommit, 1, /*pos=*/9);
  b.begin(30, ClientId{2}, 1);
  b.ro_cut(40, ClientId{2}, 1, 0, 5, 2);  // includes: 5 <= 5
  b.ro_cut(40, ClientId{2}, 1, 1, 8, 2);  // excludes: 9 > 8
  b.ack(50, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "snapshot-read")) << result.summary();
  EXPECT_EQ(result.ro_cuts_checked, 1u);
}

/// Cuts that include the transaction everywhere, or exclude it everywhere,
/// both pass — atomic visibility only demands uniformity.
TEST(Checker, ConsistentSnapshotReadCutsPass) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0, /*pos=*/5);
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kCommit, 1, /*pos=*/9);
  b.begin(30, ClientId{2}, 1);
  b.ro_cut(40, ClientId{2}, 1, 0, 6, 2);  // after the commit on both groups
  b.ro_cut(40, ClientId{2}, 1, 1, 9, 2);
  b.ack(50, ClientId{2}, 1);
  b.begin(60, ClientId{2}, 2);
  b.ro_cut(70, ClientId{2}, 2, 0, 4, 2);  // before the commit on both groups
  b.ro_cut(70, ClientId{2}, 2, 1, 8, 2);
  b.ack(80, ClientId{2}, 2);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.ro_cuts_checked, 2u);
}

/// A cut sharing only ONE group with a committed cross-shard transaction can
/// never tear it: per-group visibility is atomic by construction.
TEST(Checker, SingleSharedGroupIsNeverATornCut) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.group_info(NodeId{3}, 2);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0, /*pos=*/5);
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kCommit, 1, /*pos=*/9);
  b.begin(30, ClientId{2}, 1);
  b.ro_cut(40, ClientId{2}, 1, 1, 3, 2);  // excludes the transfer on g1...
  b.ro_cut(40, ClientId{2}, 1, 2, 7, 2);  // ...g2 never saw it at all
  b.ack(50, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// Commit events without an apply position (pre-versioned-storage traces,
/// e.c == 0) are skipped rather than misread as "position 0, always included".
TEST(Checker, UnrecordedCommitPositionsAreSkipped) {
  TraceBuilder b;
  b.group_info(NodeId{1}, 0);
  b.group_info(NodeId{2}, 1);
  b.xs_phase(20, NodeId{1}, ClientId{1}, 1, XsPhase::kCommit, 0);  // pos unrecorded
  b.xs_phase(21, NodeId{2}, ClientId{1}, 1, XsPhase::kCommit, 1, /*pos=*/9);
  b.begin(30, ClientId{2}, 1);
  b.ro_cut(40, ClientId{2}, 1, 0, 100, 2);
  b.ro_cut(40, ClientId{2}, 1, 1, 1, 2);
  b.ack(50, ClientId{2}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
}

/// Read-only snapshot transactions never execute as state-machine commands,
/// so a committed answer with ro_cut events and no execution is NOT a
/// durability violation (a write with the same shape still is).
TEST(Checker, ReadOnlyTransactionsExemptFromDurability) {
  TraceBuilder b;
  b.begin(10, ClientId{1}, 1);
  b.ro_cut(20, ClientId{1}, 1, 0, 7, 1);
  b.ack(30, ClientId{1}, 1);

  const CheckResult result = check_trace(b.trace);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.committed_txns_checked, 1u);

  b.begin(40, ClientId{2}, 1);  // a write with no surviving execution
  b.ack(50, ClientId{2}, 1);
  EXPECT_TRUE(has_violation(check_trace(b.trace), "durability"));
}

}  // namespace
}  // namespace shadow::obs
