// TPC-C workload tests: loader invariants, all five transaction types,
// deterministic replay across diverse engines, consistency conditions.
#include <gtest/gtest.h>

#include "workload/tpcc.hpp"

namespace shadow::workload::tpcc {
namespace {

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : engine_(db::make_h2_traits()), config_(TpccConfig::small()) {
    load(engine_, config_, /*seed=*/7);
    register_procedures(registry_);
  }

  TxnOutcome run(const TxnGenerator::Txn& txn) {
    return run_procedure(engine_, registry_.get(txn.proc), txn.params);
  }

  db::Engine engine_;
  TpccConfig config_;
  ProcedureRegistry registry_;
};

TEST_F(TpccTest, LoaderPopulatesAllTables) {
  for (const char* table : {"item", "warehouse", "district", "customer", "history", "orders",
                            "new_order", "order_line", "stock"}) {
    EXPECT_TRUE(engine_.has_table(table)) << table;
  }
  // 1 warehouse, 2 districts, 30 customers each, 30 orders each (30 % undelivered).
  const db::TxnId t = engine_.begin();
  db::Statement count = db::make_scan("new_order", {});
  count.agg = db::Agg::kCount;
  const auto undelivered = engine_.execute(t, count).agg_value.as_int();
  EXPECT_EQ(undelivered, 2 * (30 - 21));
  engine_.commit(t);
}

TEST_F(TpccTest, LoadedDatabaseIsConsistent) {
  std::string detail;
  EXPECT_TRUE(check_consistency(engine_, config_, &detail)) << detail;
}

TEST_F(TpccTest, NewOrderCommitsAndAdvancesDistrict) {
  TxnGenerator gen(config_, 11);
  const db::TxnId t0 = engine_.begin();
  const auto before =
      engine_.execute(t0, db::make_select("district", {db::Value(1), db::Value(1)}));
  engine_.commit(t0);
  const std::int64_t next_before = before.rows[0][5].as_int();

  auto txn = gen.next_new_order();
  txn.params[1] = db::Value(1);  // pin district 1
  // Pin to the non-rollback path: replace any invalid item.
  for (std::size_t i = 5; i < txn.params.size(); i += 3) {
    if (txn.params[i].as_int() > config_.items) txn.params[i] = db::Value(1);
  }
  const TxnOutcome outcome = run(txn);
  ASSERT_TRUE(outcome.committed) << outcome.error;
  EXPECT_GE(outcome.statements, 6u + 5u * 4u);

  const db::TxnId t1 = engine_.begin();
  const auto after =
      engine_.execute(t1, db::make_select("district", {db::Value(1), db::Value(1)}));
  engine_.commit(t1);
  EXPECT_EQ(after.rows[0][5].as_int(), next_before + 1);
}

TEST_F(TpccTest, NewOrderWithInvalidItemRollsBackCleanly) {
  const std::uint64_t digest = engine_.state_digest();
  TxnGenerator gen(config_, 13);
  auto txn = gen.next_new_order();
  txn.params[5 + (txn.params[3].as_int() - 1) * 3] = db::Value(config_.items + 1);
  const TxnOutcome outcome = run(txn);
  EXPECT_FALSE(outcome.committed);
  EXPECT_EQ(engine_.state_digest(), digest) << "rollback must leave no trace";
}

TEST_F(TpccTest, PaymentByIdUpdatesBalancesAndYtd) {
  TxnGenerator gen(config_, 17);
  auto txn = gen.next_payment();
  txn.params[4] = db::Value(0);  // by customer id
  const TxnOutcome outcome = run(txn);
  ASSERT_TRUE(outcome.committed) << outcome.error;

  const db::TxnId t = engine_.begin();
  const auto wh = engine_.execute(t, db::make_select("warehouse", {txn.params[0]}));
  EXPECT_GT(wh.rows[0][3].as_double(), 300000.0);
  engine_.commit(t);
}

TEST_F(TpccTest, PaymentByLastNamePicksMedianCustomer) {
  TxnGenerator gen(config_, 19);
  auto txn = gen.next_payment();
  txn.params[4] = db::Value(1);  // by last name
  const TxnOutcome outcome = run(txn);
  ASSERT_TRUE(outcome.committed) << outcome.error;
}

TEST_F(TpccTest, OrderStatusReturnsOrderLines) {
  TxnGenerator gen(config_, 23);
  auto txn = gen.next_order_status();
  txn.params[2] = db::Value(0);  // by id — every customer has an initial order
  const TxnOutcome outcome = run(txn);
  ASSERT_TRUE(outcome.committed) << outcome.error;
  EXPECT_FALSE(outcome.rows.empty());  // the order's lines
}

TEST_F(TpccTest, DeliveryDrainsNewOrders) {
  TxnGenerator gen(config_, 29);
  const db::TxnId t0 = engine_.begin();
  db::Statement count = db::make_scan("new_order", {});
  count.agg = db::Agg::kCount;
  const std::int64_t before = engine_.execute(t0, count).agg_value.as_int();
  engine_.commit(t0);

  const TxnOutcome outcome = run(gen.next_delivery());
  ASSERT_TRUE(outcome.committed) << outcome.error;

  const db::TxnId t1 = engine_.begin();
  const std::int64_t after = engine_.execute(t1, count).agg_value.as_int();
  engine_.commit(t1);
  EXPECT_EQ(after, before - 2);  // one order delivered per district
}

TEST_F(TpccTest, StockLevelCommitsReadOnly) {
  const std::uint64_t digest = engine_.state_digest();
  TxnGenerator gen(config_, 31);
  const TxnOutcome outcome = run(gen.next_stock_level());
  ASSERT_TRUE(outcome.committed) << outcome.error;
  EXPECT_EQ(engine_.state_digest(), digest);
}

TEST_F(TpccTest, MixedWorkloadPreservesConsistency) {
  TxnGenerator gen(config_, 37);
  std::size_t committed = 0;
  for (int i = 0; i < 300; ++i) {
    if (run(gen.next()).committed) ++committed;
  }
  EXPECT_GT(committed, 250u);  // only the ~1 % new-order rollbacks abort
  std::string detail;
  EXPECT_TRUE(check_consistency(engine_, config_, &detail)) << detail;
}

TEST_F(TpccTest, DeterministicAcrossDiverseEngines) {
  // The same transaction sequence replayed on H2-like and Derby-like
  // replicas must produce identical logical states — the property ShadowDB's
  // diversity deployment depends on.
  db::Engine replica(db::make_derby_traits());
  load(replica, config_, /*seed=*/7);
  TxnGenerator gen_a(config_, 41);
  TxnGenerator gen_b(config_, 41);
  for (int i = 0; i < 200; ++i) {
    const auto txn_a = gen_a.next();
    const auto txn_b = gen_b.next();
    ASSERT_EQ(txn_a.proc, txn_b.proc);
    const TxnOutcome oa = run_procedure(engine_, registry_.get(txn_a.proc), txn_a.params);
    const TxnOutcome ob = run_procedure(replica, registry_.get(txn_b.proc), txn_b.params);
    ASSERT_EQ(oa.committed, ob.committed) << txn_a.proc << " diverged at txn " << i;
  }
  EXPECT_EQ(engine_.state_digest(), replica.state_digest());
}

TEST(TpccGenerator, MixMatchesSpecification) {
  TxnGenerator gen(TpccConfig::small(), 43);
  std::map<std::string, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[gen.next().proc];
  EXPECT_NEAR(counts[kNewOrderProc], 4500, 300);
  EXPECT_NEAR(counts[kPaymentProc], 4300, 300);
  EXPECT_NEAR(counts[kOrderStatusProc], 400, 120);
  EXPECT_NEAR(counts[kDeliveryProc], 400, 120);
  EXPECT_NEAR(counts[kStockLevelProc], 400, 120);
}

TEST(TpccLastName, MatchesSyllableTable) {
  EXPECT_EQ(last_name(0), "BARBARBAR");
  EXPECT_EQ(last_name(371), "PRICALLYOUGHT");
  EXPECT_EQ(last_name(999), "EINGEINGEING");
}

}  // namespace
}  // namespace shadow::workload::tpcc
