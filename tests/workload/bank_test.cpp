// Bank micro-benchmark workload tests: loader, procedures (including the
// deterministic overdraft rollback), conservation, and request encoding.
#include <gtest/gtest.h>

#include "workload/bank.hpp"
#include "workload/messages.hpp"

namespace shadow::workload::bank {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest() : engine_(db::make_h2_traits()) {
    load(engine_, config_);
    register_procedures(registry_);
  }

  TxnOutcome run(const char* proc, Params params) {
    return run_procedure(engine_, registry_.get(proc), params);
  }

  std::int64_t balance_of(std::int64_t id) {
    const TxnOutcome out = run(kBalanceProc, {db::Value(id)});
    SHADOW_CHECK(out.committed && !out.rows.empty());
    return out.rows[0][2].as_int();
  }

  db::Engine engine_;
  BankConfig config_{100, 0};
  ProcedureRegistry registry_;
};

TEST_F(BankTest, LoaderCreatesAccountsWithInitialBalance) {
  EXPECT_EQ(engine_.total_rows(), 100u);
  EXPECT_EQ(balance_of(0), 1000);
  EXPECT_EQ(balance_of(99), 1000);
  EXPECT_EQ(total_balance(engine_), 100 * 1000);
}

TEST_F(BankTest, DepositAddsToBalance) {
  ASSERT_TRUE(run(kDepositProc, {db::Value(5), db::Value(250)}).committed);
  EXPECT_EQ(balance_of(5), 1250);
  EXPECT_EQ(total_balance(engine_), 100 * 1000 + 250);
}

TEST_F(BankTest, TransferMovesMoney) {
  ASSERT_TRUE(run(kTransferProc, {db::Value(1), db::Value(2), db::Value(400)}).committed);
  EXPECT_EQ(balance_of(1), 600);
  EXPECT_EQ(balance_of(2), 1400);
  EXPECT_EQ(total_balance(engine_), 100 * 1000);  // conservation
}

TEST_F(BankTest, TransferOverdraftRollsBackDeterministically) {
  const TxnOutcome out = run(kTransferProc, {db::Value(1), db::Value(2), db::Value(5000)});
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(balance_of(1), 1000);
  EXPECT_EQ(balance_of(2), 1000);
}

TEST_F(BankTest, TransferFromMissingAccountRollsBack) {
  const TxnOutcome out = run(kTransferProc, {db::Value(12345), db::Value(2), db::Value(1)});
  EXPECT_FALSE(out.committed);
}

TEST_F(BankTest, AuditSumsAllBalances) {
  const TxnOutcome out = run(kAuditProc, {});
  ASSERT_TRUE(out.committed);
  EXPECT_EQ(out.agg_value.as_int(), 100 * 1000);
}

TEST_F(BankTest, DepositGeneratorStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Params p = make_deposit(rng, config_);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_GE(p[0].as_int(), 0);
    EXPECT_LT(p[0].as_int(), config_.accounts);
    EXPECT_GE(p[1].as_int(), 1);
    EXPECT_LE(p[1].as_int(), 100);
  }
}

TEST_F(BankTest, RowSizeMatchesPaperConfiguration) {
  // 16-byte rows: id (8) + empty owner + balance (8).
  const db::TxnId txn = engine_.begin();
  const db::ExecResult r = engine_.execute(txn, db::make_select(kTable, {db::Value(0)}));
  engine_.commit(txn);
  ASSERT_EQ(r.rows.size(), 1u);
  std::size_t payload = 0;
  payload += 8;                              // id
  payload += r.rows[0][1].as_string().size();  // owner
  payload += 8;                              // balance
  EXPECT_EQ(payload, 16u);
}

TEST(BankMessages, RequestRoundTripsThroughPayloadEncoding) {
  workload::TxnRequest req;
  req.client = ClientId{42};
  req.seq = 7;
  req.reply_to = NodeId{3};
  req.proc = kDepositProc;
  req.params = {db::Value(5), db::Value(123)};
  const std::string payload = workload::encode_request(req);
  const workload::TxnRequest decoded = workload::decode_request(payload);
  EXPECT_EQ(decoded.client.value, 42u);
  EXPECT_EQ(decoded.seq, 7u);
  EXPECT_EQ(decoded.reply_to.value, 3u);
  EXPECT_EQ(decoded.proc, kDepositProc);
  ASSERT_EQ(decoded.params.size(), 2u);
  EXPECT_EQ(decoded.params[0].as_int(), 5);
  EXPECT_EQ(decoded.params[1].as_int(), 123);
}

TEST(BankMessages, EncodingHandlesAllValueTypes) {
  workload::TxnRequest req;
  req.client = ClientId{1};
  req.seq = 1;
  req.proc = "p";
  req.params = {db::Value(), db::Value(-5), db::Value(2.5), db::Value("text")};
  const workload::TxnRequest decoded = workload::decode_request(workload::encode_request(req));
  ASSERT_EQ(decoded.params.size(), 4u);
  EXPECT_TRUE(decoded.params[0].is_null());
  EXPECT_EQ(decoded.params[1].as_int(), -5);
  EXPECT_DOUBLE_EQ(decoded.params[2].as_double(), 2.5);
  EXPECT_EQ(decoded.params[3].as_string(), "text");
}

}  // namespace
}  // namespace shadow::workload::bank
