// SpscRing: the pipeline's thread-boundary queue. Wraparound, FIFO order
// under concurrency, backpressure blocking, shutdown drain, and the
// move-only value contract — all also run under the TSan gate in check.sh.
// The ExecutorPipeline test at the bottom drives the ring's real consumer:
// shutdown with batches still queued must execute them all, not drop them.
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/codecs.hpp"
#include "core/pipeline.hpp"
#include "net/tcp_transport.hpp"
#include "workload/bank.hpp"
#include "workload/messages.hpp"

namespace shadow {
namespace {

TEST(SpscRing, FifoThroughWraparound) {
  SpscRing<int> ring(4);
  int next_in = 0;
  int next_out = 0;
  // Push/pop in a pattern that forces head_ to lap the storage repeatedly.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = next_in++;
      ASSERT_TRUE(ring.try_push(v));
    }
    for (int i = 0; i < 3; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, TryPushFailsOnFullWithoutConsumingTheValue) {
  SpscRing<std::unique_ptr<int>> ring(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  ASSERT_TRUE(ring.try_push(a));
  ASSERT_TRUE(ring.try_push(b));
  EXPECT_EQ(a, nullptr);  // moved from on success
  ASSERT_FALSE(ring.try_push(c));
  ASSERT_NE(c, nullptr);  // left intact on failure
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, PushBlocksUntilConsumerMakesRoom) {
  SpscRing<int> ring(1);
  int one = 1;
  ASSERT_TRUE(ring.try_push(one));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int two = 2;
    EXPECT_TRUE(ring.push(std::move(two)));  // must block: ring is full
    pushed.store(true);
  });

  // Give the producer a real chance to (incorrectly) complete early.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());

  auto v = ring.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  auto w = ring.pop();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2);
}

TEST(SpscRing, PopBlocksUntilProducerDelivers) {
  SpscRing<int> ring(4);
  std::thread consumer([&] {
    auto v = ring.pop();  // blocks: ring starts empty
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int v = 42;
  ASSERT_TRUE(ring.try_push(v));
  consumer.join();
}

TEST(SpscRing, CloseWakesBlockedProducerAndFailsThePush) {
  SpscRing<int> ring(1);
  int one = 1;
  ASSERT_TRUE(ring.try_push(one));
  std::thread producer([&] {
    int two = 2;
    EXPECT_FALSE(ring.push(std::move(two)));  // blocked full, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();
}

TEST(SpscRing, ShutdownDrainDeliversQueuedValuesThenReportsExhaustion) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  ring.close();
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  // Values pushed before close() still come out, in order.
  for (int i = 0; i < 3; ++i) {
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  // Only then does the closed ring report exhaustion (and never blocks).
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_FALSE(ring.pop_for(std::chrono::microseconds(1000)).has_value());
}

TEST(SpscRing, PopForTimesOutOnAnEmptyOpenRing) {
  SpscRing<int> ring(2);
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(ring.pop_for(std::chrono::microseconds(10000)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::microseconds(5000));
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesOrderAndCount) {
  constexpr int kValues = 20000;
  SpscRing<int> ring(8);  // small: exercises both full and empty waits
  std::thread producer([&] {
    for (int i = 0; i < kValues; ++i) {
      ASSERT_TRUE(ring.push(std::move(i)));
    }
    ring.close();
  });
  int expected = 0;
  while (auto v = ring.pop()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kValues);
}

// The ring's production consumer: a replica's DB-executor stage fed far more
// decided batches than its ring holds, then shut down immediately. shutdown()
// must flush — every queued batch executes, every response is posted — before
// the executor thread is joined; a shutdown that merely closed the ring would
// lose the queued tail. (Runs under the TSan gate in check.sh: the handoffs
// cross a real thread boundary.)
TEST(ExecutorPipeline, ShutdownDrainsNonEmptyRingWithoutLosingBatches) {
  core::register_wire_codecs();

  // An unstarted TCP transport is a pure in-process message sink: post()
  // routes same-host messages onto the loopback queue without any sockets.
  net::TcpOptions options;
  options.hosts = {net::TcpHostAddr{}};
  net::TcpTransport world(options);
  const net::HostId h0 = world.add_host();
  const NodeId replica = world.add_node("replica", h0);
  const NodeId client = world.add_node("client", h0);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{200, 0};
  auto engine = std::make_shared<db::Engine>(db::make_derby_traits());
  workload::bank::load(*engine, bank);
  core::TxnExecutor executor(engine, registry);

  constexpr std::uint64_t kBatches = 32;
  Rng rng(11);
  {
    // Ring capacity far below the batch count: pushes 5..32 backpressure
    // through the full-ring path while the executor drains.
    core::ExecutorPipeline pipeline(world, replica, executor,
                                    /*ring_capacity=*/4, /*tracer=*/nullptr);
    for (std::uint64_t i = 0; i < kBatches; ++i) {
      workload::TxnRequest req;
      req.client = ClientId{1};
      req.seq = i + 1;
      req.reply_to = client;
      req.proc = workload::bank::kDepositProc;
      req.params = workload::bank::make_deposit(rng, bank);
      consensus::Batch batch{
          consensus::Command{ClientId{1}, i + 1, workload::encode_request(req)}};
      pipeline.push(core::DeliverBatchHandoff{i + 1, i, consensus::EncodedBatch(batch)});
    }
    // Shut down with the ring (very likely) still holding undelivered
    // batches; the contract is flush-then-join, whatever the queue depth.
    pipeline.shutdown();
    EXPECT_EQ(pipeline.executed_txns(), kBatches);
    EXPECT_EQ(pipeline.queue_depth(), 0u);
  }
  EXPECT_EQ(executor.executed_count(), kBatches);
}

TEST(SpscRing, SharedPtrCrossesWithoutCopyingThePointee) {
  SpscRing<std::shared_ptr<std::vector<int>>> ring(2);
  auto payload = std::make_shared<std::vector<int>>(1000, 7);
  const std::vector<int>* raw = payload.get();
  ASSERT_TRUE(ring.try_push(payload));
  auto out = ring.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->get(), raw);  // same object: moved by reference, not copied
  EXPECT_EQ((*out)->size(), 1000u);
}

}  // namespace
}  // namespace shadow
