// SpscRing: the pipeline's thread-boundary queue. Wraparound, FIFO order
// under concurrency, backpressure blocking, shutdown drain, and the
// move-only value contract — all also run under the TSan gate in check.sh.
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace shadow {
namespace {

TEST(SpscRing, FifoThroughWraparound) {
  SpscRing<int> ring(4);
  int next_in = 0;
  int next_out = 0;
  // Push/pop in a pattern that forces head_ to lap the storage repeatedly.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = next_in++;
      ASSERT_TRUE(ring.try_push(v));
    }
    for (int i = 0; i < 3; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, TryPushFailsOnFullWithoutConsumingTheValue) {
  SpscRing<std::unique_ptr<int>> ring(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  ASSERT_TRUE(ring.try_push(a));
  ASSERT_TRUE(ring.try_push(b));
  EXPECT_EQ(a, nullptr);  // moved from on success
  ASSERT_FALSE(ring.try_push(c));
  ASSERT_NE(c, nullptr);  // left intact on failure
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, PushBlocksUntilConsumerMakesRoom) {
  SpscRing<int> ring(1);
  int one = 1;
  ASSERT_TRUE(ring.try_push(one));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int two = 2;
    EXPECT_TRUE(ring.push(std::move(two)));  // must block: ring is full
    pushed.store(true);
  });

  // Give the producer a real chance to (incorrectly) complete early.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());

  auto v = ring.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  auto w = ring.pop();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2);
}

TEST(SpscRing, PopBlocksUntilProducerDelivers) {
  SpscRing<int> ring(4);
  std::thread consumer([&] {
    auto v = ring.pop();  // blocks: ring starts empty
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int v = 42;
  ASSERT_TRUE(ring.try_push(v));
  consumer.join();
}

TEST(SpscRing, CloseWakesBlockedProducerAndFailsThePush) {
  SpscRing<int> ring(1);
  int one = 1;
  ASSERT_TRUE(ring.try_push(one));
  std::thread producer([&] {
    int two = 2;
    EXPECT_FALSE(ring.push(std::move(two)));  // blocked full, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();
}

TEST(SpscRing, ShutdownDrainDeliversQueuedValuesThenReportsExhaustion) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  ring.close();
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  // Values pushed before close() still come out, in order.
  for (int i = 0; i < 3; ++i) {
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  // Only then does the closed ring report exhaustion (and never blocks).
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_FALSE(ring.pop_for(std::chrono::microseconds(1000)).has_value());
}

TEST(SpscRing, PopForTimesOutOnAnEmptyOpenRing) {
  SpscRing<int> ring(2);
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(ring.pop_for(std::chrono::microseconds(10000)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::microseconds(5000));
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesOrderAndCount) {
  constexpr int kValues = 20000;
  SpscRing<int> ring(8);  // small: exercises both full and empty waits
  std::thread producer([&] {
    for (int i = 0; i < kValues; ++i) {
      ASSERT_TRUE(ring.push(std::move(i)));
    }
    ring.close();
  });
  int expected = 0;
  while (auto v = ring.pop()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kValues);
}

TEST(SpscRing, SharedPtrCrossesWithoutCopyingThePointee) {
  SpscRing<std::shared_ptr<std::vector<int>>> ring(2);
  auto payload = std::make_shared<std::vector<int>>(1000, 7);
  const std::vector<int>* raw = payload.get();
  ASSERT_TRUE(ring.try_push(payload));
  auto out = ring.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->get(), raw);  // same object: moved by reference, not copied
  EXPECT_EQ((*out)->size(), 1000u);
}

}  // namespace
}  // namespace shadow
