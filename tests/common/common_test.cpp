// Unit tests for the common substrate: deterministic RNG, byte
// serialization, statistics helpers, and the assertion macros.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace shadow {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool all_equal = true;
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_equal = all_equal && va == b.next();
    any_differs = any_differs || va != c.next();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(Rng, UniformStaysInBoundsAndCoversRange) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t v = rng.uniform(3, 8);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 8u);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 6u);  // every value hit
  for (const auto& [v, n] : counts) EXPECT_GT(n, 700) << v;
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / 20000.0, 25.0, 1.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(19);
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Bytes, PrimitivesRoundTrip) {
  BytesWriter w;
  w.u8(200);
  w.u32(0xdeadbeef);
  w.u64(0x123456789abcdef0ULL);
  w.i64(-42);
  w.f64(-3.25);
  w.str("hello");
  const Bytes buf = w.take();

  BytesReader r(buf);
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncationDetected) {
  BytesWriter w;
  w.u32(5);
  const Bytes buf = w.take();
  BytesReader r(buf);
  EXPECT_THROW(r.u64(), InvariantViolation);
}

TEST(Bytes, EmptyStringAndRemaining) {
  BytesWriter w;
  w.str("");
  w.u8(1);
  const Bytes buf = w.take();
  BytesReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Check, MacrosThrowTypedExceptions) {
  EXPECT_THROW(SHADOW_CHECK(false), InvariantViolation);
  EXPECT_THROW(SHADOW_REQUIRE(false), PreconditionViolation);
  EXPECT_NO_THROW(SHADOW_CHECK(true));
  EXPECT_NO_THROW(SHADOW_REQUIRE(true));
  try {
    SHADOW_CHECK_MSG(1 == 2, "one is not two");
    FAIL();
  } catch (const InvariantViolation& ex) {
    EXPECT_NE(std::string(ex.what()).find("one is not two"), std::string::npos);
  }
}

TEST(LatencyStats, MeanAndPercentiles) {
  LatencyStats stats;
  for (std::uint64_t v = 1; v <= 100; ++v) stats.add(v * 1000);  // 1..100 ms
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_DOUBLE_EQ(stats.mean_ms(), 50.5);
  EXPECT_NEAR(stats.percentile_ms(50), 50.5, 0.6);
  EXPECT_NEAR(stats.percentile_ms(99), 99.0, 1.1);
  EXPECT_EQ(stats.max_us(), 100000u);
}

TEST(ThroughputTimeline, BucketsRates) {
  ThroughputTimeline timeline(1000000);  // 1 s buckets
  for (int i = 0; i < 250; ++i) timeline.add(500000);    // bucket 0
  for (int i = 0; i < 100; ++i) timeline.add(1500000);   // bucket 1
  EXPECT_DOUBLE_EQ(timeline.rate_per_sec(0), 250.0);
  EXPECT_DOUBLE_EQ(timeline.rate_per_sec(1), 100.0);
  EXPECT_DOUBLE_EQ(timeline.rate_per_sec(9), 0.0);
}

}  // namespace
}  // namespace shadow
