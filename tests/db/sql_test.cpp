// Tests for the mini-SQL front end: parsing, point-lookup extraction,
// aggregates, arithmetic SET, and end-to-end execution via the engine.
#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "db/sql.hpp"

namespace shadow::db {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : engine_(make_h2_traits()) {
    exec_ddl("CREATE TABLE accounts (id BIGINT, owner VARCHAR(16), balance BIGINT, "
             "PRIMARY KEY (id))");
  }

  Statement parse(const std::string& sql) {
    return parse_sql(sql, [this](const std::string& name) -> const TableSchema* {
      return schemas_.count(name) > 0 ? &schemas_.at(name) : nullptr;
    });
  }

  void exec_ddl(const std::string& sql) {
    Statement stmt = parse(sql);
    ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
    schemas_[stmt.schema.name] = stmt.schema;
    engine_.create_table(stmt.schema);
  }

  ExecResult exec(const std::string& sql) {
    const TxnId t = engine_.begin();
    ExecResult r = engine_.execute(t, parse(sql));
    engine_.commit(t);
    return r;
  }

  Engine engine_;
  std::map<std::string, TableSchema> schemas_;
};

TEST_F(SqlTest, InsertAndPointSelect) {
  EXPECT_TRUE(exec("INSERT INTO accounts VALUES (1, 'alice', 100)").ok());
  const ExecResult r = exec("SELECT * FROM accounts WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].as_string(), "alice");
  EXPECT_EQ(r.rows[0][2].as_int(), 100);
}

TEST_F(SqlTest, FullPkEqualityBecomesPointLookup) {
  const Statement s = parse("SELECT * FROM accounts WHERE id = 7");
  EXPECT_EQ(s.kind, Statement::Kind::kSelect);
  ASSERT_EQ(s.key.size(), 1u);
  EXPECT_EQ(s.key[0].as_int(), 7);
}

TEST_F(SqlTest, NonKeyPredicateBecomesScan) {
  const Statement s = parse("SELECT * FROM accounts WHERE balance > 50");
  EXPECT_EQ(s.kind, Statement::Kind::kScan);
  ASSERT_EQ(s.where.size(), 1u);
  EXPECT_EQ(s.where[0].op, CmpOp::kGt);
}

TEST_F(SqlTest, ProjectionSelectsNamedColumns) {
  exec("INSERT INTO accounts VALUES (1, 'alice', 100)");
  const ExecResult r = exec("SELECT balance, owner FROM accounts WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_int(), 100);
  EXPECT_EQ(r.rows[0][1].as_string(), "alice");
}

TEST_F(SqlTest, UpdateArithmeticAndAssign) {
  exec("INSERT INTO accounts VALUES (1, 'alice', 100)");
  EXPECT_EQ(exec("UPDATE accounts SET balance = balance + 25 WHERE id = 1").affected, 1u);
  EXPECT_EQ(exec("UPDATE accounts SET owner = 'bob' WHERE id = 1").affected, 1u);
  EXPECT_EQ(exec("UPDATE accounts SET balance = balance - 5 WHERE id = 1").affected, 1u);
  const ExecResult r = exec("SELECT * FROM accounts WHERE id = 1");
  EXPECT_EQ(r.rows[0][1].as_string(), "bob");
  EXPECT_EQ(r.rows[0][2].as_int(), 120);
}

TEST_F(SqlTest, AggregatesAndOrderByLimit) {
  for (int i = 0; i < 10; ++i) {
    exec("INSERT INTO accounts VALUES (" + std::to_string(i) + ", 'u', " +
         std::to_string(i * 10) + ")");
  }
  EXPECT_EQ(exec("SELECT COUNT(*) FROM accounts").agg_value.as_int(), 10);
  EXPECT_EQ(exec("SELECT SUM(balance) FROM accounts").agg_value.as_int(), 450);
  EXPECT_EQ(exec("SELECT MIN(balance) FROM accounts WHERE id >= 4").agg_value.as_int(), 40);
  EXPECT_EQ(exec("SELECT MAX(id) FROM accounts").agg_value.as_int(), 9);

  const ExecResult top = exec("SELECT * FROM accounts ORDER BY balance DESC LIMIT 2");
  ASSERT_EQ(top.rows.size(), 2u);
  EXPECT_EQ(top.rows[0][2].as_int(), 90);
}

TEST_F(SqlTest, DeleteByKeyAndByPredicate) {
  for (int i = 0; i < 5; ++i) {
    exec("INSERT INTO accounts VALUES (" + std::to_string(i) + ", 'u', 0)");
  }
  EXPECT_EQ(exec("DELETE FROM accounts WHERE id = 0").affected, 1u);
  EXPECT_EQ(exec("DELETE FROM accounts WHERE id >= 3").affected, 2u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM accounts").agg_value.as_int(), 2);
}

TEST_F(SqlTest, CompositePrimaryKeyPointLookup) {
  exec_ddl("CREATE TABLE t2 (a BIGINT, b BIGINT, v VARCHAR, PRIMARY KEY (a, b))");
  const Statement s = parse("SELECT * FROM t2 WHERE b = 2 AND a = 1");
  EXPECT_EQ(s.kind, Statement::Kind::kSelect);
  ASSERT_EQ(s.key.size(), 2u);
  EXPECT_EQ(s.key[0].as_int(), 1);  // reordered to PK column order
  EXPECT_EQ(s.key[1].as_int(), 2);
}

TEST_F(SqlTest, SyntaxErrorsAreDiagnosed) {
  EXPECT_THROW(parse("SELEKT * FROM accounts"), PreconditionViolation);
  EXPECT_THROW(parse("SELECT * FROM nosuch"), PreconditionViolation);
  EXPECT_THROW(parse("SELECT * FROM accounts WHERE nope = 1"), PreconditionViolation);
  EXPECT_THROW(parse("INSERT INTO accounts VALUES (1)"), PreconditionViolation);
  EXPECT_THROW(parse("SELECT * FROM accounts WHERE id = 'unterminated"),
               PreconditionViolation);
}

TEST_F(SqlTest, StringAndDoubleLiterals) {
  exec_ddl("CREATE TABLE m (k BIGINT, x DOUBLE, s VARCHAR, PRIMARY KEY (k))");
  exec("INSERT INTO m VALUES (2, -3.25, 'plain')");
  const ExecResult r = exec("SELECT * FROM m WHERE k = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), -3.25);
  EXPECT_EQ(r.rows[0][2].as_string(), "plain");
}

}  // namespace
}  // namespace shadow::db
