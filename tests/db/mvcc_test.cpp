// Unit tests for the MVCC-lite versioned store: reads at historical state
// versions, version-chain GC under the reader watermark, reader pinning, and
// read-your-writes at the current version.
#include <gtest/gtest.h>

#include "db/engine.hpp"

namespace shadow::db {
namespace {

TableSchema kv_schema() {
  return TableSchema{"kv",
                     {{"k", ColumnType::kBigInt},
                      {"v", ColumnType::kBigInt},
                      {"s", ColumnType::kVarchar}},
                     {0}};
}

class MvccTest : public ::testing::Test {
 protected:
  MvccTest() : engine_(make_h2_traits()) { engine_.create_table(kv_schema()); }

  /// Commits one write at state version `version` (how the replication layer
  /// stamps deliveries: version = delivery index + 1, monotone).
  void put_at(std::uint64_t version, std::int64_t k, std::int64_t v) {
    engine_.set_state_version(version);
    const TxnId t = engine_.begin();
    ASSERT_TRUE(engine_.execute(t, make_insert("kv", {Value(k), Value(v), Value("x")})).ok());
    ASSERT_TRUE(engine_.commit(t).ok());
  }

  void update_at(std::uint64_t version, std::int64_t k, std::int64_t v) {
    engine_.set_state_version(version);
    const TxnId t = engine_.begin();
    ASSERT_TRUE(engine_.execute(t, make_update("kv", {Value(k)}, {{1, SetOp::kAssign, Value(v)}}))
                    .ok());
    ASSERT_TRUE(engine_.commit(t).ok());
  }

  void delete_at(std::uint64_t version, std::int64_t k) {
    engine_.set_state_version(version);
    const TxnId t = engine_.begin();
    ASSERT_TRUE(engine_.execute(t, make_delete("kv", {Value(k)})).ok());
    ASSERT_TRUE(engine_.commit(t).ok());
  }

  /// Point read of k at `version`; returns the value or nullopt if absent.
  std::optional<std::int64_t> read_at(std::uint64_t version, std::int64_t k) {
    const ExecResult r = engine_.read_at(make_select("kv", {Value(k)}), version);
    EXPECT_TRUE(r.ok());
    if (r.rows.empty()) return std::nullopt;
    return r.rows[0][1].as_int();
  }

  std::int64_t sum_at(std::uint64_t version) {
    Statement scan = make_scan("kv", {});
    scan.agg = Agg::kSum;
    scan.agg_column = 1;
    const ExecResult r = engine_.read_at(scan, version);
    EXPECT_TRUE(r.ok());
    return r.agg_value.as_int();
  }

  Engine engine_;
};

TEST_F(MvccTest, PointReadSeesValueAsOfVersion) {
  put_at(1, 1, 10);
  update_at(2, 1, 20);
  update_at(3, 1, 30);

  EXPECT_EQ(read_at(1, 1), 10);
  EXPECT_EQ(read_at(2, 1), 20);
  EXPECT_EQ(read_at(3, 1), 30);
  EXPECT_EQ(read_at(9, 1), 30);  // future versions read the current value
}

TEST_F(MvccTest, ReadBelowInsertSeesAbsence) {
  put_at(5, 7, 70);
  EXPECT_EQ(read_at(4, 7), std::nullopt);
  EXPECT_EQ(read_at(5, 7), 70);
}

TEST_F(MvccTest, ReadBelowDeleteSeesRow) {
  put_at(1, 1, 10);
  delete_at(2, 1);
  EXPECT_EQ(read_at(1, 1), 10);
  EXPECT_EQ(read_at(2, 1), std::nullopt);
}

TEST_F(MvccTest, ScanReconstructsDeletedAndUpdatedRows) {
  put_at(1, 1, 10);
  put_at(1, 2, 20);
  put_at(2, 3, 40);
  delete_at(3, 1);     // key 1 gone from storage
  update_at(3, 2, 99); // key 2 overwritten

  EXPECT_EQ(sum_at(1), 30);   // {1:10, 2:20}
  EXPECT_EQ(sum_at(2), 70);   // + {3:40}
  EXPECT_EQ(sum_at(3), 139);  // {2:99, 3:40}
}

TEST_F(MvccTest, ScanRowsIncludeHistoricalValues) {
  put_at(1, 1, 10);
  update_at(2, 1, 20);
  const ExecResult r = engine_.read_at(make_scan("kv", {}), 1);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].as_int(), 10);
}

TEST_F(MvccTest, MultipleMutationsWithinOneVersionKeepFirstPreImage) {
  put_at(1, 1, 10);
  // Two updates at the same version: a read below must see the value at the
  // version's start, not an intermediate.
  engine_.set_state_version(2);
  const TxnId t = engine_.begin();
  ASSERT_TRUE(engine_.execute(t, make_update("kv", {Value(1)}, {{1, SetOp::kAssign, Value(20)}}))
                  .ok());
  ASSERT_TRUE(engine_.execute(t, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(5)}})).ok());
  ASSERT_TRUE(engine_.commit(t).ok());
  EXPECT_EQ(read_at(1, 1), 10);
  EXPECT_EQ(read_at(2, 1), 25);
}

TEST_F(MvccTest, RolledBackTxnLeavesVersionedReadsIntact) {
  put_at(1, 1, 10);
  engine_.set_state_version(2);
  const TxnId t = engine_.begin();
  ASSERT_TRUE(engine_.execute(t, make_update("kv", {Value(1)}, {{1, SetOp::kAssign, Value(77)}}))
                  .ok());
  engine_.abort(t);
  EXPECT_EQ(read_at(1, 1), 10);
  EXPECT_EQ(read_at(2, 1), 10);
}

TEST_F(MvccTest, ReaderPinsHistoryAgainstGc) {
  put_at(1, 1, 10);
  const std::uint64_t reader = engine_.register_reader(1);
  update_at(2, 1, 20);
  update_at(3, 1, 30);
  EXPECT_GT(engine_.version_entries(), 0u);

  // The registered reader holds the watermark at 1: nothing it can still
  // read may be collected.
  engine_.gc_versions();
  EXPECT_EQ(engine_.read_watermark(), 1u);
  EXPECT_EQ(read_at(1, 1), 10);

  // Released, the watermark advances to the current version and the chains
  // drain to nothing — memory stays flat without readers.
  engine_.release_reader(reader);
  EXPECT_EQ(engine_.read_watermark(), 3u);
  engine_.gc_versions();
  EXPECT_EQ(engine_.version_entries(), 0u);
  EXPECT_GE(engine_.min_read_version(), 3u);
  EXPECT_EQ(read_at(3, 1), 30);  // current version still readable
}

TEST_F(MvccTest, GcKeepsEntriesAboveWatermark) {
  put_at(1, 1, 10);
  update_at(2, 1, 20);
  const std::uint64_t reader = engine_.register_reader(2);
  update_at(3, 1, 30);
  update_at(4, 1, 40);
  engine_.gc_versions();
  // Entries superseding at <= 2 die; the reader at 2 still reconstructs.
  EXPECT_EQ(read_at(2, 1), 20);
  EXPECT_TRUE(engine_.read_version_valid(2));
  EXPECT_FALSE(engine_.read_version_valid(1));
  engine_.release_reader(reader);
}

TEST_F(MvccTest, ReadYourWritesAtCurrentVersion) {
  put_at(1, 1, 10);
  update_at(2, 1, 42);
  // A client that just committed at version 2 and immediately reads at the
  // commit version must observe its own write.
  EXPECT_EQ(read_at(engine_.state_version(), 1), 42);
}

TEST_F(MvccTest, ResetForRestoreInvalidatesHistoryUntilFloorReset) {
  put_at(1, 1, 10);
  update_at(2, 1, 20);
  engine_.reset_for_restore({kv_schema()});
  EXPECT_EQ(engine_.version_entries(), 0u);
  EXPECT_FALSE(engine_.read_version_valid(2));
  // Transfer completion stamps the restore version as the new floor.
  engine_.set_delta_floor(5);
  engine_.set_state_version(5);
  EXPECT_TRUE(engine_.read_version_valid(5));
  EXPECT_FALSE(engine_.read_version_valid(4));
}

TEST_F(MvccTest, ReadAtRejectsWriteStatements) {
  put_at(1, 1, 10);
  const ExecResult r =
      engine_.read_at(make_update("kv", {Value(1)}, {{1, SetOp::kAssign, Value(0)}}), 1);
  EXPECT_FALSE(r.ok());
}

TEST_F(MvccTest, VersionedReadsTakeNoLocks) {
  put_at(1, 1, 10);
  // A writer holds an exclusive lock on the row; versioned reads must not
  // block on it (they never touch the lock manager).
  engine_.set_state_version(2);
  const TxnId writer = engine_.begin();
  ASSERT_TRUE(
      engine_.execute(writer, make_update("kv", {Value(1)}, {{1, SetOp::kAssign, Value(99)}}))
          .ok());
  EXPECT_EQ(read_at(1, 1), 10);  // sees the pre-image, not the uncommitted write
  ASSERT_TRUE(engine_.commit(writer).ok());
  EXPECT_EQ(read_at(2, 1), 99);
}

}  // namespace
}  // namespace shadow::db
