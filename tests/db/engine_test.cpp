// Unit tests for the SQL engine: CRUD, undo/rollback, predicate scans,
// aggregates, index range plans, locking and snapshots.
#include <gtest/gtest.h>

#include "db/engine.hpp"

namespace shadow::db {
namespace {

TableSchema kv_schema() {
  return TableSchema{"kv",
                     {{"k", ColumnType::kBigInt},
                      {"v", ColumnType::kBigInt},
                      {"s", ColumnType::kVarchar}},
                     {0}};
}

class EngineTest : public ::testing::TestWithParam<const char*> {
 protected:
  static EngineTraits traits_for(const std::string& name) {
    if (name == "h2like") return make_h2_traits();
    if (name == "hsqldblike") return make_hsqldb_traits();
    if (name == "derbylike") return make_derby_traits();
    if (name == "innodblike") return make_innodb_traits();
    return make_mysql_memory_traits();
  }

  EngineTest() : engine_(traits_for(GetParam())) { engine_.create_table(kv_schema()); }

  void put(std::int64_t k, std::int64_t v) {
    const TxnId t = engine_.begin();
    ASSERT_TRUE(engine_.execute(t, make_insert("kv", {Value(k), Value(v), Value("x")})).ok());
    ASSERT_TRUE(engine_.commit(t).ok());
  }

  Engine engine_;
};

TEST_P(EngineTest, InsertSelectRoundTrip) {
  put(1, 10);
  const TxnId t = engine_.begin();
  const ExecResult r = engine_.execute(t, make_select("kv", {Value(1)}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].as_int(), 10);
  engine_.commit(t);
}

TEST_P(EngineTest, SelectMissingKeyReturnsEmpty) {
  const TxnId t = engine_.begin();
  const ExecResult r = engine_.execute(t, make_select("kv", {Value(99)}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.rows.empty());
  engine_.commit(t);
}

TEST_P(EngineTest, UpdateAssignAndAdd) {
  put(1, 10);
  const TxnId t = engine_.begin();
  ASSERT_TRUE(engine_
                  .execute(t, make_update("kv", {Value(1)},
                                          {{1, SetOp::kAdd, Value(5)},
                                           {2, SetOp::kAssign, Value("y")}}))
                  .ok());
  ASSERT_TRUE(engine_.commit(t).ok());
  const TxnId t2 = engine_.begin();
  const ExecResult r = engine_.execute(t2, make_select("kv", {Value(1)}));
  EXPECT_EQ(r.rows[0][1].as_int(), 15);
  EXPECT_EQ(r.rows[0][2].as_string(), "y");
  engine_.commit(t2);
}

TEST_P(EngineTest, AbortRollsBackAllEffects) {
  put(1, 10);
  const TxnId t = engine_.begin();
  ASSERT_TRUE(engine_.execute(t, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(5)}})).ok());
  ASSERT_TRUE(engine_.execute(t, make_insert("kv", {Value(2), Value(20), Value("x")})).ok());
  ASSERT_TRUE(engine_.execute(t, make_delete("kv", {Value(1)})).ok());
  engine_.abort(t);

  const TxnId t2 = engine_.begin();
  const ExecResult r1 = engine_.execute(t2, make_select("kv", {Value(1)}));
  ASSERT_EQ(r1.rows.size(), 1u);
  EXPECT_EQ(r1.rows[0][1].as_int(), 10);  // update undone, delete undone
  const ExecResult r2 = engine_.execute(t2, make_select("kv", {Value(2)}));
  EXPECT_TRUE(r2.rows.empty());  // insert undone
  engine_.commit(t2);
}

TEST_P(EngineTest, DuplicateInsertAborts) {
  put(1, 10);
  const TxnId t = engine_.begin();
  const ExecResult r = engine_.execute(t, make_insert("kv", {Value(1), Value(0), Value("")}));
  EXPECT_EQ(r.status, ExecResult::Status::kAborted);
  if (engine_.is_active(t)) engine_.abort(t);
}

TEST_P(EngineTest, ScanWithPredicateAndAggregates) {
  for (std::int64_t k = 0; k < 20; ++k) put(k, k * 10);
  const TxnId t = engine_.begin();

  Statement count = make_scan("kv", {Condition{1, CmpOp::kGe, Value(100)}});
  count.agg = Agg::kCount;
  EXPECT_EQ(engine_.execute(t, count).agg_value.as_int(), 10);

  Statement sum = make_scan("kv", {});
  sum.agg = Agg::kSum;
  sum.agg_column = 1;
  EXPECT_EQ(engine_.execute(t, sum).agg_value.as_int(), 1900);

  Statement min = make_scan("kv", {Condition{0, CmpOp::kGt, Value(5)}});
  min.agg = Agg::kMin;
  min.agg_column = 1;
  EXPECT_EQ(engine_.execute(t, min).agg_value.as_int(), 60);

  Statement max = make_scan("kv", {});
  max.agg = Agg::kMax;
  max.agg_column = 0;
  EXPECT_EQ(engine_.execute(t, max).agg_value.as_int(), 19);
  engine_.commit(t);
}

TEST_P(EngineTest, ScanOrderByAndLimit) {
  for (std::int64_t k = 0; k < 10; ++k) put(k, 100 - k);
  const TxnId t = engine_.begin();
  Statement scan = make_scan("kv", {});
  scan.order_by = {{1, false}};
  scan.limit = 3;
  const ExecResult r = engine_.execute(t, scan);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].as_int(), 91);
  EXPECT_EQ(r.rows[2][1].as_int(), 93);
  engine_.commit(t);
}

TEST_P(EngineTest, UpdateWhereAndDeleteWhere) {
  for (std::int64_t k = 0; k < 10; ++k) put(k, k);
  const TxnId t = engine_.begin();
  const ExecResult u = engine_.execute(
      t, make_update_where("kv", {Condition{0, CmpOp::kLt, Value(5)}},
                           {{1, SetOp::kAdd, Value(100)}}));
  EXPECT_EQ(u.affected, 5u);
  Statement del;
  del.kind = Statement::Kind::kDeleteWhere;
  del.table = "kv";
  del.where = {Condition{0, CmpOp::kGe, Value(8)}};
  const ExecResult d = engine_.execute(t, del);
  EXPECT_EQ(d.affected, 2u);
  ASSERT_TRUE(engine_.commit(t).ok());

  const TxnId t2 = engine_.begin();
  Statement count = make_scan("kv", {});
  count.agg = Agg::kCount;
  EXPECT_EQ(engine_.execute(t2, count).agg_value.as_int(), 8);
  engine_.commit(t2);
}

TEST_P(EngineTest, SnapshotRestoreRoundTrip) {
  for (std::int64_t k = 0; k < 100; ++k) put(k, k * 3);
  const std::uint64_t digest_before = engine_.state_digest();

  const Engine::Snapshot snap = engine_.snapshot(1024);
  EXPECT_GT(snap.batches.size(), 1u);  // multiple ~1 KB batches
  EXPECT_EQ(snap.total_rows, 100u);

  Engine replica(traits_for(GetParam()));
  replica.reset_for_restore(snap.schemas);
  for (const auto& batch : snap.batches) replica.restore_batch(batch);
  EXPECT_EQ(replica.total_rows(), 100u);
  EXPECT_EQ(replica.state_digest(), digest_before);
}

TEST_P(EngineTest, DigestIsOrderIndependentAcrossEngines) {
  Engine other(traits_for(std::string(GetParam()) == "h2like" ? "mysql-memory" : "h2like"));
  other.create_table(kv_schema());
  for (std::int64_t k = 0; k < 50; ++k) {
    put(k, k);
    const TxnId t = other.begin();
    ASSERT_TRUE(other.execute(t, make_insert("kv", {Value(49 - k), Value(49 - k), Value("x")}))
                    .ok());
    ASSERT_TRUE(other.commit(t).ok());
  }
  EXPECT_EQ(engine_.state_digest(), other.state_digest());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values("h2like", "hsqldblike", "derbylike", "innodblike",
                                           "mysql-memory"));

// ---- locking behaviour -------------------------------------------------------

TEST(EngineLocking, TableLockBlocksSecondWriterUntilCommit) {
  Engine engine(make_h2_traits());  // table locks
  engine.create_table(kv_schema());
  const TxnId t0 = engine.begin();
  ASSERT_TRUE(engine.execute(t0, make_insert("kv", {Value(1), Value(1), Value("")})).ok());
  ASSERT_TRUE(engine.commit(t0).ok());

  std::vector<std::pair<TxnId, ExecResult>> woken;
  engine.set_wake([&](TxnId id, const ExecResult& r) { woken.emplace_back(id, r); });

  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  const ExecResult blocked =
      engine.execute(b, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}}));
  EXPECT_EQ(blocked.status, ExecResult::Status::kBlocked);

  ASSERT_TRUE(engine.commit(a).ok());
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0].first, b);
  EXPECT_TRUE(woken[0].second.ok());
  ASSERT_TRUE(engine.commit(b).ok());

  const TxnId t = engine.begin();
  EXPECT_EQ(engine.execute(t, make_select("kv", {Value(1)})).rows[0][1].as_int(), 3);
  engine.commit(t);
}

TEST(EngineLocking, RowLocksAllowDisjointWriters) {
  Engine engine(make_derby_traits());  // row locks
  engine.create_table(kv_schema());
  for (std::int64_t k = 1; k <= 2; ++k) {
    const TxnId t = engine.begin();
    ASSERT_TRUE(engine.execute(t, make_insert("kv", {Value(k), Value(0), Value("")})).ok());
    ASSERT_TRUE(engine.commit(t).ok());
  }
  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  EXPECT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  EXPECT_TRUE(engine.execute(b, make_update("kv", {Value(2)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  EXPECT_TRUE(engine.commit(a).ok());
  EXPECT_TRUE(engine.commit(b).ok());
}

TEST(EngineLocking, LockWaitTimeoutAbortsWaiter) {
  EngineTraits traits = make_h2_traits();
  traits.lock_timeout = 1000;  // 1 ms
  Engine engine(traits);
  engine.create_table(kv_schema());
  net::Time now = 0;
  engine.set_clock([&now] { return now; });

  std::vector<std::pair<TxnId, ExecResult>> woken;
  engine.set_wake([&](TxnId id, const ExecResult& r) { woken.emplace_back(id, r); });

  const TxnId t0 = engine.begin();
  ASSERT_TRUE(engine.execute(t0, make_insert("kv", {Value(1), Value(1), Value("")})).ok());
  ASSERT_TRUE(engine.commit(t0).ok());

  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  EXPECT_EQ(engine.execute(b, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).status,
            ExecResult::Status::kBlocked);

  now = 2000;  // past the deadline
  engine.tick(now);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0].first, b);
  EXPECT_EQ(woken[0].second.status, ExecResult::Status::kAborted);
  EXPECT_EQ(engine.aborted_count(), 1u);
  ASSERT_TRUE(engine.commit(a).ok());
}

TEST(EngineLocking, SharedReadersDoNotBlockEachOther) {
  Engine engine(make_h2_traits());
  engine.create_table(kv_schema());
  const TxnId t0 = engine.begin();
  ASSERT_TRUE(engine.execute(t0, make_insert("kv", {Value(1), Value(1), Value("")})).ok());
  ASSERT_TRUE(engine.commit(t0).ok());

  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  EXPECT_TRUE(engine.execute(a, make_select("kv", {Value(1)})).ok());
  EXPECT_TRUE(engine.execute(b, make_select("kv", {Value(1)})).ok());
  engine.commit(a);
  engine.commit(b);
}

// ---- index range scans ---------------------------------------------------------

TEST(EngineRangeScan, OrderedEngineVisitsOnlyMatchingPrefix) {
  Engine ordered(make_h2_traits());
  Engine hashed(make_mysql_memory_traits());
  TableSchema schema{"t",
                     {{"a", ColumnType::kBigInt}, {"b", ColumnType::kBigInt},
                      {"v", ColumnType::kBigInt}},
                     {0, 1}};
  for (Engine* e : {&ordered, &hashed}) {
    e->create_table(schema);
    const TxnId t = e->begin();
    for (std::int64_t a = 0; a < 50; ++a) {
      for (std::int64_t b = 0; b < 20; ++b) {
        ASSERT_TRUE(e->execute(t, make_insert("t", {Value(a), Value(b), Value(a * b)})).ok());
      }
    }
    ASSERT_TRUE(e->commit(t).ok());
  }
  const Statement scan = make_scan("t", {Condition{0, CmpOp::kEq, Value(7)}});
  const TxnId to = ordered.begin();
  const TxnId th = hashed.begin();
  const ExecResult ro = ordered.execute(to, scan);
  const ExecResult rh = hashed.execute(th, scan);
  EXPECT_EQ(ro.rows.size(), 20u);
  EXPECT_EQ(rh.rows.size(), 20u);
  // The ordered engine's range scan touches ~20 rows; the hash engine's
  // full scan touches all 1000 — visible as a large cost gap (the paper's
  // MySQL-memory "less than / order by" penalty).
  EXPECT_LT(ro.cost_us * 5, rh.cost_us);
  ordered.commit(to);
  hashed.commit(th);
}

TEST(EngineRangeScan, RangeBoundsOnTrailingKeyColumn) {
  Engine engine(make_h2_traits());
  TableSchema schema{"t", {{"a", ColumnType::kBigInt}, {"b", ColumnType::kBigInt}}, {0, 1}};
  engine.create_table(schema);
  const TxnId t = engine.begin();
  for (std::int64_t b = 0; b < 100; ++b) {
    ASSERT_TRUE(engine.execute(t, make_insert("t", {Value(1), Value(b)})).ok());
  }
  ASSERT_TRUE(engine.commit(t).ok());
  const TxnId t2 = engine.begin();
  const ExecResult r = engine.execute(
      t2, make_scan("t", {Condition{0, CmpOp::kEq, Value(1)},
                          Condition{1, CmpOp::kGe, Value(90)},
                          Condition{1, CmpOp::kLt, Value(95)}}));
  EXPECT_EQ(r.rows.size(), 5u);
  engine.commit(t2);
}

}  // namespace
}  // namespace shadow::db
