// Isolation-machinery tests: READ_COMMITTED statement-scoped read locks,
// immediate deadlock detection with clean victim teardown, FOR UPDATE
// semantics, and intention-lock gating of scans vs writers.
#include <gtest/gtest.h>

#include "db/engine.hpp"

namespace shadow::db {
namespace {

TableSchema kv_schema() {
  return {"kv", {{"k", ColumnType::kBigInt}, {"v", ColumnType::kBigInt}}, {0}};
}

void put(Engine& engine, std::int64_t k, std::int64_t v) {
  const TxnId t = engine.begin();
  ASSERT_TRUE(engine.execute(t, make_insert("kv", {Value(k), Value(v)})).ok());
  ASSERT_TRUE(engine.commit(t).ok());
}

TEST(ReadCommitted, ReadLocksAreStatementScoped) {
  Engine engine(make_h2_traits());  // read_committed = true
  engine.create_table(kv_schema());
  put(engine, 1, 10);

  const TxnId reader = engine.begin();
  ASSERT_TRUE(engine.execute(reader, make_select("kv", {Value(1)})).ok());
  // A writer in another transaction is NOT blocked by the completed read.
  const TxnId writer = engine.begin();
  EXPECT_TRUE(
      engine.execute(writer, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}}))
          .ok());
  engine.commit(writer);
  engine.commit(reader);
}

TEST(ReadCommitted, StrictTwoPhaseEngineHoldsReadLocks) {
  Engine engine(make_derby_traits());  // strict 2PL
  engine.create_table(kv_schema());
  put(engine, 1, 10);

  const TxnId reader = engine.begin();
  ASSERT_TRUE(engine.execute(reader, make_select("kv", {Value(1)})).ok());
  const TxnId writer = engine.begin();
  EXPECT_EQ(
      engine.execute(writer, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}}))
          .status,
      ExecResult::Status::kBlocked);
  engine.commit(reader);  // releasing the read lock wakes the writer
  engine.commit(writer);
}

TEST(ReadCommitted, ForUpdateHoldsToCommitEvenWhenReadCommitted) {
  Engine engine(make_h2_traits());
  engine.create_table(kv_schema());
  put(engine, 1, 10);

  const TxnId a = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_select_for_update("kv", {Value(1)})).ok());
  const TxnId b = engine.begin();
  EXPECT_EQ(engine.execute(b, make_select_for_update("kv", {Value(1)})).status,
            ExecResult::Status::kBlocked);
  engine.commit(a);
  engine.commit(b);
}

TEST(DeadlockDetection, VictimAbortsImmediatelyAndCleanly) {
  Engine engine(make_derby_traits());
  engine.create_table(kv_schema());
  put(engine, 1, 10);
  put(engine, 2, 20);

  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  ASSERT_TRUE(engine.execute(b, make_update("kv", {Value(2)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  EXPECT_EQ(engine.execute(a, make_update("kv", {Value(2)}, {{1, SetOp::kAdd, Value(1)}})).status,
            ExecResult::Status::kBlocked);
  // b closing the cycle aborts immediately — no timeout wait.
  const ExecResult r =
      engine.execute(b, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}}));
  EXPECT_EQ(r.status, ExecResult::Status::kAborted);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos);
  EXPECT_FALSE(engine.is_active(b)) << "the victim is fully torn down";

  // The victim's locks were released: a's blocked statement completed via
  // the wake path; a can commit and b's effects were rolled back.
  EXPECT_TRUE(engine.commit(a).ok());
  const TxnId check = engine.begin();
  EXPECT_EQ(engine.execute(check, make_select("kv", {Value(1)})).rows[0][1].as_int(), 11);
  EXPECT_EQ(engine.execute(check, make_select("kv", {Value(2)})).rows[0][1].as_int(), 21);
  engine.commit(check);
  EXPECT_EQ(engine.aborted_count(), 1u);
}

TEST(DeadlockDetection, NoFalsePositiveOnSimpleContention) {
  Engine engine(make_h2_traits());
  engine.create_table(kv_schema());
  put(engine, 1, 10);
  const TxnId a = engine.begin();
  const TxnId b = engine.begin();
  const TxnId c = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  EXPECT_EQ(engine.execute(b, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).status,
            ExecResult::Status::kBlocked);
  EXPECT_EQ(engine.execute(c, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).status,
            ExecResult::Status::kBlocked);
  // Plain queueing is not a deadlock; everyone completes in turn.
  std::vector<TxnId> order;
  engine.set_wake([&engine, &order](TxnId id, const ExecResult& r) {
    ASSERT_TRUE(r.ok());
    order.push_back(id);
    engine.commit(id);
  });
  engine.commit(a);
  EXPECT_EQ(order, (std::vector<TxnId>{b, c}));
  const TxnId check = engine.begin();
  EXPECT_EQ(engine.execute(check, make_select("kv", {Value(1)})).rows[0][1].as_int(), 13);
  engine.commit(check);
}

TEST(DeadlockDetection, DuplicateKeyAbortReleasesLocks) {
  Engine engine(make_h2_traits());
  engine.create_table(kv_schema());
  put(engine, 1, 10);
  const TxnId a = engine.begin();
  ASSERT_TRUE(engine.execute(a, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(1)}})).ok());
  const ExecResult dup = engine.execute(a, make_insert("kv", {Value(1), Value(0)}));
  EXPECT_EQ(dup.status, ExecResult::Status::kAborted);
  if (engine.is_active(a)) engine.abort(a);
  // The table lock must be free again.
  const TxnId b = engine.begin();
  EXPECT_TRUE(
      engine.execute(b, make_update("kv", {Value(1)}, {{1, SetOp::kAdd, Value(5)}})).ok());
  EXPECT_TRUE(engine.commit(b).ok());
  const TxnId check = engine.begin();
  // a's +1 was rolled back; only b's +5 applied.
  EXPECT_EQ(engine.execute(check, make_select("kv", {Value(1)})).rows[0][1].as_int(), 15);
  engine.commit(check);
}

}  // namespace
}  // namespace shadow::db
