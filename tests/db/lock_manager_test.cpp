// Unit tests for the multigranularity lock manager: compatibility matrix,
// upgrades, FIFO queueing, wake-up on release, deadline expiry, and the
// waits-for deadlock detector.
#include <gtest/gtest.h>

#include "db/lock_manager.hpp"

namespace shadow::db {
namespace {

const LockTarget kTableA{"a", std::nullopt};
const LockTarget kTableB{"b", std::nullopt};
const LockTarget kRowA1{"a", Key{Value(1)}};
const LockTarget kRowA2{"a", Key{Value(2)}};

TEST(LockCompatibility, MatrixMatchesTextbook) {
  using M = LockMode;
  // IS is compatible with everything but X.
  EXPECT_TRUE(lock_compatible(M::kIntentionShared, M::kIntentionShared));
  EXPECT_TRUE(lock_compatible(M::kIntentionShared, M::kIntentionExclusive));
  EXPECT_TRUE(lock_compatible(M::kIntentionShared, M::kShared));
  EXPECT_FALSE(lock_compatible(M::kIntentionShared, M::kExclusive));
  // IX with intentions only.
  EXPECT_TRUE(lock_compatible(M::kIntentionExclusive, M::kIntentionShared));
  EXPECT_TRUE(lock_compatible(M::kIntentionExclusive, M::kIntentionExclusive));
  EXPECT_FALSE(lock_compatible(M::kIntentionExclusive, M::kShared));
  EXPECT_FALSE(lock_compatible(M::kIntentionExclusive, M::kExclusive));
  // S with IS and S.
  EXPECT_TRUE(lock_compatible(M::kShared, M::kIntentionShared));
  EXPECT_FALSE(lock_compatible(M::kShared, M::kIntentionExclusive));
  EXPECT_TRUE(lock_compatible(M::kShared, M::kShared));
  EXPECT_FALSE(lock_compatible(M::kShared, M::kExclusive));
  // X with nothing.
  EXPECT_FALSE(lock_compatible(M::kExclusive, M::kIntentionShared));
  EXPECT_FALSE(lock_compatible(M::kExclusive, M::kExclusive));
}

TEST(LockManager, SharedHoldersCoexist) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(3, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
}

TEST(LockManager, ExclusiveBlocksEverything) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.acquire(3, kTableA, LockMode::kIntentionShared, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.waiting_count(), 2u);
}

TEST(LockManager, ReleaseGrantsFifo) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  ASSERT_EQ(lm.acquire(3, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  const std::vector<TxnId> granted = lm.release_all(1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);  // FIFO: txn 2 first
  EXPECT_TRUE(lm.holds(2, kTableA, LockMode::kExclusive));
  EXPECT_FALSE(lm.holds(3, kTableA, LockMode::kExclusive));
}

TEST(LockManager, ReleaseGrantsMultipleSharedWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kQueued);
  ASSERT_EQ(lm.acquire(3, kTableA, LockMode::kShared, 100), AcquireStatus::kQueued);
  const std::vector<TxnId> granted = lm.release_all(1);
  EXPECT_EQ(granted.size(), 2u);  // both readers wake together
}

TEST(LockManager, UpgradeInPlaceWhenSoleHolder) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  EXPECT_TRUE(lm.holds(1, kTableA, LockMode::kExclusive));
}

TEST(LockManager, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  // When the other reader leaves, the upgrade completes.
  const std::vector<TxnId> granted = lm.release_all(2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 1u);
}

TEST(LockManager, RowLocksOnDifferentRowsAreIndependent) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(1, kRowA1, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  EXPECT_EQ(lm.acquire(2, kRowA2, LockMode::kExclusive, 100), AcquireStatus::kGranted);
}

TEST(LockManager, IntentionLocksGateTableScans) {
  LockManager lm;
  // Writer: IX on the table + X on a row.
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kIntentionExclusive, 100),
            AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(1, kRowA1, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  // Scanner: S on the table conflicts with the IX.
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kQueued);
  // A later point writer queues behind the waiting scanner (FIFO fairness:
  // a stream of IX holders must not starve the scan).
  EXPECT_EQ(lm.acquire(3, kTableA, LockMode::kIntentionExclusive, 100),
            AcquireStatus::kQueued);
  // Once the first writer commits, the scanner goes first.
  const std::vector<TxnId> granted = lm.release_all(1);
  ASSERT_FALSE(granted.empty());
  EXPECT_EQ(granted[0], 2u);
}

TEST(LockManager, ExpiryRemovesWaitersAndGrantsNext) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 1000), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 500), AcquireStatus::kQueued);
  ASSERT_EQ(lm.acquire(3, kTableA, LockMode::kExclusive, 2000), AcquireStatus::kQueued);
  const LockManager::ExpireResult result = lm.expire(600);
  ASSERT_EQ(result.expired.size(), 1u);
  EXPECT_EQ(result.expired[0], 2u);  // only the 500-deadline waiter
  EXPECT_TRUE(result.granted.empty());
  EXPECT_EQ(lm.waiting_count(), 1u);
}

TEST(LockManager, DirectTwoTxnDeadlockDetected) {
  LockManager lm;
  // T1 holds A, T2 holds B; T1 queues on B; T2 requesting A closes a cycle.
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableB, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(1, kTableB, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 100), AcquireStatus::kDeadlock);
}

TEST(LockManager, ThreeTxnCycleDetected) {
  LockManager lm;
  const LockTarget c{"c", std::nullopt};
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableB, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(3, c, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(1, kTableB, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  ASSERT_EQ(lm.acquire(2, c, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.acquire(3, kTableA, LockMode::kExclusive, 100), AcquireStatus::kDeadlock);
}

TEST(LockManager, NoFalsePositiveOnPlainQueue) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kGranted);
  // T2 and T3 just wait in line; no cycle.
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.acquire(3, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
}

TEST(LockManager, SharedUpgradeDeadlockDetected) {
  LockManager lm;
  // The classic S→X upgrade deadlock between two readers.
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 100), AcquireStatus::kDeadlock);
}

TEST(LockManager, ReleaseSharedDropsOnlyReadModes) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kIntentionExclusive, 100),
            AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  lm.release_shared(1, kTableA);
  // The IX hold survives; an S-requester from another txn still conflicts.
  EXPECT_TRUE(lm.holds(1, kTableA, LockMode::kIntentionExclusive));
  EXPECT_EQ(lm.acquire(2, kTableA, LockMode::kShared, 100), AcquireStatus::kQueued);
}

TEST(LockManager, ReleaseSharedWakesScanners) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, kTableA, LockMode::kShared, 100), AcquireStatus::kGranted);
  ASSERT_EQ(lm.acquire(2, kTableA, LockMode::kExclusive, 100), AcquireStatus::kQueued);
  const std::vector<TxnId> granted = lm.release_shared(1, kTableA);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);
}

}  // namespace
}  // namespace shadow::db
