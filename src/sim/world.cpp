#include "sim/world.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "wire/registry.hpp"

namespace shadow::sim {

// ---------------------------------------------------------------- Context --

void Context::send(NodeId to, Message msg) {
  msg.from = self_;
  outbox_.emplace_back(to, std::move(msg));
}

void Context::multicast(const std::vector<NodeId>& tos, const Message& msg) {
  if (tos.empty()) return;
  Message shared = msg;
  // Zero-copy fan-out: when deliveries will take the byte path, serialize
  // the frame once here and let every destination reuse the same buffer.
  if (world_.byte_path_possible() &&
      (shared.encoded_body != nullptr || !shared.has_body())) {
    world_.ensure_encoded_frame(shared);
  }
  for (NodeId to : tos) send(to, shared);
}

TimerId Context::set_timer(Time delay, net::TimerFn fn) {
  return world_.schedule_timer_for_node(self_, now() + delay, std::move(fn));
}

void Context::cancel_timer(TimerId id) { world_.cancel(id); }

Rng& Context::rng() { return world_.node_rng(self_); }

// ------------------------------------------------------------------ World --

World::World(std::uint64_t seed, NetworkConfig net) : net_(net), rng_(seed) {}

World::~World() = default;

MachineId World::add_machine() {
  machines_.emplace_back();
  return MachineId{static_cast<std::uint32_t>(machines_.size() - 1)};
}

NodeId World::add_node(std::string name, std::optional<MachineId> machine) {
  // Not value_or: its argument is evaluated eagerly, which used to create a
  // phantom empty machine for every explicitly-placed node.
  const MachineId m = machine.has_value() ? *machine : add_machine();
  SHADOW_REQUIRE(m.value < machines_.size());
  Node node;
  node.name = std::move(name);
  node.machine = m;
  node.rng = rng_.fork();
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void World::set_handler(NodeId node, MessageHandler handler) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  nodes_[node.value].handler = std::move(handler);
}

const std::string& World::node_name(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].name;
}

MachineId World::machine_of(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].machine;
}

bool World::is_local(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return true;
}

Rng& World::node_rng(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].rng;
}

std::size_t World::run_until(Time t) {
  std::size_t n = 0;
  while (!events_.empty() && events_.top().at <= t) {
    Scheduled ev = events_.top();
    events_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    SHADOW_CHECK(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t World::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !events_.empty()) {
    Scheduled ev = events_.top();
    events_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    SHADOW_CHECK(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  return n;
}

bool World::idle() const { return events_.empty(); }

void World::post(NodeId from, NodeId to, Message msg) {
  msg.from = from;
  deliver(from, to, std::move(msg), now_);
}

TimerId World::schedule(Time delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  schedule_at(now_ + delay, id, std::move(fn));
  return id;
}

void World::cancel(TimerId id) { cancelled_.insert(id); }

TimerId World::schedule_timer_for_node(NodeId node, Time at, net::TimerFn fn) {
  const TimerId id = next_timer_++;
  schedule_at(at, id, [this, node, fn = std::move(fn)]() mutable {
    if (crashed(node)) return;
    enqueue_job(Job{node, now_, TimerJob{std::move(fn)}});
  });
  return id;
}

void World::crash(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  if (nodes_[node.value].crashed) return;
  nodes_[node.value].crashed = true;
  for (WorldObserver* obs : observers_) obs->on_crash(now_, node);
  // Drop queued jobs addressed to this node.
  auto& q = machines_[nodes_[node.value].machine.value].queue;
  std::erase_if(q, [node](const Job& j) { return j.node == node; });
}

void World::crash_machine(MachineId machine) {
  SHADOW_REQUIRE(machine.value < machines_.size());
  machines_[machine.value].crashed = true;
  machines_[machine.value].queue.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].machine == machine) crash(NodeId{static_cast<std::uint32_t>(i)});
  }
}

bool World::crashed(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].crashed || machines_[nodes_[node.value].machine.value].crashed;
}

void World::set_link_fault(NodeId from, NodeId to, LinkFault fault) {
  link_faults_[channel_key(from, to)] = fault;
}

void World::clear_link_fault(NodeId from, NodeId to) {
  link_faults_.erase(channel_key(from, to));
}

void World::set_partitioned(NodeId a, NodeId b, bool blocked) {
  if (blocked) {
    partitions_.insert(channel_key(a, b));
    partitions_.insert(channel_key(b, a));
  } else {
    partitions_.erase(channel_key(a, b));
    partitions_.erase(channel_key(b, a));
  }
}

void World::schedule_at(Time at, TimerId id, std::function<void()> fn) {
  SHADOW_CHECK(at >= now_);
  events_.push(Scheduled{at, seq_++, std::move(fn), id});
}

void World::enqueue_job(Job job) {
  const MachineId m = nodes_[job.node.value].machine;
  Machine& machine = machines_[m.value];
  if (machine.crashed) return;
  machine.queue.push_back(std::move(job));
  pump_machine(m);
}

void World::pump_machine(MachineId m) {
  Machine& machine = machines_[m.value];
  if (machine.pump_scheduled || machine.queue.empty() || machine.crashed) return;
  machine.pump_scheduled = true;
  const Time start = std::max(now_, machine.busy_until);
  schedule_at(start, 0, [this, m]() { run_job(m); });
}

void World::run_job(MachineId m) {
  Machine& machine = machines_[m.value];
  machine.pump_scheduled = false;
  if (machine.crashed || machine.queue.empty()) return;
  Job job = std::move(machine.queue.front());
  machine.queue.pop_front();

  if (!crashed(job.node)) {
    Context ctx(*this, job.node, now_);
    if (auto* msg = std::get_if<Message>(&job.payload)) {
      for (WorldObserver* obs : observers_) obs->on_deliver(now_, job.node, *msg);
      ++delivered_count_;
      Node& node = nodes_[job.node.value];
      if (node.handler) node.handler(ctx, *msg);
    } else {
      std::get<TimerJob>(job.payload).fn(ctx);
    }
    const Time completion = now_ + ctx.charged();
    machine.busy_until = std::max(machine.busy_until, completion);
    release_outbox(ctx, completion);
  }
  pump_machine(m);
}

void World::release_outbox(Context& ctx, Time completion) {
  for (auto& [to, msg] : ctx.outbox_) {
    const NodeId from = ctx.self();
    if (completion == now_) {
      deliver(from, to, std::move(msg), completion);
    } else {
      schedule_at(completion, 0,
                  [this, from, to, m = std::move(msg)]() mutable { deliver(from, to, std::move(m), now_); });
    }
  }
  ctx.outbox_.clear();
}

void World::deliver(NodeId from, NodeId to, Message msg, Time send_time) {
  SHADOW_REQUIRE(to.value < nodes_.size());
  if (crashed(from) || crashed(to)) return;
  if (partitions_.count(channel_key(from, to)) > 0) return;
  msg.uid = ++msg_uid_counter_;
  for (WorldObserver* obs : observers_) obs->on_send(send_time, from, to, msg);

  const Time latency = link_latency(from, to, msg.wire_size);
  Time arrival = send_time + latency;
  // TCP-like FIFO channels: never deliver earlier than a previously sent
  // message on the same (from, to) channel.
  Time& last = channel_last_delivery_[channel_key(from, to)];
  arrival = std::max(arrival, last);
  last = arrival;

  schedule_at(arrival, 0, [this, from, to, m = std::move(msg)]() mutable {
    if (crashed(to)) return;
    const bool byte_path = wire_fidelity_ || link_faults_.count(channel_key(from, to)) > 0;
    if (byte_path && !transmit_bytes(from, to, m)) return;  // corruption-as-loss
    enqueue_job(Job{to, now_, std::move(m)});
  });
}

bool World::transmit_bytes(NodeId from, NodeId to, Message& msg) {
  // Multicasts arrive with the frame already encoded (shared across the
  // fan-out); unicast sends encode here, once per transmission.
  const wire::SegmentedBytes& encoded = *ensure_encoded_frame(msg);

  // Fault injection flattens the scatter-gather frame into a private
  // contiguous copy and mutates that, so one corrupted destination cannot
  // damage the buffers the rest of the fan-out shares. This is the one
  // staging copy left in the system, and it runs only on faulted links;
  // clean links keep the segmented frame untouched.
  wire::SegmentedBytes faulted_frame;
  const wire::SegmentedBytes* frame = &encoded;
  if (const auto it = link_faults_.find(channel_key(from, to)); it != link_faults_.end()) {
    bool faulted = false;
    Bytes mutated;
    if (it->second.corrupt_prob > 0 && rng_.chance(it->second.corrupt_prob)) {
      // Flip one byte anywhere in the frame (prologue, header, or body —
      // including inside a spliced batch sub-frame).
      if (mutated.empty()) mutated = encoded.flatten();
      const std::size_t pos = rng_.index(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng_.index(255));
      faulted = true;
    }
    if (it->second.truncate_prob > 0 && rng_.chance(it->second.truncate_prob)) {
      if (mutated.empty()) mutated = encoded.flatten();
      mutated.resize(rng_.index(mutated.size()));
      faulted = true;
    }
    if (faulted) {
      ++frames_faulted_;
      faulted_frame = wire::SegmentedBytes(ByteView::owning(std::move(mutated)));
      frame = &faulted_frame;
    }
  }

  const auto drop = [&](wire::FrameStatus status) {
    // The checksum (or length prologue, or registry lookup) caught the
    // damage: the receiver discards the frame, and the protocol above sees
    // a lost message.
    ++wire_drops_;
    for (WorldObserver* obs : observers_) {
      obs->on_wire_drop(now_, from, to, msg.header, msg.wire_size, status);
    }
    return false;
  };

  wire::SegmentedFrameView view;
  const wire::FrameStatus status = wire::decode_frame_segments(*frame, view);
  if (status != wire::FrameStatus::kOk) return drop(status);
  SHADOW_CHECK(view.header == msg.header);
  if (msg.has_body()) {
    // A structurally valid frame whose header no codec was registered for
    // cannot be interpreted; receivers drop it rather than crash.
    if (!wire::registry().contains(msg.header)) {
      return drop(wire::FrameStatus::kUnknownHeader);
    }
    // The handler receives the freshly decoded body, not the sender's
    // object: any state shared through the shared_ptr body is severed.
    // (Encoded sub-frame *views* inside the body do share the frame's
    // buffers — they are immutable, so sharing is safe and free.)
    std::shared_ptr<const std::any> decoded = wire::registry().decode(msg.header, view.body);
    if (wire_fidelity_) {
      // Byte-identical re-encode is now structural: re-encoding splices the
      // very views decode produced, and the comparison streams over shared
      // buffers — no fresh serialization, no staging copy.
      const wire::SegmentedBytes reencoded =
          wire::registry().encode_segments(msg.header, *decoded);
      SHADOW_CHECK_MSG(msg.encoded_body != nullptr && reencoded == *msg.encoded_body,
                       "message '" + msg.header + "' does not round-trip byte-identically");
    }
    msg.body = std::move(decoded);
  }
  return true;
}

Time World::link_latency(NodeId from, NodeId to, std::size_t wire_size) {
  const bool same_machine = nodes_[from.value].machine == nodes_[to.value].machine;
  const Time base = same_machine ? net_.same_machine_latency : net_.base_latency;
  const Time transmit =
      static_cast<Time>(static_cast<double>(wire_size) / net_.bandwidth_bytes_per_us);
  const Time jitter = static_cast<Time>(rng_.exponential(net_.jitter_mean));
  return base + transmit + jitter;
}

}  // namespace shadow::sim
