// The deterministic discrete-event world: virtual clock, machines with a
// CPU-busy model, nodes (processes), a TCP-like FIFO network with latency +
// bandwidth, timers, crash and partition injection, and an observer hook the
// Logic-of-Events recorder subscribes to.
//
// World is the simulation backend of the net::Transport abstraction
// (net/transport.hpp): protocol code sees only net::NodeContext /
// net::Transport and runs identically on the TCP backend. Sim-only features
// — partitions, link faults, wire fidelity, the CPU-busy model — remain
// concrete World API.
//
// Execution model
// ---------------
// Each node belongs to a machine. A machine processes one job (incoming
// message or fired timer) at a time: a job arriving at time t starts at
// max(t, machine.busy_until), the handler runs and *charges* virtual CPU
// micros via Context::charge, and all messages it sends are released at the
// job's completion time. This is what makes throughput saturate and latency
// grow under load exactly as on the paper's cluster — co-located processes
// (ShadowDB replicas and Paxos acceptors share machines in §IV) compete for
// the same CPU.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"
#include "wire/framing.hpp"

namespace shadow::sim {

/// Simulated machines are the sim's realization of transport hosts.
using MachineId = net::HostId;

using TimerId = net::TimerId;
using MessageHandler = net::MessageHandler;

/// Trace observers moved to the transport layer; the sim keeps its old name.
using WorldObserver = net::TransportObserver;

class World;

/// Handed to message/timer handlers; the only way handlers interact with the
/// world (send, charge CPU, set timers), so all effects are attributable.
class Context final : public net::NodeContext {
 public:
  Context(World& world, NodeId self, Time start) : world_(world), self_(self), start_(start) {}

  NodeId self() const override { return self_; }
  Time now() const override { return start_ + charged_; }

  /// Queue a message send; released on the network at job completion.
  void send(NodeId to, Message msg) override;

  /// Send to many destinations. When the byte path is active (wire fidelity
  /// or link faults) the frame is encoded once and shared across the fan-out.
  void multicast(const std::vector<NodeId>& tos, const Message& msg) override;

  /// Consume virtual CPU time. Advances this machine's busy horizon.
  void charge(Time micros) override { charged_ += micros; }

  /// One-shot timer; the callback runs as a job on this node's machine.
  TimerId set_timer(Time delay, net::TimerFn fn) override;
  void cancel_timer(TimerId id) override;

  /// Per-node deterministic RNG.
  Rng& rng() override;

  World& world() { return world_; }
  Time charged() const { return charged_; }

 private:
  friend class World;
  World& world_;
  NodeId self_;
  Time start_;
  Time charged_ = 0;
  std::vector<std::pair<NodeId, Message>> outbox_;
};

/// Byte-level fault model for one directed link: each frame crossing it is
/// independently corrupted (one byte flipped) or truncated (tail cut) with
/// the given probabilities, drawn from the world's seeded RNG.
struct LinkFault {
  double corrupt_prob = 0.0;
  double truncate_prob = 0.0;
};

struct NetworkConfig {
  Time base_latency = 100_us;        // one-way propagation on the LAN
  Time same_machine_latency = 20_us; // loopback between co-located processes
  double bandwidth_bytes_per_us = 125.0;  // 1 Gb/s ≈ 125 B/µs
  double jitter_mean = 15.0;         // exponential jitter, microseconds
};

/// The simulated world. Deterministic given the seed and the schedule of
/// external stimuli.
class World final : public net::Transport {
 public:
  explicit World(std::uint64_t seed = 1, NetworkConfig net = {});
  ~World() override;

  // -- topology (net::Transport) -------------------------------------------
  MachineId add_machine();
  net::HostId add_host() override { return add_machine(); }
  /// Creates a node on the given machine (creates a fresh machine if omitted).
  NodeId add_node(std::string name, std::optional<MachineId> machine = std::nullopt) override;
  void set_handler(NodeId node, MessageHandler handler) override;
  const std::string& node_name(NodeId node) const override;
  MachineId machine_of(NodeId node) const;
  net::HostId host_of(NodeId node) const override { return machine_of(node); }
  /// The sim executes every node's handler in-process.
  bool is_local(NodeId node) const override;

  // -- clock / execution ---------------------------------------------------
  Time now() const override { return now_; }
  /// Runs events with timestamp <= t. Returns number of events processed.
  std::size_t run_until(Time t);
  /// Runs until the event queue drains (or max_events). Returns count.
  std::size_t run(std::size_t max_events = SIZE_MAX);
  bool idle() const;

  // -- external stimuli ----------------------------------------------------
  /// Inject a message from outside any handler (e.g. benchmark drivers).
  void post(NodeId from, NodeId to, Message msg) override;
  /// Schedule an arbitrary callback at now()+delay (benchmark drivers).
  TimerId schedule(Time delay, std::function<void()> fn);
  void cancel(TimerId id) override;

  // -- failure injection ---------------------------------------------------
  void crash(NodeId node);
  void crash_machine(MachineId machine);
  bool crashed(NodeId node) const;
  /// net::Transport lifecycle maps onto crash injection: a stopped node's
  /// handler never runs again and its pending timers are suppressed.
  void stop(NodeId node) override { crash(node); }
  bool stopped(NodeId node) const override { return crashed(node); }
  /// Cut (or heal) the link between two nodes, both directions.
  void set_partitioned(NodeId a, NodeId b, bool blocked);

  // -- wire fidelity / byte-level fault injection ---------------------------
  /// When on, every codec-built message is encoded to a real frame at send
  /// and decoded at delivery; the handler sees the freshly decoded body (so
  /// shared mutable state cannot be smuggled through shared_ptr bodies), and
  /// the decode is re-encoded and checked byte-identical (round-trip proof).
  void set_wire_fidelity(bool on) { wire_fidelity_ = on; }
  bool wire_fidelity() const { return wire_fidelity_; }

  /// Installs (or updates) a byte-level fault model on the directed link
  /// from→to. Corrupted/truncated frames fail frame validation at delivery
  /// and are dropped, surfaced via WorldObserver::on_wire_drop.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault);
  void clear_link_fault(NodeId from, NodeId to);

  std::uint64_t frames_faulted() const { return frames_faulted_; }
  std::uint64_t wire_drops() const { return wire_drops_; }

  // -- observation ----------------------------------------------------------
  std::uint64_t messages_delivered() const { return delivered_count_; }

  Rng& node_rng(NodeId node) override;

  /// Schedules a node-context timer at absolute time `at` (used by Context).
  TimerId schedule_timer_for_node(NodeId node, Time at, net::TimerFn fn) override;

 private:
  friend class Context;

  struct TimerJob {
    net::TimerFn fn;
  };
  struct Job {
    NodeId node;
    Time arrival;
    std::variant<Message, TimerJob> payload;
  };

  struct Node {
    std::string name;
    MachineId machine;
    MessageHandler handler;
    bool crashed = false;
    Rng rng;
  };

  struct Machine {
    Time busy_until = 0;
    std::deque<Job> queue;
    bool pump_scheduled = false;
    bool crashed = false;
  };

  struct Scheduled {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    TimerId id;
    bool operator>(const Scheduled& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// Whether any delivery may take the byte path (encode + decode real
  /// frames); multicast pre-encodes the shared frame only in that case.
  bool byte_path_possible() const { return wire_fidelity_ || !link_faults_.empty(); }

  void schedule_at(Time at, TimerId id, std::function<void()> fn);
  void enqueue_job(Job job);
  void pump_machine(MachineId machine);
  void run_job(MachineId machine);
  void release_outbox(Context& ctx, Time completion);
  void deliver(NodeId from, NodeId to, Message msg, Time send_time);
  /// Runs the byte path for one message: encode (or reuse the multicast's
  /// shared frame), inject faults, validate, decode. Returns false if the
  /// frame was dropped (corruption-as-loss); on success `msg` carries the
  /// freshly decoded body.
  bool transmit_bytes(NodeId from, NodeId to, Message& msg);
  Time link_latency(NodeId from, NodeId to, std::size_t wire_size);
  static std::uint64_t channel_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  NetworkConfig net_;
  Rng rng_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  TimerId next_timer_ = 1;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> events_;
  std::unordered_set<TimerId> cancelled_;
  std::vector<Node> nodes_;
  std::vector<Machine> machines_;
  std::unordered_map<std::uint64_t, Time> channel_last_delivery_;
  std::unordered_set<std::uint64_t> partitions_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t msg_uid_counter_ = 0;
  bool wire_fidelity_ = false;
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  std::uint64_t frames_faulted_ = 0;  // frames mutated by fault injection
  std::uint64_t wire_drops_ = 0;      // frames dropped at delivery validation
};

}  // namespace shadow::sim
