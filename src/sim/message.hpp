// Compatibility aliases: messages moved to net/message.hpp when the
// transport abstraction was extracted (the same Message travels through the
// simulator and the TCP transport). Simulation-facing code and tests keep
// spelling `sim::Message` / `sim::make_msg`.
#pragma once

#include "net/message.hpp"

namespace shadow::sim {

using Message = net::Message;
using net::make_msg;
using net::make_signal;
using net::msg_body;
using net::msg_body_if;

}  // namespace shadow::sim
