// Messages exchanged by simulated processes.
//
// A message carries an EventML-style string header (base classes in the DSL
// pattern-match on it), a type-erased immutable body, and a wire size used
// by the network's bandwidth model.
#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace shadow::sim {

struct Message {
  std::string header;
  std::shared_ptr<const std::any> body;  // shared: messages are fanned out to many nodes
  std::size_t wire_size = 0;             // bytes on the wire (payload + framing)
  NodeId from{};
  std::uint64_t uid = 0;                 // per-transmission identity, assigned by the
                                         // network; lets LoE match sends to receives

  bool has_body() const { return body != nullptr && body->has_value(); }
};

/// Builds a message; wire size defaults to a small framing estimate and
/// should be overridden for bodies with meaningful sizes (snapshots, batches).
template <typename T>
Message make_msg(std::string header, T body, std::size_t wire_size = 0) {
  Message m;
  m.wire_size = wire_size != 0 ? wire_size : sizeof(T) + header.size() + 24;
  m.header = std::move(header);
  m.body = std::make_shared<const std::any>(std::move(body));
  return m;
}

inline Message make_signal(std::string header) {
  Message m;
  m.wire_size = header.size() + 24;
  m.header = std::move(header);
  return m;
}

/// Returns the body as T; throws if the message has a different body type.
template <typename T>
const T& msg_body(const Message& m) {
  SHADOW_CHECK_MSG(m.has_body(), "message '" + m.header + "' has no body");
  const T* p = std::any_cast<T>(m.body.get());
  SHADOW_CHECK_MSG(p != nullptr, "message '" + m.header + "' body type mismatch");
  return *p;
}

/// Returns the body as T, or nullptr on type mismatch / missing body.
template <typename T>
const T* msg_body_if(const Message& m) {
  if (!m.has_body()) return nullptr;
  return std::any_cast<T>(m.body.get());
}

}  // namespace shadow::sim
