// Virtual time for the discrete-event simulator.
//
// `sim::Time` is `net::Time` (microseconds); the simulator interprets it as
// virtual time since simulation start, which makes every experiment
// deterministic and independent of the host machine (see DESIGN.md §2 on
// substituting the paper's cluster). The literals live in net/time.hpp so
// protocol code can use them without depending on the simulator.
#pragma once

#include "net/time.hpp"

namespace shadow::sim {

using Time = net::Time;
using net::operator""_us;
using net::operator""_ms;
using net::operator""_s;
using net::to_ms;
using net::to_sec;

}  // namespace shadow::sim
