// Virtual time for the discrete-event simulator.
//
// All latency/throughput numbers reported by the benchmark harness are in
// virtual time, which makes every experiment deterministic and independent
// of the host machine (see DESIGN.md §2 on substituting the paper's cluster).
#pragma once

#include <cstdint>

namespace shadow::sim {

/// Virtual time in microseconds since simulation start.
using Time = std::uint64_t;

constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * 1000; }
constexpr Time operator""_s(unsigned long long v) { return static_cast<Time>(v) * 1000000; }

constexpr double to_ms(Time t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace shadow::sim
