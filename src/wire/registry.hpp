// Header → codec registry.
//
// `make_msg` registers each (header, body type) pair the first time the
// header is used; the simulator's wire-fidelity path and fault injector then
// encode/decode bodies by header alone, type-erased. Re-registering the same
// header with the same type is a no-op; with a *different* type it trips a
// check — one header, one body shape, everywhere in the stack. The same body
// type may be registered under many headers (PBR and chain replication share
// message shapes under distinct headers).
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "wire/codec.hpp"

namespace shadow::wire {

class Registry {
 public:
  using EncodeFn = std::function<Bytes(const std::any&)>;
  using EncodeSegmentsFn = std::function<SegmentedBytes(const std::any&)>;
  using DecodeFn = std::function<std::shared_ptr<const std::any>(std::span<const std::uint8_t>)>;
  using DecodeSegmentsFn = std::function<std::shared_ptr<const std::any>(const SegmentedBytes&)>;

  /// Registers the codec for `header` (idempotent per type).
  template <Encodable T>
  void ensure(const std::string& header) {
    auto it = entries_.find(header);
    if (it != entries_.end()) {
      SHADOW_CHECK_MSG(it->second.type == std::type_index(typeid(T)),
                       "header '" + header + "' already registered with a different body type");
      return;
    }
    Entry entry{
        std::type_index(typeid(T)),
        [](const std::any& body) {
          const T* v = std::any_cast<T>(&body);
          SHADOW_CHECK_MSG(v != nullptr, "body type does not match its header's codec");
          return encode_body(*v);
        },
        [](const std::any& body) {
          const T* v = std::any_cast<T>(&body);
          SHADOW_CHECK_MSG(v != nullptr, "body type does not match its header's codec");
          return encode_body_segments(*v);
        },
        [](std::span<const std::uint8_t> data) {
          return std::make_shared<const std::any>(decode_body<T>(data));
        },
        [](const SegmentedBytes& data) {
          return std::make_shared<const std::any>(decode_body<T>(data));
        },
    };
    entries_.emplace(header, std::move(entry));
  }

  bool contains(const std::string& header) const { return entries_.count(header) > 0; }

  /// Encodes a type-erased body registered under `header`.
  Bytes encode(const std::string& header, const std::any& body) const;

  /// Zero-copy encode: pre-encoded sub-frames inside the body (EncodedBatch
  /// payloads) are spliced by reference instead of re-serialized.
  SegmentedBytes encode_segments(const std::string& header, const std::any& body) const;

  /// Decodes body bytes into a fresh type-erased body.
  std::shared_ptr<const std::any> decode(const std::string& header,
                                         std::span<const std::uint8_t> data) const;

  /// Ownership-aware decode: sub-frame views inside the decoded body share
  /// the buffers backing `data`, so payloads survive past this frame without
  /// a copy.
  std::shared_ptr<const std::any> decode(const std::string& header,
                                         const SegmentedBytes& data) const;

  /// All registered headers, sorted (for the round-trip test suite).
  std::vector<std::string> headers() const;

 private:
  struct Entry {
    std::type_index type;
    EncodeFn encode;
    EncodeSegmentsFn encode_segments;
    DecodeFn decode;
    DecodeSegmentsFn decode_segments;
  };
  std::unordered_map<std::string, Entry> entries_;
};

/// The process-wide registry `make_msg` populates.
Registry& registry();

}  // namespace shadow::wire
