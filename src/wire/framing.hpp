// Wire framing: [magic u32][version u32][header_len u32][body_len u32]
//               [checksum u64][header bytes][body bytes]
//
// The fixed 24-byte prologue is `kFrameOverhead` — the single source of the
// `+ 24` framing constant that used to be duplicated across `make_msg` and
// `make_signal`. The checksum is FNV-1a over header + body, so single-byte
// corruption and truncation injected by the simulator's fault model are
// detected at delivery and surfaced as message drops (corruption-as-loss).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace shadow::wire {

/// Fixed per-message framing bytes (magic + version + two lengths + checksum).
inline constexpr std::size_t kFrameOverhead = 24;

inline constexpr std::uint32_t kFrameMagic = 0x57424453;  // "SDBW", little-endian
inline constexpr std::uint32_t kFrameVersion = 1;

/// Total frame length for a header/body of the given sizes.
constexpr std::size_t frame_size(std::size_t header_len, std::size_t body_len) {
  return kFrameOverhead + header_len + body_len;
}

/// FNV-1a 64-bit over header bytes then body bytes.
std::uint64_t frame_checksum(std::string_view header, std::span<const std::uint8_t> body);

/// Same checksum, streamed across a segmented body — no contiguous staging
/// copy is needed to checksum a frame whose body splices pre-encoded views.
std::uint64_t frame_checksum(std::string_view header, const SegmentedBytes& body);

/// Serializes a complete frame.
Bytes encode_frame(std::string_view header, std::span<const std::uint8_t> body);

/// Scatter-gather framing: the prologue + header become one freshly written
/// segment, the body segments are shared by reference (never copied). A
/// transport can write the result with a gathering send; flattening it yields
/// byte-identical output to encode_frame on the flattened body.
SegmentedBytes encode_frame_segments(std::string_view header, const SegmentedBytes& body);

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kBadMagic = 1,          // prologue corrupted beyond recognition
  kTruncated = 2,         // frame shorter than its declared lengths
  kChecksumMismatch = 3,  // payload bytes corrupted
  kUnknownHeader = 4,     // valid frame, but no codec registered for its header
};

const char* to_string(FrameStatus status);

/// Parsed view into a valid frame (spans point into the caller's buffer).
struct FrameView {
  std::string_view header;
  std::span<const std::uint8_t> body;
};

/// Validates and splits a frame. On any status other than kOk the view is
/// unspecified and must not be used.
FrameStatus decode_frame(std::span<const std::uint8_t> frame, FrameView& out);

/// Parsed view into a valid segmented frame: the header points into the
/// frame's first segment, the body shares the frame's buffers (zero-copy).
struct SegmentedFrameView {
  std::string_view header;
  SegmentedBytes body;
};

/// Segment-aware decode_frame. Requires the prologue + header to sit in the
/// frame's first segment — encode_frame_segments guarantees that, and a
/// flattened (contiguous) frame is trivially single-segment. The checksum is
/// streamed over the segments; no staging copy.
FrameStatus decode_frame_segments(const SegmentedBytes& frame, SegmentedFrameView& out);

}  // namespace shadow::wire
