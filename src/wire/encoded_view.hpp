// Zero-copy encoded-payload views at the wire layer.
//
// The underlying machinery (shared immutable buffers, offset/length views,
// segmented byte strings, the splice counters) lives in common/bytes.hpp so
// that BytesWriter/BytesReader can splice and share without the common layer
// depending on wire. This header gives those types their wire-layer names:
// a payload that was encoded once travels as a `wire::EncodedView` (or a
// `wire::SegmentedBytes` of several views) spliced into later frames instead
// of being re-encoded.
//
// Ownership model: an `OwnedBytes` buffer is created once — by the encoder
// that first serialized the payload, or by the transport that received the
// frame — and every view holds a reference. Views are immutable; decoding is
// lazy (consensus::EncodedBatch decodes commands on demand and remembers the
// source bytes). `batch_stats()` proves the invariant: one encode per batch
// lifetime, zero bytes copied on the relay/re-propose path.
#pragma once

#include "common/bytes.hpp"

namespace shadow::wire {

using shadow::OwnedBytes;
using shadow::SegmentedBytes;

/// An immutable offset/length view into a shared encoded buffer.
using EncodedView = shadow::ByteView;

/// Counters for the zero-copy payload path; surfaced by obs as
/// net.batch_encode_count / net.batch_splices / net.batch_bytes_copied.
using BatchStats = shadow::SpliceStats;

inline BatchStats& batch_stats() { return shadow::splice_stats(); }

}  // namespace shadow::wire
