#include "wire/framing.hpp"

namespace shadow::wire {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t frame_checksum(std::string_view header, std::span<const std::uint8_t> body) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(header.data()), header.size());
  h = fnv1a(h, body.data(), body.size());
  return h;
}

std::uint64_t frame_checksum(std::string_view header, const SegmentedBytes& body) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(header.data()), header.size());
  for (const ByteView& s : body.segments()) h = fnv1a(h, s.data(), s.size());
  return h;
}

Bytes encode_frame(std::string_view header, std::span<const std::uint8_t> body) {
  BytesWriter w;
  w.u32(kFrameMagic);
  w.u32(kFrameVersion);
  w.u32(static_cast<std::uint32_t>(header.size()));
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(frame_checksum(header, body));
  w.raw({reinterpret_cast<const std::uint8_t*>(header.data()), header.size()});
  w.raw(body);
  return w.take();
}

SegmentedBytes encode_frame_segments(std::string_view header, const SegmentedBytes& body) {
  BytesWriter w;
  w.u32(kFrameMagic);
  w.u32(kFrameVersion);
  w.u32(static_cast<std::uint32_t>(header.size()));
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(frame_checksum(header, body));
  w.raw({reinterpret_cast<const std::uint8_t*>(header.data()), header.size()});
  // Gather the frame by hand (not via BytesWriter::splice) so that frame
  // assembly — which happens for every message — does not count as a batch
  // splice in the zero-copy stats.
  SegmentedBytes out;
  out.append_owned(w.take());
  out.append(body);
  return out;
}

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kChecksumMismatch: return "checksum_mismatch";
    case FrameStatus::kUnknownHeader: return "unknown_header";
  }
  return "unknown";
}

FrameStatus decode_frame(std::span<const std::uint8_t> frame, FrameView& out) {
  if (frame.size() < kFrameOverhead) return FrameStatus::kTruncated;
  BytesReader r(frame);
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  if (magic != kFrameMagic || version != kFrameVersion) return FrameStatus::kBadMagic;
  const std::uint32_t header_len = r.u32();
  const std::uint32_t body_len = r.u32();
  const std::uint64_t checksum = r.u64();
  if (frame.size() != frame_size(header_len, body_len)) return FrameStatus::kTruncated;
  const std::string_view header(reinterpret_cast<const char*>(frame.data() + kFrameOverhead),
                                header_len);
  const std::span<const std::uint8_t> body = frame.subspan(kFrameOverhead + header_len, body_len);
  if (frame_checksum(header, body) != checksum) return FrameStatus::kChecksumMismatch;
  out = FrameView{header, body};
  return FrameStatus::kOk;
}

FrameStatus decode_frame_segments(const SegmentedBytes& frame, SegmentedFrameView& out) {
  if (frame.size() < kFrameOverhead) return FrameStatus::kTruncated;
  const std::vector<ByteView>& segs = frame.segments();
  if (segs.empty() || segs.front().size() < kFrameOverhead) return FrameStatus::kTruncated;
  const ByteView& first = segs.front();
  BytesReader r(first.span().first(kFrameOverhead));
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  if (magic != kFrameMagic || version != kFrameVersion) return FrameStatus::kBadMagic;
  const std::uint32_t header_len = r.u32();
  const std::uint32_t body_len = r.u32();
  const std::uint64_t checksum = r.u64();
  if (frame.size() != frame_size(header_len, body_len)) return FrameStatus::kTruncated;
  if (first.size() < kFrameOverhead + header_len) return FrameStatus::kTruncated;
  const std::string_view header(reinterpret_cast<const char*>(first.data() + kFrameOverhead),
                                header_len);
  SegmentedBytes body = frame.subrange(kFrameOverhead + header_len, body_len);
  if (frame_checksum(header, body) != checksum) return FrameStatus::kChecksumMismatch;
  out = SegmentedFrameView{header, std::move(body)};
  return FrameStatus::kOk;
}

}  // namespace shadow::wire
