// The Codec<T> trait: exact byte-level encoding for every message body.
//
// Each message-bearing struct in the stack specializes Codec<T> with a pair
// of static functions `encode(BytesWriter&, const T&)` and
// `decode(BytesReader&) -> T`. The simulator's `make_msg` uses the codec to
// compute the *exact* encoded length (no more sizeof-based estimates), the
// network's wire-fidelity mode uses it to prove every message round-trips
// through real bytes, and the byte-level fault injector corrupts the encoded
// frames the codec produces.
//
// Specializations for primitives and common containers live here; protocol
// layers specialize Codec for their own structs next to the struct
// definitions (consensus/types.hpp, tob/tob.hpp, core/replica_common.hpp,
// workload/messages.hpp, db/wire.hpp). This header depends only on common.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/ids.hpp"

namespace shadow::wire {

/// Primary template: undefined. Specialize for every type that travels as a
/// message body (or as a field of one).
template <typename T>
struct Codec;

/// Satisfied by types with a Codec specialization of the right shape.
template <typename T>
concept Encodable = requires(BytesWriter& w, BytesReader& r, const T& v) {
  { Codec<T>::encode(w, v) } -> std::same_as<void>;
  { Codec<T>::decode(r) } -> std::same_as<T>;
};

// ----------------------------------------------------------- primitives ----

/// Integrals travel as fixed 8-byte little-endian words: simplicity and
/// byte-identical re-encoding beat compactness in a simulator.
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
struct Codec<T> {
  static void encode(BytesWriter& w, const T& v) {
    if constexpr (std::is_signed_v<T>) {
      w.i64(static_cast<std::int64_t>(v));
    } else {
      w.u64(static_cast<std::uint64_t>(v));
    }
  }
  static T decode(BytesReader& r) {
    if constexpr (std::is_signed_v<T>) return static_cast<T>(r.i64());
    return static_cast<T>(r.u64());
  }
};

template <>
struct Codec<bool> {
  static void encode(BytesWriter& w, const bool& v) { w.u8(v ? 1 : 0); }
  static bool decode(BytesReader& r) { return r.u8() != 0; }
};

template <>
struct Codec<double> {
  static void encode(BytesWriter& w, const double& v) { w.f64(v); }
  static double decode(BytesReader& r) { return r.f64(); }
};

template <typename T>
  requires std::is_enum_v<T>
struct Codec<T> {
  static void encode(BytesWriter& w, const T& v) {
    w.u8(static_cast<std::uint8_t>(v));
  }
  static T decode(BytesReader& r) { return static_cast<T>(r.u8()); }
};

template <>
struct Codec<std::string> {
  static void encode(BytesWriter& w, const std::string& v) { w.str(v); }
  static std::string decode(BytesReader& r) { return r.str(); }
};

template <>
struct Codec<NodeId> {
  static void encode(BytesWriter& w, const NodeId& v) { w.u32(v.value); }
  static NodeId decode(BytesReader& r) { return NodeId{r.u32()}; }
};

template <>
struct Codec<ClientId> {
  static void encode(BytesWriter& w, const ClientId& v) { w.u32(v.value); }
  static ClientId decode(BytesReader& r) { return ClientId{r.u32()}; }
};

// ----------------------------------------------------------- containers ----

/// Raw byte blobs (snapshot chunks) keep their natural length-prefixed form.
template <>
struct Codec<Bytes> {
  static void encode(BytesWriter& w, const Bytes& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    w.raw(v);
  }
  static Bytes decode(BytesReader& r) {
    const std::uint32_t n = r.u32();
    Bytes out;
    out.reserve(std::min<std::size_t>(n, r.remaining()));
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.u8());
    return out;
  }
};

template <Encodable T>
struct Codec<std::vector<T>> {
  static void encode(BytesWriter& w, const std::vector<T>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) Codec<T>::encode(w, e);
  }
  static std::vector<T> decode(BytesReader& r) {
    const std::uint32_t n = r.u32();
    std::vector<T> out;
    // Do not trust a (possibly corrupted) count for the allocation; elements
    // consume at least one byte each, so truncation throws before OOM.
    out.reserve(std::min<std::size_t>(n, r.remaining()));
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(Codec<T>::decode(r));
    return out;
  }
};

template <Encodable A, Encodable B>
struct Codec<std::pair<A, B>> {
  static void encode(BytesWriter& w, const std::pair<A, B>& v) {
    Codec<A>::encode(w, v.first);
    Codec<B>::encode(w, v.second);
  }
  static std::pair<A, B> decode(BytesReader& r) {
    A a = Codec<A>::decode(r);
    B b = Codec<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <Encodable T>
struct Codec<std::optional<T>> {
  static void encode(BytesWriter& w, const std::optional<T>& v) {
    w.u8(v.has_value() ? 1 : 0);
    if (v.has_value()) Codec<T>::encode(w, *v);
  }
  static std::optional<T> decode(BytesReader& r) {
    if (r.u8() == 0) return std::nullopt;
    return Codec<T>::decode(r);
  }
};

// -------------------------------------------------------------- helpers ----

/// Encodes a body to a fresh byte buffer.
template <Encodable T>
Bytes encode_body(const T& v) {
  BytesWriter w;
  Codec<T>::encode(w, v);
  return w.take();
}

/// Encodes a body to a segmented buffer: any views the codec splices (the
/// EncodedBatch sub-frame protocol) ride along by reference instead of being
/// copied into the output. This is the zero-copy counterpart of encode_body.
template <Encodable T>
SegmentedBytes encode_body_segments(const T& v) {
  BytesWriter w;
  Codec<T>::encode(w, v);
  return w.take_segments();
}

/// Decodes a body, requiring the buffer to be consumed exactly.
template <Encodable T>
T decode_body(std::span<const std::uint8_t> data) {
  BytesReader r(data);
  T v = Codec<T>::decode(r);
  SHADOW_CHECK_MSG(r.done(), "trailing bytes after body decode");
  return v;
}

/// Ownership-aware decode: when `data` holds owned segments (a received
/// frame), decoded sub-frame views share those buffers, so a batch decoded
/// here can be re-framed later without re-encoding.
template <Encodable T>
T decode_body(const SegmentedBytes& data) {
  BytesReader r(data);
  T v = Codec<T>::decode(r);
  SHADOW_CHECK_MSG(r.done(), "trailing bytes after body decode");
  return v;
}

/// Exact encoded body length. One implementation (encode and measure), so
/// sizes can never drift from the encoder.
template <Encodable T>
std::size_t body_size(const T& v) {
  BytesWriter w;
  Codec<T>::encode(w, v);
  return w.size();
}

}  // namespace shadow::wire
