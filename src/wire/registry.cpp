#include "wire/registry.hpp"

#include <algorithm>

namespace shadow::wire {

Bytes Registry::encode(const std::string& header, const std::any& body) const {
  const auto it = entries_.find(header);
  SHADOW_CHECK_MSG(it != entries_.end(), "no codec registered for header '" + header + "'");
  return it->second.encode(body);
}

SegmentedBytes Registry::encode_segments(const std::string& header, const std::any& body) const {
  const auto it = entries_.find(header);
  SHADOW_CHECK_MSG(it != entries_.end(), "no codec registered for header '" + header + "'");
  return it->second.encode_segments(body);
}

std::shared_ptr<const std::any> Registry::decode(const std::string& header,
                                                 std::span<const std::uint8_t> data) const {
  const auto it = entries_.find(header);
  SHADOW_CHECK_MSG(it != entries_.end(), "no codec registered for header '" + header + "'");
  return it->second.decode(data);
}

std::shared_ptr<const std::any> Registry::decode(const std::string& header,
                                                 const SegmentedBytes& data) const {
  const auto it = entries_.find(header);
  SHADOW_CHECK_MSG(it != entries_.end(), "no codec registered for header '" + header + "'");
  return it->second.decode_segments(data);
}

std::vector<std::string> Registry::headers() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [header, entry] : entries_) out.push_back(header);
  std::sort(out.begin(), out.end());
  return out;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace shadow::wire
