// The unified, versioned state-transfer wire codec.
//
// Every ShadowDB replication protocol ships database state as the same
// stream shape: one `begin` (schemas + dedup floor + protocol bookkeeping),
// N row batches, protocol riders, one `done` (totals + resume bookkeeping).
// This header defines the bodies ONCE, in two codec versions:
//
//   * v1 — the original uncompressed full-copy bodies (SnapBeginBody /
//     SnapBatchBody / SnapDoneBody), byte-for-byte identical to what the
//     per-protocol copies in smr/pbr/chain historically emitted. PBR and
//     chain use them under their own headers; SMR rejoin and spare promotion
//     use them under the smr-snap-* headers. Pinned by
//     tests/repl/state_transfer_test.cpp.
//
//   * v2 — the compressed / incremental stream (SnapBegin2Body /
//     SnapBatch2Body / SnapDelete2Body / SnapDone2Body): each row batch
//     carries a flags byte (block-compressed payload, delta-upsert
//     semantics), deltas additionally ship per-table deletion lists, and the
//     epilogue carries a frame count so a receiver can tell a complete
//     stream from one with checksum-dropped frames. Used by SMR rejoin when
//     both ends opt in, and by shard-range migration.
//
// Layering: repl/ sees common/, wire/ and db/ only — never sim/, net/tcp,
// consensus/ or tob/ (enforced by scripts/check.sh).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "db/engine.hpp"
#include "db/wire.hpp"

namespace shadow::repl {

/// Snapshot stream prologue: schemas + dedup table + represented order.
struct SnapBeginBody {
  ConfigSeq config = 0;
  std::vector<db::TableSchema> schemas;
  std::vector<std::pair<std::uint32_t, RequestSeq>> dedup_seqs;
  std::uint64_t order = 0;  // executed-order the snapshot represents
};

/// One ~50 KB chunk of serialized rows.
struct SnapBatchBody {
  db::Engine::SnapshotBatch batch;
};

/// Snapshot stream epilogue / recovery acknowledgement. For SMR
/// crash-restart rejoin it additionally carries the TOB resume point: the
/// first slot the joiner must deliver itself, the global delivery index of
/// that slot, and the exact keys of control commands (reconfig/rejoin) the
/// snapshot covers — control clients use fresh ids per incarnation, so the
/// per-client dedup floor cannot cover them. Zeroed fields (PBR, chain,
/// plain spare promotion) mean "no TOB resume".
struct SnapDoneBody {
  SnapDoneBody() = default;
  explicit SnapDoneBody(ConfigSeq c, std::uint64_t r = 0) : config(c), rows(r) {}

  ConfigSeq config = 0;
  std::uint64_t rows = 0;  // total rows restored (SMR reports it back)
  std::uint64_t resume_slot = 0;
  std::uint64_t resume_index = 0;  // delivery index of resume_slot's first command
  std::vector<std::pair<std::uint32_t, std::uint64_t>> control_keys;
};

// -- v2: compressed / incremental stream --------------------------------------

/// Stream mode announced by the v2 prologue.
enum class TransferMode : std::uint8_t {
  kFull = 0,   // receiver resets and rebuilds from the batches
  kDelta = 1,  // receiver keeps its state and applies upserts + deletes
};

/// SnapBatch2Body.flags bits.
inline constexpr std::uint8_t kBatchCompressed = 1;   // payload is an LZSS block
inline constexpr std::uint8_t kBatchDeltaUpsert = 2;  // rows overwrite on key clash

/// v2 prologue. `tag` disambiguates concurrent streams sharing one header
/// (0 for rejoin; the migration id for shard rebalancing). `state_version`
/// is the sender's engine version at serialization — the receiver's new
/// delta floor, and the base a future delta can be requested against.
struct SnapBegin2Body {
  SnapBeginBody base;
  std::uint8_t mode = 0;  // TransferMode
  std::uint64_t state_version = 0;
  std::uint64_t tag = 0;
};

/// One v2 row batch: `raw` bytes of serialized rows, possibly compressed.
struct SnapBatch2Body {
  std::string table;
  std::uint8_t flags = 0;
  std::uint32_t raw_len = 0;  // payload length before compression
  std::uint64_t rows = 0;
  Bytes payload;
  std::uint64_t tag = 0;
};

/// Delta deletions for one table (keys removed since the receiver's base).
struct SnapDelete2Body {
  std::string table;
  std::vector<db::Key> keys;
  std::uint64_t tag = 0;
};

/// v2 epilogue. `frames` counts the batch + delete messages of the stream so
/// the receiver can detect checksum-dropped frames and re-request.
struct SnapDone2Body {
  SnapDoneBody base;
  std::uint64_t frames = 0;
  std::uint64_t tag = 0;
};

}  // namespace shadow::repl

namespace shadow::wire {

template <>
struct Codec<repl::SnapBeginBody> {
  static void encode(BytesWriter& w, const repl::SnapBeginBody& v) {
    w.u64(v.config);
    Codec<std::vector<db::TableSchema>>::encode(w, v.schemas);
    Codec<std::vector<std::pair<std::uint32_t, RequestSeq>>>::encode(w, v.dedup_seqs);
    w.u64(v.order);
  }
  static repl::SnapBeginBody decode(BytesReader& r) {
    repl::SnapBeginBody v;
    v.config = r.u64();
    v.schemas = Codec<std::vector<db::TableSchema>>::decode(r);
    v.dedup_seqs = Codec<std::vector<std::pair<std::uint32_t, RequestSeq>>>::decode(r);
    v.order = r.u64();
    return v;
  }
};

template <>
struct Codec<repl::SnapBatchBody> {
  static void encode(BytesWriter& w, const repl::SnapBatchBody& v) {
    Codec<db::Engine::SnapshotBatch>::encode(w, v.batch);
  }
  static repl::SnapBatchBody decode(BytesReader& r) {
    return {Codec<db::Engine::SnapshotBatch>::decode(r)};
  }
};

template <>
struct Codec<repl::SnapDoneBody> {
  static void encode(BytesWriter& w, const repl::SnapDoneBody& v) {
    w.u64(v.config);
    w.u64(v.rows);
    w.u64(v.resume_slot);
    w.u64(v.resume_index);
    Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::encode(w, v.control_keys);
  }
  static repl::SnapDoneBody decode(BytesReader& r) {
    repl::SnapDoneBody v;
    v.config = r.u64();
    v.rows = r.u64();
    v.resume_slot = r.u64();
    v.resume_index = r.u64();
    v.control_keys = Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::decode(r);
    return v;
  }
};

template <>
struct Codec<repl::SnapBegin2Body> {
  static void encode(BytesWriter& w, const repl::SnapBegin2Body& v) {
    Codec<repl::SnapBeginBody>::encode(w, v.base);
    w.u8(v.mode);
    w.u64(v.state_version);
    w.u64(v.tag);
  }
  static repl::SnapBegin2Body decode(BytesReader& r) {
    repl::SnapBegin2Body v;
    v.base = Codec<repl::SnapBeginBody>::decode(r);
    v.mode = r.u8();
    v.state_version = r.u64();
    v.tag = r.u64();
    return v;
  }
};

template <>
struct Codec<repl::SnapBatch2Body> {
  static void encode(BytesWriter& w, const repl::SnapBatch2Body& v) {
    w.str(v.table);
    w.u8(v.flags);
    w.u32(v.raw_len);
    w.u64(v.rows);
    Codec<Bytes>::encode(w, v.payload);
    w.u64(v.tag);
  }
  static repl::SnapBatch2Body decode(BytesReader& r) {
    repl::SnapBatch2Body v;
    v.table = r.str();
    v.flags = r.u8();
    v.raw_len = r.u32();
    v.rows = r.u64();
    v.payload = Codec<Bytes>::decode(r);
    v.tag = r.u64();
    return v;
  }
};

template <>
struct Codec<repl::SnapDelete2Body> {
  static void encode(BytesWriter& w, const repl::SnapDelete2Body& v) {
    w.str(v.table);
    Codec<std::vector<db::Key>>::encode(w, v.keys);
    w.u64(v.tag);
  }
  static repl::SnapDelete2Body decode(BytesReader& r) {
    repl::SnapDelete2Body v;
    v.table = r.str();
    v.keys = Codec<std::vector<db::Key>>::decode(r);
    v.tag = r.u64();
    return v;
  }
};

template <>
struct Codec<repl::SnapDone2Body> {
  static void encode(BytesWriter& w, const repl::SnapDone2Body& v) {
    Codec<repl::SnapDoneBody>::encode(w, v.base);
    w.u64(v.frames);
    w.u64(v.tag);
  }
  static repl::SnapDone2Body decode(BytesReader& r) {
    repl::SnapDone2Body v;
    v.base = Codec<repl::SnapDoneBody>::decode(r);
    v.frames = r.u64();
    v.tag = r.u64();
    return v;
  }
};

}  // namespace shadow::wire
