#include "repl/state_transfer.hpp"

#include <utility>

#include "net/message.hpp"
#include "repl/compress.hpp"

namespace shadow::repl {

namespace {

// Virtual CPU cost of the LZSS codec, per byte of raw payload. Calibrated to
// the rough throughput of small-window LZ codecs (~250 MB/s compressing,
// ~1 GB/s decompressing) so compression trades CPU for wire volume in the
// simulator the way it would on hardware.
constexpr double kCompressByteUs = 0.004;
constexpr double kDecompressByteUs = 0.001;

/// Wraps one serialized row batch as a v2 frame, compressing when asked and
/// profitable, and sends it. Keeps the raw bytes when compression does not
/// shrink them, so a frame never inflates.
void send_batch2(net::NodeContext& ctx, NodeId to, const StateTransfer::SendV2& spec,
                 const db::Engine::SnapshotBatch& batch, std::uint8_t base_flags,
                 SendStats& stats) {
  SnapBatch2Body body;
  body.table = batch.table;
  body.flags = base_flags;
  body.raw_len = static_cast<std::uint32_t>(batch.data.size());
  body.rows = batch.rows;
  body.tag = spec.tag;
  if (spec.compress) {
    Bytes packed = compress_block(batch.data);
    ctx.charge(static_cast<net::Time>(kCompressByteUs * static_cast<double>(batch.data.size())));
    if (!packed.empty() && packed.size() < batch.data.size()) {
      body.flags |= kBatchCompressed;
      body.payload = std::move(packed);
    } else {
      body.payload = batch.data;
    }
  } else {
    body.payload = batch.data;
  }
  stats.raw_bytes += batch.data.size();
  stats.wire_bytes += body.payload.size();
  ++stats.frames;
  ctx.send(to, net::make_msg(spec.headers.batch, std::move(body)));
}

}  // namespace

SendStats StateTransfer::send_full_v1(net::NodeContext& ctx, const db::Engine& engine,
                                      NodeId to, SendV1 spec) {
  // Serialize here (cost charged on this machine), stream ~50 KB batches;
  // the receiver pays the insertion cost per batch.
  const db::Engine::Snapshot snap = engine.snapshot(spec.batch_bytes);
  ctx.charge(snap.serialize_cost_us);
  if (spec.tracer) {
    spec.tracer->state_transfer(ctx.now(), ctx.self(), obs::StatePhase::kBegin, 0, to);
  }
  spec.begin.schemas = snap.schemas;
  ctx.send(to, net::make_msg(spec.headers.begin, std::move(spec.begin)));
  SendStats stats;
  for (const auto& batch : snap.batches) {
    stats.raw_bytes += batch.data.size();
    stats.wire_bytes += batch.data.size();
    ++stats.frames;
    ctx.send(to, net::make_msg(spec.headers.batch, SnapBatchBody{batch}));
  }
  stats.rows = snap.total_rows;
  if (spec.mid_stream) spec.mid_stream();
  if (spec.done_carries_rows) spec.done.rows = snap.total_rows;
  ctx.send(to, net::make_msg(spec.headers.done, std::move(spec.done)));
  return stats;
}

SendStats StateTransfer::send_v2(net::NodeContext& ctx, const db::Engine& engine,
                                 NodeId to, SendV2 spec) {
  SendStats stats;
  SnapDone2Body done;
  done.base = spec.done_base;
  done.tag = spec.tag;
  // Delta only when the receiver's base is still covered by dirty tracking
  // and not ahead of us (a filtered copy always ships the range in full).
  const bool use_delta = spec.delta_since.has_value() && !spec.filter &&
                         engine.delta_valid(*spec.delta_since) &&
                         *spec.delta_since <= engine.state_version();
  if (use_delta) {
    const db::Engine::DeltaSnapshot delta =
        engine.delta_snapshot(*spec.delta_since, spec.batch_bytes);
    ctx.charge(delta.serialize_cost_us);
    if (spec.tracer) {
      spec.tracer->state_transfer(ctx.now(), ctx.self(), obs::StatePhase::kBegin, 0, to);
      spec.tracer->count("repl.delta_hits");
    }
    SnapBegin2Body begin;
    begin.base = spec.begin_base;  // schemas stay empty: the receiver keeps its tables
    begin.mode = static_cast<std::uint8_t>(TransferMode::kDelta);
    begin.state_version = engine.state_version();
    begin.tag = spec.tag;
    ctx.send(to, net::make_msg(spec.headers.begin, std::move(begin)));
    for (const auto& batch : delta.upserts) {
      send_batch2(ctx, to, spec, batch, kBatchDeltaUpsert, stats);
    }
    for (const auto& [table, keys] : delta.deletes) {
      ctx.send(to, net::make_msg(spec.headers.deletes, SnapDelete2Body{table, keys, spec.tag}));
      ++stats.frames;
    }
    stats.rows = delta.total_rows;
    stats.delta = true;
  } else {
    const db::Engine::Snapshot snap =
        spec.filter ? engine.snapshot_filtered(spec.batch_bytes, spec.filter)
                    : engine.snapshot(spec.batch_bytes);
    ctx.charge(snap.serialize_cost_us);
    if (spec.tracer) {
      spec.tracer->state_transfer(ctx.now(), ctx.self(), obs::StatePhase::kBegin, 0, to);
    }
    SnapBegin2Body begin;
    begin.base = spec.begin_base;
    begin.base.schemas = snap.schemas;
    begin.mode = static_cast<std::uint8_t>(TransferMode::kFull);
    begin.state_version = engine.state_version();
    begin.tag = spec.tag;
    ctx.send(to, net::make_msg(spec.headers.begin, std::move(begin)));
    for (const auto& batch : snap.batches) {
      send_batch2(ctx, to, spec, batch, 0, stats);
    }
    stats.rows = snap.total_rows;
  }
  if (spec.mid_stream) spec.mid_stream();
  if (spec.done_carries_rows) done.base.rows = stats.rows;
  done.frames = stats.frames;
  ctx.send(to, net::make_msg(spec.headers.done, std::move(done)));
  if (spec.tracer) {
    spec.tracer->count("repl.bytes_raw", stats.raw_bytes);
    spec.tracer->count("repl.bytes_wire", stats.wire_bytes);
  }
  return stats;
}

bool StateTransfer::unwrap_batch(const SnapBatch2Body& body, db::Engine::SnapshotBatch& out) {
  out.table = body.table;
  out.rows = body.rows;
  if ((body.flags & kBatchCompressed) != 0) {
    Bytes raw;
    if (!decompress_block(body.payload, body.raw_len, raw)) return false;
    out.data = std::move(raw);
  } else {
    if (body.payload.size() != body.raw_len) return false;
    out.data = body.payload;
  }
  return true;
}

// ------------------------------------------------------------------ receiver --

void StateTransfer::Receiver::begin_full(db::Engine& engine, const SnapBeginBody& body) {
  engine.reset_for_restore(body.schemas);
  awaiting_ = true;
  delta_ = false;
  // The snapshot's order is claimed only once the full snapshot applied: a
  // partially-restored replica must not present itself as up to date in a
  // later election (a crash of the sender mid-stream would otherwise let
  // garbage state win).
  pending_order_ = body.order;
  sender_version_ = 0;
  frames_seen_ = 0;
}

void StateTransfer::Receiver::begin_v2(db::Engine& engine, const SnapBegin2Body& body) {
  if (body.mode == static_cast<std::uint8_t>(TransferMode::kDelta)) {
    awaiting_ = true;
    delta_ = true;
    pending_order_ = body.base.order;
    frames_seen_ = 0;
    // Advance to the sender's version up front so the upserts about to be
    // applied mark their keys at it — this engine must be able to serve a
    // correct delta of its own later.
    engine.set_state_version(body.state_version);
  } else {
    begin_full(engine, body.base);
  }
  sender_version_ = body.state_version;
}

void StateTransfer::Receiver::on_batch(net::NodeContext& ctx, db::Engine& engine,
                                       const SnapBatchBody& body, NodeId from) {
  if (!awaiting_) return;
  ctx.charge(engine.restore_batch(body.batch));
  if (cfg_.tracer) {
    cfg_.tracer->state_transfer(ctx.now(), cfg_.self, obs::StatePhase::kBatch,
                                body.batch.data.size(), from);
  }
}

bool StateTransfer::Receiver::on_batch2(net::NodeContext& ctx, db::Engine& engine,
                                        const SnapBatch2Body& body, NodeId from) {
  if (!awaiting_) return true;
  db::Engine::SnapshotBatch batch;
  if (!unwrap_batch(body, batch)) return false;
  if ((body.flags & kBatchCompressed) != 0) {
    ctx.charge(static_cast<net::Time>(kDecompressByteUs * static_cast<double>(batch.data.size())));
  }
  ctx.charge((body.flags & kBatchDeltaUpsert) != 0 ? engine.restore_upsert_batch(batch)
                                                   : engine.restore_batch(batch));
  ++frames_seen_;
  if (cfg_.tracer) {
    cfg_.tracer->state_transfer(ctx.now(), cfg_.self, obs::StatePhase::kBatch,
                                body.payload.size(), from);
  }
  return true;
}

void StateTransfer::Receiver::on_delete2(net::NodeContext& ctx, db::Engine& engine,
                                         const SnapDelete2Body& body) {
  if (!awaiting_) return;
  ctx.charge(engine.apply_deletes(body.table, body.keys));
  ++frames_seen_;
}

std::uint64_t StateTransfer::Receiver::finish(db::Engine& engine) {
  awaiting_ = false;
  frames_seen_ = 0;
  if (sender_version_ != 0) {
    // A full restore never observed history before the sender's version, so
    // deltas cannot be served from below it; after a delta the existing
    // floor still holds.
    if (!delta_) engine.set_delta_floor(sender_version_);
    engine.set_state_version(sender_version_);
  }
  return pending_order_;
}

void StateTransfer::Receiver::reset() {
  awaiting_ = false;
  delta_ = false;
  frames_seen_ = 0;
}

}  // namespace shadow::repl
