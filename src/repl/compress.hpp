// Block compression for state-transfer frames.
//
// A dependency-free LZ77 variant (LZSS): back-references into a sliding
// window, encoded as token groups of eight flag-prefixed items — either a
// literal byte or a (distance, length) pair packed into two bytes. Snapshot
// batches are highly repetitive (serialized rows share type tags, column
// layout and padding), so even this small-window scheme routinely removes
// most of the volume; the sender keeps the raw bytes whenever compression
// does not shrink them, so the codec never inflates a frame by more than its
// one-byte-per-eight flag overhead being avoided entirely.
//
// Layering: repl/ depends on common/ only here — no sim/, no net/tcp.
#pragma once

#include <cstddef>

#include "common/bytes.hpp"

namespace shadow::repl {

/// Compresses `in`. The output may be larger than the input for
/// incompressible data; callers compare sizes and keep the raw bytes then.
Bytes compress_block(const Bytes& in);

/// Decompresses a compress_block() output into exactly `raw_len` bytes.
/// Returns false (leaving `out` unspecified) on malformed input — a
/// truncated stream, a back-reference before the window start, or a length
/// mismatch. Corruption inside the frame body is normally caught by the wire
/// checksum first; this guards the decoder itself.
bool decompress_block(const Bytes& in, std::size_t raw_len, Bytes& out);

}  // namespace shadow::repl
