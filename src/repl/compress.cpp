#include "repl/compress.hpp"

#include <cstdint>

namespace shadow::repl {

namespace {

// Token format. A group starts with one flag byte; bit i of it describes the
// i-th item that follows (LSB first): 0 = literal byte, 1 = a two-byte match
// token. A match token packs a 12-bit distance (1..4096) and a 4-bit length
// (kMinMatch..kMinMatch+15): byte0 = distance low 8, byte1 = distance high 4
// in the upper nibble | (length - kMinMatch) in the lower nibble.
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;
constexpr std::size_t kHashSize = 1 << 13;

inline std::size_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 13) & (kHashSize - 1);
}

}  // namespace

Bytes compress_block(const Bytes& in) {
  Bytes out;
  if (in.empty()) return out;
  out.reserve(in.size() / 2 + 16);

  // head[h] is the most recent position whose first three bytes hashed to h.
  std::vector<std::uint32_t> head(kHashSize, 0xffffffffu);

  std::size_t pos = 0;
  std::size_t flag_pos = 0;  // index of the current group's flag byte
  int items_in_group = 8;    // force a fresh flag byte on the first item
  auto begin_item = [&](bool is_match) {
    if (items_in_group == 8) {
      flag_pos = out.size();
      out.push_back(0);
      items_in_group = 0;
    }
    if (is_match) out[flag_pos] |= static_cast<std::uint8_t>(1u << items_in_group);
    ++items_in_group;
  };

  while (pos < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= in.size()) {
      const std::size_t h = hash3(in.data() + pos);
      const std::uint32_t candidate = head[h];
      if (candidate != 0xffffffffu && candidate < pos && pos - candidate <= kWindow) {
        const std::size_t limit =
            in.size() - pos < kMaxMatch ? in.size() - pos : kMaxMatch;
        std::size_t len = 0;
        while (len < limit && in[candidate + len] == in[pos + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_dist = pos - candidate;
        }
      }
      head[h] = static_cast<std::uint32_t>(pos);
    }
    if (best_len >= kMinMatch) {
      begin_item(true);
      out.push_back(static_cast<std::uint8_t>(best_dist & 0xff));
      out.push_back(static_cast<std::uint8_t>(((best_dist >> 8) & 0x0f) << 4 |
                                              (best_len - kMinMatch)));
      // Index the skipped positions too, so later matches can reach them.
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= in.size() && p < end; ++p) {
        head[hash3(in.data() + p)] = static_cast<std::uint32_t>(p);
      }
      pos = end;
    } else {
      begin_item(false);
      out.push_back(in[pos]);
      ++pos;
    }
  }
  return out;
}

bool decompress_block(const Bytes& in, std::size_t raw_len, Bytes& out) {
  out.clear();
  out.reserve(raw_len);
  std::size_t pos = 0;
  while (out.size() < raw_len) {
    if (pos >= in.size()) return false;
    const std::uint8_t flags = in[pos++];
    for (int i = 0; i < 8 && out.size() < raw_len; ++i) {
      if ((flags >> i & 1) == 0) {
        if (pos >= in.size()) return false;
        out.push_back(in[pos++]);
      } else {
        if (pos + 2 > in.size()) return false;
        const std::size_t dist = static_cast<std::size_t>(in[pos]) |
                                 (static_cast<std::size_t>(in[pos + 1] >> 4) << 8);
        const std::size_t len = kMinMatch + (in[pos + 1] & 0x0f);
        pos += 2;
        if (dist == 0 || dist > out.size() || out.size() + len > raw_len) return false;
        const std::size_t start = out.size() - dist;
        for (std::size_t j = 0; j < len; ++j) out.push_back(out[start + j]);
      }
    }
  }
  return out.size() == raw_len && pos == in.size();
}

}  // namespace shadow::repl
