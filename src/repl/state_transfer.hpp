// The unified state-transfer engine.
//
// Sender and receiver state machines for streaming database state between
// replicas, shared by every replication protocol in the stack:
//
//   * SMR crash-restart rejoin and spare promotion (core/smr.cpp)
//   * primary-backup recovery (core/pbr.cpp)
//   * chain-replication recovery (core/chain.cpp)
//   * shard-range migration (core/migrate.cpp)
//
// A transfer is one `begin` message (schemas + dedup floor + protocol
// bookkeeping), N ~50 KB row batches, optional protocol riders, and one
// `done`. The protocols differ only in which headers the stream is mounted
// on and what they do at the endpoints, so they pass a StreamHeaders triple
// plus begin/done templates and keep their own epilogue logic.
//
// Two stream versions (bodies in repl/wire.hpp):
//   v1 — uncompressed full copy, byte- and cost-identical to the historical
//        per-protocol implementations (pinned by tests/repl/).
//   v2 — adds block compression and incremental (delta) mode: when the
//        receiver presents a state version the sender's dirty tracking still
//        covers, only rows touched since then (plus deletions) are shipped.
//
// Layering: repl/ sees common/, wire/, net/ (transport-independent parts),
// obs/ and db/ — never sim/ or net/tcp (enforced by scripts/check.sh).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "db/engine.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "repl/wire.hpp"

namespace shadow::repl {

/// The message headers one protocol mounts a snapshot stream on.
struct StreamHeaders {
  std::string begin;
  std::string batch;
  std::string done;
  std::string deletes;  // v2 delta deletions; unused by v1 streams
};

/// Volume accounting for one sent stream (feeds the repl.* counters and the
/// Fig. 10(b) byte-volume table). Byte counts cover row payloads only, not
/// framing or deletion lists, so raw/wire ratios compare like with like.
struct SendStats {
  std::size_t raw_bytes = 0;   // serialized row bytes before compression
  std::size_t wire_bytes = 0;  // row payload bytes actually sent
  std::uint64_t rows = 0;
  std::uint64_t frames = 0;  // batch + delete messages (v2 gap detection)
  bool delta = false;
};

class StateTransfer {
 public:
  using KeyFilter = std::function<bool(const std::string&, const db::Key&)>;

  /// v1 sender parameters. `begin` arrives with config/order/dedup_seqs
  /// filled by the protocol; schemas are filled from the snapshot here.
  /// `done` is the protocol's template; rows is filled from the snapshot
  /// only when `done_carries_rows` (SMR reports totals, PBR/chain send 0).
  struct SendV1 {
    StreamHeaders headers;
    std::size_t batch_bytes = 50 * 1024;
    SnapBeginBody begin;
    SnapDoneBody done;
    bool done_carries_rows = false;
    /// Runs after the row batches, before `done` — SMR mounts its 2PC
    /// coordination rider here.
    std::function<void()> mid_stream;
    obs::Tracer* tracer = nullptr;
  };

  /// Serializes the full database and streams it uncompressed: charge
  /// serialization, trace kBegin, send begin / batches / rider / done.
  static SendStats send_full_v1(net::NodeContext& ctx, const db::Engine& engine,
                                NodeId to, SendV1 spec);

  /// v2 sender parameters.
  struct SendV2 {
    StreamHeaders headers;
    std::size_t batch_bytes = 50 * 1024;
    SnapBeginBody begin_base;
    SnapDoneBody done_base;
    bool done_carries_rows = false;
    std::uint64_t tag = 0;  // stream id (0 rejoin; migration id otherwise)
    bool compress = false;
    /// Receiver's state version; a delta is sent when the sender's dirty
    /// tracking still covers it (engine.delta_valid), a full copy otherwise.
    std::optional<std::uint64_t> delta_since;
    /// Restricts a full copy to matching rows (shard-range migration).
    /// Ignored in delta mode, which always covers the whole keyspace.
    KeyFilter filter;
    std::function<void()> mid_stream;
    obs::Tracer* tracer = nullptr;
  };

  /// Streams state in the v2 framing (full or delta, optionally compressed)
  /// and bumps the repl.bytes_raw / repl.bytes_wire / repl.delta_hits
  /// counters on the sender's tracer.
  static SendStats send_v2(net::NodeContext& ctx, const db::Engine& engine,
                           NodeId to, SendV2 spec);

  /// Recovers the v1 SnapshotBatch a v2 batch frame carries, decompressing
  /// if flagged. Returns false on a malformed compressed payload (the caller
  /// drops the stream and re-requests; wire checksums catch corruption
  /// first, this guards the decoder itself).
  static bool unwrap_batch(const SnapBatch2Body& body, db::Engine::SnapshotBatch& out);

  /// Receiver state machine: one in-progress inbound stream. Owns the
  /// awaiting/pending-order state the protocols used to keep ad hoc; the
  /// dedup-table install and protocol epilogues stay with the caller.
  class Receiver {
   public:
    struct Config {
      obs::Tracer* tracer = nullptr;
      NodeId self{0};
    };
    explicit Receiver(Config cfg) : cfg_(cfg) {}
    Receiver() = default;

    /// v1 / v2-full prologue: installs schemas, clears data, stashes the
    /// order the finished snapshot will represent.
    void begin_full(db::Engine& engine, const SnapBeginBody& body);
    /// v2 prologue for either mode. In delta mode the engine keeps its rows
    /// and only upserts/deletes are applied.
    void begin_v2(db::Engine& engine, const SnapBegin2Body& body);

    /// v1 row batch: restore, charge, trace kBatch.
    void on_batch(net::NodeContext& ctx, db::Engine& engine,
                  const SnapBatchBody& body, NodeId from);
    /// v2 row batch (counts toward the frame total). Returns false on a
    /// malformed compressed payload; the stream should be abandoned.
    bool on_batch2(net::NodeContext& ctx, db::Engine& engine,
                   const SnapBatch2Body& body, NodeId from);
    /// v2 deletion list (counts toward the frame total).
    void on_delete2(net::NodeContext& ctx, db::Engine& engine,
                    const SnapDelete2Body& body);

    /// True when every frame the v2 epilogue announces actually arrived
    /// (checksum-dropped frames surface as a gap here).
    bool complete(const SnapDone2Body& done) const { return frames_seen_ == done.frames; }

    /// Ends the stream: stamps the engine with the sender's state version
    /// and, after a full restore, raises the delta floor (history before the
    /// restore was never observed here). Returns the represented order.
    std::uint64_t finish(db::Engine& engine);
    /// Abandons an in-progress stream (sender crash, view change, gap).
    void reset();

    bool awaiting() const { return awaiting_; }
    bool delta() const { return delta_; }
    std::uint64_t pending_order() const { return pending_order_; }
    std::uint64_t sender_version() const { return sender_version_; }

   private:
    Config cfg_;
    bool awaiting_ = false;
    bool delta_ = false;
    std::uint64_t pending_order_ = 0;
    std::uint64_t sender_version_ = 0;
    std::uint64_t frames_seen_ = 0;
  };
};

}  // namespace shadow::repl
