// TPC-C (the paper's second benchmark, configured with 1 warehouse).
//
// Full implementation of the nine-table schema, the standard loader, NURand
// key generation, the standard transaction mix, and all five transaction
// types as deterministic stored procedures:
//
//   new_order    45 %  (1 % deterministic rollbacks via an invalid item)
//   payment      43 %  (60 % customer selection by last name)
//   order_status  4 %
//   delivery      4 %  (all 10 districts)
//   stock_level   4 %
//
// Consistency conditions (TPC-C §3.3.2.x) are exposed as check functions and
// exercised by tests/workload/tpcc_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "db/engine.hpp"
#include "workload/procedures.hpp"

namespace shadow::workload::tpcc {

inline constexpr const char* kNewOrderProc = "tpcc.new_order";
inline constexpr const char* kPaymentProc = "tpcc.payment";
inline constexpr const char* kOrderStatusProc = "tpcc.order_status";
inline constexpr const char* kDeliveryProc = "tpcc.delivery";
inline constexpr const char* kStockLevelProc = "tpcc.stock_level";

struct TpccConfig {
  std::int64_t warehouses = 1;
  std::int64_t districts_per_wh = 10;
  std::int64_t customers_per_district = 3000;
  std::int64_t items = 100000;
  std::int64_t initial_orders_per_district = 3000;  // last 900 are undelivered
  std::size_t data_pad = 24;  // filler bytes for *_data columns

  /// A scaled-down configuration for unit tests.
  static TpccConfig small() {
    TpccConfig c;
    c.districts_per_wh = 2;
    c.customers_per_district = 30;
    c.items = 100;
    c.initial_orders_per_district = 30;
    return c;
  }
};

std::vector<db::TableSchema> make_schemas();

/// Creates tables and runs the standard initial load.
void load(db::Engine& engine, const TpccConfig& config, std::uint64_t seed = 1);

void register_procedures(ProcedureRegistry& registry);

/// Deterministic parameter generation for the standard mix. `h_id_source`
/// must be unique per generated payment (history primary key).
class TxnGenerator {
 public:
  TxnGenerator(TpccConfig config, std::uint64_t seed);

  struct Txn {
    std::string proc;
    Params params;
  };

  /// Samples from the standard mix.
  Txn next();
  /// Specific transaction types (for targeted tests/benchmarks).
  Txn next_new_order();
  Txn next_payment();
  Txn next_order_status();
  Txn next_delivery();
  Txn next_stock_level();

 private:
  std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y);

  TpccConfig config_;
  Rng rng_;
  std::uint64_t stream_id_ = 0;  // disambiguates history ids across clients
  std::int64_t c_for_c_id_;
  std::int64_t c_for_i_id_;
  std::uint64_t h_id_next_ = 1;
};

/// TPC-C consistency condition 1: for every district,
/// d_next_o_id - 1 == max(o_id) == max(no_o_id is <= d_next_o_id - 1).
bool check_consistency(db::Engine& engine, const TpccConfig& config, std::string* detail);

/// A last name from the TPC-C syllable table (num in [0, 999]).
std::string last_name(std::int64_t num);

}  // namespace shadow::workload::tpcc
