// The paper's micro-benchmark: "a database of bank accounts, each having an
// identifier, an owner, and a balance" — 50,000 rows of 16 bytes (3 columns)
// in the Fig. 9(a) configuration; update transactions "deposit money on a
// randomly selected account".
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "db/engine.hpp"
#include "workload/procedures.hpp"

namespace shadow::workload::bank {

inline constexpr const char* kTable = "accounts";
inline constexpr const char* kDepositProc = "bank.deposit";
inline constexpr const char* kBalanceProc = "bank.balance";
inline constexpr const char* kTransferProc = "bank.transfer";
inline constexpr const char* kBalance2Proc = "bank.balance2";
inline constexpr const char* kAuditProc = "bank.audit";

struct BankConfig {
  std::int64_t accounts = 50000;
  std::size_t owner_bytes = 0;  // extra VARCHAR padding (0 → 16-byte rows)
};

db::TableSchema make_schema();

/// Creates and populates the accounts table.
void load(db::Engine& engine, const BankConfig& config);

/// Registers deposit / balance / transfer / balance2 / audit procedures.
///   deposit  (account, amount)          — the Fig. 9(a) update transaction
///   balance  (account)                  — point read
///   transfer (from, to, amount)         — aborts (rolls back) on overdraft
///   balance2 (a, b)                     — two point reads (the cross-shard
///                                         read-only transaction)
///   audit    ()                         — SUM over all balances
void register_procedures(ProcedureRegistry& registry);

/// Deposit parameters for a uniformly random account.
Params make_deposit(Rng& rng, const BankConfig& config);

/// Sum of all balances (used by the durability/serializability checks).
std::int64_t total_balance(db::Engine& engine);

}  // namespace shadow::workload::bank
