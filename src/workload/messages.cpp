#include "workload/messages.hpp"

#include "common/bytes.hpp"

namespace shadow::workload {

std::string encode_request(const TxnRequest& req) {
  BytesWriter w;
  w.u32(req.client.value);
  w.u64(req.seq);
  w.u32(req.reply_to.value);
  w.str(req.proc);
  db::serialize_row(w, req.params);
  const Bytes bytes = w.peek();
  return std::string(bytes.begin(), bytes.end());
}

TxnRequest decode_request(const std::string& payload) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(payload.data());
  BytesReader r(std::span<const std::uint8_t>(data, payload.size()));
  TxnRequest req;
  req.client = ClientId{r.u32()};
  req.seq = r.u64();
  req.reply_to = NodeId{r.u32()};
  req.proc = r.str();
  req.params = db::deserialize_row(r);
  return req;
}

net::Message make_request_msg(const TxnRequest& req) {
  return net::make_msg(kTxnRequestHeader, req);
}

net::Message make_response_msg(const TxnResponse& resp) {
  return net::make_msg(kTxnResponseHeader, resp);
}

}  // namespace shadow::workload
