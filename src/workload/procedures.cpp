#include "workload/procedures.hpp"

namespace shadow::workload {

TxnOutcome run_procedure(db::Engine& engine, const ProcedureFn& proc, const Params& params) {
  TxnOutcome outcome;
  const db::TxnId txn = engine.begin();
  outcome.cost_us += engine.traits().costs.begin_us;
  std::vector<db::ExecResult> results;

  for (std::size_t step = 0;; ++step) {
    const ProcStep next = proc(StepContext{params, step, results});
    if (next.kind == ProcStep::Kind::kCommit) {
      const db::ExecResult commit = engine.commit(txn);
      outcome.cost_us += commit.cost_us;
      outcome.committed = commit.status == db::ExecResult::Status::kOk;
      if (!outcome.committed) outcome.error = commit.error;
      break;
    }
    if (next.kind == ProcStep::Kind::kRollback) {
      const db::ExecResult abort = engine.abort(txn);
      outcome.cost_us += abort.cost_us;
      outcome.committed = false;
      outcome.error = "rolled back by transaction logic";
      break;
    }
    db::ExecResult result = engine.execute(txn, next.stmt);
    outcome.cost_us += result.cost_us;
    ++outcome.statements;
    SHADOW_CHECK_MSG(result.status != db::ExecResult::Status::kBlocked,
                     "sequential execution must never block");
    if (result.status == db::ExecResult::Status::kAborted) {
      outcome.committed = false;
      outcome.error = result.error;
      // The engine already rolled back and released this transaction.
      if (engine.is_active(txn)) engine.abort(txn);
      break;
    }
    if (!result.rows.empty()) outcome.rows = result.rows;
    if (!result.agg_value.is_null()) outcome.agg_value = result.agg_value;
    results.push_back(std::move(result));
  }
  return outcome;
}

}  // namespace shadow::workload
