#include "workload/tpcc.hpp"

#include <algorithm>
#include <set>

namespace shadow::workload::tpcc {

namespace {

using db::Agg;
using db::CmpOp;
using db::ColumnType;
using db::Condition;
using db::SetClause;
using db::SetOp;
using db::Statement;
using db::Value;

// Column indexes (see make_schemas for the layouts).
namespace item_col {
constexpr std::size_t id = 0, name = 1, price = 2, data = 3;
}
namespace wh_col {
constexpr std::size_t id = 0, name = 1, tax = 2, ytd = 3;
}
namespace dist_col {
constexpr std::size_t w = 0, id = 1, name = 2, tax = 3, ytd = 4, next_o_id = 5;
}
namespace cust_col {
constexpr std::size_t w = 0, d = 1, id = 2, first = 3, last = 4, credit = 5, balance = 6,
                      ytd_payment = 7, payment_cnt = 8, delivery_cnt = 9, data = 10;
}
namespace hist_col {
constexpr std::size_t id = 0, c_w = 1, c_d = 2, c_id = 3, w = 4, d = 5, amount = 6, data = 7;
}
namespace ord_col {
constexpr std::size_t w = 0, d = 1, id = 2, c_id = 3, carrier = 4, ol_cnt = 5, entry_d = 6;
}
namespace no_col {
constexpr std::size_t w = 0, d = 1, o = 2;
}
namespace ol_col {
constexpr std::size_t w = 0, d = 1, o = 2, number = 3, i_id = 4, supply_w = 5, quantity = 6,
                      amount = 7, delivery_d = 8;
}
namespace stock_col {
constexpr std::size_t w = 0, i = 1, quantity = 2, ytd = 3, order_cnt = 4, remote_cnt = 5,
                      data = 6;
}

constexpr std::int64_t kCLoad = 157;  // the loader's C constant for NURand

Condition eq(std::size_t col, Value v) { return Condition{col, CmpOp::kEq, std::move(v)}; }

}  // namespace

std::string last_name(std::int64_t num) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE",  "PRI",   "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(kSyllables[(num / 100) % 10]) + kSyllables[(num / 10) % 10] +
         kSyllables[num % 10];
}

std::vector<db::TableSchema> make_schemas() {
  using T = ColumnType;
  std::vector<db::TableSchema> schemas;
  schemas.push_back({"item",
                     {{"i_id", T::kBigInt}, {"i_name", T::kVarchar}, {"i_price", T::kDouble},
                      {"i_data", T::kVarchar}},
                     {0}});
  schemas.push_back({"warehouse",
                     {{"w_id", T::kBigInt}, {"w_name", T::kVarchar}, {"w_tax", T::kDouble},
                      {"w_ytd", T::kDouble}},
                     {0}});
  schemas.push_back({"district",
                     {{"d_w_id", T::kBigInt}, {"d_id", T::kBigInt}, {"d_name", T::kVarchar},
                      {"d_tax", T::kDouble}, {"d_ytd", T::kDouble}, {"d_next_o_id", T::kBigInt}},
                     {0, 1}});
  schemas.push_back({"customer",
                     {{"c_w_id", T::kBigInt}, {"c_d_id", T::kBigInt}, {"c_id", T::kBigInt},
                      {"c_first", T::kVarchar}, {"c_last", T::kVarchar},
                      {"c_credit", T::kVarchar}, {"c_balance", T::kDouble},
                      {"c_ytd_payment", T::kDouble}, {"c_payment_cnt", T::kBigInt},
                      {"c_delivery_cnt", T::kBigInt}, {"c_data", T::kVarchar}},
                     {0, 1, 2}});
  schemas.push_back({"history",
                     {{"h_id", T::kBigInt}, {"h_c_w_id", T::kBigInt}, {"h_c_d_id", T::kBigInt},
                      {"h_c_id", T::kBigInt}, {"h_w_id", T::kBigInt}, {"h_d_id", T::kBigInt},
                      {"h_amount", T::kDouble}, {"h_data", T::kVarchar}},
                     {0}});
  schemas.push_back({"orders",
                     {{"o_w_id", T::kBigInt}, {"o_d_id", T::kBigInt}, {"o_id", T::kBigInt},
                      {"o_c_id", T::kBigInt}, {"o_carrier_id", T::kBigInt},
                      {"o_ol_cnt", T::kBigInt}, {"o_entry_d", T::kBigInt}},
                     {0, 1, 2}});
  schemas.push_back({"new_order",
                     {{"no_w_id", T::kBigInt}, {"no_d_id", T::kBigInt}, {"no_o_id", T::kBigInt}},
                     {0, 1, 2}});
  schemas.push_back({"order_line",
                     {{"ol_w_id", T::kBigInt}, {"ol_d_id", T::kBigInt}, {"ol_o_id", T::kBigInt},
                      {"ol_number", T::kBigInt}, {"ol_i_id", T::kBigInt},
                      {"ol_supply_w_id", T::kBigInt}, {"ol_quantity", T::kBigInt},
                      {"ol_amount", T::kDouble}, {"ol_delivery_d", T::kBigInt}},
                     {0, 1, 2, 3}});
  schemas.push_back({"stock",
                     {{"s_w_id", T::kBigInt}, {"s_i_id", T::kBigInt}, {"s_quantity", T::kBigInt},
                      {"s_ytd", T::kBigInt}, {"s_order_cnt", T::kBigInt},
                      {"s_remote_cnt", T::kBigInt}, {"s_data", T::kVarchar}},
                     {0, 1}});
  return schemas;
}

void load(db::Engine& engine, const TpccConfig& config, std::uint64_t seed) {
  for (db::TableSchema& schema : make_schemas()) engine.create_table(std::move(schema));
  Rng rng(seed);
  const std::string pad(config.data_pad, 'x');
  const auto ins = [&engine](const char* table, db::Row row) {
    const db::TxnId txn = engine.begin();
    SHADOW_CHECK(engine.execute(txn, db::make_insert(table, std::move(row))).ok());
    SHADOW_CHECK(engine.commit(txn).ok());
  };
  // The loader batches inserts per table in one transaction for speed.
  const auto bulk = [&engine](const char* table, std::vector<db::Row> rows) {
    const db::TxnId txn = engine.begin();
    for (db::Row& row : rows) {
      SHADOW_CHECK(engine.execute(txn, db::make_insert(table, std::move(row))).ok());
    }
    SHADOW_CHECK(engine.commit(txn).ok());
  };
  (void)ins;

  // -- items -------------------------------------------------------------------
  {
    std::vector<db::Row> rows;
    rows.reserve(static_cast<std::size_t>(config.items));
    for (std::int64_t i = 1; i <= config.items; ++i) {
      rows.push_back({Value(i), Value("item-" + std::to_string(i)),
                      Value(1.0 + static_cast<double>(rng.uniform(0, 9900)) / 100.0),
                      Value(pad)});
    }
    bulk("item", std::move(rows));
  }

  const std::int64_t delivered_cutoff = config.initial_orders_per_district * 7 / 10;
  std::uint64_t h_id = 1;

  for (std::int64_t w = 1; w <= config.warehouses; ++w) {
    bulk("warehouse", {{Value(w), Value("wh-" + std::to_string(w)),
                        Value(static_cast<double>(rng.uniform(0, 2000)) / 10000.0),
                        Value(300000.0)}});
    // -- stock ------------------------------------------------------------------
    {
      std::vector<db::Row> rows;
      rows.reserve(static_cast<std::size_t>(config.items));
      for (std::int64_t i = 1; i <= config.items; ++i) {
        rows.push_back({Value(w), Value(i),
                        Value(static_cast<std::int64_t>(rng.uniform(10, 100))), Value(0),
                        Value(0), Value(0), Value(pad)});
      }
      bulk("stock", std::move(rows));
    }

    for (std::int64_t d = 1; d <= config.districts_per_wh; ++d) {
      bulk("district",
           {{Value(w), Value(d), Value("dist-" + std::to_string(d)),
             Value(static_cast<double>(rng.uniform(0, 2000)) / 10000.0), Value(30000.0),
             Value(config.initial_orders_per_district + 1)}});

      // -- customers + history ---------------------------------------------------
      std::vector<db::Row> customers;
      std::vector<db::Row> history;
      for (std::int64_t c = 1; c <= config.customers_per_district; ++c) {
        const std::int64_t name_num =
            c <= 1000 ? c - 1
                      : (((static_cast<std::int64_t>(rng.uniform(0, 255)) |
                           static_cast<std::int64_t>(rng.uniform(0, 999))) +
                          kCLoad) %
                         1000);
        const bool bad_credit = rng.uniform(1, 10) == 1;
        customers.push_back({Value(w), Value(d), Value(c), Value("first-" + std::to_string(c)),
                             Value(last_name(name_num)), Value(bad_credit ? "BC" : "GC"),
                             Value(-10.0), Value(10.0), Value(1), Value(0), Value(pad)});
        history.push_back({Value(static_cast<std::int64_t>(h_id++)), Value(w), Value(d),
                           Value(c), Value(w), Value(d), Value(10.0), Value(pad)});
      }
      bulk("customer", std::move(customers));
      bulk("history", std::move(history));

      // -- orders / order lines / new orders -------------------------------------
      std::vector<std::int64_t> cust_perm(
          static_cast<std::size_t>(config.customers_per_district));
      for (std::size_t i = 0; i < cust_perm.size(); ++i) {
        cust_perm[i] = static_cast<std::int64_t>(i) + 1;
      }
      rng.shuffle(cust_perm);

      std::vector<db::Row> orders;
      std::vector<db::Row> lines;
      std::vector<db::Row> new_orders;
      for (std::int64_t o = 1; o <= config.initial_orders_per_district; ++o) {
        const std::int64_t c =
            cust_perm[static_cast<std::size_t>((o - 1) % config.customers_per_district)];
        const auto ol_cnt = static_cast<std::int64_t>(rng.uniform(5, 15));
        const bool delivered = o <= delivered_cutoff;
        orders.push_back({Value(w), Value(d), Value(o), Value(c),
                          Value(delivered ? static_cast<std::int64_t>(rng.uniform(1, 10)) : 0),
                          Value(ol_cnt), Value(1)});
        for (std::int64_t n = 1; n <= ol_cnt; ++n) {
          const auto i_id = static_cast<std::int64_t>(
              rng.uniform(1, static_cast<std::uint64_t>(config.items)));
          lines.push_back(
              {Value(w), Value(d), Value(o), Value(n), Value(i_id), Value(w),
               Value(5),
               Value(delivered ? 0.0 : static_cast<double>(rng.uniform(1, 999999)) / 100.0),
               Value(delivered ? std::int64_t{1} : std::int64_t{0})});
        }
        if (!delivered) new_orders.push_back({Value(w), Value(d), Value(o)});
      }
      bulk("orders", std::move(orders));
      bulk("order_line", std::move(lines));
      bulk("new_order", std::move(new_orders));
    }
  }
}

// ============================================================ procedures ====

namespace {

// ---- new_order ---------------------------------------------------------------
// params: [w, d, c, ol_cnt, entry_d, (i_id, supply_w, qty) * ol_cnt]
ProcStep new_order_step(const StepContext& ctx) {
  const Value& w = ctx.params[0];
  const Value& d = ctx.params[1];
  const Value& c = ctx.params[2];
  const std::int64_t ol_cnt = ctx.params[3].as_int();
  const Value& entry_d = ctx.params[4];
  const auto item_param = [&ctx](std::int64_t line, std::size_t field) -> const Value& {
    return ctx.params[5 + static_cast<std::size_t>(line) * 3 + field];
  };

  switch (ctx.step) {
    case 0: return ProcStep::statement(db::make_select("warehouse", {w}));
    case 1:
      // FOR UPDATE: the district row is updated next (deadlock avoidance).
      return ProcStep::statement(db::make_select_for_update("district", {w, d}));
    case 2:
      return ProcStep::statement(
          db::make_update("district", {w, d}, {{dist_col::next_o_id, SetOp::kAdd, Value(1)}}));
    case 3: return ProcStep::statement(db::make_select("customer", {w, d, c}));
    default: break;
  }

  SHADOW_CHECK(!ctx.results[1].rows.empty());
  const Value o_id = ctx.results[1].rows[0][dist_col::next_o_id];

  if (ctx.step == 4) {
    return ProcStep::statement(db::make_insert(
        "orders", {w, d, o_id, c, Value(0), Value(ol_cnt), entry_d}));
  }
  if (ctx.step == 5) {
    return ProcStep::statement(db::make_insert("new_order", {w, d, o_id}));
  }

  // Order lines: 4 statements per line — item read, stock read, stock
  // write, order-line insert.
  const std::int64_t line = static_cast<std::int64_t>(ctx.step - 6) / 4;
  const std::size_t phase = (ctx.step - 6) % 4;
  if (line >= ol_cnt) return ProcStep::commit();

  const std::size_t base = 6 + static_cast<std::size_t>(line) * 4;
  switch (phase) {
    case 0:
      return ProcStep::statement(db::make_select("item", {item_param(line, 0)}));
    case 1:
      // "An unused item number results in a rollback" — the 1 % case.
      if (ctx.results[base].rows.empty()) return ProcStep::rollback();
      return ProcStep::statement(
          db::make_select_for_update("stock", {item_param(line, 1), item_param(line, 0)}));
    case 2: {
      SHADOW_CHECK(!ctx.results[base + 1].rows.empty());
      const std::int64_t s_quantity =
          ctx.results[base + 1].rows[0][stock_col::quantity].as_int();
      const std::int64_t qty = item_param(line, 2).as_int();
      const std::int64_t new_q = s_quantity - qty >= 10 ? s_quantity - qty
                                                        : s_quantity - qty + 91;
      return ProcStep::statement(db::make_update(
          "stock", {item_param(line, 1), item_param(line, 0)},
          {{stock_col::quantity, SetOp::kAssign, Value(new_q)},
           {stock_col::ytd, SetOp::kAdd, Value(qty)},
           {stock_col::order_cnt, SetOp::kAdd, Value(1)}}));
    }
    default: {  // phase 3
      const double price = ctx.results[base].rows[0][item_col::price].as_double();
      const double w_tax = ctx.results[0].rows[0][wh_col::tax].as_double();
      const double d_tax = ctx.results[1].rows[0][dist_col::tax].as_double();
      const std::int64_t qty = item_param(line, 2).as_int();
      const double amount = static_cast<double>(qty) * price * (1.0 + w_tax + d_tax);
      return ProcStep::statement(db::make_insert(
          "order_line", {w, d, o_id, Value(line + 1), item_param(line, 0),
                         item_param(line, 1), Value(qty), Value(amount), Value(0)}));
    }
  }
}

// ---- payment -------------------------------------------------------------------
// params: [w, d, c_w, c_d, by_name, c_id, c_last_num, amount, h_id]
ProcStep payment_step(const StepContext& ctx) {
  const Value& w = ctx.params[0];
  const Value& d = ctx.params[1];
  const Value& c_w = ctx.params[2];
  const Value& c_d = ctx.params[3];
  const bool by_name = ctx.params[4].as_int() != 0;
  const Value& amount = ctx.params[7];

  switch (ctx.step) {
    case 0:
      return ProcStep::statement(db::make_select_for_update("warehouse", {w}));
    case 1:
      return ProcStep::statement(db::make_update(
          "warehouse", {w}, {{wh_col::ytd, SetOp::kAdd, amount}}));
    case 2:
      return ProcStep::statement(db::make_select_for_update("district", {w, d}));
    case 3:
      return ProcStep::statement(db::make_update(
          "district", {w, d}, {{dist_col::ytd, SetOp::kAdd, amount}}));
    case 4: {
      if (!by_name) {
        return ProcStep::statement(
            db::make_select_for_update("customer", {c_w, c_d, ctx.params[5]}));
      }
      db::Statement scan = db::make_scan(
          "customer", {eq(cust_col::w, c_w), eq(cust_col::d, c_d),
                       eq(cust_col::last, Value(last_name(ctx.params[6].as_int())))});
      scan.for_update = true;  // one of the matches is updated next
      return ProcStep::statement(std::move(scan));
    }
    case 5: {
      const auto& found = ctx.results[4].rows;
      if (found.empty()) return ProcStep::rollback();  // no such customer
      // By-name selection takes the row at ⌈n/2⌉ ordered by c_first.
      std::size_t pick = 0;
      if (by_name) {
        std::vector<std::size_t> order(found.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&found](std::size_t a, std::size_t b) {
          return found[a][cust_col::first] < found[b][cust_col::first];
        });
        pick = order[(order.size()) / 2];
      }
      const db::Row& cust = found[pick];
      return ProcStep::statement(db::make_update(
          "customer", {cust[cust_col::w], cust[cust_col::d], cust[cust_col::id]},
          {{cust_col::balance, SetOp::kAdd, Value(-amount.as_double())},
           {cust_col::ytd_payment, SetOp::kAdd, amount},
           {cust_col::payment_cnt, SetOp::kAdd, Value(1)}}));
    }
    case 6:
      return ProcStep::statement(db::make_insert(
          "history", {ctx.params[8], c_w, c_d,
                      Value(by_name ? std::int64_t{0} : ctx.params[5].as_int()), w, d, amount,
                      Value("payment")}));
    default: return ProcStep::commit();
  }
}

// ---- order_status ----------------------------------------------------------------
// params: [w, d, by_name, c_id, c_last_num]
ProcStep order_status_step(const StepContext& ctx) {
  const Value& w = ctx.params[0];
  const Value& d = ctx.params[1];
  const bool by_name = ctx.params[2].as_int() != 0;

  switch (ctx.step) {
    case 0: {
      if (!by_name) {
        return ProcStep::statement(db::make_select("customer", {w, d, ctx.params[3]}));
      }
      return ProcStep::statement(db::make_scan(
          "customer", {eq(cust_col::w, w), eq(cust_col::d, d),
                       eq(cust_col::last, Value(last_name(ctx.params[4].as_int())))}));
    }
    case 1: {
      if (ctx.results[0].rows.empty()) return ProcStep::rollback();
      const db::Row& cust = ctx.results[0].rows[ctx.results[0].rows.size() / 2];
      Statement scan = db::make_scan(
          "orders", {eq(ord_col::w, w), eq(ord_col::d, d), eq(ord_col::c_id,
                                                              cust[cust_col::id])});
      scan.order_by = {ord_col::id, true};  // most recent order
      scan.limit = 1;
      return ProcStep::statement(std::move(scan));
    }
    case 2: {
      if (ctx.results[1].rows.empty()) return ProcStep::commit();
      const Value o_id = ctx.results[1].rows[0][ord_col::id];
      return ProcStep::statement(db::make_scan(
          "order_line", {eq(ol_col::w, w), eq(ol_col::d, d), eq(ol_col::o, o_id)}));
    }
    default: return ProcStep::commit();
  }
}

// ---- delivery -----------------------------------------------------------------
// params: [w, carrier, delivery_d, districts]
// Per district: min(new_order), then if found: select order, delete
// new_order, update order carrier, sum order lines, stamp order lines,
// credit the customer — 7 statements; skipped districts take 1.
ProcStep delivery_step(const StepContext& ctx) {
  const Value& w = ctx.params[0];
  const Value& carrier = ctx.params[1];
  const Value& delivery_d = ctx.params[2];
  const std::int64_t districts = ctx.params[3].as_int();

  // Replay the statement history to find our position.
  std::size_t idx = 0;
  for (std::int64_t d = 1; d <= districts; ++d) {
    const Value dv(d);
    // Statement 1: oldest undelivered order of the district.
    if (idx == ctx.step) {
      Statement scan = db::make_scan("new_order", {eq(no_col::w, w), eq(no_col::d, dv)});
      scan.agg = Agg::kMin;
      scan.agg_column = no_col::o;
      scan.for_update = true;  // the oldest new-order row is deleted next
      return ProcStep::statement(std::move(scan));
    }
    const db::ExecResult& min_result = ctx.results[idx];
    ++idx;
    if (min_result.agg_value.is_null()) continue;  // nothing to deliver here
    const Value o_id = min_result.agg_value;

    const std::size_t base = idx;
    if (ctx.step < base + 6) {
      switch (ctx.step - base) {
        case 0:
          return ProcStep::statement(db::make_select_for_update("orders", {w, dv, o_id}));
        case 1: return ProcStep::statement(db::make_delete("new_order", {w, dv, o_id}));
        case 2:
          return ProcStep::statement(db::make_update(
              "orders", {w, dv, o_id}, {{ord_col::carrier, SetOp::kAssign, carrier}}));
        case 3: {
          Statement scan = db::make_scan(
              "order_line", {eq(ol_col::w, w), eq(ol_col::d, dv), eq(ol_col::o, o_id)});
          scan.agg = Agg::kSum;
          scan.agg_column = ol_col::amount;
          return ProcStep::statement(std::move(scan));
        }
        case 4:
          return ProcStep::statement(db::make_update_where(
              "order_line",
              {eq(ol_col::w, w), eq(ol_col::d, dv), eq(ol_col::o, o_id)},
              {{ol_col::delivery_d, SetOp::kAssign, delivery_d}}));
        default: {  // 5: credit the customer
          const Value c_id = !ctx.results[base].rows.empty()
                                 ? ctx.results[base].rows[0][ord_col::c_id]
                                 : Value(0);
          const double sum = ctx.results[base + 3].agg_value.is_null()
                                 ? 0.0
                                 : ctx.results[base + 3].agg_value.as_double();
          return ProcStep::statement(db::make_update(
              "customer", {w, dv, c_id},
              {{cust_col::balance, SetOp::kAdd, Value(sum)},
               {cust_col::delivery_cnt, SetOp::kAdd, Value(1)}}));
        }
      }
    }
    idx += 6;
  }
  return ProcStep::commit();
}

// ---- stock_level -----------------------------------------------------------------
// params: [w, d, threshold]
ProcStep stock_level_step(const StepContext& ctx) {
  const Value& w = ctx.params[0];
  const Value& d = ctx.params[1];
  const std::int64_t threshold = ctx.params[2].as_int();

  if (ctx.step == 0) return ProcStep::statement(db::make_select("district", {w, d}));
  if (ctx.step == 1) {
    SHADOW_CHECK(!ctx.results[0].rows.empty());
    const std::int64_t next_o = ctx.results[0].rows[0][dist_col::next_o_id].as_int();
    Statement scan = db::make_scan(
        "order_line",
        {eq(ol_col::w, w), eq(ol_col::d, d),
         Condition{ol_col::o, CmpOp::kGe, Value(next_o - 20)},
         Condition{ol_col::o, CmpOp::kLt, Value(next_o)}});
    scan.select_columns = {ol_col::i_id};
    return ProcStep::statement(std::move(scan));
  }
  // One stock read per distinct item of the last 20 orders, then count
  // below-threshold quantities (the count is computed procedure-side).
  std::set<std::int64_t> distinct;
  for (const db::Row& row : ctx.results[1].rows) distinct.insert(row[0].as_int());
  std::vector<std::int64_t> items(distinct.begin(), distinct.end());
  const std::size_t i = ctx.step - 2;
  if (i < items.size()) {
    return ProcStep::statement(db::make_select("stock", {w, Value(items[i])}));
  }
  (void)threshold;  // the low-stock count is derived by the caller if needed
  return ProcStep::commit();
}

}  // namespace

void register_procedures(ProcedureRegistry& registry) {
  registry.add(kNewOrderProc, new_order_step);
  registry.add(kPaymentProc, payment_step);
  registry.add(kOrderStatusProc, order_status_step);
  registry.add(kDeliveryProc, delivery_step);
  registry.add(kStockLevelProc, stock_level_step);
}

// ============================================================ generator ====

TxnGenerator::TxnGenerator(TpccConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed), stream_id_(seed & 0xffffff) {
  c_for_c_id_ = static_cast<std::int64_t>(rng_.uniform(0, 1023));
  c_for_i_id_ = static_cast<std::int64_t>(rng_.uniform(0, 8191));
}

std::int64_t TxnGenerator::nurand(std::int64_t a, std::int64_t x, std::int64_t y) {
  const std::int64_t c = a == 255 ? c_for_c_id_ : c_for_i_id_;
  const auto r1 = static_cast<std::int64_t>(rng_.uniform(0, static_cast<std::uint64_t>(a)));
  const auto r2 = static_cast<std::int64_t>(
      rng_.uniform(static_cast<std::uint64_t>(x), static_cast<std::uint64_t>(y)));
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

TxnGenerator::Txn TxnGenerator::next() {
  const std::uint64_t roll = rng_.uniform(1, 100);
  if (roll <= 45) return next_new_order();
  if (roll <= 88) return next_payment();
  if (roll <= 92) return next_order_status();
  if (roll <= 96) return next_delivery();
  return next_stock_level();
}

TxnGenerator::Txn TxnGenerator::next_new_order() {
  const auto w = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.warehouses)));
  const auto d = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.districts_per_wh)));
  const std::int64_t c = nurand(1023, 1, config_.customers_per_district);
  const auto ol_cnt = static_cast<std::int64_t>(rng_.uniform(5, 15));
  const bool rollback = rng_.uniform(1, 100) == 1;  // 1 % invalid item

  Params params{Value(w), Value(d), Value(c), Value(ol_cnt), Value(2)};
  std::vector<std::int64_t> item_ids;
  for (std::int64_t i = 0; i < ol_cnt; ++i) {
    std::int64_t item = nurand(8191, 1, config_.items);
    if (rollback && i == ol_cnt - 1) item = config_.items + 1;  // unused item
    item_ids.push_back(item);
  }
  // Stock rows are locked in item order: sorting the lines is the standard
  // TPC-C deadlock-avoidance technique (the invalid item sorts last anyway).
  std::sort(item_ids.begin(), item_ids.end());
  item_ids.erase(std::unique(item_ids.begin(), item_ids.end()), item_ids.end());
  params[3] = Value(static_cast<std::int64_t>(item_ids.size()));
  for (std::int64_t item : item_ids) {
    params.push_back(Value(item));
    params.push_back(Value(w));  // 1-warehouse config: all supplies local
    params.push_back(Value(static_cast<std::int64_t>(rng_.uniform(1, 10))));
  }
  return {kNewOrderProc, std::move(params)};
}

TxnGenerator::Txn TxnGenerator::next_payment() {
  const auto w = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.warehouses)));
  const auto d = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.districts_per_wh)));
  const bool by_name = rng_.uniform(1, 100) <= 60;
  const std::int64_t c_id = nurand(1023, 1, config_.customers_per_district);
  const std::int64_t name_max = std::min<std::int64_t>(999, config_.customers_per_district - 1);
  const std::int64_t c_last = nurand(255, 0, name_max);
  const double amount = static_cast<double>(rng_.uniform(100, 500000)) / 100.0;
  // History rows need globally unique ids: combine the generator's stream
  // id (unique per client) with a local counter.
  const std::int64_t h_id =
      (static_cast<std::int64_t>(stream_id_) << 32) |
      static_cast<std::int64_t>(h_id_next_++ << 8);
  return {kPaymentProc,
          {Value(w), Value(d), Value(w), Value(d), Value(by_name ? 1 : 0), Value(c_id),
           Value(c_last), Value(amount), Value(h_id)}};
}

TxnGenerator::Txn TxnGenerator::next_order_status() {
  const auto w = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.warehouses)));
  const auto d = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.districts_per_wh)));
  const bool by_name = rng_.uniform(1, 100) <= 60;
  const std::int64_t c_id = nurand(1023, 1, config_.customers_per_district);
  const std::int64_t name_max = std::min<std::int64_t>(999, config_.customers_per_district - 1);
  return {kOrderStatusProc,
          {Value(w), Value(d), Value(by_name ? 1 : 0), Value(c_id),
           Value(nurand(255, 0, name_max))}};
}

TxnGenerator::Txn TxnGenerator::next_delivery() {
  const auto w = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.warehouses)));
  return {kDeliveryProc,
          {Value(w), Value(static_cast<std::int64_t>(rng_.uniform(1, 10))), Value(3),
           Value(config_.districts_per_wh)}};
}

TxnGenerator::Txn TxnGenerator::next_stock_level() {
  const auto w = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.warehouses)));
  const auto d = static_cast<std::int64_t>(
      rng_.uniform(1, static_cast<std::uint64_t>(config_.districts_per_wh)));
  return {kStockLevelProc,
          {Value(w), Value(d), Value(static_cast<std::int64_t>(rng_.uniform(10, 20)))}};
}

// ========================================================= consistency ====

bool check_consistency(db::Engine& engine, const TpccConfig& config, std::string* detail) {
  const db::TxnId txn = engine.begin();
  bool ok = true;
  std::string why;
  for (std::int64_t w = 1; w <= config.warehouses && ok; ++w) {
    for (std::int64_t d = 1; d <= config.districts_per_wh && ok; ++d) {
      const db::ExecResult dist =
          engine.execute(txn, db::make_select("district", {Value(w), Value(d)}));
      SHADOW_CHECK(dist.ok() && !dist.rows.empty());
      const std::int64_t next_o = dist.rows[0][dist_col::next_o_id].as_int();

      db::Statement max_o =
          db::make_scan("orders", {eq(ord_col::w, Value(w)), eq(ord_col::d, Value(d))});
      max_o.agg = Agg::kMax;
      max_o.agg_column = ord_col::id;
      const db::ExecResult omax = engine.execute(txn, max_o);

      db::Statement max_no =
          db::make_scan("new_order", {eq(no_col::w, Value(w)), eq(no_col::d, Value(d))});
      max_no.agg = Agg::kMax;
      max_no.agg_column = no_col::o;
      const db::ExecResult nmax = engine.execute(txn, max_no);

      // Condition 1: d_next_o_id - 1 == max(o_id); the newest new_order (if
      // any) is also bounded by it.
      if (!omax.agg_value.is_null() && omax.agg_value.as_int() != next_o - 1) {
        ok = false;
        why = "district (" + std::to_string(w) + "," + std::to_string(d) +
              "): max(o_id)=" + omax.agg_value.to_string() +
              " != d_next_o_id-1=" + std::to_string(next_o - 1);
      }
      if (ok && !nmax.agg_value.is_null() && nmax.agg_value.as_int() > next_o - 1) {
        ok = false;
        why = "new_order beyond d_next_o_id in district " + std::to_string(d);
      }
    }
  }
  engine.commit(txn);
  if (!ok && detail != nullptr) *detail = why;
  return ok;
}

}  // namespace shadow::workload::tpcc
