// The client ↔ database-service protocol: transaction requests (type +
// parameters) and responses (commit/abort + result set). Shared by ShadowDB
// (both replication modes) and the baseline replicators.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "db/value.hpp"
#include "db/wire.hpp"
#include "net/message.hpp"
#include "workload/procedures.hpp"

namespace shadow::workload {

inline constexpr const char* kTxnRequestHeader = "txn-request";
inline constexpr const char* kTxnResponseHeader = "txn-response";

struct TxnRequest {
  ClientId client{};
  RequestSeq seq = 0;  // per-client sequence number (at-most-once execution)
  NodeId reply_to{};   // where the answer should be sent
  std::string proc;
  Params params;
};

struct TxnResponse {
  ClientId client{};
  RequestSeq seq = 0;
  bool committed = false;
  std::vector<db::Row> rows;  // the transaction's answer set, if any
  std::string error;
  /// Commit position (sharded deployments): the coordinator group and its
  /// apply position when the transaction executed. Read-only sessions use
  /// these as per-group read floors so a client's next snapshot read cannot
  /// miss its own committed write. Zero for classic (unsharded) clusters.
  std::uint32_t commit_group = 0;
  std::uint64_t commit_pos = 0;
};

/// Serialized request — the opaque payload carried in TOB commands and in
/// PBR's primary→backup forwarding.
std::string encode_request(const TxnRequest& req);
TxnRequest decode_request(const std::string& payload);

net::Message make_request_msg(const TxnRequest& req);
net::Message make_response_msg(const TxnResponse& resp);

}  // namespace shadow::workload

namespace shadow::wire {

template <>
struct Codec<workload::TxnRequest> {
  static void encode(BytesWriter& w, const workload::TxnRequest& v) {
    w.u32(v.client.value);
    w.u64(v.seq);
    w.u32(v.reply_to.value);
    w.str(v.proc);
    Codec<db::Row>::encode(w, v.params);
  }
  static workload::TxnRequest decode(BytesReader& r) {
    workload::TxnRequest v;
    v.client = ClientId{r.u32()};
    v.seq = r.u64();
    v.reply_to = NodeId{r.u32()};
    v.proc = r.str();
    v.params = Codec<db::Row>::decode(r);
    return v;
  }
};

template <>
struct Codec<workload::TxnResponse> {
  static void encode(BytesWriter& w, const workload::TxnResponse& v) {
    w.u32(v.client.value);
    w.u64(v.seq);
    w.u8(v.committed ? 1 : 0);
    Codec<std::vector<db::Row>>::encode(w, v.rows);
    w.str(v.error);
    w.u32(v.commit_group);
    w.u64(v.commit_pos);
  }
  static workload::TxnResponse decode(BytesReader& r) {
    workload::TxnResponse v;
    v.client = ClientId{r.u32()};
    v.seq = r.u64();
    v.committed = r.u8() != 0;
    v.rows = Codec<std::vector<db::Row>>::decode(r);
    v.error = r.str();
    v.commit_group = r.u32();
    v.commit_pos = r.u64();
    return v;
  }
};

}  // namespace shadow::wire
