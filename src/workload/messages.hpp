// The client ↔ database-service protocol: transaction requests (type +
// parameters) and responses (commit/abort + result set). Shared by ShadowDB
// (both replication modes) and the baseline replicators.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "db/value.hpp"
#include "sim/message.hpp"
#include "workload/procedures.hpp"

namespace shadow::workload {

inline constexpr const char* kTxnRequestHeader = "txn-request";
inline constexpr const char* kTxnResponseHeader = "txn-response";

struct TxnRequest {
  ClientId client{};
  RequestSeq seq = 0;  // per-client sequence number (at-most-once execution)
  NodeId reply_to{};   // where the answer should be sent
  std::string proc;
  Params params;
};

struct TxnResponse {
  ClientId client{};
  RequestSeq seq = 0;
  bool committed = false;
  std::vector<db::Row> rows;  // the transaction's answer set, if any
  std::string error;
};

/// Serialized request — the opaque payload carried in TOB commands and in
/// PBR's primary→backup forwarding.
std::string encode_request(const TxnRequest& req);
TxnRequest decode_request(const std::string& payload);

std::size_t request_wire_size(const TxnRequest& req);
std::size_t response_wire_size(const TxnResponse& resp);

sim::Message make_request_msg(const TxnRequest& req);
sim::Message make_response_msg(const TxnResponse& resp);

}  // namespace shadow::workload
