// Transactions as deterministic stored procedures.
//
// ShadowDB ships a transaction's *type and parameters* to the replicas
// ("Submitting a transaction T involves sending T's type and its
// parameters"), which execute it deterministically and sequentially. A
// procedure is a state machine that emits one statement per step (so the
// JDBC baselines can also interleave statements of concurrent transactions
// across client round-trips) and ends with commit or a deterministic
// rollback (the paper's footnote 4: transactions may request an abort, and
// determinism makes all replicas abort alike).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/engine.hpp"
#include "db/statement.hpp"

namespace shadow::workload {

using Params = db::Row;

/// What a procedure emits at each step.
struct ProcStep {
  enum class Kind : std::uint8_t { kStatement, kCommit, kRollback };
  Kind kind = Kind::kCommit;
  db::Statement stmt;

  static ProcStep statement(db::Statement s) {
    return ProcStep{Kind::kStatement, std::move(s)};
  }
  static ProcStep commit() { return ProcStep{Kind::kCommit, {}}; }
  static ProcStep rollback() { return ProcStep{Kind::kRollback, {}}; }
};

struct StepContext {
  const Params& params;
  std::size_t step = 0;  // 0-based index of the statement being requested
  const std::vector<db::ExecResult>& results;  // results of prior statements
};

using ProcedureFn = std::function<ProcStep(const StepContext&)>;

class ProcedureRegistry {
 public:
  void add(std::string name, ProcedureFn fn) {
    SHADOW_REQUIRE_MSG(procs_.emplace(std::move(name), std::move(fn)).second,
                       "duplicate procedure registration");
  }
  const ProcedureFn& get(const std::string& name) const {
    auto it = procs_.find(name);
    SHADOW_REQUIRE_MSG(it != procs_.end(), "unknown procedure: " + name);
    return it->second;
  }
  bool has(const std::string& name) const { return procs_.count(name) > 0; }

 private:
  std::map<std::string, ProcedureFn> procs_;
};

/// Outcome of running a whole procedure locally (replica-side execution).
struct TxnOutcome {
  bool committed = false;
  std::vector<db::Row> rows;  // result set of the last read statement
  db::Value agg_value;
  std::uint64_t cost_us = 0;  // total virtual CPU consumed
  std::size_t statements = 0;
  std::string error;
};

/// Runs a procedure to completion against the engine, sequentially (the
/// replica execution mode: no other transaction interleaves, so statements
/// never block). Used by ShadowDB replicas and by tests.
TxnOutcome run_procedure(db::Engine& engine, const ProcedureFn& proc, const Params& params);

}  // namespace shadow::workload
