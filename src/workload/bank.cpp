#include "workload/bank.hpp"

namespace shadow::workload::bank {

db::TableSchema make_schema() {
  db::TableSchema schema;
  schema.name = kTable;
  schema.columns = {
      {"id", db::ColumnType::kBigInt},
      {"owner", db::ColumnType::kVarchar},
      {"balance", db::ColumnType::kBigInt},
  };
  schema.primary_key = {0};
  return schema;
}

void load(db::Engine& engine, const BankConfig& config) {
  engine.create_table(make_schema());
  const db::TxnId txn = engine.begin();
  for (std::int64_t id = 0; id < config.accounts; ++id) {
    db::Row row{db::Value(id), db::Value(std::string(config.owner_bytes, 'o')),
                db::Value(std::int64_t{1000})};
    const db::ExecResult r = engine.execute(txn, db::make_insert(kTable, std::move(row)));
    SHADOW_CHECK(r.ok());
  }
  SHADOW_CHECK(engine.commit(txn).ok());
}

void register_procedures(ProcedureRegistry& registry) {
  registry.add(kDepositProc, [](const StepContext& ctx) -> ProcStep {
    if (ctx.step == 0) {
      db::SetClause add{2, db::SetOp::kAdd, ctx.params[1]};
      return ProcStep::statement(db::make_update(kTable, {ctx.params[0]}, {add}));
    }
    return ProcStep::commit();
  });

  registry.add(kBalanceProc, [](const StepContext& ctx) -> ProcStep {
    if (ctx.step == 0) {
      return ProcStep::statement(db::make_select(kTable, {ctx.params[0]}));
    }
    return ProcStep::commit();
  });

  registry.add(kTransferProc, [](const StepContext& ctx) -> ProcStep {
    switch (ctx.step) {
      case 0:
        return ProcStep::statement(db::make_select(kTable, {ctx.params[0]}));
      case 1: {
        // Deterministic abort on overdraft (all replicas decide alike).
        if (ctx.results[0].rows.empty() ||
            ctx.results[0].rows[0][2].as_int() < ctx.params[2].as_int()) {
          return ProcStep::rollback();
        }
        db::SetClause sub{2, db::SetOp::kAdd, db::Value(-ctx.params[2].as_int())};
        return ProcStep::statement(db::make_update(kTable, {ctx.params[0]}, {sub}));
      }
      case 2: {
        db::SetClause add{2, db::SetOp::kAdd, ctx.params[2]};
        return ProcStep::statement(db::make_update(kTable, {ctx.params[1]}, {add}));
      }
      default:
        return ProcStep::commit();
    }
  });

  registry.add(kBalance2Proc, [](const StepContext& ctx) -> ProcStep {
    switch (ctx.step) {
      case 0:
        return ProcStep::statement(db::make_select(kTable, {ctx.params[0]}));
      case 1:
        return ProcStep::statement(db::make_select(kTable, {ctx.params[1]}));
      default:
        return ProcStep::commit();
    }
  });

  registry.add(kAuditProc, [](const StepContext& ctx) -> ProcStep {
    if (ctx.step == 0) {
      db::Statement scan = db::make_scan(kTable, {});
      scan.agg = db::Agg::kSum;
      scan.agg_column = 2;
      return ProcStep::statement(std::move(scan));
    }
    return ProcStep::commit();
  });
}

Params make_deposit(Rng& rng, const BankConfig& config) {
  const auto account = static_cast<std::int64_t>(
      rng.uniform(0, static_cast<std::uint64_t>(config.accounts - 1)));
  const auto amount = static_cast<std::int64_t>(rng.uniform(1, 100));
  return Params{db::Value(account), db::Value(amount)};
}

std::int64_t total_balance(db::Engine& engine) {
  const db::TxnId txn = engine.begin();
  db::Statement scan = db::make_scan(kTable, {});
  scan.agg = db::Agg::kSum;
  scan.agg_column = 2;
  const db::ExecResult r = engine.execute(txn, scan);
  SHADOW_CHECK(r.ok());
  engine.commit(txn);
  return r.agg_value.as_int();
}

}  // namespace shadow::workload::bank
