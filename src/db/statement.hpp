// Structured SQL statements.
//
// The engines execute structured statements (what a JDBC PreparedStatement
// becomes after parsing); the mini-SQL front end (db/sql.hpp) parses textual
// SQL into these. ShadowDB replicas ship transaction *types and parameters*
// (stored procedures), never raw SQL, exactly as in the paper.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "db/schema.hpp"
#include "db/value.hpp"

namespace shadow::db {

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Condition {
  std::size_t column = 0;
  CmpOp op = CmpOp::kEq;
  Value value;

  bool matches(const Row& row) const {
    const auto cmp = row[column] <=> value;
    switch (op) {
      case CmpOp::kEq: return cmp == 0;
      case CmpOp::kNe: return cmp != 0;
      case CmpOp::kLt: return cmp < 0;
      case CmpOp::kLe: return cmp <= 0;
      case CmpOp::kGt: return cmp > 0;
      case CmpOp::kGe: return cmp >= 0;
    }
    return false;
  }
};

enum class SetOp : std::uint8_t { kAssign, kAdd };

struct SetClause {
  std::size_t column = 0;
  SetOp op = SetOp::kAssign;
  Value value;
};

enum class Agg : std::uint8_t { kNone, kCount, kSum, kMin, kMax };

struct Statement {
  enum class Kind : std::uint8_t {
    kCreateTable,
    kInsert,
    kSelect,       // point lookup by primary key
    kUpdate,       // point update by primary key
    kDelete,       // point delete by primary key
    kScan,         // predicate scan with optional aggregate/order/limit
    kUpdateWhere,  // predicate update
    kDeleteWhere,  // predicate delete
  };

  Kind kind = Kind::kSelect;
  std::string table;
  TableSchema schema;            // kCreateTable
  Row row;                       // kInsert
  Key key;                       // point ops
  std::vector<SetClause> sets;   // updates
  std::vector<Condition> where;  // predicate ops
  Agg agg = Agg::kNone;
  std::size_t agg_column = 0;
  std::optional<std::pair<std::size_t, bool>> order_by;  // (column, descending)
  std::size_t limit = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> select_columns;  // empty = all columns
  /// SELECT ... FOR UPDATE: reads that precede a write to the same rows take
  /// exclusive locks up front, avoiding shared→exclusive upgrade deadlocks.
  bool for_update = false;

  bool is_read_only() const { return kind == Kind::kSelect || kind == Kind::kScan; }
};

// -- convenience builders (the prepared-statement API) ------------------------

Statement make_create_table(TableSchema schema);
Statement make_insert(std::string table, Row row);
Statement make_select(std::string table, Key key);
Statement make_select_for_update(std::string table, Key key);
Statement make_update(std::string table, Key key, std::vector<SetClause> sets);
Statement make_delete(std::string table, Key key);
Statement make_scan(std::string table, std::vector<Condition> where);
Statement make_update_where(std::string table, std::vector<Condition> where,
                            std::vector<SetClause> sets);

/// Result of executing one statement.
struct ExecResult {
  enum class Status : std::uint8_t {
    kOk,
    kBlocked,  // queued on a lock; a wake callback will deliver the outcome
    kAborted,  // transaction aborted (lock timeout / conflict)
  };

  Status status = Status::kOk;
  std::vector<Row> rows;    // select/scan output
  Value agg_value;          // aggregate result
  std::size_t affected = 0; // rows touched by writes
  std::uint64_t cost_us = 0;  // CPU consumed by this call (virtual micros)
  std::string error;

  bool ok() const { return status == Status::kOk; }
};

}  // namespace shadow::db
