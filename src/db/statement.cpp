#include "db/statement.hpp"

namespace shadow::db {

Statement make_create_table(TableSchema schema) {
  Statement s;
  s.kind = Statement::Kind::kCreateTable;
  s.table = schema.name;
  s.schema = std::move(schema);
  return s;
}

Statement make_insert(std::string table, Row row) {
  Statement s;
  s.kind = Statement::Kind::kInsert;
  s.table = std::move(table);
  s.row = std::move(row);
  return s;
}

Statement make_select(std::string table, Key key) {
  Statement s;
  s.kind = Statement::Kind::kSelect;
  s.table = std::move(table);
  s.key = std::move(key);
  return s;
}

Statement make_select_for_update(std::string table, Key key) {
  Statement s = make_select(std::move(table), std::move(key));
  s.for_update = true;
  return s;
}

Statement make_update(std::string table, Key key, std::vector<SetClause> sets) {
  Statement s;
  s.kind = Statement::Kind::kUpdate;
  s.table = std::move(table);
  s.key = std::move(key);
  s.sets = std::move(sets);
  return s;
}

Statement make_delete(std::string table, Key key) {
  Statement s;
  s.kind = Statement::Kind::kDelete;
  s.table = std::move(table);
  s.key = std::move(key);
  return s;
}

Statement make_scan(std::string table, std::vector<Condition> where) {
  Statement s;
  s.kind = Statement::Kind::kScan;
  s.table = std::move(table);
  s.where = std::move(where);
  return s;
}

Statement make_update_where(std::string table, std::vector<Condition> where,
                            std::vector<SetClause> sets) {
  Statement s;
  s.kind = Statement::Kind::kUpdateWhere;
  s.table = std::move(table);
  s.where = std::move(where);
  s.sets = std::move(sets);
  return s;
}

}  // namespace shadow::db
