#include "db/table.hpp"

namespace shadow::db {

std::size_t KeyHash::operator()(const Key& key) const {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : key) {
    std::size_t vh = std::visit(
        [](const auto& x) -> std::size_t {
          using T = std::decay_t<decltype(x)>;
          if constexpr (std::is_same_v<T, Value::Null>) {
            return 0;
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            return std::hash<std::int64_t>{}(x);
          } else if constexpr (std::is_same_v<T, double>) {
            return std::hash<double>{}(x);
          } else {
            return std::hash<std::string>{}(x);
          }
        },
        v.rep());
    h ^= vh + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool HashStorage::insert(const Key& key, Row row) {
  return rows_.try_emplace(key, std::move(row)).second;
}

const Row* HashStorage::get(const Key& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

Row* HashStorage::get_mutable(const Key& key) {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool HashStorage::erase(const Key& key) { return rows_.erase(key) > 0; }

void HashStorage::scan(const std::function<bool(const Key&, const Row&)>& visit) const {
  for (const auto& [key, row] : rows_) {
    if (!visit(key, row)) return;
  }
}

void HashStorage::scan_from(const Key& /*start*/,
                            const std::function<bool(const Key&, const Row&)>& visit) const {
  scan(visit);  // no key order available: full scan
}

bool OrderedStorage::insert(const Key& key, Row row) {
  return rows_.try_emplace(key, std::move(row)).second;
}

const Row* OrderedStorage::get(const Key& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

Row* OrderedStorage::get_mutable(const Key& key) {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool OrderedStorage::erase(const Key& key) { return rows_.erase(key) > 0; }

void OrderedStorage::scan(const std::function<bool(const Key&, const Row&)>& visit) const {
  for (const auto& [key, row] : rows_) {
    if (!visit(key, row)) return;
  }
}

void OrderedStorage::scan_from(const Key& start,
                               const std::function<bool(const Key&, const Row&)>& visit) const {
  for (auto it = rows_.lower_bound(start); it != rows_.end(); ++it) {
    if (!visit(it->first, it->second)) return;
  }
}

}  // namespace shadow::db
