// SQL values and rows for the in-memory database engines.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/check.hpp"

namespace shadow::db {

/// A SQL value: NULL, BIGINT, DOUBLE or VARCHAR.
class Value {
 public:
  struct Null {
    auto operator<=>(const Null&) const = default;
  };
  using Rep = std::variant<Null, std::int64_t, double, std::string>;

  Value() : rep_(Null{}) {}
  Value(std::int64_t v) : rep_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(std::int64_t{v}) {}   // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}              // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<Null>(rep_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  std::int64_t as_int() const {
    const auto* p = std::get_if<std::int64_t>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a BIGINT");
    return *p;
  }
  double as_double() const {
    if (const auto* p = std::get_if<double>(&rep_)) return *p;
    return static_cast<double>(as_int());  // implicit widening, like SQL
  }
  const std::string& as_string() const {
    const auto* p = std::get_if<std::string>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a VARCHAR");
    return *p;
  }

  /// Arithmetic add used by `SET col = col + x` updates; NULL-propagating.
  Value plus(const Value& other) const {
    if (is_null() || other.is_null()) return Value();
    if (is_int() && other.is_int()) return Value(as_int() + other.as_int());
    return Value(as_double() + other.as_double());
  }

  auto operator<=>(const Value&) const = default;

  const Rep& rep() const { return rep_; }

  /// Serialized size in bytes (for snapshot batches and wire accounting).
  std::size_t wire_size() const;
  void serialize(BytesWriter& w) const;
  static Value deserialize(BytesReader& r);

  std::string to_string() const;

 private:
  Rep rep_;
};

using Row = std::vector<Value>;
using Key = std::vector<Value>;

std::size_t row_wire_size(const Row& row);
void serialize_row(BytesWriter& w, const Row& row);
Row deserialize_row(BytesReader& r);

}  // namespace shadow::db
