// Table schemas.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "db/value.hpp"

namespace shadow::db {

enum class ColumnType : std::uint8_t { kBigInt, kDouble, kVarchar };

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kBigInt;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::size_t> primary_key;  // column indexes

  std::size_t column_index(const std::string& column) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column) return i;
    }
    SHADOW_REQUIRE_MSG(false, "unknown column '" + column + "' in table '" + name + "'");
    return 0;
  }

  bool has_column(const std::string& column) const {
    for (const ColumnDef& c : columns) {
      if (c.name == column) return true;
    }
    return false;
  }

  Key key_of(const Row& row) const {
    SHADOW_REQUIRE(row.size() == columns.size());
    Key key;
    key.reserve(primary_key.size());
    for (std::size_t idx : primary_key) key.push_back(row[idx]);
    return key;
  }
};

}  // namespace shadow::db
