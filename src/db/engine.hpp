// The in-memory SQL engine.
//
// One implementation, parameterized by EngineTraits, backs the "diverse"
// databases the paper deploys (H2, HSQLDB, Derby for ShadowDB replicas;
// MySQL's memory and InnoDB engines for the baselines). The traits control
// what actually distinguishes those systems for the paper's experiments:
// lock granularity (table vs row), index structure (hash vs ordered), the
// per-operation cost profile, and the lock-wait timeout.
//
// Transactions use strict two-phase locking with undo-based rollback.
// Statements that hit a lock conflict return kBlocked and complete later
// through the wake callback (granted) or abort on timeout — the mechanism
// behind the H2-repl/MySQL contention collapse in Fig. 9(a).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "db/lock_manager.hpp"
#include "db/statement.hpp"
#include "db/table.hpp"
#include "net/time.hpp"

namespace shadow::db {

/// Virtual CPU costs (µs) of engine operations; calibrated per engine
/// flavour (see make_*_traits below and EXPERIMENTS.md).
struct EngineCosts {
  std::uint64_t begin_us = 6;
  std::uint64_t commit_us = 28;
  std::uint64_t insert_us = 16;
  std::uint64_t point_read_us = 9;
  std::uint64_t point_write_us = 14;
  double scan_row_us = 0.35;        // per row visited
  double byte_us = 0.08;            // per byte touched by point reads/writes
  std::uint64_t lock_retry_us = 20; // CPU burned on a failed acquisition
  // State transfer (Fig. 10(b)): row-insertion speed is the bottleneck.
  double snap_serialize_col_us = 4.0;   // per column serialized
  double snap_serialize_byte_us = 0.045;
  double snap_insert_row_us = 30.0;     // per row inserted at the destination
  double snap_insert_byte_us = 0.045;
};

struct EngineTraits {
  std::string name = "h2like";
  bool row_locks = false;     // false: table-level locks (H2, MySQL-memory)
  bool ordered_index = false; // true: ordered storage (HSQLDB, Derby, InnoDB)
  // READ_COMMITTED (H2's default): plain read locks are statement-scoped,
  // released as soon as the statement finishes; write locks are held to
  // commit. false: strict 2PL (Derby/InnoDB serializable-style behaviour).
  bool read_committed = false;
  EngineCosts costs;
  net::Time lock_timeout = 500000;  // 500 ms, H2's default order of magnitude
};

// The engine flavours deployed in the paper's evaluation.
EngineTraits make_h2_traits();      // table locks, hash index, fastest
EngineTraits make_hsqldb_traits();  // table locks, ordered index
EngineTraits make_derby_traits();   // row locks, ordered index, slowest
EngineTraits make_innodb_traits();  // row locks, ordered index, redo overhead
EngineTraits make_mysql_memory_traits();  // table locks, hash index

class Engine {
 public:
  using WakeFn = std::function<void(TxnId, const ExecResult&)>;

  explicit Engine(EngineTraits traits);

  const EngineTraits& traits() const { return traits_; }

  /// DDL, outside transactions (schema setup).
  void create_table(TableSchema schema);
  bool has_table(const std::string& name) const;

  // -- transactions -----------------------------------------------------------
  TxnId begin();
  ExecResult execute(TxnId txn, const Statement& stmt);
  ExecResult commit(TxnId txn);
  /// Client-requested rollback; also used internally on failures.
  ExecResult abort(TxnId txn);
  bool is_active(TxnId txn) const;

  /// Delivery channel for kBlocked statements (grant or timeout-abort).
  void set_wake(WakeFn fn) { wake_ = std::move(fn); }

  /// Drives lock-wait timeouts; call with the current virtual time.
  void tick(net::Time now);
  /// Current virtual time source for lock deadlines (set by the server).
  void set_clock(std::function<net::Time()> clock) { clock_ = std::move(clock); }

  // -- statistics ---------------------------------------------------------------
  std::uint64_t committed_count() const { return committed_; }
  std::uint64_t aborted_count() const { return aborted_; }
  std::size_t total_rows() const;
  /// Transactions currently queued on locks (contention gauge).
  std::size_t waiting_count() const { return locks_.waiting_count(); }

  // -- snapshots / state transfer ----------------------------------------------
  struct SnapshotBatch {
    std::string table;
    Bytes data;
    std::size_t rows = 0;
  };
  struct Snapshot {
    std::vector<SnapshotBatch> batches;
    std::vector<TableSchema> schemas;
    std::uint64_t serialize_cost_us = 0;
    std::size_t total_bytes = 0;
    std::size_t total_rows = 0;
  };

  /// Serializes all tables in ~batch_bytes chunks (the paper uses ~50 KB).
  Snapshot snapshot(std::size_t batch_bytes = 50 * 1024) const;
  /// Like snapshot(), but only rows where `include(table, key)` is true.
  /// Used by shard rebalancing to serialize exactly the migrating range.
  Snapshot snapshot_filtered(
      std::size_t batch_bytes,
      const std::function<bool(const std::string&, const Key&)>& include) const;
  /// Applies one batch; returns the CPU cost (row insertion dominates).
  std::uint64_t restore_batch(const SnapshotBatch& batch);
  /// Installs schemas and clears data (start of a full state transfer).
  void reset_for_restore(const std::vector<TableSchema>& schemas);

  // -- incremental (delta) state transfer ---------------------------------------
  //
  // The replication layer stamps a monotone state version on the engine as it
  // applies its command sequence (the same version at the same position on
  // every replica of a group). Every mutation marks its key dirty at the
  // current version; a delta snapshot "since V" then ships exactly the rows
  // touched after V plus the keys deleted after V — a receiver whose state
  // matches version V reaches the sender's state by upserting/deleting them.

  /// Sets the current state version; mutations stamp their keys with it.
  /// A full restore wipes the version chains and parks the history floor at
  /// UINT64_MAX ("nothing reconstructible here"). Version-carrying streams
  /// re-open the floor through set_delta_floor; the v1 stream carries no
  /// version, so the first post-restore delivery stamp re-opens it instead:
  /// the restored storage plus the transaction stamped `v` is exactly the
  /// state at `v`. Without this, a v1-promoted spare would refuse every
  /// versioned read forever.
  void set_state_version(std::uint64_t v) {
    if (history_floor_ == UINT64_MAX && v != UINT64_MAX) history_floor_ = v;
    state_version_ = v;
  }
  std::uint64_t state_version() const { return state_version_; }
  /// Oldest version a delta can be served from. 0 on a fresh engine (dirty
  /// tracking has seen every mutation); raised to the restore version after a
  /// full restore (history before it was never observed here).
  std::uint64_t delta_floor() const { return delta_floor_; }
  /// Also re-opens versioned reads from `v`: a completed restore at version
  /// `v` makes current storage exactly the state at `v`.
  void set_delta_floor(std::uint64_t v) {
    delta_floor_ = v;
    history_floor_ = v;
  }
  bool delta_valid(std::uint64_t since) const { return since >= delta_floor_; }

  struct DeltaSnapshot {
    std::vector<SnapshotBatch> upserts;  // current rows of keys touched after `since`
    std::vector<std::pair<std::string, std::vector<Key>>> deletes;  // per table
    std::uint64_t serialize_cost_us = 0;
    std::size_t total_bytes = 0;
    std::size_t total_rows = 0;
    std::size_t total_deletes = 0;
  };
  /// Requires delta_valid(since). Deterministic (keys emitted in order).
  DeltaSnapshot delta_snapshot(std::uint64_t since, std::size_t batch_bytes = 50 * 1024) const;
  /// Applies a delta batch: insert-or-overwrite each row. Returns CPU cost.
  std::uint64_t restore_upsert_batch(const SnapshotBatch& batch);
  /// Applies a delta's deletions for one table. Returns CPU cost.
  std::uint64_t apply_deletes(const std::string& table, const std::vector<Key>& keys);
  /// Deletes every row of `table` where `include(key)` (rebalancing: the
  /// donor group drops the migrated range at the routing flip). Returns the
  /// number of rows removed.
  std::size_t delete_where_key(const std::string& table,
                               const std::function<bool(const Key&)>& include);

  /// Order-independent digest of the full database state, for the paper's
  /// State-agreement property ("replicas start in the same state").
  std::uint64_t state_digest() const;

  // -- versioned reads (MVCC-lite) ----------------------------------------------
  //
  // Every mutation captures the key's pre-image into a bounded version chain
  // before overwriting it, stamped with the state version doing the
  // overwrite. A read "at version V" then reconstructs the row exactly as it
  // stood after all mutations stamped <= V: if the key's last touch is <= V
  // the current storage value is the answer; otherwise the first chain entry
  // superseding it after V holds the historical value. Readers never take
  // locks and writers never wait for readers — the chains are append-only
  // and GC'd below the slowest registered reader.

  /// Pins `version` against GC; returns a reader id for release_reader().
  std::uint64_t register_reader(std::uint64_t version);
  void release_reader(std::uint64_t reader_id);
  /// Slowest in-flight registered reader's version (state_version() if none):
  /// the GC watermark — chain entries that only serve reads below it die.
  std::uint64_t read_watermark() const;
  /// Oldest version read_at() can still reconstruct exactly. Raised by GC
  /// (to the watermark) and by full restores (history was never seen here).
  std::uint64_t min_read_version() const { return history_floor_; }
  bool read_version_valid(std::uint64_t v) const { return v >= min_read_version(); }
  /// Executes a read-only statement (kSelect / kScan) against the state as
  /// of `version`, without touching the lock manager or any transaction.
  /// Requires read_version_valid(version).
  ExecResult read_at(const Statement& stmt, std::uint64_t version) const;
  /// Drops version-chain entries no reader can still need. Returns the
  /// number of entries dropped; also runs automatically every few thousand
  /// pre-image captures so unread history never accumulates.
  std::size_t gc_versions();
  /// Live version-chain entries (memory gauge for benches and tests).
  std::size_t version_entries() const { return history_entries_; }

 private:
  struct UndoEntry {
    enum class Kind : std::uint8_t { kInsert, kUpdate, kDelete };
    Kind kind;
    std::string table;
    Key key;
    Row old_row;  // kUpdate/kDelete
  };

  struct Txn {
    enum class State : std::uint8_t { kActive, kBlocked, kCommitted, kAborted };
    State state = State::kActive;
    std::vector<UndoEntry> undo;
    std::unique_ptr<Statement> blocked;  // statement awaiting a lock
  };

  Table& table_of(const std::string& name);
  const Table& table_of(const std::string& name) const;
  /// Records a mutation of (table, key) at the current state version: the
  /// key joins the dirty set if present in storage, the tombstone set if not.
  void touch(const std::string& table, const Key& key);
  /// Appends the key's current value (or absence) to its version chain,
  /// stamped superseded-at the current state version. Called BEFORE every
  /// mutation; a second capture within the same state version is a no-op
  /// (the chain records the value at the version's start).
  void capture_history(const std::string& table, const Key& key);
  /// The (exists, row) pair as of `version`. The pointer stays valid until
  /// the next mutation or GC.
  std::pair<bool, const Row*> value_at(const std::string& table, const Key& key,
                                       std::uint64_t version) const;
  ExecResult run_statement(Txn& txn, TxnId id, const Statement& stmt);
  ExecResult do_insert(Txn& txn, const Statement& stmt, Table& table);
  ExecResult do_point(Txn& txn, const Statement& stmt, Table& table);
  ExecResult do_predicate(Txn& txn, const Statement& stmt, Table& table);
  AcquireStatus acquire(TxnId id, Txn& txn, const LockTarget& target, LockMode mode);
  void rollback(Txn& txn);
  void wake_granted(const std::vector<TxnId>& granted);
  ExecResult abort_result(TxnId id, Txn& txn, std::string why);
  net::Time now() const { return clock_ ? clock_() : 0; }

  EngineTraits traits_;
  std::map<std::string, Table> tables_;
  LockManager locks_;
  std::unordered_map<TxnId, Txn> txns_;
  TxnId next_txn_ = 1;
  WakeFn wake_;
  std::function<net::Time()> clock_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;

  // Delta state-transfer tracking: last-touch version per key. A key lives in
  // at most one of the two maps (dirty if present in storage, tombstone if
  // deleted). Cleared by reset_for_restore (the floor takes over).
  using TouchMap = std::unordered_map<Key, std::uint64_t, KeyHash>;
  std::uint64_t state_version_ = 0;
  std::uint64_t delta_floor_ = 0;
  std::map<std::string, TouchMap> dirty_;
  std::map<std::string, TouchMap> tombstones_;

  // MVCC-lite version chains: per key, the pre-images of its mutations in
  // ascending superseded-at order. An entry {V, existed, row} holds the value
  // the key had before the first mutation stamped V — i.e. its value at every
  // version in [previous entry's V, V-1].
  struct VersionEntry {
    std::uint64_t superseded_at = 0;
    bool existed = false;
    Row row;
  };
  using VersionChain = std::vector<VersionEntry>;
  std::map<std::string, std::unordered_map<Key, VersionChain, KeyHash>> history_;
  std::unordered_map<std::uint64_t, std::uint64_t> readers_;  // reader id → version
  std::uint64_t next_reader_ = 1;
  std::uint64_t history_floor_ = 0;
  std::size_t history_entries_ = 0;
  std::uint64_t captures_since_gc_ = 0;
};

}  // namespace shadow::db
