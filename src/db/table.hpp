// Row storage. Two independent storage structures back the "diverse"
// engines: a hash index (H2-like) and an ordered index (HSQLDB/Derby-like).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "db/schema.hpp"
#include "db/value.hpp"

namespace shadow::db {

struct KeyHash {
  std::size_t operator()(const Key& key) const;
};

/// Abstract per-table row store, keyed by primary key.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Inserts; returns false on duplicate key.
  virtual bool insert(const Key& key, Row row) = 0;
  virtual const Row* get(const Key& key) const = 0;
  virtual Row* get_mutable(const Key& key) = 0;
  virtual bool erase(const Key& key) = 0;
  virtual std::size_t size() const = 0;

  /// Visits all rows (ordered stores visit in key order); the visitor
  /// returns false to stop early.
  virtual void scan(const std::function<bool(const Key&, const Row&)>& visit) const = 0;

  /// True if scan() visits rows in primary-key order; enables index range
  /// scans (the "less than" / "order by" optimization the MySQL memory
  /// engine lacks, per the paper's §IV.B).
  virtual bool ordered() const = 0;

  /// Visits rows with key >= start in key order. Hash stores fall back to a
  /// full scan (callers must not early-stop on key order then).
  virtual void scan_from(const Key& start,
                         const std::function<bool(const Key&, const Row&)>& visit) const = 0;
};

/// Hash-indexed storage (the H2-style engines).
class HashStorage final : public Storage {
 public:
  bool insert(const Key& key, Row row) override;
  const Row* get(const Key& key) const override;
  Row* get_mutable(const Key& key) override;
  bool erase(const Key& key) override;
  std::size_t size() const override { return rows_.size(); }
  void scan(const std::function<bool(const Key&, const Row&)>& visit) const override;
  bool ordered() const override { return false; }
  void scan_from(const Key& start,
                 const std::function<bool(const Key&, const Row&)>& visit) const override;

 private:
  std::unordered_map<Key, Row, KeyHash> rows_;
};

/// Ordered storage (AVL/B-tree-style engines; scans are key-ordered).
class OrderedStorage final : public Storage {
 public:
  bool insert(const Key& key, Row row) override;
  const Row* get(const Key& key) const override;
  Row* get_mutable(const Key& key) override;
  bool erase(const Key& key) override;
  std::size_t size() const override { return rows_.size(); }
  void scan(const std::function<bool(const Key&, const Row&)>& visit) const override;
  bool ordered() const override { return true; }
  void scan_from(const Key& start,
                 const std::function<bool(const Key&, const Row&)>& visit) const override;

 private:
  std::map<Key, Row> rows_;
};

/// A table: schema + storage.
struct Table {
  TableSchema schema;
  std::unique_ptr<Storage> storage;

  Table(TableSchema s, bool ordered)
      : schema(std::move(s)),
        storage(ordered ? std::unique_ptr<Storage>(std::make_unique<OrderedStorage>())
                        : std::unique_ptr<Storage>(std::make_unique<HashStorage>())) {}
};

}  // namespace shadow::db
