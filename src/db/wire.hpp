// Wire codecs for database types that travel inside messages: values, rows,
// table schemas, snapshot chunks, and structured statements (shipped by the
// statement-replication baselines). Value delegates to its own serialize /
// deserialize so the codec format stays identical to the snapshot format.
#pragma once

#include "db/engine.hpp"
#include "db/schema.hpp"
#include "db/statement.hpp"
#include "db/value.hpp"
#include "wire/codec.hpp"

namespace shadow::wire {

template <>
struct Codec<db::Value> {
  static void encode(BytesWriter& w, const db::Value& v) { v.serialize(w); }
  static db::Value decode(BytesReader& r) { return db::Value::deserialize(r); }
};

template <>
struct Codec<db::ColumnDef> {
  static void encode(BytesWriter& w, const db::ColumnDef& v) {
    w.str(v.name);
    w.u8(static_cast<std::uint8_t>(v.type));
  }
  static db::ColumnDef decode(BytesReader& r) {
    db::ColumnDef v;
    v.name = r.str();
    v.type = static_cast<db::ColumnType>(r.u8());
    return v;
  }
};

template <>
struct Codec<db::TableSchema> {
  static void encode(BytesWriter& w, const db::TableSchema& v) {
    w.str(v.name);
    Codec<std::vector<db::ColumnDef>>::encode(w, v.columns);
    Codec<std::vector<std::size_t>>::encode(w, v.primary_key);
  }
  static db::TableSchema decode(BytesReader& r) {
    db::TableSchema v;
    v.name = r.str();
    v.columns = Codec<std::vector<db::ColumnDef>>::decode(r);
    v.primary_key = Codec<std::vector<std::size_t>>::decode(r);
    return v;
  }
};

template <>
struct Codec<db::Engine::SnapshotBatch> {
  static void encode(BytesWriter& w, const db::Engine::SnapshotBatch& v) {
    w.str(v.table);
    Codec<Bytes>::encode(w, v.data);
    w.u64(v.rows);
  }
  static db::Engine::SnapshotBatch decode(BytesReader& r) {
    db::Engine::SnapshotBatch v;
    v.table = r.str();
    v.data = Codec<Bytes>::decode(r);
    v.rows = static_cast<std::size_t>(r.u64());
    return v;
  }
};

template <>
struct Codec<db::Condition> {
  static void encode(BytesWriter& w, const db::Condition& v) {
    w.u64(v.column);
    w.u8(static_cast<std::uint8_t>(v.op));
    Codec<db::Value>::encode(w, v.value);
  }
  static db::Condition decode(BytesReader& r) {
    db::Condition v;
    v.column = static_cast<std::size_t>(r.u64());
    v.op = static_cast<db::CmpOp>(r.u8());
    v.value = Codec<db::Value>::decode(r);
    return v;
  }
};

template <>
struct Codec<db::SetClause> {
  static void encode(BytesWriter& w, const db::SetClause& v) {
    w.u64(v.column);
    w.u8(static_cast<std::uint8_t>(v.op));
    Codec<db::Value>::encode(w, v.value);
  }
  static db::SetClause decode(BytesReader& r) {
    db::SetClause v;
    v.column = static_cast<std::size_t>(r.u64());
    v.op = static_cast<db::SetOp>(r.u8());
    v.value = Codec<db::Value>::decode(r);
    return v;
  }
};

template <>
struct Codec<db::Statement> {
  static void encode(BytesWriter& w, const db::Statement& v) {
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.str(v.table);
    Codec<db::TableSchema>::encode(w, v.schema);
    Codec<db::Row>::encode(w, v.row);
    Codec<db::Key>::encode(w, v.key);
    Codec<std::vector<db::SetClause>>::encode(w, v.sets);
    Codec<std::vector<db::Condition>>::encode(w, v.where);
    w.u8(static_cast<std::uint8_t>(v.agg));
    w.u64(v.agg_column);
    Codec<std::optional<std::pair<std::size_t, bool>>>::encode(w, v.order_by);
    w.u64(v.limit);
    Codec<std::vector<std::size_t>>::encode(w, v.select_columns);
    w.u8(v.for_update ? 1 : 0);
  }
  static db::Statement decode(BytesReader& r) {
    db::Statement v;
    v.kind = static_cast<db::Statement::Kind>(r.u8());
    v.table = r.str();
    v.schema = Codec<db::TableSchema>::decode(r);
    v.row = Codec<db::Row>::decode(r);
    v.key = Codec<db::Key>::decode(r);
    v.sets = Codec<std::vector<db::SetClause>>::decode(r);
    v.where = Codec<std::vector<db::Condition>>::decode(r);
    v.agg = static_cast<db::Agg>(r.u8());
    v.agg_column = static_cast<std::size_t>(r.u64());
    v.order_by = Codec<std::optional<std::pair<std::size_t, bool>>>::decode(r);
    v.limit = static_cast<std::size_t>(r.u64());
    v.select_columns = Codec<std::vector<std::size_t>>::decode(r);
    v.for_update = r.u8() != 0;
    return v;
  }
};

}  // namespace shadow::wire
