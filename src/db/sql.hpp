// Mini-SQL front end.
//
// ShadowDB "allows to easily plug in any JDBC-enabled database"; the textual
// interface the examples use is a small SQL dialect that covers what the
// paper's workloads need:
//
//   CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE, PRIMARY KEY (a))
//   INSERT INTO t VALUES (1, 'x', 2.5)
//   SELECT * FROM t WHERE a = 1
//   SELECT b, c FROM t WHERE c > 2 ORDER BY c DESC LIMIT 10
//   SELECT COUNT(*) | SUM(c) | MIN(c) | MAX(c) FROM t WHERE ...
//   UPDATE t SET c = 3, b = 'y', c = c + 1 WHERE a = 1
//   DELETE FROM t WHERE a = 1
//
// WHERE clauses are conjunctions of comparisons against literals. When the
// conjunction pins the entire primary key with equalities, the parser emits
// a point statement (index lookup); otherwise a predicate scan.
#pragma once

#include <functional>
#include <string>

#include "db/statement.hpp"

namespace shadow::db {

/// Resolves a table name to its schema (needed to bind column names).
using SchemaLookup = std::function<const TableSchema*(const std::string&)>;

/// Parses one SQL statement. Throws PreconditionViolation with a diagnostic
/// on syntax errors or unknown tables/columns.
Statement parse_sql(const std::string& sql, const SchemaLookup& lookup);

}  // namespace shadow::db
