#include "db/engine.hpp"

#include <algorithm>

namespace shadow::db {

EngineTraits make_h2_traits() {
  EngineTraits t;
  t.name = "h2like";
  t.row_locks = false;     // "H2 does not offer row-level locks"
  t.ordered_index = true;  // H2's MVStore is a B-tree: range scans work
  t.read_committed = true; // H2's default isolation level
  return t;
}

EngineTraits make_hsqldb_traits() {
  EngineTraits t;
  t.name = "hsqldblike";
  t.row_locks = false;
  t.ordered_index = true;
  t.read_committed = true;
  t.costs.point_read_us = 11;
  t.costs.point_write_us = 17;
  t.costs.insert_us = 19;
  return t;
}

EngineTraits make_derby_traits() {
  EngineTraits t;
  t.name = "derbylike";
  t.row_locks = true;
  t.ordered_index = true;
  t.costs.point_read_us = 14;
  t.costs.point_write_us = 22;
  t.costs.insert_us = 25;
  t.costs.commit_us = 40;
  return t;
}

EngineTraits make_innodb_traits() {
  EngineTraits t;
  t.name = "innodblike";
  t.row_locks = true;
  t.ordered_index = true;
  // InnoDB's plain SELECTs are MVCC consistent reads that take no locks;
  // statement-scoped read locks are the closest lock-based approximation.
  t.read_committed = true;
  // Row locks plus redo-log bookkeeping (synchronous disk writes disabled,
  // as in the paper's MySQL configuration).
  t.costs.point_read_us = 12;
  t.costs.point_write_us = 20;
  t.costs.insert_us = 22;
  t.costs.commit_us = 45;
  t.lock_timeout = 2000000;  // InnoDB waits far longer than H2 by default
  return t;
}

EngineTraits make_mysql_memory_traits() {
  EngineTraits t;
  t.name = "mysql-memory";
  t.read_committed = true;  // MySQL's default isolation on MyISAM/MEMORY
  t.row_locks = false;      // the memory engine only provides table locking
  t.ordered_index = false;  // hash-indexed: "less than"/"order by" degrade to
                            // full scans, which is why the paper switches
                            // MySQL to InnoDB for TPC-C
  t.costs.point_read_us = 10;
  t.costs.point_write_us = 15;
  t.costs.insert_us = 17;
  t.costs.commit_us = 32;
  return t;
}

Engine::Engine(EngineTraits traits) : traits_(std::move(traits)) {}

void Engine::create_table(TableSchema schema) {
  SHADOW_REQUIRE_MSG(tables_.find(schema.name) == tables_.end(),
                     "table already exists: " + schema.name);
  SHADOW_REQUIRE(!schema.columns.empty() && !schema.primary_key.empty());
  std::string name = schema.name;
  tables_.emplace(std::move(name), Table(std::move(schema), traits_.ordered_index));
}

bool Engine::has_table(const std::string& name) const { return tables_.count(name) > 0; }

Table& Engine::table_of(const std::string& name) {
  auto it = tables_.find(name);
  SHADOW_REQUIRE_MSG(it != tables_.end(), "unknown table: " + name);
  return it->second;
}

const Table& Engine::table_of(const std::string& name) const {
  auto it = tables_.find(name);
  SHADOW_REQUIRE_MSG(it != tables_.end(), "unknown table: " + name);
  return it->second;
}

TxnId Engine::begin() {
  const TxnId id = next_txn_++;
  txns_[id] = Txn{};
  return id;
}

bool Engine::is_active(TxnId txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() &&
         (it->second.state == Txn::State::kActive || it->second.state == Txn::State::kBlocked);
}

AcquireStatus Engine::acquire(TxnId id, Txn& txn, const LockTarget& target, LockMode mode) {
  const AcquireStatus status = locks_.acquire(id, target, mode, now() + traits_.lock_timeout);
  if (status == AcquireStatus::kQueued) txn.state = Txn::State::kBlocked;
  return status;
}

ExecResult Engine::execute(TxnId id, const Statement& stmt) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    ExecResult r;
    r.status = ExecResult::Status::kAborted;
    r.error = "transaction no longer exists";
    return r;
  }
  Txn& txn = it->second;
  if (txn.state == Txn::State::kAborted) {
    ExecResult r;
    r.status = ExecResult::Status::kAborted;
    r.error = "transaction already aborted";
    return r;
  }
  SHADOW_REQUIRE_MSG(txn.state == Txn::State::kActive, "transaction is not active");
  ExecResult result = run_statement(txn, id, stmt);
  if (result.status == ExecResult::Status::kBlocked) {
    txn.blocked = std::make_unique<Statement>(stmt);
  }
  return result;
}

ExecResult Engine::run_statement(Txn& txn, TxnId id, const Statement& stmt) {
  ExecResult result;
  if (stmt.kind == Statement::Kind::kCreateTable) {
    create_table(stmt.schema);
    result.cost_us = traits_.costs.insert_us;
    return result;
  }

  Table& table = table_of(stmt.table);

  // -- locking ---------------------------------------------------------------
  const bool write = !stmt.is_read_only() || stmt.for_update;
  const LockMode mode = write ? LockMode::kExclusive : LockMode::kShared;
  LockTarget target{stmt.table, std::nullopt};
  const bool point_op = stmt.kind == Statement::Kind::kInsert ||
                        stmt.kind == Statement::Kind::kSelect ||
                        stmt.kind == Statement::Kind::kUpdate ||
                        stmt.kind == Statement::Kind::kDelete;
  if (traits_.row_locks && point_op) {
    // Multigranularity: IS/IX on the table, then S/X on the row. The
    // intention lock is what keeps whole-table scans (S/X on the table)
    // from seeing uncommitted row updates.
    const LockMode intent =
        write ? LockMode::kIntentionExclusive : LockMode::kIntentionShared;
    const AcquireStatus intent_status = acquire(id, txn, target, intent);
    if (intent_status == AcquireStatus::kDeadlock) {
      return abort_result(id, txn, "deadlock detected on " + stmt.table);
    }
    if (intent_status == AcquireStatus::kQueued) {
      result.status = ExecResult::Status::kBlocked;
      result.cost_us = traits_.costs.lock_retry_us;
      return result;
    }
    target.row = stmt.kind == Statement::Kind::kInsert ? table.schema.key_of(stmt.row) : stmt.key;
  }
  const AcquireStatus status = acquire(id, txn, target, mode);
  if (status == AcquireStatus::kDeadlock) {
    return abort_result(id, txn, "deadlock detected on " + stmt.table);
  }
  if (status == AcquireStatus::kQueued) {
    result.status = ExecResult::Status::kBlocked;
    result.cost_us = traits_.costs.lock_retry_us;
    return result;
  }

  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      result = do_insert(txn, stmt, table);
      break;
    case Statement::Kind::kSelect:
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete:
      result = do_point(txn, stmt, table);
      break;
    case Statement::Kind::kScan:
    case Statement::Kind::kUpdateWhere:
    case Statement::Kind::kDeleteWhere:
      result = do_predicate(txn, stmt, table);
      break;
    case Statement::Kind::kCreateTable:
      SHADOW_CHECK_MSG(false, "unreachable statement kind");
      break;
  }
  // READ_COMMITTED: plain read locks are statement-scoped.
  if (traits_.read_committed && !write && result.status == ExecResult::Status::kOk) {
    wake_granted(locks_.release_shared(id, target));
    if (target.row.has_value()) {
      wake_granted(locks_.release_shared(id, LockTarget{stmt.table, std::nullopt}));
    }
  }
  return result;
}

namespace {

Row project(const Row& row, const std::vector<std::size_t>& columns) {
  if (columns.empty()) return row;
  Row out;
  out.reserve(columns.size());
  for (std::size_t c : columns) out.push_back(row[c]);
  return out;
}

void apply_sets(Row& row, const std::vector<SetClause>& sets) {
  for (const SetClause& set : sets) {
    if (set.op == SetOp::kAssign) {
      row[set.column] = set.value;
    } else {
      row[set.column] = row[set.column].plus(set.value);
    }
  }
}

}  // namespace

ExecResult Engine::do_insert(Txn& txn, const Statement& stmt, Table& table) {
  ExecResult result;
  result.cost_us = traits_.costs.insert_us +
                   static_cast<std::uint64_t>(traits_.costs.byte_us *
                                              static_cast<double>(row_wire_size(stmt.row)));
  SHADOW_REQUIRE_MSG(stmt.row.size() == table.schema.columns.size(),
                     "row arity mismatch for " + stmt.table);
  const Key key = table.schema.key_of(stmt.row);
  capture_history(stmt.table, key);
  if (!table.storage->insert(key, stmt.row)) {
    result.status = ExecResult::Status::kAborted;
    result.error = "duplicate primary key in " + stmt.table;
    return result;
  }
  txn.undo.push_back(UndoEntry{UndoEntry::Kind::kInsert, stmt.table, key, {}});
  touch(stmt.table, key);
  result.affected = 1;
  return result;
}

ExecResult Engine::do_point(Txn& txn, const Statement& stmt, Table& table) {
  ExecResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      result.cost_us = traits_.costs.point_read_us;
      if (const Row* row = table.storage->get(stmt.key)) {
        result.cost_us += static_cast<std::uint64_t>(
            traits_.costs.byte_us * static_cast<double>(row_wire_size(*row)));
        result.rows.push_back(project(*row, stmt.select_columns));
      }
      return result;
    }
    case Statement::Kind::kUpdate: {
      result.cost_us = traits_.costs.point_write_us;
      if (Row* row = table.storage->get_mutable(stmt.key)) {
        result.cost_us += static_cast<std::uint64_t>(
            traits_.costs.byte_us * static_cast<double>(row_wire_size(*row)));
        txn.undo.push_back(UndoEntry{UndoEntry::Kind::kUpdate, stmt.table, stmt.key, *row});
        capture_history(stmt.table, stmt.key);
        apply_sets(*row, stmt.sets);
        touch(stmt.table, stmt.key);
        result.affected = 1;
      }
      return result;
    }
    case Statement::Kind::kDelete: {
      result.cost_us = traits_.costs.point_write_us;
      if (const Row* row = table.storage->get(stmt.key)) {
        txn.undo.push_back(UndoEntry{UndoEntry::Kind::kDelete, stmt.table, stmt.key, *row});
        capture_history(stmt.table, stmt.key);
        table.storage->erase(stmt.key);
        touch(stmt.table, stmt.key);
        result.affected = 1;
      }
      return result;
    }
    default:
      SHADOW_CHECK_MSG(false, "not a point statement");
      return result;
  }
}

namespace {

/// Index-range planning: extract the longest equality-pinned prefix of the
/// primary key (plus an optional lower/upper bound on the next key column)
/// from a conjunction. All conditions are still re-checked as filters, so
/// the plan only affects which rows are *visited*.
struct ScanPlan {
  Key prefix;                       // equality-pinned leading PK columns
  std::optional<Value> next_lo;     // >= bound on the next PK column
  std::optional<Value> next_hi;     // <= / < bound on the next PK column
  bool use_index = false;
};

ScanPlan plan_scan(const Statement& stmt, const TableSchema& schema) {
  ScanPlan plan;
  for (std::size_t pk_pos = 0; pk_pos < schema.primary_key.size(); ++pk_pos) {
    const std::size_t col = schema.primary_key[pk_pos];
    const Condition* eq = nullptr;
    for (const Condition& c : stmt.where) {
      if (c.column == col && c.op == CmpOp::kEq) eq = &c;
    }
    if (eq != nullptr) {
      plan.prefix.push_back(eq->value);
      continue;
    }
    // No equality for this PK column: look for range bounds, then stop.
    for (const Condition& c : stmt.where) {
      if (c.column != col) continue;
      if (c.op == CmpOp::kGe || c.op == CmpOp::kGt) plan.next_lo = c.value;
      if (c.op == CmpOp::kLe || c.op == CmpOp::kLt) plan.next_hi = c.value;
    }
    break;
  }
  plan.use_index = !plan.prefix.empty() || plan.next_lo.has_value();
  return plan;
}

bool key_has_prefix(const Key& key, const Key& prefix) {
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (!(key[i] == prefix[i])) return false;
  }
  return true;
}

/// Shared kScan row accumulation (aggregates, projection, order_by, limit),
/// used by both the locked read path and the lock-free versioned read path.
struct ScanAccumulator {
  const Statement& stmt;
  ExecResult& result;
  bool agg_init = false;
  std::int64_t count = 0;
  Value agg;

  void add(const Row& row) {
    switch (stmt.agg) {
      case Agg::kNone:
        result.rows.push_back(project(row, stmt.select_columns));
        break;
      case Agg::kCount:
        ++count;
        break;
      case Agg::kSum:
        agg = agg_init ? agg.plus(row[stmt.agg_column]) : row[stmt.agg_column];
        agg_init = true;
        break;
      case Agg::kMin:
        if (!agg_init || row[stmt.agg_column] < agg) agg = row[stmt.agg_column];
        agg_init = true;
        break;
      case Agg::kMax:
        if (!agg_init || agg < row[stmt.agg_column]) agg = row[stmt.agg_column];
        agg_init = true;
        break;
    }
  }

  void finish() {
    if (stmt.agg == Agg::kCount) {
      result.agg_value = Value(count);
    } else if (stmt.agg != Agg::kNone) {
      result.agg_value = agg;
    }
    if (stmt.agg == Agg::kNone) {
      if (stmt.order_by) {
        const auto [col, desc] = *stmt.order_by;
        // Note: projection happens before ordering, so order_by columns must
        // be part of select_columns (or select all). The SQL front end
        // enforces this.
        std::stable_sort(result.rows.begin(), result.rows.end(),
                         [col = col, desc = desc](const Row& a, const Row& b) {
                           return desc ? b[col] < a[col] : a[col] < b[col];
                         });
      }
      if (result.rows.size() > stmt.limit) result.rows.resize(stmt.limit);
    }
  }
};

}  // namespace

ExecResult Engine::do_predicate(Txn& txn, const Statement& stmt, Table& table) {
  ExecResult result;
  std::size_t visited = 0;
  const auto matches = [&stmt](const Row& row) {
    return std::all_of(stmt.where.begin(), stmt.where.end(),
                       [&row](const Condition& c) { return c.matches(row); });
  };

  // Choose between an index range scan (ordered storage) and a full scan.
  const ScanPlan plan = plan_scan(stmt, table.schema);
  const bool indexed = plan.use_index && table.storage->ordered();
  const auto ranged_scan = [&](const std::function<bool(const Key&, const Row&)>& visit) {
    if (!indexed) {
      table.storage->scan(visit);
      return;
    }
    Key start = plan.prefix;
    if (plan.next_lo) start.push_back(*plan.next_lo);
    const std::size_t next_col_pos = plan.prefix.size();
    table.storage->scan_from(start, [&](const Key& key, const Row& row) {
      if (!key_has_prefix(key, plan.prefix)) return false;  // left the range
      if (plan.next_hi && next_col_pos < key.size() && *plan.next_hi < key[next_col_pos]) {
        return false;
      }
      return visit(key, row);
    });
  };

  if (stmt.kind == Statement::Kind::kScan) {
    ScanAccumulator accum{stmt, result};
    ranged_scan([&](const Key&, const Row& row) {
      ++visited;
      if (matches(row)) accum.add(row);
      return true;
    });
    accum.finish();
  } else {
    // UpdateWhere / DeleteWhere: collect matching keys first, then mutate.
    std::vector<Key> keys;
    ranged_scan([&](const Key& key, const Row& row) {
      ++visited;
      if (matches(row)) keys.push_back(key);
      return true;
    });
    for (const Key& key : keys) {
      capture_history(stmt.table, key);
      if (stmt.kind == Statement::Kind::kUpdateWhere) {
        Row* row = table.storage->get_mutable(key);
        SHADOW_CHECK(row != nullptr);
        txn.undo.push_back(UndoEntry{UndoEntry::Kind::kUpdate, stmt.table, key, *row});
        apply_sets(*row, stmt.sets);
      } else {
        const Row* row = table.storage->get(key);
        SHADOW_CHECK(row != nullptr);
        txn.undo.push_back(UndoEntry{UndoEntry::Kind::kDelete, stmt.table, key, *row});
        table.storage->erase(key);
      }
      touch(stmt.table, key);
      ++result.affected;
    }
  }

  result.cost_us = traits_.costs.point_read_us +
                   static_cast<std::uint64_t>(traits_.costs.scan_row_us *
                                              static_cast<double>(visited)) +
                   traits_.costs.point_write_us * result.affected;
  return result;
}

ExecResult Engine::commit(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    // The transaction was already torn down (e.g. lock-timeout abort raced
    // with the commit request).
    ExecResult r;
    r.status = ExecResult::Status::kAborted;
    r.error = "transaction no longer exists";
    return r;
  }
  Txn& txn = it->second;
  ExecResult result;
  if (txn.state != Txn::State::kActive) {
    result.status = ExecResult::Status::kAborted;
    result.error = "commit of non-active transaction";
    txns_.erase(it);
    return result;
  }
  txn.state = Txn::State::kCommitted;
  ++committed_;
  result.cost_us = traits_.costs.commit_us;
  const std::vector<TxnId> granted = locks_.release_all(id);
  txns_.erase(it);
  wake_granted(granted);
  return result;
}

ExecResult Engine::abort(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    ExecResult r;
    r.status = ExecResult::Status::kAborted;
    r.error = "transaction no longer exists";
    return r;
  }
  Txn& txn = it->second;
  ExecResult result;
  result.status = ExecResult::Status::kAborted;
  result.cost_us = traits_.costs.commit_us;
  rollback(txn);
  ++aborted_;
  const std::vector<TxnId> granted = locks_.release_all(id);
  txns_.erase(it);
  wake_granted(granted);
  return result;
}

void Engine::rollback(Txn& txn) {
  for (auto it = txn.undo.rbegin(); it != txn.undo.rend(); ++it) {
    Table& table = table_of(it->table);
    // The undo application is itself a mutation at the current version; the
    // capture is a no-op when the forward mutation already captured here.
    capture_history(it->table, it->key);
    switch (it->kind) {
      case UndoEntry::Kind::kInsert:
        table.storage->erase(it->key);
        break;
      case UndoEntry::Kind::kUpdate: {
        Row* row = table.storage->get_mutable(it->key);
        SHADOW_CHECK(row != nullptr);
        *row = it->old_row;
        break;
      }
      case UndoEntry::Kind::kDelete:
        table.storage->insert(it->key, it->old_row);
        break;
    }
    // The key's value just changed again (back to its pre-statement state);
    // re-touching may over-approximate the dirty set, which is always safe.
    touch(it->table, it->key);
  }
  txn.undo.clear();
}

ExecResult Engine::abort_result(TxnId id, Txn& txn, std::string why) {
  rollback(txn);
  txn.state = Txn::State::kAborted;
  ++aborted_;
  ExecResult r;
  r.status = ExecResult::Status::kAborted;
  r.error = std::move(why);
  r.cost_us = traits_.costs.commit_us;
  // The transaction is dead: its locks must not outlive it, and waiters
  // must be woken. `txn` is invalid after the erase.
  const std::vector<TxnId> granted = locks_.release_all(id);
  txns_.erase(id);
  wake_granted(granted);
  return r;
}

void Engine::wake_granted(const std::vector<TxnId>& granted) {
  for (TxnId granted_txn : granted) {
    auto git = txns_.find(granted_txn);
    if (git == txns_.end() || git->second.state != Txn::State::kBlocked) continue;
    git->second.state = Txn::State::kActive;
    SHADOW_CHECK(git->second.blocked != nullptr);
    const Statement stmt = *git->second.blocked;
    git->second.blocked.reset();
    ExecResult retry = run_statement(git->second, granted_txn, stmt);
    if (retry.status == ExecResult::Status::kBlocked) {
      // run_statement may have erased/rehashed txns_ (nested aborts): re-find.
      auto again = txns_.find(granted_txn);
      if (again != txns_.end()) again->second.blocked = std::make_unique<Statement>(stmt);
    }
    if (wake_ && retry.status != ExecResult::Status::kBlocked) wake_(granted_txn, retry);
  }
}

void Engine::tick(net::Time now_time) {
  const LockManager::ExpireResult expired = locks_.expire(now_time);
  for (TxnId id : expired.expired) {
    auto it = txns_.find(id);
    if (it == txns_.end()) continue;
    // abort_result releases the transaction's locks, erases it, and wakes
    // the transactions its release unblocked.
    ExecResult aborted =
        abort_result(id, it->second, "lock wait timeout on " + traits_.name);
    if (wake_) wake_(id, aborted);
  }
  wake_granted(expired.granted);
}

std::size_t Engine::total_rows() const {
  std::size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.storage->size();
  return n;
}

Engine::Snapshot Engine::snapshot(std::size_t batch_bytes) const {
  return snapshot_filtered(batch_bytes, nullptr);
}

Engine::Snapshot Engine::snapshot_filtered(
    std::size_t batch_bytes,
    const std::function<bool(const std::string&, const Key&)>& include) const {
  Snapshot snap;
  double cost = 0.0;
  for (const auto& [name, table] : tables_) {
    snap.schemas.push_back(table.schema);
    BytesWriter writer;
    std::size_t rows_in_batch = 0;
    const std::size_t cols = table.schema.columns.size();
    auto flush = [&]() {
      if (rows_in_batch == 0) return;
      SnapshotBatch batch;
      batch.table = name;
      batch.data = writer.take();
      batch.rows = rows_in_batch;
      snap.total_bytes += batch.data.size();
      snap.total_rows += batch.rows;
      snap.batches.push_back(std::move(batch));
      writer = BytesWriter();
      rows_in_batch = 0;
    };
    table.storage->scan([&](const Key& key, const Row& row) {
      if (include && !include(name, key)) return true;
      serialize_row(writer, row);
      ++rows_in_batch;
      cost += traits_.costs.snap_serialize_col_us * static_cast<double>(cols) +
              traits_.costs.snap_serialize_byte_us * static_cast<double>(row_wire_size(row));
      if (writer.size() >= batch_bytes) flush();
      return true;
    });
    flush();
  }
  snap.serialize_cost_us = static_cast<std::uint64_t>(cost);
  return snap;
}

std::uint64_t Engine::restore_batch(const SnapshotBatch& batch) {
  Table& table = table_of(batch.table);
  BytesReader reader(batch.data);
  double cost = 0.0;
  while (!reader.done()) {
    Row row = deserialize_row(reader);
    cost += traits_.costs.snap_insert_row_us +
            traits_.costs.snap_insert_byte_us * static_cast<double>(row_wire_size(row));
    const Key key = table.schema.key_of(row);
    table.storage->insert(key, std::move(row));
  }
  return static_cast<std::uint64_t>(cost);
}

void Engine::reset_for_restore(const std::vector<TableSchema>& schemas) {
  tables_.clear();
  txns_.clear();
  locks_ = LockManager();
  // Dirty history refers to state that just got wiped, so no delta can be
  // served from here until a transfer completes and stamps the restore
  // version as the new floor (a v1 transfer carries no version and leaves
  // the engine unable to serve deltas — always safe, never wrong).
  dirty_.clear();
  tombstones_.clear();
  delta_floor_ = UINT64_MAX;
  // Version chains likewise describe the wiped state; until the transfer
  // completes and stamps its version as the new floor (set_delta_floor),
  // no historical read can be served from here.
  history_.clear();
  history_entries_ = 0;
  readers_.clear();
  history_floor_ = UINT64_MAX;
  for (const TableSchema& schema : schemas) create_table(schema);
}

void Engine::touch(const std::string& table, const Key& key) {
  if (table_of(table).storage->get(key) != nullptr) {
    dirty_[table][key] = state_version_;
    auto ts = tombstones_.find(table);
    if (ts != tombstones_.end()) ts->second.erase(key);
  } else {
    tombstones_[table][key] = state_version_;
    auto d = dirty_.find(table);
    if (d != dirty_.end()) d->second.erase(key);
  }
}

Engine::DeltaSnapshot Engine::delta_snapshot(std::uint64_t since,
                                             std::size_t batch_bytes) const {
  SHADOW_REQUIRE_MSG(delta_valid(since), "delta requested below the tracking floor");
  DeltaSnapshot delta;
  double cost = 0.0;
  for (const auto& [name, touched] : dirty_) {
    const Table& table = table_of(name);
    const std::size_t cols = table.schema.columns.size();
    // Deterministic emission: sort the touched keys (the maps are hashed).
    std::vector<const Key*> keys;
    for (const auto& [key, version] : touched) {
      if (version > since) keys.push_back(&key);
    }
    std::sort(keys.begin(), keys.end(),
              [](const Key* a, const Key* b) { return *a < *b; });
    BytesWriter writer;
    std::size_t rows_in_batch = 0;
    auto flush = [&]() {
      if (rows_in_batch == 0) return;
      SnapshotBatch batch;
      batch.table = name;
      batch.data = writer.take();
      batch.rows = rows_in_batch;
      delta.total_bytes += batch.data.size();
      delta.total_rows += batch.rows;
      delta.upserts.push_back(std::move(batch));
      writer = BytesWriter();
      rows_in_batch = 0;
    };
    for (const Key* key : keys) {
      const Row* row = table.storage->get(*key);
      SHADOW_CHECK_MSG(row != nullptr, "dirty key missing from storage");
      serialize_row(writer, *row);
      ++rows_in_batch;
      cost += traits_.costs.snap_serialize_col_us * static_cast<double>(cols) +
              traits_.costs.snap_serialize_byte_us * static_cast<double>(row_wire_size(*row));
      if (writer.size() >= batch_bytes) flush();
    }
    flush();
  }
  for (const auto& [name, gone] : tombstones_) {
    std::vector<Key> keys;
    for (const auto& [key, version] : gone) {
      if (version > since) keys.push_back(key);
    }
    if (keys.empty()) continue;
    std::sort(keys.begin(), keys.end());
    delta.total_deletes += keys.size();
    delta.deletes.emplace_back(name, std::move(keys));
  }
  delta.serialize_cost_us = static_cast<std::uint64_t>(cost);
  return delta;
}

std::uint64_t Engine::restore_upsert_batch(const SnapshotBatch& batch) {
  Table& table = table_of(batch.table);
  BytesReader reader(batch.data);
  double cost = 0.0;
  while (!reader.done()) {
    Row row = deserialize_row(reader);
    cost += traits_.costs.snap_insert_row_us +
            traits_.costs.snap_insert_byte_us * static_cast<double>(row_wire_size(row));
    const Key key = table.schema.key_of(row);
    capture_history(batch.table, key);
    if (Row* existing = table.storage->get_mutable(key)) {
      *existing = std::move(row);
    } else {
      table.storage->insert(key, std::move(row));
    }
    touch(batch.table, key);
  }
  return static_cast<std::uint64_t>(cost);
}

std::uint64_t Engine::apply_deletes(const std::string& table_name,
                                    const std::vector<Key>& keys) {
  Table& table = table_of(table_name);
  for (const Key& key : keys) {
    capture_history(table_name, key);
    table.storage->erase(key);
    touch(table_name, key);
  }
  return traits_.costs.point_write_us * keys.size();
}

std::size_t Engine::delete_where_key(const std::string& table_name,
                                     const std::function<bool(const Key&)>& include) {
  Table& table = table_of(table_name);
  std::vector<Key> doomed;
  table.storage->scan([&](const Key& key, const Row&) {
    if (include(key)) doomed.push_back(key);
    return true;
  });
  for (const Key& key : doomed) {
    capture_history(table_name, key);
    table.storage->erase(key);
    touch(table_name, key);
  }
  return doomed.size();
}

void Engine::capture_history(const std::string& table, const Key& key) {
  VersionChain& chain = history_[table][key];
  // One capture per state version: the chain records the value at the
  // version's start, and later mutations within the version overwrite state
  // the first capture already preserved.
  if (!chain.empty() && chain.back().superseded_at >= state_version_) return;
  VersionEntry entry;
  entry.superseded_at = state_version_;
  if (const Row* row = table_of(table).storage->get(key)) {
    entry.existed = true;
    entry.row = *row;
  }
  chain.push_back(std::move(entry));
  ++history_entries_;
  if (++captures_since_gc_ >= 4096) gc_versions();
}

std::pair<bool, const Row*> Engine::value_at(const std::string& table, const Key& key,
                                             std::uint64_t version) const {
  // A key untouched since `version` reads straight from storage.
  std::uint64_t last_touch = 0;
  bool touched = false;
  if (auto d = dirty_.find(table); d != dirty_.end()) {
    if (auto it = d->second.find(key); it != d->second.end()) {
      last_touch = it->second;
      touched = true;
    }
  }
  if (!touched) {
    if (auto t = tombstones_.find(table); t != tombstones_.end()) {
      if (auto it = t->second.find(key); it != t->second.end()) {
        last_touch = it->second;
        touched = true;
      }
    }
  }
  if (touched && last_touch > version) {
    // Mutated after `version`: the first chain entry superseding the key
    // later than `version` preserved its value as of `version`.
    if (auto h = history_.find(table); h != history_.end()) {
      if (auto it = h->second.find(key); it != h->second.end()) {
        const VersionChain& chain = it->second;
        auto e = std::lower_bound(
            chain.begin(), chain.end(), version,
            [](const VersionEntry& a, std::uint64_t v) { return a.superseded_at <= v; });
        if (e != chain.end()) return {e->existed, e->existed ? &e->row : nullptr};
      }
    }
    // Pre-image GC'd or never captured — only reachable below the floor,
    // which read_version_valid() callers never are.
  }
  const Row* row = table_of(table).storage->get(key);
  return {row != nullptr, row};
}

ExecResult Engine::read_at(const Statement& stmt, std::uint64_t version) const {
  ExecResult result;
  if (stmt.kind == Statement::Kind::kSelect) {
    result.cost_us = traits_.costs.point_read_us;
    const auto [exists, row] = value_at(stmt.table, stmt.key, version);
    if (exists) {
      result.cost_us += static_cast<std::uint64_t>(traits_.costs.byte_us *
                                                   static_cast<double>(row_wire_size(*row)));
      result.rows.push_back(project(*row, stmt.select_columns));
    }
    return result;
  }
  if (stmt.kind != Statement::Kind::kScan) {
    result.status = ExecResult::Status::kAborted;
    result.error = "read_at supports only read-only statements";
    return result;
  }
  const Table& table = table_of(stmt.table);
  const auto matches = [&stmt](const Row& row) {
    return std::all_of(stmt.where.begin(), stmt.where.end(),
                       [&row](const Condition& c) { return c.matches(row); });
  };
  ScanAccumulator accum{stmt, result};
  std::size_t visited = 0;
  // Pass 1: keys currently in storage, each reconstructed as of `version`.
  table.storage->scan([&](const Key& key, const Row&) {
    ++visited;
    const auto [exists, row] = value_at(stmt.table, key, version);
    if (exists && matches(*row)) accum.add(*row);
    return true;
  });
  // Pass 2: keys deleted since `version` survive only in the version chains
  // (sorted for deterministic row order).
  if (auto h = history_.find(stmt.table); h != history_.end()) {
    std::vector<const Key*> gone;
    for (const auto& [key, chain] : h->second) {
      if (table.storage->get(key) == nullptr) gone.push_back(&key);
    }
    std::sort(gone.begin(), gone.end(), [](const Key* a, const Key* b) { return *a < *b; });
    for (const Key* key : gone) {
      ++visited;
      const auto [exists, row] = value_at(stmt.table, *key, version);
      if (exists && matches(*row)) accum.add(*row);
    }
  }
  accum.finish();
  result.cost_us =
      traits_.costs.point_read_us +
      static_cast<std::uint64_t>(traits_.costs.scan_row_us * static_cast<double>(visited));
  return result;
}

std::uint64_t Engine::register_reader(std::uint64_t version) {
  const std::uint64_t id = next_reader_++;
  readers_[id] = version;
  return id;
}

void Engine::release_reader(std::uint64_t reader_id) { readers_.erase(reader_id); }

std::uint64_t Engine::read_watermark() const {
  std::uint64_t wm = state_version_;
  for (const auto& [id, version] : readers_) wm = std::min(wm, version);
  return wm;
}

std::size_t Engine::gc_versions() {
  captures_since_gc_ = 0;
  const std::uint64_t wm = read_watermark();
  std::size_t dropped = 0;
  for (auto t = history_.begin(); t != history_.end();) {
    auto& chains = t->second;
    for (auto it = chains.begin(); it != chains.end();) {
      VersionChain& chain = it->second;
      // An entry superseded at or before the watermark only serves reads
      // below it, which no registered reader can still issue.
      std::size_t dead = 0;
      while (dead < chain.size() && chain[dead].superseded_at <= wm) ++dead;
      if (dead > 0) {
        chain.erase(chain.begin(), chain.begin() + static_cast<std::ptrdiff_t>(dead));
        dropped += dead;
      }
      it = chain.empty() ? chains.erase(it) : std::next(it);
    }
    t = chains.empty() ? history_.erase(t) : std::next(t);
  }
  history_entries_ -= dropped;
  if (history_floor_ < wm) history_floor_ = wm;
  return dropped;
}

std::uint64_t Engine::state_digest() const {
  // Order-independent: XOR/sum of per-row hashes so hash- and tree-indexed
  // replicas of the same logical state agree.
  std::uint64_t digest = 0;
  KeyHash hasher;
  for (const auto& [name, table] : tables_) {
    const std::uint64_t table_tag = std::hash<std::string>{}(name);
    table.storage->scan([&](const Key&, const Row& row) {
      std::uint64_t h = table_tag;
      h ^= hasher(row) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      digest += h * 0x2545f4914f6cdd1dULL;
      return true;
    });
  }
  return digest;
}

}  // namespace shadow::db
