#include "db/sql.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace shadow::db {
namespace {

// ------------------------------------------------------------------ lexer --

enum class TokKind : std::uint8_t { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  /// Takes the next token, requiring it to be the given symbol/keyword.
  void expect(const std::string& text) {
    Token t = take();
    SHADOW_REQUIRE_MSG(upper(t.text) == upper(text),
                       "SQL syntax error: expected '" + text + "', got '" + t.text + "'");
  }

  bool accept(const std::string& text) {
    if (upper(current_.text) == upper(text) && current_.kind != TokKind::kEnd) {
      advance();
      return true;
    }
    return false;
  }

  bool at_end() const { return current_.kind == TokKind::kEnd; }

  static std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return s;
  }

 private:
  void advance() {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[pos_]))) ++pos_;
    if (pos_ >= input_.size()) {
      current_ = Token{TokKind::kEnd, ""};
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < input_.size() && (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                                      input_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{TokKind::kIdent, input_.substr(start, pos_ - start)};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() && (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                                      input_[pos_] == '.')) {
        ++pos_;
      }
      current_ = Token{TokKind::kNumber, input_.substr(start, pos_ - start)};
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != '\'') text += input_[pos_++];
      SHADOW_REQUIRE_MSG(pos_ < input_.size(), "SQL syntax error: unterminated string");
      ++pos_;  // closing quote
      current_ = Token{TokKind::kString, std::move(text)};
      return;
    }
    // Multi-char comparison operators.
    for (const char* op : {"<=", ">=", "<>", "!="}) {
      if (input_.compare(pos_, 2, op) == 0) {
        current_ = Token{TokKind::kSymbol, std::string(op)};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokKind::kSymbol, std::string(1, c)};
    ++pos_;
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Token current_;
};

// ----------------------------------------------------------------- helpers --

Value parse_literal(Lexer& lex) {
  Token t = lex.take();
  if (t.kind == TokKind::kString) return Value(t.text);
  if (t.kind == TokKind::kNumber) {
    if (t.text.find('.') != std::string::npos) return Value(std::stod(t.text));
    return Value(static_cast<std::int64_t>(std::stoll(t.text)));
  }
  if (t.kind == TokKind::kIdent && Lexer::upper(t.text) == "NULL") return Value();
  SHADOW_REQUIRE_MSG(false, "SQL syntax error: expected literal, got '" + t.text + "'");
  return Value();
}

CmpOp parse_cmp_op(Lexer& lex) {
  Token t = lex.take();
  if (t.text == "=") return CmpOp::kEq;
  if (t.text == "<>" || t.text == "!=") return CmpOp::kNe;
  if (t.text == "<") return CmpOp::kLt;
  if (t.text == "<=") return CmpOp::kLe;
  if (t.text == ">") return CmpOp::kGt;
  if (t.text == ">=") return CmpOp::kGe;
  SHADOW_REQUIRE_MSG(false, "SQL syntax error: expected comparison, got '" + t.text + "'");
  return CmpOp::kEq;
}

std::vector<Condition> parse_where(Lexer& lex, const TableSchema& schema) {
  std::vector<Condition> where;
  do {
    Token col = lex.take();
    SHADOW_REQUIRE_MSG(col.kind == TokKind::kIdent, "SQL syntax error in WHERE clause");
    Condition cond;
    cond.column = schema.column_index(col.text);
    cond.op = parse_cmp_op(lex);
    cond.value = parse_literal(lex);
    where.push_back(std::move(cond));
  } while (lex.accept("AND"));
  return where;
}

/// If the conjunction pins the full primary key with equalities, extract it.
std::optional<Key> try_extract_point_key(const std::vector<Condition>& where,
                                         const TableSchema& schema) {
  if (where.size() != schema.primary_key.size()) return std::nullopt;
  Key key(schema.primary_key.size());
  for (const Condition& cond : where) {
    if (cond.op != CmpOp::kEq) return std::nullopt;
    auto it = std::find(schema.primary_key.begin(), schema.primary_key.end(), cond.column);
    if (it == schema.primary_key.end()) return std::nullopt;
    key[static_cast<std::size_t>(it - schema.primary_key.begin())] = cond.value;
  }
  return key;
}

const TableSchema& resolve(const SchemaLookup& lookup, const std::string& table) {
  const TableSchema* schema = lookup(table);
  SHADOW_REQUIRE_MSG(schema != nullptr, "unknown table: " + table);
  return *schema;
}

// ------------------------------------------------------------- statements --

Statement parse_create(Lexer& lex) {
  lex.expect("TABLE");
  Token name = lex.take();
  TableSchema schema;
  schema.name = name.text;
  lex.expect("(");
  while (true) {
    if (lex.accept("PRIMARY")) {
      lex.expect("KEY");
      lex.expect("(");
      do {
        Token col = lex.take();
        schema.primary_key.push_back(schema.column_index(col.text));
      } while (lex.accept(","));
      lex.expect(")");
    } else {
      Token col = lex.take();
      Token type = lex.take();
      const std::string t = Lexer::upper(type.text);
      ColumnType ct = ColumnType::kBigInt;
      if (t == "BIGINT" || t == "INT" || t == "INTEGER") {
        ct = ColumnType::kBigInt;
      } else if (t == "DOUBLE" || t == "DECIMAL" || t == "FLOAT") {
        ct = ColumnType::kDouble;
      } else if (t == "VARCHAR" || t == "TEXT" || t == "CHAR") {
        ct = ColumnType::kVarchar;
        if (lex.accept("(")) {  // VARCHAR(n): size is advisory
          lex.take();
          lex.expect(")");
        }
      } else {
        SHADOW_REQUIRE_MSG(false, "unknown column type: " + type.text);
      }
      schema.columns.push_back(ColumnDef{col.text, ct});
    }
    if (lex.accept(")")) break;
    lex.expect(",");
  }
  SHADOW_REQUIRE_MSG(!schema.primary_key.empty(),
                     "CREATE TABLE requires a PRIMARY KEY clause");
  return make_create_table(std::move(schema));
}

Statement parse_insert(Lexer& lex, const SchemaLookup& lookup) {
  lex.expect("INTO");
  Token table = lex.take();
  const TableSchema& schema = resolve(lookup, table.text);
  lex.expect("VALUES");
  lex.expect("(");
  Row row;
  do {
    row.push_back(parse_literal(lex));
  } while (lex.accept(","));
  lex.expect(")");
  SHADOW_REQUIRE_MSG(row.size() == schema.columns.size(),
                     "INSERT arity mismatch for table " + table.text);
  return make_insert(table.text, std::move(row));
}

Statement parse_select(Lexer& lex, const SchemaLookup& lookup) {
  Statement stmt;
  stmt.kind = Statement::Kind::kScan;

  // Projection / aggregate list (bound to column indexes after FROM).
  std::vector<std::string> columns;
  std::string agg_fn;
  std::string agg_col;
  if (lex.accept("*")) {
    // all columns
  } else {
    Token first = lex.take();
    const std::string up = Lexer::upper(first.text);
    if ((up == "COUNT" || up == "SUM" || up == "MIN" || up == "MAX") && lex.accept("(")) {
      agg_fn = up;
      if (lex.accept("*")) {
        SHADOW_REQUIRE_MSG(up == "COUNT", "only COUNT(*) may aggregate over *");
      } else {
        agg_col = lex.take().text;
      }
      lex.expect(")");
    } else {
      columns.push_back(first.text);
      while (lex.accept(",")) columns.push_back(lex.take().text);
    }
  }

  lex.expect("FROM");
  Token table = lex.take();
  const TableSchema& schema = resolve(lookup, table.text);
  stmt.table = table.text;
  for (const std::string& col : columns) stmt.select_columns.push_back(schema.column_index(col));
  if (!agg_fn.empty()) {
    stmt.agg = agg_fn == "COUNT"  ? Agg::kCount
               : agg_fn == "SUM"  ? Agg::kSum
               : agg_fn == "MIN"  ? Agg::kMin
                                  : Agg::kMax;
    if (!agg_col.empty()) stmt.agg_column = schema.column_index(agg_col);
  }

  if (lex.accept("WHERE")) stmt.where = parse_where(lex, schema);
  if (lex.accept("ORDER")) {
    lex.expect("BY");
    Token col = lex.take();
    const std::size_t col_idx = schema.column_index(col.text);
    const bool desc = lex.accept("DESC");
    if (!desc) lex.accept("ASC");
    // The engine orders after projection; translate to a projected index.
    std::size_t projected = col_idx;
    if (!stmt.select_columns.empty()) {
      auto it = std::find(stmt.select_columns.begin(), stmt.select_columns.end(), col_idx);
      SHADOW_REQUIRE_MSG(it != stmt.select_columns.end(),
                         "ORDER BY column must appear in the select list");
      projected = static_cast<std::size_t>(it - stmt.select_columns.begin());
    }
    stmt.order_by = {projected, desc};
  }
  if (lex.accept("LIMIT")) {
    Token n = lex.take();
    stmt.limit = static_cast<std::size_t>(std::stoull(n.text));
  }

  // Point lookup when the whole PK is pinned and no aggregate/order needed.
  if (stmt.agg == Agg::kNone && !stmt.order_by) {
    if (auto key = try_extract_point_key(stmt.where, schema)) {
      Statement point = make_select(stmt.table, std::move(*key));
      point.select_columns = stmt.select_columns;
      return point;
    }
  }
  return stmt;
}

Statement parse_update(Lexer& lex, const SchemaLookup& lookup) {
  Token table = lex.take();
  const TableSchema& schema = resolve(lookup, table.text);
  lex.expect("SET");
  std::vector<SetClause> sets;
  do {
    Token col = lex.take();
    SetClause set;
    set.column = schema.column_index(col.text);
    lex.expect("=");
    // Either `col = literal` or `col = col + literal` / `col = col - literal`.
    if (lex.peek().kind == TokKind::kIdent &&
        Lexer::upper(lex.peek().text) == Lexer::upper(col.text)) {
      lex.take();
      Token op = lex.take();
      SHADOW_REQUIRE_MSG(op.text == "+" || op.text == "-",
                         "SQL syntax error: expected + or - in arithmetic SET");
      Value delta = parse_literal(lex);
      if (op.text == "-") {
        delta = delta.is_double() ? Value(-delta.as_double()) : Value(-delta.as_int());
      }
      set.op = SetOp::kAdd;
      set.value = std::move(delta);
    } else {
      set.op = SetOp::kAssign;
      set.value = parse_literal(lex);
    }
    sets.push_back(std::move(set));
  } while (lex.accept(","));

  std::vector<Condition> where;
  if (lex.accept("WHERE")) where = parse_where(lex, schema);
  if (auto key = try_extract_point_key(where, schema)) {
    return make_update(table.text, std::move(*key), std::move(sets));
  }
  return make_update_where(table.text, std::move(where), std::move(sets));
}

Statement parse_delete(Lexer& lex, const SchemaLookup& lookup) {
  lex.expect("FROM");
  Token table = lex.take();
  const TableSchema& schema = resolve(lookup, table.text);
  std::vector<Condition> where;
  if (lex.accept("WHERE")) where = parse_where(lex, schema);
  if (auto key = try_extract_point_key(where, schema)) {
    return make_delete(table.text, std::move(*key));
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kDeleteWhere;
  stmt.table = table.text;
  stmt.where = std::move(where);
  return stmt;
}

}  // namespace

Statement parse_sql(const std::string& sql, const SchemaLookup& lookup) {
  Lexer lex(sql);
  Token verb = lex.take();
  const std::string up = Lexer::upper(verb.text);
  Statement stmt;
  if (up == "CREATE") {
    stmt = parse_create(lex);
  } else if (up == "INSERT") {
    stmt = parse_insert(lex, lookup);
  } else if (up == "SELECT") {
    stmt = parse_select(lex, lookup);
  } else if (up == "UPDATE") {
    stmt = parse_update(lex, lookup);
  } else if (up == "DELETE") {
    stmt = parse_delete(lex, lookup);
  } else {
    SHADOW_REQUIRE_MSG(false, "unsupported SQL verb: " + verb.text);
  }
  lex.accept(";");
  SHADOW_REQUIRE_MSG(lex.at_end(), "SQL syntax error: trailing tokens after statement");
  return stmt;
}

}  // namespace shadow::db
