// Multigranularity two-phase locking with wait timeouts.
//
// The performance-relevant difference between the engines the paper deploys
// is lock granularity: H2 and MySQL's memory engine take table-level locks
// ("H2 does not offer row-level locks"), while Derby and InnoDB lock rows.
// Row-locking engines use the standard intention-lock hierarchy: point
// operations take IS/IX on the table plus S/X on the row; predicate scans
// take S/X on the whole table, which conflicts with writers' IX — that is
// what keeps scans from observing uncommitted row updates.
//
// Lock-timeout aborts under contention are exactly what makes the H2-repl
// and MySQL curves of Fig. 9(a) collapse, so the manager models compatible
// mode sets, in-place upgrades, FIFO wait queues and deadline expiry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"
#include "net/time.hpp"

namespace shadow::db {

using TxnId = std::uint64_t;

enum class LockMode : std::uint8_t {
  kIntentionShared,     // IS
  kIntentionExclusive,  // IX
  kShared,              // S
  kExclusive,           // X
};

/// True iff a holder in `held` mode permits another transaction in `want`.
constexpr bool lock_compatible(LockMode want, LockMode held) {
  using M = LockMode;
  switch (want) {
    case M::kIntentionShared: return held != M::kExclusive;
    case M::kIntentionExclusive:
      return held == M::kIntentionShared || held == M::kIntentionExclusive;
    case M::kShared: return held == M::kIntentionShared || held == M::kShared;
    case M::kExclusive: return false;
  }
  return false;
}

/// What is being locked: a table, or one row of it.
struct LockTarget {
  std::string table;
  std::optional<Key> row;  // nullopt = whole table

  bool operator<(const LockTarget& o) const {
    if (table != o.table) return table < o.table;
    return row < o.row;
  }
};

enum class AcquireStatus : std::uint8_t {
  kGranted,
  kQueued,
  kDeadlock,  // waiting would close a waits-for cycle; the requester aborts
              // immediately (H2/InnoDB-style deadlock detection)
};

class LockManager {
 public:
  /// Tries to acquire; on conflict the request is queued FIFO with the given
  /// absolute deadline. Re-entrant: a transaction may hold several modes on
  /// a target; re-requesting a mode it effectively holds is granted, and a
  /// holder upgrades in place when compatible with the *other* holders.
  AcquireStatus acquire(TxnId txn, const LockTarget& target, LockMode mode, net::Time deadline);

  /// Releases all locks of `txn` (commit/abort) and removes its queued
  /// requests. Returns transactions whose queued request is now granted.
  std::vector<TxnId> release_all(TxnId txn);

  /// Removes queued requests whose deadline passed. `expired` transactions
  /// are aborted by the engine (the lock-timeout abort of H2/MySQL);
  /// `granted` waiters became lock holders because of the expiry.
  struct ExpireResult {
    std::vector<TxnId> expired;
    std::vector<TxnId> granted;
  };
  ExpireResult expire(net::Time now);

  /// Releases just the shared hold on one target (READ_COMMITTED read locks
  /// are statement-scoped on H2-style engines). Returns newly granted
  /// waiters.
  std::vector<TxnId> release_shared(TxnId txn, const LockTarget& target);

  bool holds(TxnId txn, const LockTarget& target, LockMode at_least) const;
  std::size_t waiting_count() const;

 private:
  bool would_deadlock(TxnId requester, const LockTarget& target, LockMode mode) const;
  struct LockState {
    // mode bit set per holding transaction (bit = static_cast<int>(mode)).
    std::map<TxnId, std::uint8_t> holders;
    struct Waiter {
      TxnId txn;
      LockMode mode;
      net::Time deadline;
    };
    std::deque<Waiter> queue;

    bool grantable(TxnId txn, LockMode mode) const;
    void grant(TxnId txn, LockMode mode) {
      holders[txn] |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(mode));
    }
  };

  void grant_from_queue(LockState& state, std::vector<TxnId>& granted);

  std::map<LockTarget, LockState> locks_;
};

}  // namespace shadow::db
