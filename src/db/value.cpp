#include "db/value.hpp"

#include <sstream>

namespace shadow::db {

namespace {
enum Tag : std::uint8_t { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };
}  // namespace

std::size_t Value::wire_size() const {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Null>) {
          return 1;
        } else if constexpr (std::is_same_v<T, std::string>) {
          return 5 + v.size();
        } else {
          return 9;
        }
      },
      rep_);
}

void Value::serialize(BytesWriter& w) const {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Null>) {
          w.u8(kNull);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          w.u8(kInt);
          w.i64(v);
        } else if constexpr (std::is_same_v<T, double>) {
          w.u8(kDouble);
          w.f64(v);
        } else {
          w.u8(kString);
          w.str(v);
        }
      },
      rep_);
}

Value Value::deserialize(BytesReader& r) {
  switch (r.u8()) {
    case kNull: return Value();
    case kInt: return Value(r.i64());
    case kDouble: return Value(r.f64());
    case kString: return Value(r.str());
    default: SHADOW_CHECK_MSG(false, "bad value tag"); return Value();
  }
}

std::string Value::to_string() const {
  std::ostringstream os;
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Null>) {
          os << "NULL";
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '\'' << v << '\'';
        } else {
          os << v;
        }
      },
      rep_);
  return os.str();
}

std::size_t row_wire_size(const Row& row) {
  std::size_t n = 4;
  for (const Value& v : row) n += v.wire_size();
  return n;
}

void serialize_row(BytesWriter& w, const Row& row) {
  w.u32(static_cast<std::uint32_t>(row.size()));
  for (const Value& v : row) v.serialize(w);
}

Row deserialize_row(BytesReader& r) {
  const std::uint32_t n = r.u32();
  Row row;
  row.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) row.push_back(Value::deserialize(r));
  return row;
}

}  // namespace shadow::db
