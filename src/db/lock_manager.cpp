#include "db/lock_manager.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace shadow::db {

namespace {
constexpr LockMode kAllModes[] = {LockMode::kIntentionShared, LockMode::kIntentionExclusive,
                                  LockMode::kShared, LockMode::kExclusive};
}  // namespace

bool LockManager::LockState::grantable(TxnId txn, LockMode mode) const {
  for (const auto& [holder, modes] : holders) {
    if (holder == txn) continue;  // own holds never conflict (upgrade in place)
    for (LockMode held : kAllModes) {
      if ((modes & (1u << static_cast<unsigned>(held))) == 0) continue;
      if (!lock_compatible(mode, held)) return false;
    }
  }
  return true;
}

AcquireStatus LockManager::acquire(TxnId txn, const LockTarget& target, LockMode mode,
                                   net::Time deadline) {
  LockState& state = locks_[target];
  const bool already_holder = state.holders.count(txn) > 0;
  // Do not jump a non-empty wait queue unless re-entering/upgrading (holders
  // must be allowed to strengthen, or upgrades would self-deadlock).
  if (state.grantable(txn, mode) && (state.queue.empty() || already_holder)) {
    state.grant(txn, mode);
    return AcquireStatus::kGranted;
  }
  if (would_deadlock(txn, target, mode)) return AcquireStatus::kDeadlock;
  state.queue.push_back(LockState::Waiter{txn, mode, deadline});
  return AcquireStatus::kQueued;
}

bool LockManager::would_deadlock(TxnId requester, const LockTarget& target,
                                 LockMode mode) const {
  // Waits-for edge: A waits on lock L in mode m → every holder of L whose
  // mode is incompatible with m. The requester is about to add edges to the
  // conflicting holders of `target`; a path from any of them back to the
  // requester closes a cycle.
  std::vector<TxnId> stack;
  std::vector<TxnId> seen;
  bool found = false;

  const auto push_conflicting = [&](const LockState& state, LockMode want, bool skip_self) {
    for (const auto& [holder, modes] : state.holders) {
      if (holder == requester) {
        if (!skip_self) found = true;  // cycle closed
        continue;
      }
      bool conflicts = false;
      for (LockMode held : kAllModes) {
        if ((modes & (1u << static_cast<unsigned>(held))) == 0) continue;
        if (!lock_compatible(want, held)) conflicts = true;
      }
      if (!conflicts) continue;
      if (std::find(seen.begin(), seen.end(), holder) == seen.end()) {
        seen.push_back(holder);
        stack.push_back(holder);
      }
    }
  };

  auto it = locks_.find(target);
  if (it == locks_.end()) return false;
  // Self-holds on the seed target are upgrades, not wait-for edges.
  push_conflicting(it->second, mode, /*skip_self=*/true);

  while (!found && !stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    for (const auto& [other_target, other_state] : locks_) {
      for (const auto& waiter : other_state.queue) {
        if (waiter.txn == t) push_conflicting(other_state, waiter.mode, /*skip_self=*/false);
      }
    }
  }
  return found;
}

std::vector<TxnId> LockManager::release_shared(TxnId txn, const LockTarget& target) {
  std::vector<TxnId> granted;
  auto it = locks_.find(target);
  if (it == locks_.end()) return granted;
  LockState& state = it->second;
  auto hit = state.holders.find(txn);
  if (hit == state.holders.end()) return granted;
  hit->second &= static_cast<std::uint8_t>(
      ~((1u << static_cast<unsigned>(LockMode::kShared)) |
        (1u << static_cast<unsigned>(LockMode::kIntentionShared))));
  if (hit->second == 0) state.holders.erase(hit);
  grant_from_queue(state, granted);
  if (state.holders.empty() && state.queue.empty()) locks_.erase(it);
  return granted;
}

void LockManager::grant_from_queue(LockState& state, std::vector<TxnId>& granted) {
  while (!state.queue.empty()) {
    const LockState::Waiter& head = state.queue.front();
    if (!state.grantable(head.txn, head.mode)) break;
    state.grant(head.txn, head.mode);
    granted.push_back(head.txn);
    state.queue.pop_front();
  }
}

std::vector<TxnId> LockManager::release_all(TxnId txn) {
  std::vector<TxnId> granted;
  for (auto it = locks_.begin(); it != locks_.end();) {
    LockState& state = it->second;
    state.holders.erase(txn);
    std::erase_if(state.queue,
                  [txn](const LockState::Waiter& w) { return w.txn == txn; });
    grant_from_queue(state, granted);
    if (state.holders.empty() && state.queue.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  return granted;
}

LockManager::ExpireResult LockManager::expire(net::Time now) {
  ExpireResult result;
  for (auto& [target, state] : locks_) {
    std::erase_if(state.queue, [now, &result](const LockState::Waiter& w) {
      if (w.deadline <= now) {
        result.expired.push_back(w.txn);
        return true;
      }
      return false;
    });
  }
  // Expiry may unblock queue heads.
  for (auto& [target, state] : locks_) grant_from_queue(state, result.granted);
  return result;
}

bool LockManager::holds(TxnId txn, const LockTarget& target, LockMode at_least) const {
  auto it = locks_.find(target);
  if (it == locks_.end()) return false;
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) return false;
  for (LockMode m : kAllModes) {
    if (static_cast<unsigned>(m) < static_cast<unsigned>(at_least)) continue;
    if (hit->second & (1u << static_cast<unsigned>(m))) return true;
  }
  return false;
}

std::size_t LockManager::waiting_count() const {
  std::size_t n = 0;
  for (const auto& [target, state] : locks_) n += state.queue.size();
  return n;
}

}  // namespace shadow::db
