// The program optimizer.
//
// Nuprl's optimizer merges nested recursive functions and applies common
// subexpression elimination, then proves the optimized program bisimilar to
// the original (Fig. 7 in the paper). Our optimizer performs the same two
// transformations on the combinator AST:
//
//   1. CSE / hash-consing: structurally identical subtrees (same kind, name
//      and children) become one shared node, so each is evaluated once per
//      event (the interpreter memoizes shared nodes).
//   2. Fusion: nested combinator dispatch is merged, modeled by scaling node
//      weights by `fusion_gain` (the measured benefit of unrolling the
//      nested recursive closures into one).
//
// Equivalence is established by the differential bisimulation checker
// (gpm/bisimulation.hpp) instead of a proof; tests/eventml_optimizer_test
// runs it over randomized traces for every spec in the repository.
#pragma once

#include "eventml/class_expr.hpp"

namespace shadow::eventml {

struct OptimizerConfig {
  // Weight multiplier applied after fusion. Calibrated so the optimizer's
  // measured speedup matches the paper's "factor of two or more" claim and
  // the Fig. 8 interpreted vs interpreted-opt gap (see EXPERIMENTS.md).
  double fusion_gain = 0.62;
};

struct OptimizeResult {
  ClassPtr root;
  AstStats before;
  AstStats after;
};

OptimizeResult optimize(const ClassPtr& root, OptimizerConfig config = {});

}  // namespace shadow::eventml
