#include "eventml/class_expr.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace shadow::eventml {

ClassPtr base(std::string header, std::uint64_t weight) {
  auto node = std::make_shared<ClassExpr>();
  node->kind = ClassKind::kBase;
  node->name = header + "'base";
  node->header = std::move(header);
  node->weight = weight;
  return node;
}

ClassPtr state_class(std::string name, ValuePtr init, UpdateFn update, ClassPtr sub,
                     std::uint64_t weight) {
  SHADOW_REQUIRE(init != nullptr && update != nullptr && sub != nullptr);
  auto node = std::make_shared<ClassExpr>();
  node->kind = ClassKind::kState;
  node->name = std::move(name);
  node->init = std::move(init);
  node->update = std::move(update);
  node->children = {std::move(sub)};
  node->weight = weight;
  return node;
}

ClassPtr compose(std::string name, HandlerFn handler, std::vector<ClassPtr> subs,
                 std::uint64_t weight) {
  SHADOW_REQUIRE(handler != nullptr && !subs.empty());
  auto node = std::make_shared<ClassExpr>();
  node->kind = ClassKind::kCompose;
  node->name = std::move(name);
  node->handler = std::move(handler);
  node->children = std::move(subs);
  node->weight = weight;
  return node;
}

ClassPtr parallel(std::string name, std::vector<ClassPtr> subs, std::uint64_t weight) {
  SHADOW_REQUIRE(!subs.empty());
  auto node = std::make_shared<ClassExpr>();
  node->kind = ClassKind::kParallel;
  node->name = std::move(name);
  node->children = std::move(subs);
  node->weight = weight;
  return node;
}

ClassPtr once(std::string name, ClassPtr sub, std::uint64_t weight) {
  SHADOW_REQUIRE(sub != nullptr);
  auto node = std::make_shared<ClassExpr>();
  node->kind = ClassKind::kOnce;
  node->name = std::move(name);
  node->children = {std::move(sub)};
  node->weight = weight;
  return node;
}

namespace {

void count_nodes(const ClassPtr& node, AstStats& stats,
                 std::unordered_set<const ClassExpr*>& seen) {
  ++stats.total_nodes;
  stats.total_weight += node->weight;
  if (seen.insert(node.get()).second) ++stats.distinct_nodes;
  for (const ClassPtr& child : node->children) count_nodes(child, stats, seen);
}

}  // namespace

AstStats ast_stats(const ClassPtr& root) {
  SHADOW_REQUIRE(root != nullptr);
  AstStats stats;
  std::unordered_set<const ClassExpr*> seen;
  count_nodes(root, stats, seen);
  return stats;
}

std::size_t value_wire_size(const ValuePtr& v) {
  if (!v) return 1;
  return std::visit(
      [](const auto& x) -> std::size_t {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Value::Unit>) {
          return 1;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return 8;
        } else if constexpr (std::is_same_v<T, std::string>) {
          return 4 + x.size();
        } else if constexpr (std::is_same_v<T, NodeId>) {
          return 4;
        } else if constexpr (std::is_same_v<T, Value::Pair>) {
          return 1 + value_wire_size(x.first) + value_wire_size(x.second);
        } else if constexpr (std::is_same_v<T, Value::List>) {
          std::size_t n = 4;
          for (const auto& item : x) n += value_wire_size(item);
          return n;
        } else {  // Directive
          return 8 + x.header.size() + value_wire_size(x.body);
        }
      },
      v->rep());
}

}  // namespace shadow::eventml
