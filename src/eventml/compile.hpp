// The EventML → GPM compiler.
//
// As in the paper, the compiler *is* the semantics: it maps an event-class
// specification to, for each location in `locs`, a GPM process (halt for
// locations outside the system, exactly like the optimized program in
// Fig. 7). Each process step feeds the message to the location's Instance,
// turns directive outputs into sends, and reports the interpreter's work
// count for the tier cost model.
#pragma once

#include <functional>
#include <vector>

#include "eventml/instance.hpp"
#include "eventml/spec.hpp"
#include "gpm/process.hpp"

namespace shadow::eventml {

/// Observes non-directive outputs of the main class (test/diagnostic hook).
using OutputTap = std::function<void(NodeId, const ValuePtr&)>;

/// Builds the distributed-system generator `main spec.main @ locs`.
gpm::SystemGenerator compile_to_gpm(const Spec& spec, std::vector<NodeId> locs,
                                    InterpreterKind interp = InterpreterKind::kRecursive,
                                    OutputTap tap = {});

/// Builds a DSL message (body is a ValuePtr; wire size derived from it).
net::Message make_dsl_msg(const std::string& header, ValuePtr body);

/// Extracts the DSL body of a message (throws on non-DSL messages).
const ValuePtr& dsl_body(const net::Message& msg);

}  // namespace shadow::eventml
