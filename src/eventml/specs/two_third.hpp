// TwoThird consensus (single decree) as an EventML-DSL constructive
// specification — the protocol the paper's formal development started from
// (Sec. II-D, Table I: "TwoThird Consensus ... 646N EventML spec").
//
// The One-Third-Rule algorithm, fully symmetric and leaderless:
//
//   state    ::= (round, estimate, votes, status)
//   on propose v : adopt estimate v (if none) and vote;
//   on vote (sender, round, est):
//       record the vote; once votes from more than 2n/3 processes are in for
//       the current round, let v be the smallest most frequent estimate:
//       decide v if more than 2n/3 of them equal v, else adopt v and start
//       the next round;
//   on decide v : adopt the decision (laggards learn).
//
// The specification is a State class folded over the recognizers of the
// three message kinds, composed with a handler that turns the state
// machine's pending action (vote / decide announcements) into sends —
// exactly the State + `o` idiom of the paper's Fig. 3, scaled up from CLK.
//
// Correctness properties (machine-checked in tests/eventml/two_third_spec_test):
//   agreement — no two locations decide different values;
//   validity  — every decided value was proposed;
//   integrity — a location's decision, once set, never changes (a progress-
//               style property of the Status state component);
//   termination under partial synchrony with f < n/3 crashes.
#pragma once

#include <optional>
#include <vector>

#include "eventml/instance.hpp"
#include "eventml/spec.hpp"

namespace shadow::eventml::specs {

inline constexpr const char* kTTProposeHeader = "tt-propose";  // body: int value
inline constexpr const char* kTTVoteHeader = "tt-vote";    // body: (sender,(round,est))
inline constexpr const char* kTTDecideHeader = "tt-decide";  // body: int value

struct TwoThirdParams {
  std::vector<NodeId> locs;  // all participants; |locs| > 3f
};

/// Builds the constructive specification `main TTHandler @ locs`.
Spec make_two_third_spec(TwoThirdParams params);

/// Reads the decision of a location's instance, if it decided.
/// (Observation hook for tests, mirroring ClockVal@e in the paper.)
std::optional<std::int64_t> two_third_decision(const Instance& instance);

/// Current round of a location's instance (for progress checks).
std::int64_t two_third_round(const Instance& instance);

}  // namespace shadow::eventml::specs
