#include "eventml/specs/two_third.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "eventml/instance.hpp"

namespace shadow::eventml::specs {

namespace {

// Input tags produced by the recognizer layer.
constexpr std::int64_t kTagPropose = 0;
constexpr std::int64_t kTagVote = 1;
constexpr std::int64_t kTagDecide = 2;

// Pending actions the state machine leaves for the send handler.
constexpr std::int64_t kActNone = 0;
constexpr std::int64_t kActVote = 1;       // broadcast our current (round, est)
constexpr std::int64_t kActAnnounce = 2;   // broadcast the decision
constexpr std::int64_t kActTellSender = 3; // point the vote's sender at the decision

// state ::= [round, estimate(unit|int), votes, status, action]
// votes ::= list of (sender, (round, est))
constexpr std::size_t kRound = 0;
constexpr std::size_t kEstimate = 1;
constexpr std::size_t kVotes = 2;
constexpr std::size_t kStatus = 3;
constexpr std::size_t kAction = 4;

ValuePtr initial_state() {
  return Value::list({Value::integer(0), Value::unit(), Value::list({}),
                      Value::integer(0), Value::integer(kActNone)});
}

ValuePtr make_state(std::int64_t round, ValuePtr estimate, Value::List votes,
                    std::int64_t status, std::int64_t action) {
  return Value::list({Value::integer(round), std::move(estimate),
                      Value::list(std::move(votes)), Value::integer(status),
                      Value::integer(action)});
}

/// The One-Third-Rule state transition (the paper's TwoThird update).
ValuePtr tt_update(std::size_t n, NodeId /*slf*/, const ValuePtr& input,
                   const ValuePtr& state) {
  const auto& fields = state->as_list();
  std::int64_t round = fields[kRound]->as_int();
  ValuePtr estimate = fields[kEstimate];
  Value::List votes = fields[kVotes]->as_list();
  std::int64_t status = fields[kStatus]->as_int();

  const std::int64_t tag = fst(input)->as_int();
  const ValuePtr payload = snd(input);
  const std::size_t threshold = 2 * n / 3 + 1;  // strictly more than 2n/3

  if (tag == kTagDecide) {
    if (status == 1) return make_state(round, estimate, std::move(votes), 1, kActNone);
    return make_state(round, payload, std::move(votes), 1, kActNone);
  }

  if (status == 1) {
    // Already decided: answer votes so laggards learn; ignore proposals.
    const std::int64_t action = tag == kTagVote ? kActTellSender : kActNone;
    return make_state(round, estimate, std::move(votes), 1, action);
  }

  if (tag == kTagPropose) {
    if (!estimate->is_unit()) {
      return make_state(round, estimate, std::move(votes), 0, kActNone);
    }
    return make_state(round, payload, std::move(votes), 0, kActVote);
  }

  SHADOW_CHECK(tag == kTagVote);
  const ValuePtr sender = fst(payload);
  const std::int64_t vote_round = fst(snd(payload))->as_int();
  const ValuePtr vote_est = snd(snd(payload));

  // Participate even without a proposal: adopt the first estimate seen.
  std::int64_t action = kActNone;
  if (estimate->is_unit()) {
    estimate = vote_est;
    action = kActVote;
  }

  // Record the vote, one per (sender, round).
  const bool duplicate = std::any_of(votes.begin(), votes.end(), [&](const ValuePtr& v) {
    return fst(v)->as_loc() == sender->as_loc() && fst(snd(v))->as_int() == vote_round;
  });
  if (!duplicate) {
    votes.push_back(Value::pair(sender, Value::pair(Value::integer(vote_round), vote_est)));
  }

  // Advance while the current round has enough votes (buffered future-round
  // votes can cascade).
  while (true) {
    std::map<std::int64_t, std::size_t> freq;
    std::size_t in_round = 0;
    for (const ValuePtr& v : votes) {
      if (fst(snd(v))->as_int() != round) continue;
      ++in_round;
      ++freq[snd(snd(v))->as_int()];
    }
    if (in_round < threshold) break;
    // Smallest most frequent value (std::map iterates keys in order).
    std::int64_t best = 0;
    std::size_t best_count = 0;
    for (const auto& [value, count] : freq) {
      if (count > best_count) {
        best = value;
        best_count = count;
      }
    }
    if (best_count >= threshold) {
      return make_state(round, Value::integer(best), std::move(votes), 1, kActAnnounce);
    }
    estimate = Value::integer(best);
    round += 1;
    action = kActVote;
  }
  return make_state(round, estimate, std::move(votes), 0, action);
}

}  // namespace

Spec make_two_third_spec(TwoThirdParams params) {
  const std::size_t n = params.locs.size();
  SHADOW_REQUIRE_MSG(n >= 4, "One-Third-Rule needs n > 3f; use at least 4 locations");

  // Recognizer layer: tag each message kind so one State folds all three.
  const auto tagger = [](std::int64_t tag) {
    return [tag](NodeId, const std::vector<ValuePtr>& inputs) {
      return std::vector<ValuePtr>{Value::pair(Value::integer(tag), inputs[0])};
    };
  };
  ClassPtr inputs = parallel(
      "TTInputs",
      {compose("TagPropose", tagger(kTagPropose), {base(kTTProposeHeader)}),
       compose("TagVote", tagger(kTagVote), {base(kTTVoteHeader)}),
       compose("TagDecide", tagger(kTagDecide), {base(kTTDecideHeader)})});

  // class TTState = State (init, tt_update, TTInputs)
  UpdateFn update = [n](NodeId slf, const ValuePtr& input, const ValuePtr& state) {
    return tt_update(n, slf, input, state);
  };
  ClassPtr tt_state = state_class("TTState", initial_state(), std::move(update), inputs,
                                  /*weight=*/24);

  // class TTHandler = emit o (TTInputs, TTState)
  HandlerFn emit = [locs = params.locs](NodeId slf, const std::vector<ValuePtr>& in) {
    const ValuePtr& tagged = in[0];
    const auto& fields = in[1]->as_list();
    const std::int64_t action = fields[kAction]->as_int();
    std::vector<ValuePtr> out;
    if (action == kActVote) {
      const ValuePtr vote = Value::pair(
          Value::loc(slf), Value::pair(fields[kRound], fields[kEstimate]));
      for (NodeId peer : locs) out.push_back(Value::send(peer, kTTVoteHeader, vote));
    } else if (action == kActAnnounce) {
      for (NodeId peer : locs) {
        if (peer != slf) out.push_back(Value::send(peer, kTTDecideHeader, fields[kEstimate]));
      }
    } else if (action == kActTellSender) {
      const ValuePtr sender = fst(snd(tagged));
      out.push_back(Value::send(sender->as_loc(), kTTDecideHeader, fields[kEstimate]));
    }
    return out;
  };
  ClassPtr handler = compose("TTHandler", std::move(emit), {inputs, tt_state},
                             /*weight=*/16);

  Spec spec;
  spec.name = "TwoThird";
  spec.main = std::move(handler);
  spec.properties = {
      {PropertyKind::kSafety, "agreement", "no two locations decide different values"},
      {PropertyKind::kSafety, "validity", "every decided value was proposed"},
      {PropertyKind::kSafety, "integrity",
       "Status only moves 0 -> 1 and the decided estimate never changes"},
      {PropertyKind::kProgress, "round_progress",
       "rounds are non-decreasing and advance only with > 2n/3 votes"},
  };
  return spec;
}

std::optional<std::int64_t> two_third_decision(const Instance& instance) {
  const auto& fields = instance.state_of("TTState")->as_list();
  if (fields[kStatus]->as_int() != 1) return std::nullopt;
  return fields[kEstimate]->as_int();
}

std::int64_t two_third_round(const Instance& instance) {
  return instance.state_of("TTState")->as_list()[kRound]->as_int();
}

}  // namespace shadow::eventml::specs
