// Lamport's logical clocks — the paper's running example (Fig. 3).
//
// EventML original:
//
//   specification CLK
//   parameter locs   : Loc Bag
//   parameter MsgVal : Type
//   parameter handle : Loc x MsgVal -> MsgVal x Loc
//   type Timestamp = Int
//   internal msg : MsgVal x Timestamp
//   let upd_clock slf (_,timestamp) clock = (imax timestamp clock) + 1 ;;
//   class Clock = State (0, upd_clock, msg'base) ;;
//   let on_msg slf (value,_) clock =
//     let (newval, recipient) = handle (slf, value)
//     in {msg'send recipient (newval, clock)} ;;
//   class Handler = on_msg o (msg'base, Clock) ;;
//   main Handler @ locs
//
// The correctness properties stated about CLK (checked by
// loe/properties.hpp over recorded executions):
//   progress strict_inc : the Clock state strictly increases, and
//   the Clock Condition : e1 → e2  ⇒  LC(e1) < LC(e2).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "eventml/spec.hpp"

namespace shadow::eventml::specs {

struct ClkParams {
  std::vector<NodeId> locs;
  /// The `handle` parameter: maps (slf, value) to (new value, recipient).
  std::function<std::pair<ValuePtr, NodeId>(NodeId slf, const ValuePtr& value)> handle;
};

/// Header of CLK's internal message type (`internal msg`).
inline constexpr const char* kClkMsgHeader = "msg";

/// Builds the CLK constructive specification.
Spec make_clk_spec(ClkParams params);

/// Builds the body of a CLK message: (value, timestamp).
ValuePtr clk_msg_body(ValuePtr value, std::int64_t timestamp);

}  // namespace shadow::eventml::specs
