#include "eventml/specs/clk.hpp"

#include <algorithm>

namespace shadow::eventml::specs {

ValuePtr clk_msg_body(ValuePtr value, std::int64_t timestamp) {
  return Value::pair(std::move(value), Value::integer(timestamp));
}

Spec make_clk_spec(ClkParams params) {
  // let upd_clock slf (_, timestamp) clock = (imax timestamp clock) + 1
  UpdateFn upd_clock = [](NodeId /*slf*/, const ValuePtr& input, const ValuePtr& state) {
    const std::int64_t timestamp = snd(input)->as_int();
    const std::int64_t clock = state->as_int();
    return Value::integer(std::max(timestamp, clock) + 1);
  };

  // class Clock = State (0, upd_clock, msg'base)
  //
  // msg'base appears twice in the specification (inside Clock and as a
  // direct input of Handler); like EventML's compiler output, the
  // unoptimized program duplicates it — the optimizer's CSE unifies the two
  // occurrences so the event is recognized once.
  ClassPtr clock = state_class("Clock", Value::integer(0), std::move(upd_clock),
                               base(kClkMsgHeader));

  // let on_msg slf (value, _) clock =
  //   let (newval, recipient) = handle (slf, value)
  //   in {msg'send recipient (newval, clock)}
  HandlerFn on_msg = [handle = std::move(params.handle)](NodeId slf,
                                                         const std::vector<ValuePtr>& inputs) {
    const ValuePtr& msg = inputs[0];
    const ValuePtr& clock = inputs[1];
    auto [newval, recipient] = handle(slf, fst(msg));
    return std::vector<ValuePtr>{
        Value::send(recipient, kClkMsgHeader, clk_msg_body(std::move(newval), clock->as_int()))};
  };

  // class Handler = on_msg o (msg'base, Clock)
  ClassPtr handler =
      compose("Handler", std::move(on_msg), {base(kClkMsgHeader), std::move(clock)});

  Spec spec;
  spec.name = "CLK";
  spec.main = std::move(handler);
  spec.properties = {
      {PropertyKind::kProgress, "strict_inc",
       "clock1 in Clock at e1, clock2 in Clock at a later e2 ==> clock1 < clock2"},
      {PropertyKind::kSafety, "clock_condition",
       "e1 -> e2 ==> LC(e1) < LC(e2) (Lamport's Clock Condition)"},
  };
  return spec;
}

}  // namespace shadow::eventml::specs
