// Per-location runtime instances of an event-class program, with two
// independent interpreters.
//
// The paper runs Nuprl programs in two interpreters (SML and OCaml) and
// exploits that diversity for reliability (Sec. III-C). We mirror this with
// two independently written evaluators over the same combinator AST: a
// recursive tree-walker and an explicit-stack work-list evaluator. Tests
// cross-check that they produce identical outputs and states.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "eventml/class_expr.hpp"

namespace shadow::eventml {

enum class InterpreterKind : std::uint8_t {
  kRecursive,  // direct recursive evaluation (the "SML" interpreter)
  kWorklist,   // explicit-stack post-order evaluation (the "OCaml" interpreter)
};

/// The runtime state of one event-class program at one location.
/// Copyable with value semantics: copies snapshot all state-machine states,
/// which is what lets GPM processes remain immutable values.
class Instance {
 public:
  Instance(ClassPtr root, NodeId slf, InterpreterKind kind = InterpreterKind::kRecursive);

  struct EventResult {
    bool recognized = false;
    std::vector<ValuePtr> outputs;  // the bag produced by the main class
    std::uint64_t work = 0;         // abstract work units consumed
  };

  /// Feeds one event (an incoming message) to the program.
  EventResult on_event(const std::string& header, const ValuePtr& body);

  /// Current state of the named State class (throws if unknown). Test hook
  /// mirroring the single-valued "ClockVal" observation in the paper.
  const ValuePtr& state_of(const std::string& state_class_name) const;

  NodeId slf() const { return slf_; }
  const ClassPtr& root() const { return root_; }

 private:
  // Immutable per-program layout: slot assignment for State/Once nodes.
  struct Layout {
    std::unordered_map<const ClassExpr*, std::size_t> state_slot;
    std::unordered_map<const ClassExpr*, std::size_t> once_slot;
    std::unordered_map<std::string, std::size_t> state_by_name;
    std::vector<ValuePtr> initial_states;
  };

  // The per-event evaluation: `recognized` distinguishes "produced an empty
  // bag" from "did not recognize the event".
  struct Eval {
    bool recognized = false;
    std::vector<ValuePtr> outputs;
  };
  using Memo = std::unordered_map<const ClassExpr*, Eval>;

  Eval eval_recursive(const ClassExpr& node, const std::string& header, const ValuePtr& body,
                      Memo& memo, std::uint64_t& work);
  Eval eval_worklist(const ClassExpr& root, const std::string& header, const ValuePtr& body,
                     Memo& memo, std::uint64_t& work);
  Eval apply_node(const ClassExpr& node, std::vector<Eval> child_results);

  static std::shared_ptr<const Layout> build_layout(const ClassPtr& root);

  ClassPtr root_;
  NodeId slf_;
  InterpreterKind kind_;
  std::shared_ptr<const Layout> layout_;
  std::vector<ValuePtr> states_;
  std::vector<bool> fired_;
};

}  // namespace shadow::eventml
