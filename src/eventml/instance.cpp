#include "eventml/instance.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace shadow::eventml {

namespace {
// The current event, threaded through evaluation.
struct CurrentEvent {
  const std::string* header;
  const ValuePtr* body;
};
thread_local const CurrentEvent* g_event = nullptr;

struct EventScope {
  explicit EventScope(const CurrentEvent& e) { g_event = &e; }
  ~EventScope() { g_event = nullptr; }
};
}  // namespace

Instance::Instance(ClassPtr root, NodeId slf, InterpreterKind kind)
    : root_(std::move(root)), slf_(slf), kind_(kind) {
  SHADOW_REQUIRE(root_ != nullptr);
  layout_ = build_layout(root_);
  states_ = layout_->initial_states;
  fired_.assign(layout_->once_slot.size(), false);
}

std::shared_ptr<const Instance::Layout> Instance::build_layout(const ClassPtr& root) {
  auto layout = std::make_shared<Layout>();
  std::vector<const ClassExpr*> stack{root.get()};
  std::unordered_map<const ClassExpr*, bool> seen;
  while (!stack.empty()) {
    const ClassExpr* node = stack.back();
    stack.pop_back();
    if (seen[node]) continue;
    seen[node] = true;
    if (node->kind == ClassKind::kState) {
      const std::size_t slot = layout->initial_states.size();
      layout->state_slot[node] = slot;
      layout->initial_states.push_back(node->init);
      // First definition wins for name lookup; duplicates are distinct
      // machines (they get unified by the optimizer's CSE).
      layout->state_by_name.try_emplace(node->name, slot);
    } else if (node->kind == ClassKind::kOnce) {
      layout->once_slot[node] = layout->once_slot.size();
    }
    for (const ClassPtr& child : node->children) stack.push_back(child.get());
  }
  return layout;
}

Instance::EventResult Instance::on_event(const std::string& header, const ValuePtr& body) {
  Memo memo;
  std::uint64_t work = 0;
  CurrentEvent event{&header, &body};
  EventScope scope(event);
  Eval eval = kind_ == InterpreterKind::kRecursive
                  ? eval_recursive(*root_, header, body, memo, work)
                  : eval_worklist(*root_, header, body, memo, work);
  return EventResult{eval.recognized, std::move(eval.outputs), work};
}

const ValuePtr& Instance::state_of(const std::string& state_class_name) const {
  auto it = layout_->state_by_name.find(state_class_name);
  SHADOW_REQUIRE_MSG(it != layout_->state_by_name.end(),
                     "unknown State class: " + state_class_name);
  return states_[it->second];
}

Instance::Eval Instance::apply_node(const ClassExpr& node, std::vector<Eval> child_results) {
  SHADOW_CHECK(g_event != nullptr);
  switch (node.kind) {
    case ClassKind::kBase: {
      if (*g_event->header != node.header) return {};
      return Eval{true, {*g_event->body}};
    }
    case ClassKind::kState: {
      Eval& sub = child_results[0];
      if (!sub.recognized || sub.outputs.empty()) return {};
      const std::size_t slot = layout_->state_slot.at(&node);
      ValuePtr state = states_[slot];
      for (const ValuePtr& input : sub.outputs) state = node.update(slf_, input, state);
      states_[slot] = state;
      return Eval{true, {std::move(state)}};
    }
    case ClassKind::kCompose: {
      std::vector<ValuePtr> inputs;
      inputs.reserve(child_results.size());
      for (Eval& sub : child_results) {
        if (!sub.recognized || sub.outputs.empty()) return {};
        inputs.push_back(sub.outputs.front());
      }
      return Eval{true, node.handler(slf_, inputs)};
    }
    case ClassKind::kParallel: {
      Eval out;
      for (Eval& sub : child_results) {
        if (!sub.recognized) continue;
        out.recognized = true;
        out.outputs.insert(out.outputs.end(), sub.outputs.begin(), sub.outputs.end());
      }
      return out;
    }
    case ClassKind::kOnce: {
      const std::size_t slot = layout_->once_slot.at(&node);
      if (fired_[slot]) return {};
      Eval& sub = child_results[0];
      if (!sub.recognized || sub.outputs.empty()) return {};
      fired_[slot] = true;
      return std::move(sub);
    }
  }
  SHADOW_CHECK_MSG(false, "unreachable class kind");
  return {};
}

Instance::Eval Instance::eval_recursive(const ClassExpr& node, const std::string& header,
                                        const ValuePtr& body, Memo& memo, std::uint64_t& work) {
  if (auto it = memo.find(&node); it != memo.end()) {
    work += 1;  // memo hit: a shared subexpression, already computed
    return it->second;
  }
  work += node.weight;
  std::vector<Eval> child_results;
  child_results.reserve(node.children.size());
  for (const ClassPtr& child : node.children) {
    child_results.push_back(eval_recursive(*child, header, body, memo, work));
  }
  Eval result = apply_node(node, std::move(child_results));
  memo[&node] = result;
  return result;
}

Instance::Eval Instance::eval_worklist(const ClassExpr& root, const std::string& /*header*/,
                                       const ValuePtr& /*body*/, Memo& memo,
                                       std::uint64_t& work) {
  // Explicit-stack post-order evaluation: a frame is (node, next child to
  // evaluate, results so far). Memoized results short-circuit.
  struct Frame {
    const ClassExpr* node;
    std::size_t next_child = 0;
    std::vector<Eval> results;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{&root, 0, {}});
  Eval last;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == 0) {
      if (auto it = memo.find(frame.node); it != memo.end()) {
        work += 1;
        last = it->second;
        stack.pop_back();
        if (!stack.empty()) stack.back().results.push_back(last);
        continue;
      }
      work += frame.node->weight;
    }
    if (frame.next_child < frame.node->children.size()) {
      const ClassExpr* child = frame.node->children[frame.next_child].get();
      ++frame.next_child;
      if (auto it = memo.find(child); it != memo.end()) {
        work += 1;
        frame.results.push_back(it->second);
        continue;
      }
      stack.push_back(Frame{child, 0, {}});
      continue;
    }
    Eval result = apply_node(*frame.node, std::move(frame.results));
    memo[frame.node] = result;
    last = std::move(result);
    stack.pop_back();
    if (!stack.empty()) stack.back().results.push_back(last);
  }
  return last;
}

}  // namespace shadow::eventml
