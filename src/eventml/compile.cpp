#include "eventml/compile.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "wire/framing.hpp"

namespace shadow::eventml {

net::Message make_dsl_msg(const std::string& header, ValuePtr body) {
  const std::size_t wire = wire::kFrameOverhead + header.size() + value_wire_size(body);
  return net::make_msg(header, std::move(body), wire);
}

const ValuePtr& dsl_body(const net::Message& msg) {
  const ValuePtr* body = net::msg_body_if<ValuePtr>(msg);
  SHADOW_CHECK_MSG(body != nullptr, "message '" + msg.header + "' is not a DSL message");
  return *body;
}

namespace {

using TapPtr = std::shared_ptr<const OutputTap>;

gpm::StepResult step_instance(Instance instance, const TapPtr& tap, const net::Message& msg) {
  ValuePtr body = Value::unit();
  if (msg.has_body()) {
    if (const ValuePtr* v = net::msg_body_if<ValuePtr>(msg)) body = *v;
  }
  Instance::EventResult result = instance.on_event(msg.header, body);

  gpm::StepResult out;
  out.work = std::max<std::uint64_t>(result.work, 1);
  for (const ValuePtr& value : result.outputs) {
    if (value->is_directive()) {
      const Directive& d = value->as_directive();
      out.outputs.push_back(gpm::SendDirective{d.to, make_dsl_msg(d.header, d.body)});
    } else if (*tap) {
      (*tap)(instance.slf(), value);
    }
  }
  // The replacement process closes over the instance's post-event state —
  // the `R(s')` of the paper's optimized program in Fig. 7.
  out.next = gpm::Process::make(
      [instance = std::move(instance), tap](const gpm::Process&, const net::Message& m) {
        return step_instance(instance, tap, m);
      });
  return out;
}

}  // namespace

gpm::SystemGenerator compile_to_gpm(const Spec& spec, std::vector<NodeId> locs,
                                    InterpreterKind interp, OutputTap tap) {
  SHADOW_REQUIRE(spec.main != nullptr);
  auto shared_tap = std::make_shared<const OutputTap>(std::move(tap));
  ClassPtr main = spec.main;
  return [main, locs = std::move(locs), interp, shared_tap](NodeId slf) {
    // `if slf ∈ locs then R(initial state) else halt` (Fig. 7, lines 2–10).
    if (std::find(locs.begin(), locs.end(), slf) == locs.end()) return gpm::Process::halt();
    Instance instance(main, slf, interp);
    return gpm::Process::make([instance = std::move(instance), shared_tap](
                                  const gpm::Process&, const net::Message& m) {
      return step_instance(instance, shared_tap, m);
    });
  };
}

}  // namespace shadow::eventml
