#include "eventml/optimizer.hpp"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace shadow::eventml {
namespace {

/// Hash-consing key: node identity is (kind, name, header, child identities).
/// Function members (update/handler) cannot be compared, so like EventML —
/// where a name refers to one definition — equal names imply equal
/// semantics. Builders give every node a name.
struct ConsKey {
  ClassKind kind;
  std::string name;
  std::string header;
  std::vector<const ClassExpr*> children;

  bool operator<(const ConsKey& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (name != o.name) return name < o.name;
    if (header != o.header) return header < o.header;
    return children < o.children;
  }
};

class HashConser {
 public:
  explicit HashConser(double fusion_gain) : fusion_gain_(fusion_gain) {}

  ClassPtr intern(const ClassPtr& node) {
    if (auto it = done_.find(node.get()); it != done_.end()) return it->second;

    std::vector<ClassPtr> new_children;
    new_children.reserve(node->children.size());
    ConsKey key{node->kind, node->name, node->header, {}};
    for (const ClassPtr& child : node->children) {
      ClassPtr interned = intern(child);
      key.children.push_back(interned.get());
      new_children.push_back(std::move(interned));
    }

    auto it = table_.find(key);
    if (it != table_.end()) {
      done_[node.get()] = it->second;
      return it->second;
    }

    auto fused = std::make_shared<ClassExpr>(*node);
    fused->children = std::move(new_children);
    fused->weight = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(node->weight) * fusion_gain_));
    ClassPtr result = fused;
    table_.emplace(std::move(key), result);
    done_[node.get()] = result;
    return result;
  }

 private:
  double fusion_gain_;
  std::map<ConsKey, ClassPtr> table_;
  std::unordered_map<const ClassExpr*, ClassPtr> done_;
};

}  // namespace

OptimizeResult optimize(const ClassPtr& root, OptimizerConfig config) {
  SHADOW_REQUIRE(root != nullptr);
  OptimizeResult result;
  result.before = ast_stats(root);
  HashConser conser(config.fusion_gain);
  result.root = conser.intern(root);
  result.after = ast_stats(result.root);
  return result;
}

}  // namespace shadow::eventml
