// The dynamic value universe of the embedded EventML DSL.
//
// EventML is an ML dialect; its programs manipulate ML values. Our embedded
// DSL uses a small dynamic value type (unit, int, string, location, pair,
// list, and send-directives) — rich enough for the specifications in the
// paper's Table I and faithful to the untyped λ-calculus Nuprl programs the
// compiler emits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace shadow::eventml {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/// A "send message" instruction built by msg'send in the DSL.
struct Directive {
  NodeId to{};
  std::string header;
  ValuePtr body;  // may be null for signals
};

class Value {
 public:
  struct Unit {};
  using Pair = std::pair<ValuePtr, ValuePtr>;
  using List = std::vector<ValuePtr>;
  using Rep = std::variant<Unit, std::int64_t, std::string, NodeId, Pair, List, Directive>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  // -- constructors ---------------------------------------------------------
  static ValuePtr unit() { return std::make_shared<const Value>(Rep{Unit{}}); }
  static ValuePtr integer(std::int64_t v) { return std::make_shared<const Value>(Rep{v}); }
  static ValuePtr str(std::string v) { return std::make_shared<const Value>(Rep{std::move(v)}); }
  static ValuePtr loc(NodeId v) { return std::make_shared<const Value>(Rep{v}); }
  static ValuePtr pair(ValuePtr a, ValuePtr b) {
    return std::make_shared<const Value>(Rep{Pair{std::move(a), std::move(b)}});
  }
  static ValuePtr list(List items) { return std::make_shared<const Value>(Rep{std::move(items)}); }
  static ValuePtr send(NodeId to, std::string header, ValuePtr body) {
    return std::make_shared<const Value>(Rep{Directive{to, std::move(header), std::move(body)}});
  }

  // -- accessors (throw on type mismatch, like ML pattern-match failure) ----
  bool is_unit() const { return std::holds_alternative<Unit>(rep_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_pair() const { return std::holds_alternative<Pair>(rep_); }
  bool is_list() const { return std::holds_alternative<List>(rep_); }
  bool is_loc() const { return std::holds_alternative<NodeId>(rep_); }
  bool is_directive() const { return std::holds_alternative<Directive>(rep_); }

  std::int64_t as_int() const {
    const auto* p = std::get_if<std::int64_t>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not an int");
    return *p;
  }
  const std::string& as_str() const {
    const auto* p = std::get_if<std::string>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a string");
    return *p;
  }
  NodeId as_loc() const {
    const auto* p = std::get_if<NodeId>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a location");
    return *p;
  }
  const Pair& as_pair() const {
    const auto* p = std::get_if<Pair>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a pair");
    return *p;
  }
  const List& as_list() const {
    const auto* p = std::get_if<List>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a list");
    return *p;
  }
  const Directive& as_directive() const {
    const auto* p = std::get_if<Directive>(&rep_);
    SHADOW_CHECK_MSG(p != nullptr, "value is not a send directive");
    return *p;
  }

  const Rep& rep() const { return rep_; }

 private:
  Rep rep_;
};

/// Structural equality (used by the bisimulation checker and tests).
bool value_eq(const ValuePtr& a, const ValuePtr& b);

/// Human-readable rendering for witnesses and debugging.
std::string value_str(const ValuePtr& v);

// Convenience projections mirroring ML's fst/snd.
inline ValuePtr fst(const ValuePtr& v) { return v->as_pair().first; }
inline ValuePtr snd(const ValuePtr& v) { return v->as_pair().second; }

}  // namespace shadow::eventml
