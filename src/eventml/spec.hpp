// Constructive specifications: a named main event class plus the formal
// correctness properties stated about it (the paper's `progress ...`
// declarations and Nuprl lemmas). Properties are represented as named,
// machine-checkable entries; the checkers live in loe/properties.hpp and in
// protocol-specific safety recorders.
#pragma once

#include <string>
#include <vector>

#include "eventml/class_expr.hpp"

namespace shadow::eventml {

enum class PropertyKind : std::uint8_t {
  kProgress,  // local state strictly increases (paper's `progress` keyword)
  kSafety,    // global invariant over the event ordering
};

struct PropertySpec {
  PropertyKind kind;
  std::string name;
  std::string statement;  // human-readable formal statement
};

/// A constructive specification: runnable and reasoned-about.
struct Spec {
  std::string name;
  ClassPtr main;
  std::vector<PropertySpec> properties;

  AstStats stats() const { return ast_stats(main); }
};

}  // namespace shadow::eventml
