#include "eventml/value.hpp"

#include <sstream>

namespace shadow::eventml {

bool value_eq(const ValuePtr& a, const ValuePtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  const auto& ra = a->rep();
  const auto& rb = b->rep();
  if (ra.index() != rb.index()) return false;
  return std::visit(
      [&](const auto& va) -> bool {
        using T = std::decay_t<decltype(va)>;
        const auto& vb = std::get<T>(rb);
        if constexpr (std::is_same_v<T, Value::Unit>) {
          return true;
        } else if constexpr (std::is_same_v<T, std::int64_t> ||
                             std::is_same_v<T, std::string> || std::is_same_v<T, NodeId>) {
          return va == vb;
        } else if constexpr (std::is_same_v<T, Value::Pair>) {
          return value_eq(va.first, vb.first) && value_eq(va.second, vb.second);
        } else if constexpr (std::is_same_v<T, Value::List>) {
          if (va.size() != vb.size()) return false;
          for (std::size_t i = 0; i < va.size(); ++i) {
            if (!value_eq(va[i], vb[i])) return false;
          }
          return true;
        } else {  // Directive
          return va.to == vb.to && va.header == vb.header && value_eq(va.body, vb.body);
        }
      },
      ra);
}

std::string value_str(const ValuePtr& v) {
  if (!v) return "<null>";
  std::ostringstream os;
  std::visit(
      [&](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Value::Unit>) {
          os << "()";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          os << x;
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '"' << x << '"';
        } else if constexpr (std::is_same_v<T, NodeId>) {
          os << to_string(x);
        } else if constexpr (std::is_same_v<T, Value::Pair>) {
          os << '(' << value_str(x.first) << ", " << value_str(x.second) << ')';
        } else if constexpr (std::is_same_v<T, Value::List>) {
          os << '[';
          for (std::size_t i = 0; i < x.size(); ++i) {
            if (i > 0) os << ", ";
            os << value_str(x[i]);
          }
          os << ']';
        } else {  // Directive
          os << "send(" << to_string(x.to) << ", '" << x.header << "', " << value_str(x.body)
             << ')';
        }
      },
      v->rep());
  return os.str();
}

}  // namespace shadow::eventml
