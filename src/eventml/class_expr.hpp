// Event classes — the combinator AST of the embedded EventML DSL.
//
// An event class is a function from events to (bags of) outputs. Base
// classes recognize messages by header; State classes fold an update
// function over recognized events; the composition combinator `o` applies a
// handler to the simultaneous outputs of several classes; Parallel (the
// paper's X || Y) merges outputs; Once produces only the first output.
//
// Each node carries a `weight`: the abstract work (expanded GPM AST nodes)
// one evaluation of the node represents. The tree-walking interpreter sums
// weights of visited nodes; this is the quantity the execution-tier cost
// model converts to virtual CPU time (gpm/tier.hpp) and the quantity
// reported in the Table I reproduction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eventml/value.hpp"

namespace shadow::eventml {

enum class ClassKind : std::uint8_t {
  kBase,      // msg'base: recognize messages with a given header
  kState,     // State (init, update, sub): a state machine over sub's outputs
  kCompose,   // f o (subs...): apply handler when every sub produces
  kParallel,  // X || Y: union of outputs
  kOnce,      // produce only the first output of sub
};

struct ClassExpr;
using ClassPtr = std::shared_ptr<const ClassExpr>;

/// State update: slf -> input -> state -> new state.
using UpdateFn = std::function<ValuePtr(NodeId slf, const ValuePtr& input, const ValuePtr& state)>;

/// Composition handler: slf -> inputs -> bag of outputs.
using HandlerFn =
    std::function<std::vector<ValuePtr>(NodeId slf, const std::vector<ValuePtr>& inputs)>;

struct ClassExpr {
  ClassKind kind = ClassKind::kBase;
  std::string name;     // identity for CSE and diagnostics
  std::string header;   // kBase only
  ValuePtr init;        // kState only
  UpdateFn update;      // kState only
  HandlerFn handler;    // kCompose only
  std::vector<ClassPtr> children;
  std::uint64_t weight = 8;  // abstract work per evaluation of this node
};

// -- builders (the surface syntax of the embedded DSL) -----------------------

/// `internal msg : T` implicitly declares msg'base; this is that recognizer.
ClassPtr base(std::string header, std::uint64_t weight = 8);

/// `class C = State (init, update, sub)`.
ClassPtr state_class(std::string name, ValuePtr init, UpdateFn update, ClassPtr sub,
                     std::uint64_t weight = 12);

/// `class C = f o (subs...)`.
ClassPtr compose(std::string name, HandlerFn handler, std::vector<ClassPtr> subs,
                 std::uint64_t weight = 10);

/// `class C = X || Y || ...`.
ClassPtr parallel(std::string name, std::vector<ClassPtr> subs, std::uint64_t weight = 4);

/// `class C = Once(sub)`.
ClassPtr once(std::string name, ClassPtr sub, std::uint64_t weight = 6);

// -- statistics (Table I) -----------------------------------------------------

struct AstStats {
  std::uint64_t total_nodes = 0;     // nodes counting repeated references
  std::uint64_t distinct_nodes = 0;  // unique node objects (after sharing)
  std::uint64_t total_weight = 0;    // sum of weights over total_nodes
};

AstStats ast_stats(const ClassPtr& root);

/// Estimated wire size of a value (bytes), used for the bandwidth model.
std::size_t value_wire_size(const ValuePtr& v);

}  // namespace shadow::eventml
