// The total order broadcast service.
//
// The paper's TOB service is the formally generated core of ShadowDB: it
// guarantees that all participating processes deliver the same messages in
// the same order (Défago et al.'s total order broadcast), builds on a
// pluggable consensus module (TwoThird or the Paxos Synod), and batches —
// "multiple messages can be bundled in one Paxos proposal".
//
// Protocol per node:
//   * clients (or replicas) send `tob-broadcast{Command}` to any service node;
//   * the receiving node buffers the command and proposes a batch of pending
//     commands for the next free slot once the batching window closes;
//   * on a slot decision, commands are delivered in slot order: appended to
//     the local delivery log, pushed to local/remote subscribers, and the
//     origin node sends a `tob-ack` to the command's original sender;
//   * commands whose proposal lost a slot race stay pending and are proposed
//     again for a later slot (no loss); delivered commands are deduplicated
//     (no duplication).
//
// Total order, no-creation, no-duplication and agreement on the log prefix
// are machine-checked by tests via delivery_log() + loe::check_prefix_consistency.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/module.hpp"
#include "consensus/paxos.hpp"
#include "consensus/two_third.hpp"

namespace shadow::obs {
class Tracer;
}  // namespace shadow::obs

namespace shadow::tob {

using consensus::Batch;
using consensus::BatchBuilder;
using consensus::Command;
using consensus::EncodedBatch;

/// Message headers of the service's external interface.
inline constexpr const char* kBroadcastHeader = "tob-broadcast";
inline constexpr const char* kAckHeader = "tob-ack";
inline constexpr const char* kDeliverHeader = "tob-deliver";
/// Internal: commands forwarded from a frontend to the preferred proposer.
inline constexpr const char* kRelayHeader = "tob-relay";

/// Body of tob-broadcast messages.
struct BroadcastBody {
  Command command;
};

/// Body of tob-ack (delivery notification to the broadcaster).
struct AckBody {
  ClientId client{};
  RequestSeq seq = 0;
  Slot slot = 0;
};

/// Body of tob-deliver (push to remote subscribers): one message per decided
/// slot, carrying the delivered commands as the original encoded sub-frame
/// (the i-th command in `batch` has global delivery index `base_index + i`).
struct DeliverBody {
  Slot slot = 0;
  std::uint64_t base_index = 0;  // global delivery index of batch[0]
  EncodedBatch batch;
};

/// Body of tob-relay: commands relayed from a non-proposing service node to
/// the protocol's preferred proposer (the Paxos leader). The commands travel
/// as one encoded sub-frame — this is THE encode of their batch lifetime;
/// the leader splices the same bytes into its proposal — with the original
/// senders alongside (origins[i] broadcast batch commands()[i] to us) so the
/// delivery notification still reaches them.
struct RelayBody {
  EncodedBatch batch;
  std::vector<NodeId> origins;
};

enum class Protocol : std::uint8_t { kPaxos, kTwoThird };

struct TobConfig {
  std::vector<NodeId> nodes;  // the broadcast service replicas
  Protocol protocol = Protocol::kPaxos;
  consensus::ExecProfile profile{.program_work = consensus::kBroadcastProgramWork};
  consensus::PaxosConfig paxos;        // peers filled from `nodes` if empty
  consensus::TwoThirdConfig two_third; // peers filled from `nodes` if empty
  std::size_t batch_max = 64;
  std::size_t max_outstanding = 1;  // proposals in flight per node (natural batching)
  net::Time batch_delay = 0;        // optional extra linger for batching, µs
  /// Load-adaptive batch sizing: the proposal cap starts at `batch_min` and
  /// doubles (up to `batch_max`) while the backlog — pending commands,
  /// queued relayed units, and whatever set_backlog_probe() reports (the
  /// executor pipeline's queue depth) — exceeds it, then halves back toward
  /// `batch_min` when the backlog drains below a quarter of the cap. Grows
  /// batches under load, shrinks toward single-command latency when idle.
  /// The live cap is exported as the `net.batch_size_adaptive` histogram.
  bool adaptive_batching = false;
  std::size_t batch_min = 1;
  net::Time tick_period = 5000;     // µs driver for consensus timeouts
  net::Time relay_timeout = 500000; // relayed commands not delivered by then
                                    // are proposed locally (leader may be dead)
  obs::Tracer* tracer = nullptr;    // optional structured trace recorder
  /// Prefix for this service's metric names ("group.<id>." in sharded
  /// deployments, so N groups in one process don't collapse into one
  /// counter; empty — the classic names — otherwise).
  std::string metric_scope;
};

/// One node of the broadcast service. Construct one per NodeId in
/// TobConfig::nodes, all sharing the same config and SafetyRecorder.
class TobNode {
 public:
  using LocalDeliverFn = std::function<void(net::NodeContext&, Slot, std::uint64_t, const Command&)>;
  /// Whole-slot local delivery: (ctx, slot, base_index, batch) where the
  /// i-th command of `batch` has global delivery index `base_index + i`.
  using LocalDeliverBatchFn =
      std::function<void(net::NodeContext&, Slot, std::uint64_t, const EncodedBatch&)>;

  TobNode(net::Transport& world, NodeId self, TobConfig config,
          consensus::SafetyRecorder* safety = nullptr);

  /// Local subscriber (e.g. a co-located SMR database replica).
  void subscribe_local(LocalDeliverFn fn) { local_subscriber_ = std::move(fn); }

  /// Whole-slot local subscriber: one call per decided slot, carrying the
  /// decided `EncodedBatch` by reference (no re-encode) so a pipelined
  /// replica can hand it across its executor thread boundary as a splice.
  /// Per-command dedup/ack/log bookkeeping still happens here first.
  void subscribe_local_batch(LocalDeliverBatchFn fn) { batch_subscriber_ = std::move(fn); }

  /// Adaptive batching's view of downstream congestion: called (on the
  /// consensus thread) each time a proposal is sized; typically wired to the
  /// local replica's executor-pipeline queue depth.
  void set_backlog_probe(std::function<std::size_t()> probe) {
    backlog_probe_ = std::move(probe);
  }

  /// The live adaptive proposal cap (== batch_max when adaptation is off).
  std::size_t batch_limit() const { return batch_limit_; }

  /// Remote subscriber: receives tob-deliver messages for every delivery.
  void add_remote_subscriber(NodeId node) { remote_subscribers_.push_back(node); }

  const std::vector<Command>& delivery_log() const { return delivery_log_; }
  std::uint64_t delivered_count() const { return delivery_log_.size(); }
  NodeId node() const { return self_; }
  consensus::ConsensusModule& module() { return *module_; }

  // -- crash-restart rejoin ---------------------------------------------------
  //
  // A freshly restarted process reconstructs an empty TobNode, but the
  // cluster's delivery log has moved on. The co-located replica fetches a
  // database snapshot from a live peer, then resumes this node at the
  // snapshot's position: delivery (and proposing) stay paused until the
  // snapshot arrives, so the replica never observes commands the snapshot
  // already covers.

  /// Where a snapshot leaves off: the first slot still to deliver, the
  /// global delivery index that slot's first fresh command gets, the
  /// per-client delivered-sequence floor (every (client, seq<=floor[client])
  /// is already covered by the snapshot), and the exact keys of delivered
  /// control commands (reconfig/rejoin), which use fresh client ids per
  /// incarnation and therefore cannot be floored.
  struct ResumePoint {
    Slot slot = 0;
    std::uint64_t index_base = 0;
    std::vector<std::pair<std::uint32_t, RequestSeq>> floor;
    std::vector<std::pair<std::uint32_t, RequestSeq>> control_keys;
  };

  /// Suspends delivery and proposing (consensus keeps answering — acceptor
  /// state must stay live for quorums). Call before requesting the snapshot.
  void pause_for_rejoin();

  /// Installs the snapshot's resume point and un-pauses. Decided slots below
  /// `rp.slot` are discarded (the snapshot covers them); delivery restarts
  /// at `rp.slot` with indices continuing from `rp.index_base`.
  void resume_from(const ResumePoint& rp);

 private:
  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_broadcast(net::NodeContext& ctx, const Command& cmd, NodeId from);
  void on_relay(net::NodeContext& ctx, const RelayBody& body);
  void on_decide(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch);
  void maybe_propose(net::NodeContext& ctx);
  void deliver_ready(net::NodeContext& ctx);
  void arm_tick(net::NodeContext& ctx);

  /// Whether the snapshot we rejoined from already covers this command.
  bool floored(const std::pair<std::uint32_t, RequestSeq>& key) const {
    auto it = delivered_floor_.find(key.first);
    return it != delivered_floor_.end() && key.second <= it->second;
  }
  /// Ack (unless relayed away) and drop the pending entry for a command that
  /// turned out to be already delivered elsewhere.
  void ack_and_retire_pending(net::NodeContext& ctx,
                              const std::pair<std::uint32_t, RequestSeq>& key, Slot slot);

  net::Transport& world_;
  NodeId self_;
  TobConfig config_;
  std::unique_ptr<consensus::ConsensusModule> module_;

  struct PendingCommand {
    Command command;
    NodeId origin{};       // who sent the broadcast to us (gets the ack)
    bool in_flight = false;
    net::Time relayed_at = 0;   // 0 = not currently relayed to the leader
    bool relay_expired = false; // relay timed out: propose locally instead
  };
  std::deque<PendingCommand> pending_;

  /// A relayed sub-frame waiting to be spliced into a proposal. The unit's
  /// commands also sit in pending_ (marked in_flight) for dedup/ack
  /// bookkeeping; the unit itself preserves the received bytes so the
  /// proposal re-uses them instead of re-encoding.
  struct RelayedUnit {
    EncodedBatch batch;
    std::vector<NodeId> origins;
  };
  std::deque<RelayedUnit> relayed_units_;

  std::map<Slot, EncodedBatch> outstanding_;  // our proposals awaiting decision
  std::map<Slot, EncodedBatch> decisions_;    // decided, possibly not yet delivered
  Slot next_deliver_slot_ = 0;
  Slot next_propose_slot_ = 0;
  net::Time oldest_pending_since_ = 0;

  std::set<std::pair<std::uint32_t, RequestSeq>> delivered_keys_;  // dedup guard
  std::vector<Command> delivery_log_;
  // -- rejoin state (see pause_for_rejoin/resume_from) -----------------------
  bool paused_ = false;            // delivery + proposing suspended
  std::uint64_t index_base_ = 0;   // global index of delivery_log_[0]
  std::map<std::uint32_t, RequestSeq> delivered_floor_;  // snapshot dedup floor
  LocalDeliverFn local_subscriber_;
  LocalDeliverBatchFn batch_subscriber_;
  std::function<std::size_t()> backlog_probe_;
  std::size_t batch_limit_ = 0;  // live adaptive cap, set in the constructor
  std::string adaptive_metric_;  // metric_scope + "net.batch_size_adaptive"
  std::string encode_metric_;    // metric_scope + "net.batch_encode_count"
  std::vector<NodeId> remote_subscribers_;
  bool tick_armed_ = false;
};

/// Convenience: builds the service on `machines.size()` nodes, one per
/// machine (co-location with databases is done by passing shared machines).
struct TobService {
  std::vector<std::unique_ptr<TobNode>> nodes;

  TobNode& operator[](std::size_t i) { return *nodes[i]; }
  std::size_t size() const { return nodes.size(); }
};

TobService make_service(net::Transport& world, const TobConfig& config,
                        consensus::SafetyRecorder* safety = nullptr);

}  // namespace shadow::tob

namespace shadow::wire {

template <>
struct Codec<tob::BroadcastBody> {
  static void encode(BytesWriter& w, const tob::BroadcastBody& v) {
    Codec<tob::Command>::encode(w, v.command);
  }
  static tob::BroadcastBody decode(BytesReader& r) {
    return {Codec<tob::Command>::decode(r)};
  }
};

template <>
struct Codec<tob::AckBody> {
  static void encode(BytesWriter& w, const tob::AckBody& v) {
    w.u32(v.client.value);
    w.u64(v.seq);
    w.u64(v.slot);
  }
  static tob::AckBody decode(BytesReader& r) {
    tob::AckBody v;
    v.client = ClientId{r.u32()};
    v.seq = r.u64();
    v.slot = r.u64();
    return v;
  }
};

template <>
struct Codec<tob::DeliverBody> {
  static void encode(BytesWriter& w, const tob::DeliverBody& v) {
    w.u64(v.slot);
    w.u64(v.base_index);
    Codec<tob::EncodedBatch>::encode(w, v.batch);
  }
  static tob::DeliverBody decode(BytesReader& r) {
    tob::DeliverBody v;
    v.slot = r.u64();
    v.base_index = r.u64();
    v.batch = Codec<tob::EncodedBatch>::decode(r);
    return v;
  }
};

template <>
struct Codec<tob::RelayBody> {
  static void encode(BytesWriter& w, const tob::RelayBody& v) {
    Codec<tob::EncodedBatch>::encode(w, v.batch);
    Codec<std::vector<NodeId>>::encode(w, v.origins);
  }
  static tob::RelayBody decode(BytesReader& r) {
    tob::RelayBody v;
    v.batch = Codec<tob::EncodedBatch>::decode(r);
    v.origins = Codec<std::vector<NodeId>>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
