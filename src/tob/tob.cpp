#include "tob/tob.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace shadow::tob {

TobNode::TobNode(net::Transport& world, NodeId self, TobConfig config,
                 consensus::SafetyRecorder* safety)
    : world_(world), self_(self), config_(std::move(config)) {
  SHADOW_REQUIRE(!config_.nodes.empty());
  SHADOW_REQUIRE(config_.batch_min >= 1 && config_.batch_min <= config_.batch_max);
  batch_limit_ = config_.adaptive_batching ? config_.batch_min : config_.batch_max;
  // Metric names are prefixed once here, not per observation (the scope is
  // empty — the classic names — outside sharded deployments).
  adaptive_metric_ = config_.metric_scope + "net.batch_size_adaptive";
  encode_metric_ = config_.metric_scope + "net.batch_encode_count";

  if (config_.protocol == Protocol::kPaxos) {
    consensus::PaxosConfig pc = config_.paxos;
    if (pc.peers.empty()) pc.peers = config_.nodes;
    pc.profile.tier = config_.profile.tier;
    pc.profile.costs = config_.profile.costs;
    module_ = std::make_unique<consensus::PaxosModule>(self_, std::move(pc), safety);
  } else {
    consensus::TwoThirdConfig tc = config_.two_third;
    if (tc.peers.empty()) tc.peers = config_.nodes;
    tc.profile.tier = config_.profile.tier;
    tc.profile.costs = config_.profile.costs;
    module_ = std::make_unique<consensus::TwoThirdModule>(self_, std::move(tc), safety);
  }

  module_->set_on_decide([this](net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
    on_decide(ctx, slot, batch);
  });

  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });

  world_.schedule_timer_for_node(self_, world_.now() + config_.tick_period,
                                 [this](net::NodeContext& ctx) { arm_tick(ctx); });
}

void TobNode::arm_tick(net::NodeContext& ctx) {
  if (!paused_) {
    module_->on_tick(ctx);
    // Expire stale relays: the leader we relayed to may have crashed.
    for (PendingCommand& p : pending_) {
      if (!p.in_flight && p.relayed_at != 0 &&
          ctx.now() - p.relayed_at > config_.relay_timeout) {
        p.relayed_at = 0;
        p.relay_expired = true;
      }
    }
    maybe_propose(ctx);
  }
  ctx.set_timer(config_.tick_period, [this](net::NodeContext& c) { arm_tick(c); });
}

void TobNode::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kBroadcastHeader) {
    const auto& body = net::msg_body<BroadcastBody>(msg);
    config_.profile.charge(ctx, 1);
    on_broadcast(ctx, body.command, msg.from);
    return;
  }
  if (msg.header == kRelayHeader) {
    // Relayed commands were already ingested (full program walk) at the
    // frontend that received them; the leader only enqueues them.
    const auto& body = net::msg_body<RelayBody>(msg);
    config_.profile.charge_control(ctx);
    on_relay(ctx, body);
    return;
  }
  if (module_->on_message(ctx, msg)) return;
  // Unknown headers are ignored (the service is composed with other
  // co-located components that share the machine, not the node).
}

void TobNode::on_broadcast(net::NodeContext& ctx, const Command& cmd, NodeId from) {
  const auto key = std::make_pair(cmd.client.value, cmd.seq);
  if (delivered_keys_.count(key) > 0 || floored(key)) {
    // Duplicate of an already-delivered command (client retry), or one the
    // snapshot we rejoined from already covers: re-ack so the broadcast is
    // at-most-once from the subscriber's point of view.
    ctx.send(from, net::make_msg(kAckHeader, AckBody{cmd.client, cmd.seq, 0}));
    return;
  }
  const bool already_pending =
      std::any_of(pending_.begin(), pending_.end(), [&key](const PendingCommand& p) {
        return std::make_pair(p.command.client.value, p.command.seq) == key;
      });
  if (already_pending) return;
  if (pending_.empty()) oldest_pending_since_ = ctx.now();
  pending_.push_back(PendingCommand{cmd, from, false});
  if (config_.tracer) config_.tracer->tob_broadcast(ctx.now(), self_, cmd.client, cmd.seq);
  maybe_propose(ctx);
}

void TobNode::on_relay(net::NodeContext& ctx, const RelayBody& body) {
  const Batch& cmds = body.batch.commands();  // memoized decode, not an encode
  SHADOW_CHECK_MSG(cmds.size() == body.origins.size(),
                   "tob-relay batch and origins length mismatch");
  // The common case: every relayed command is new here. Keep the received
  // sub-frame whole so the proposal splices the original bytes, and mirror
  // the commands into pending_ (in_flight: the unit owns their proposal) for
  // dedup, ack, and loser-reset bookkeeping.
  bool all_fresh = !cmds.empty();
  for (const Command& cmd : cmds) {
    const auto key = std::make_pair(cmd.client.value, cmd.seq);
    const bool dup = delivered_keys_.count(key) > 0 || floored(key) ||
                     std::any_of(pending_.begin(), pending_.end(), [&key](const PendingCommand& p) {
                       return std::make_pair(p.command.client.value, p.command.seq) == key;
                     });
    if (dup) {
      all_fresh = false;
      break;
    }
  }
  if (!all_fresh) {
    // Duplicates inside the unit (client retries racing a relay): fall back
    // to per-command ingestion; this unit loses its zero-copy ride.
    for (std::size_t i = 0; i < cmds.size(); ++i) on_broadcast(ctx, cmds[i], body.origins[i]);
    return;
  }
  if (pending_.empty()) oldest_pending_since_ = ctx.now();
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    pending_.push_back(PendingCommand{cmds[i], body.origins[i], /*in_flight=*/true});
    if (config_.tracer) {
      config_.tracer->tob_broadcast(ctx.now(), self_, cmds[i].client, cmds[i].seq);
    }
  }
  relayed_units_.push_back(RelayedUnit{body.batch, body.origins});
  maybe_propose(ctx);
}

void TobNode::maybe_propose(net::NodeContext& ctx) {
  if (paused_) return;  // rejoining: hold proposals until resume_from
  std::size_t eligible = 0;
  for (const PendingCommand& p : pending_) {
    if (!p.in_flight) ++eligible;
  }
  if (eligible == 0 && relayed_units_.empty()) return;
  // If the consensus protocol has a preferred proposer elsewhere (the Paxos
  // leader), relay pending commands there rather than racing a proposal for
  // the same slot and losing it. Relayed commands stay pending: if the
  // leader dies before delivering them, the relay times out (arm_tick) and
  // we propose them ourselves, which also drives leader failover.
  const auto hint = module_->proposer_hint();
  const bool relaying = hint && *hint != self_;
  if (relaying) {
    // Units relayed to us while we led: forward the original bytes to the
    // new preferred proposer and let their commands fall back to normal
    // relayed-pending tracking (expiry still protects against its death).
    for (RelayedUnit& unit : relayed_units_) {
      config_.profile.charge_control(ctx);
      ctx.send(*hint, net::make_msg(kRelayHeader, RelayBody{unit.batch, unit.origins}));
      for (const Command& cmd : unit.batch.commands()) {
        const auto key = std::make_pair(cmd.client.value, cmd.seq);
        for (PendingCommand& p : pending_) {
          if (std::make_pair(p.command.client.value, p.command.seq) == key) {
            p.in_flight = false;
            p.relayed_at = ctx.now();
            p.relay_expired = false;
          }
        }
      }
    }
    relayed_units_.clear();
    // Local pending commands are relayed as encoded units too — this is THE
    // encode of their batch lifetime; every later hop splices these bytes.
    Batch chunk;
    std::vector<NodeId> origins;
    std::size_t self_eligible = 0;
    auto flush_chunk = [&] {
      if (chunk.empty()) return;
      config_.profile.charge_control(ctx);
      RelayBody relay{EncodedBatch{std::move(chunk)}, std::move(origins)};
      ctx.send(*hint, net::make_msg(kRelayHeader, std::move(relay)));
      chunk = Batch{};
      origins.clear();
    };
    for (PendingCommand& p : pending_) {
      if (p.in_flight) continue;
      if (p.relay_expired) {
        ++self_eligible;
        continue;
      }
      if (p.relayed_at != 0) continue;  // already with the leader
      chunk.push_back(p.command);
      origins.push_back(p.origin);
      p.relayed_at = ctx.now();
      if (chunk.size() >= config_.batch_max) flush_chunk();
    }
    flush_chunk();
    if (self_eligible == 0) return;
  }
  // Natural batching: at most `max_outstanding` proposals in flight per
  // node; commands arriving while consensus is busy accumulate into the
  // next batch. An optional linger (`batch_delay`) can trade latency for
  // larger batches.
  if (outstanding_.size() >= config_.max_outstanding) return;
  const bool window_closed = ctx.now() - oldest_pending_since_ >= config_.batch_delay;

  // Load-adaptive proposal sizing: the cap doubles while the backlog (queued
  // commands plus the downstream probe, e.g. the executor pipeline's queue
  // depth) exceeds it, and halves once the backlog drains below a quarter of
  // it — big batches exactly while the pipeline is saturated, single-command
  // proposals (minimum latency) when idle.
  if (config_.adaptive_batching) {
    std::size_t backlog = eligible;
    for (const RelayedUnit& unit : relayed_units_) backlog += unit.batch.size();
    if (backlog_probe_) backlog += backlog_probe_();
    if (backlog > batch_limit_) {
      batch_limit_ = std::min(batch_limit_ * 2, config_.batch_max);
    } else if (backlog <= batch_limit_ / 4) {
      batch_limit_ = std::max(batch_limit_ / 2, config_.batch_min);
    }
  }
  const std::size_t batch_cap = batch_limit_;

  // A proposal merges (a) queued relayed units, spliced by reference — no
  // re-encode of bytes that already travelled — and (b) locally-pending
  // commands, serialized once. Units bypass the batching window: they
  // already lingered at their frontend.
  BatchBuilder builder;
  while (!relayed_units_.empty()) {
    const RelayedUnit& unit = relayed_units_.front();
    if (!builder.empty() && builder.size() + unit.batch.size() > batch_cap) break;
    builder.add(unit.batch);
    relayed_units_.pop_front();
  }
  if (builder.empty() && eligible < batch_cap && !window_closed) return;

  // Only locally-proposable commands enter the batch: everything when we
  // are (or may become) the proposer, otherwise only expired relays.
  for (PendingCommand& p : pending_) {
    if (builder.size() >= batch_cap) break;
    if (p.in_flight) continue;
    if (relaying && !p.relay_expired) continue;
    p.in_flight = true;
    builder.add(p.command);
  }
  if (builder.empty()) return;
  EncodedBatch batch = builder.build();
  if (config_.tracer && !config_.metric_scope.empty()) {
    // Per-group encode counter: the process-wide wire::batch_stats() fold
    // cannot attribute encodes when several groups share one process.
    config_.tracer->count(encode_metric_);
  }
  const Slot slot = std::max(next_propose_slot_, next_deliver_slot_);
  next_propose_slot_ = slot + 1;
  outstanding_[slot] = batch;
  // Proposal processing is charged where the consensus module handles the
  // px-propose message; here we only pay control-path dispatch.
  config_.profile.charge_control(ctx);
  if (config_.tracer) {
    config_.tracer->tob_propose(ctx.now(), self_, slot, batch.size());
    if (config_.adaptive_batching) {
      config_.tracer->observe(adaptive_metric_, batch_limit_);
    }
  }
  module_->propose(ctx, slot, batch);
  oldest_pending_since_ = ctx.now();
}

void TobNode::on_decide(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
  if (config_.tracer) config_.tracer->tob_decide(ctx.now(), self_, slot, batch.size());
  decisions_[slot] = batch;  // shares the decided bytes, no copy
  if (auto it = outstanding_.find(slot); it != outstanding_.end()) {
    // Whatever of ours was not chosen becomes eligible for a later slot.
    for (const Command& cmd : it->second.commands()) {
      const auto key = std::make_pair(cmd.client.value, cmd.seq);
      for (PendingCommand& p : pending_) {
        if (std::make_pair(p.command.client.value, p.command.seq) == key) p.in_flight = false;
      }
    }
    outstanding_.erase(it);
  }
  deliver_ready(ctx);
  maybe_propose(ctx);
}

void TobNode::deliver_ready(net::NodeContext& ctx) {
  if (paused_) return;  // rejoining: decisions accumulate until resume_from
  while (true) {
    auto it = decisions_.find(next_deliver_slot_);
    if (it == decisions_.end()) return;
    const EncodedBatch& encoded = it->second;
    const Batch& batch = encoded.commands();
    config_.profile.charge(ctx, batch.size());
    const std::uint64_t base_index = index_base_ + delivery_log_.size();
    Batch fresh;  // the commands actually delivered from this slot

    for (const Command& cmd : batch) {
      const auto key = std::make_pair(cmd.client.value, cmd.seq);
      if (floored(key) || !delivered_keys_.insert(key).second) {
        // no-duplication: already delivered here, or covered by the
        // snapshot this node rejoined from. Still ack + retire the pending
        // entry (a retry may have entered through us post-restart).
        ack_and_retire_pending(ctx, key, it->first);
        continue;
      }
      const std::uint64_t index = index_base_ + delivery_log_.size();
      delivery_log_.push_back(cmd);
      fresh.push_back(cmd);
      if (config_.tracer) {
        config_.tracer->tob_deliver(ctx.now(), self_, it->first, index, cmd.client, cmd.seq);
      }

      if (local_subscriber_) local_subscriber_(ctx, it->first, index, cmd);
      // (A whole-slot batch_subscriber_ is notified once, below.)
      // Ack the broadcaster if the command entered the system through us —
      // unless we relayed it to the leader, whose own pending entry acks
      // (exactly one ack in the normal case; duplicates can only arise in
      // failover windows, and clients deduplicate by sequence number).
      ack_and_retire_pending(ctx, key, it->first);
    }
    // Whole-slot subscribers (local batch subscriber and remote tob-deliver)
    // get the decided sub-frame as-is — the same bytes consensus agreed on,
    // spliced, never re-encoded; only a slot containing duplicates (client
    // retries) needs a fresh sub-frame for the delivered subset.
    if (!fresh.empty() && (batch_subscriber_ || !remote_subscribers_.empty())) {
      const EncodedBatch out = fresh.size() == batch.size() ? encoded
                                                            : EncodedBatch{std::move(fresh)};
      if (batch_subscriber_) batch_subscriber_(ctx, it->first, base_index, out);
      if (!remote_subscribers_.empty()) {
        const DeliverBody body{it->first, base_index, out};
        for (NodeId sub : remote_subscribers_) {
          ctx.send(sub, net::make_msg(kDeliverHeader, body));
        }
      }
    }
    ++next_deliver_slot_;
  }
}

void TobNode::ack_and_retire_pending(net::NodeContext& ctx,
                                     const std::pair<std::uint32_t, RequestSeq>& key,
                                     Slot slot) {
  for (auto p = pending_.begin(); p != pending_.end(); ++p) {
    if (std::make_pair(p->command.client.value, p->command.seq) != key) continue;
    const bool relayed_elsewhere = p->relayed_at != 0 && !p->relay_expired;
    if (!relayed_elsewhere) {
      ctx.send(p->origin, net::make_msg(kAckHeader,
                                        AckBody{p->command.client, p->command.seq, slot}));
    }
    pending_.erase(p);
    return;
  }
}

void TobNode::pause_for_rejoin() {
  paused_ = true;
}

void TobNode::resume_from(const ResumePoint& rp) {
  // Two callers: a freshly restarted process (empty log) and a simulator
  // crash-restart where the node object survived with its history intact —
  // the retained engine state is what makes the rejoin a delta. Either way
  // the snapshot supersedes everything delivered so far: rebase the index
  // space at the resume point and drop the superseded log. (The donor serves
  // the resume point at its own delivery frontier, which is at or ahead of
  // any paused node's, so rp.slot/rp.index_base never move us backwards.)
  delivery_log_.clear();
  next_deliver_slot_ = std::max(next_deliver_slot_, rp.slot);
  next_propose_slot_ = std::max(next_propose_slot_, rp.slot);
  index_base_ = rp.index_base;
  for (const auto& [client, seq] : rp.floor) {
    RequestSeq& floor = delivered_floor_[client];
    floor = std::max(floor, seq);
  }
  // Control commands (reconfig/rejoin) use a fresh client id per incarnation,
  // so a per-client floor cannot cover them: dedup them by exact key.
  for (const auto& key : rp.control_keys) delivered_keys_.insert(key);
  // Decided slots below the resume point are covered by the snapshot.
  decisions_.erase(decisions_.begin(), decisions_.lower_bound(next_deliver_slot_));
  paused_ = false;
  // Kick delivery/proposing from a proper node context (we are called from
  // the co-located replica's handler, under its identity, not ours).
  world_.schedule_timer_for_node(self_, world_.now(), [this](net::NodeContext& ctx) {
    deliver_ready(ctx);
    maybe_propose(ctx);
  });
}

TobService make_service(net::Transport& world, const TobConfig& config,
                        consensus::SafetyRecorder* safety) {
  TobService service;
  service.nodes.reserve(config.nodes.size());
  for (NodeId node : config.nodes) {
    service.nodes.push_back(std::make_unique<TobNode>(world, node, config, safety));
  }
  return service;
}

}  // namespace shadow::tob
