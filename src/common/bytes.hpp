// Byte-oriented serialization.
//
// ShadowDB's state transfer protocol ships database snapshots as batches of
// serialized rows (~50 KB per batch in the paper). BytesWriter/BytesReader
// implement a compact little-endian wire format used by snapshots and by
// message-size accounting in the simulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace shadow {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte buffer.
class BytesWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }

  Bytes take() { return std::move(buf_); }
  const Bytes& peek() const { return buf_; }

 private:
  Bytes buf_;
};

/// Reads primitive values back; throws InvariantViolation on truncation.
class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    SHADOW_CHECK_MSG(pos_ + n <= data_.size(), "truncated byte buffer");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace shadow
