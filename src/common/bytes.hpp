// Byte-oriented serialization and the zero-copy payload primitives.
//
// ShadowDB's state transfer protocol ships database snapshots as batches of
// serialized rows (~50 KB per batch in the paper). BytesWriter/BytesReader
// implement a compact little-endian wire format used by snapshots and by
// message-size accounting in the simulator.
//
// Zero-copy path: a payload that was encoded once can travel as a ByteView —
// an offset/length view into a shared immutable buffer (OwnedBytes). A
// BytesWriter can *splice* such a view into its output without copying it,
// producing a SegmentedBytes (an ordered list of views) instead of one
// contiguous buffer; a BytesReader can read across the segments and hand
// sub-ranges back out as views that share the source buffer. Consensus
// batches use this to be encoded exactly once per lifetime (see
// consensus::EncodedBatch); splice_stats() counts the encodes, splices, and
// any copies the path could not avoid.
#pragma once

#include <algorithm>
#include <atomic>
#include <compare>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace shadow {

using Bytes = std::vector<std::uint8_t>;

/// Shared immutable byte buffer: the ownership unit of the zero-copy path.
/// Everyone holding a view keeps the buffer alive; nobody can mutate it.
using OwnedBytes = std::shared_ptr<const Bytes>;

/// Process-wide counters for the zero-copy payload path (exposed to metrics
/// as net.batch_encode_count / net.batch_splices / net.batch_bytes_copied).
/// The counters are atomic because a pipelined node encodes on the consensus
/// thread while decode-side accounting can run on the I/O or executor
/// thread; copies (for baselining/diffing) take relaxed snapshots.
struct SpliceStats {
  /// Command-region serializations: how often batch commands were encoded
  /// from their structured form. The zero-copy invariant is one per batch
  /// lifetime, no matter how many hops/re-proposals/relays the batch takes.
  std::atomic<std::uint64_t> batch_encodes{0};
  /// Pre-encoded views spliced into writers instead of being re-encoded.
  std::atomic<std::uint64_t> batch_splices{0};
  /// Bytes of already-encoded content copied into a contiguous staging
  /// buffer (SegmentedBytes::flatten, BytesWriter::take with spliced
  /// segments, BytesReader::take_segments over borrowed memory). Zero on the
  /// clean send/relay/re-propose paths; nonzero only under fault injection
  /// or legacy contiguous consumers.
  std::atomic<std::uint64_t> batch_bytes_copied{0};

  SpliceStats() = default;
  SpliceStats(const SpliceStats& other)
      : batch_encodes(other.batch_encodes.load(std::memory_order_relaxed)),
        batch_splices(other.batch_splices.load(std::memory_order_relaxed)),
        batch_bytes_copied(other.batch_bytes_copied.load(std::memory_order_relaxed)) {}
  SpliceStats& operator=(const SpliceStats& other) {
    batch_encodes.store(other.batch_encodes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    batch_splices.store(other.batch_splices.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    batch_bytes_copied.store(other.batch_bytes_copied.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    return *this;
  }

  void reset() { *this = SpliceStats{}; }
};

inline SpliceStats& splice_stats() {
  static SpliceStats stats;
  return stats;
}

/// An immutable view of a byte range. Owned views share an OwnedBytes buffer
/// and may outlive their creator; borrowed views (made from a raw span) are
/// only valid while the underlying storage is.
class ByteView {
 public:
  ByteView() = default;

  ByteView(OwnedBytes buffer, std::size_t offset, std::size_t len) : owner_(std::move(buffer)) {
    SHADOW_REQUIRE(owner_ != nullptr && offset + len <= owner_->size());
    data_ = owner_->data() + offset;
    len_ = len;
  }

  static ByteView borrowed(std::span<const std::uint8_t> data) {
    ByteView v;
    v.data_ = data.data();
    v.len_ = data.size();
    return v;
  }

  static ByteView owning(Bytes&& bytes) {
    auto owner = std::make_shared<const Bytes>(std::move(bytes));
    const std::size_t n = owner->size();
    ByteView v;
    v.data_ = owner->data();
    v.len_ = n;
    v.owner_ = std::move(owner);
    return v;
  }

  std::span<const std::uint8_t> span() const { return {data_, len_}; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  /// Whether this view keeps its buffer alive (false: borrowed).
  bool owned() const { return owner_ != nullptr; }
  const OwnedBytes& owner() const { return owner_; }

  /// A sub-view sharing the same buffer (no copy).
  ByteView subview(std::size_t offset, std::size_t len) const {
    SHADOW_REQUIRE(offset + len <= len_);
    ByteView v;
    v.owner_ = owner_;
    v.data_ = data_ + offset;
    v.len_ = len;
    return v;
  }

 private:
  OwnedBytes owner_;  // null for borrowed views
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
};

/// An ordered sequence of byte views behaving as one logical byte string.
/// This is what a spliced encoding produces: owned segments for the freshly
/// written parts, shared views for the spliced pre-encoded parts. Comparison
/// is by content (segment boundaries are invisible).
class SegmentedBytes {
 public:
  SegmentedBytes() = default;
  explicit SegmentedBytes(ByteView view) { append(std::move(view)); }

  void append(ByteView view) {
    if (view.empty()) return;
    size_ += view.size();
    segs_.push_back(std::move(view));
  }
  void append_owned(Bytes&& bytes) {
    if (bytes.empty()) return;
    append(ByteView::owning(std::move(bytes)));
  }
  void append(const SegmentedBytes& other) {
    for (const ByteView& s : other.segs_) append(s);
  }

  const std::vector<ByteView>& segments() const { return segs_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Copies every segment into one contiguous buffer. This is exactly the
  /// copy the zero-copy path exists to avoid, so it is counted in
  /// splice_stats().batch_bytes_copied; only fault injection and legacy
  /// contiguous consumers should reach it.
  Bytes flatten() const {
    splice_stats().batch_bytes_copied += size_;
    Bytes out;
    out.reserve(size_);
    for (const ByteView& s : segs_) out.insert(out.end(), s.data(), s.data() + s.size());
    return out;
  }

  /// The sub-sequence [offset, offset+len), sharing the source buffers.
  SegmentedBytes subrange(std::size_t offset, std::size_t len) const {
    SHADOW_REQUIRE(offset + len <= size_);
    SegmentedBytes out;
    for (const ByteView& s : segs_) {
      if (len == 0) break;
      if (offset >= s.size()) {
        offset -= s.size();
        continue;
      }
      const std::size_t m = std::min(len, s.size() - offset);
      out.append(s.subview(offset, m));
      offset = 0;
      len -= m;
    }
    return out;
  }

  /// Lexicographic content comparison, streamed across segment boundaries
  /// (two equal byte strings compare equal however they are segmented).
  std::strong_ordering operator<=>(const SegmentedBytes& other) const {
    std::size_t ai = 0, ap = 0, bi = 0, bp = 0;
    while (true) {
      while (ai < segs_.size() && ap == segs_[ai].size()) {
        ++ai;
        ap = 0;
      }
      while (bi < other.segs_.size() && bp == other.segs_[bi].size()) {
        ++bi;
        bp = 0;
      }
      const bool a_done = ai == segs_.size();
      const bool b_done = bi == other.segs_.size();
      if (a_done || b_done) {
        if (a_done && b_done) return std::strong_ordering::equal;
        return a_done ? std::strong_ordering::less : std::strong_ordering::greater;
      }
      const std::size_t m =
          std::min(segs_[ai].size() - ap, other.segs_[bi].size() - bp);
      const int c = std::memcmp(segs_[ai].data() + ap, other.segs_[bi].data() + bp, m);
      if (c != 0) return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
      ap += m;
      bp += m;
    }
  }
  bool operator==(const SegmentedBytes& other) const {
    return size_ == other.size_ && (*this <=> other) == std::strong_ordering::equal;
  }

 private:
  std::vector<ByteView> segs_;
  std::size_t size_ = 0;
};

/// Appends primitive values to a growing byte buffer; pre-encoded views can
/// be spliced in without copying, turning the output into a SegmentedBytes.
class BytesWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Splices a pre-encoded view into the output without copying it: the
  /// bytes written so far become an owned segment, the view rides along by
  /// reference. Decoders must consume the spliced range as a unit (the
  /// sub-frame protocol's length prefix guarantees this).
  void splice(ByteView view) {
    if (view.empty()) return;
    ++splice_stats().batch_splices;
    flush();
    out_.append(std::move(view));
  }
  void splice(const SegmentedBytes& views) {
    if (views.empty()) return;
    ++splice_stats().batch_splices;
    flush();
    out_.append(views);
  }

  std::size_t size() const { return out_.size() + buf_.size(); }

  /// Contiguous result. When views were spliced this has to copy them into
  /// one buffer (counted in splice_stats); zero-copy consumers use
  /// take_segments() instead.
  Bytes take() {
    if (out_.empty()) return std::move(buf_);
    flush();
    return out_.flatten();
  }

  /// The segmented result: spliced views stay by-reference.
  SegmentedBytes take_segments() {
    flush();
    return std::move(out_);
  }

  const Bytes& peek() const {
    SHADOW_CHECK_MSG(out_.empty(), "peek on a writer with spliced segments");
    return buf_;
  }

 private:
  void flush() {
    if (buf_.empty()) return;
    out_.append_owned(std::move(buf_));
    buf_.clear();
  }

  Bytes buf_;
  SegmentedBytes out_;
};

/// Reads primitive values back; throws InvariantViolation on truncation.
/// Reads over segmented input never straddle a splice boundary: encoders
/// flush exactly at splice points and decoders mirror the encoder's field
/// order, so a straddling read means corrupt input (or a codec bug) and
/// trips the same truncation check.
class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) {
    if (!data.empty()) segs_.push_back(ByteView::borrowed(data));
    for (const ByteView& s : segs_) remaining_ += s.size();
  }
  explicit BytesReader(ByteView view) {
    if (!view.empty()) segs_.push_back(std::move(view));
    for (const ByteView& s : segs_) remaining_ += s.size();
  }
  explicit BytesReader(const SegmentedBytes& data) : segs_(data.segments()) {
    remaining_ = data.size();
  }

  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = *cursor();
    advance(1);
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    const std::uint8_t* p = cursor();
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    advance(4);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    const std::uint8_t* p = cursor();
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    advance(8);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (n == 0) return {};
    need(n);
    std::string s(reinterpret_cast<const char*>(cursor()), n);
    advance(n);
    return s;
  }

  /// Takes the next `n` bytes as views sharing the source buffers — the
  /// zero-copy read for spliced sub-frames. Borrowed input (raw spans) is
  /// materialized into an owned copy so the result can outlive the caller's
  /// buffer; that copy is counted in splice_stats().
  SegmentedBytes take_segments(std::size_t n) {
    SegmentedBytes out;
    while (n > 0) {
      hop();
      SHADOW_CHECK_MSG(cur_ < segs_.size(), "truncated byte buffer");
      const ByteView& seg = segs_[cur_];
      const std::size_t m = std::min(n, seg.size() - pos_);
      if (seg.owned()) {
        out.append(seg.subview(pos_, m));
      } else {
        splice_stats().batch_bytes_copied += m;
        out.append(ByteView::owning(Bytes(seg.data() + pos_, seg.data() + pos_ + m)));
      }
      pos_ += m;
      remaining_ -= m;
      n -= m;
    }
    return out;
  }

  bool done() const { return remaining_ == 0; }
  std::size_t remaining() const { return remaining_; }

 private:
  void hop() {
    while (cur_ < segs_.size() && pos_ == segs_[cur_].size()) {
      ++cur_;
      pos_ = 0;
    }
  }

  void need(std::size_t n) {
    if (n == 0) return;  // a zero-length read is valid even at end-of-buffer
    hop();
    SHADOW_CHECK_MSG(cur_ < segs_.size() && pos_ + n <= segs_[cur_].size(),
                     "truncated byte buffer");
  }

  const std::uint8_t* cursor() const { return segs_[cur_].data() + pos_; }

  void advance(std::size_t n) {
    pos_ += n;
    remaining_ -= n;
  }

  std::vector<ByteView> segs_;
  std::size_t cur_ = 0;
  std::size_t pos_ = 0;
  std::size_t remaining_ = 0;
};

}  // namespace shadow
