// Latency/throughput statistics used by the benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace shadow {

/// Collects latency samples (microseconds of virtual time) and summarizes.
class LatencyStats {
 public:
  void add(std::uint64_t micros) {
    samples_.push_back(micros);
    sum_ += micros;
  }

  std::size_t count() const { return samples_.size(); }

  double mean_ms() const {
    if (samples_.empty()) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(samples_.size()) / 1000.0;
  }

  double percentile_ms(double p) {
    if (samples_.empty()) return 0.0;
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double v = static_cast<double>(sorted[lo]) * (1.0 - frac) +
                     static_cast<double>(sorted[hi]) * frac;
    return v / 1000.0;
  }

  std::uint64_t max_us() const {
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

 private:
  std::vector<std::uint64_t> samples_;
  std::uint64_t sum_ = 0;
};

/// Bins completion events into fixed-width time buckets; used for the
/// instantaneous-throughput timeline of Fig. 10(a).
class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(std::uint64_t bucket_micros) : bucket_(bucket_micros) {}

  void add(std::uint64_t at_micros) {
    const std::size_t idx = static_cast<std::size_t>(at_micros / bucket_);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
  }

  /// Committed operations per second in bucket i.
  double rate_per_sec(std::size_t i) const {
    if (i >= buckets_.size()) return 0.0;
    return static_cast<double>(buckets_[i]) * 1e6 / static_cast<double>(bucket_);
  }

  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket_micros() const { return bucket_; }

 private:
  std::uint64_t bucket_;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace shadow
