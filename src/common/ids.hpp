// Strongly-typed identifiers used across the ShadowDB codebase.
//
// Following the paper, processes are addressed by abstract locations
// ("Loc" in EventML); clients and replication groups get their own id
// spaces so they cannot be confused at compile time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace shadow {

/// A location in the distributed system (an EventML "Loc").
/// Identifies one simulated process/node.
struct NodeId {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const NodeId&) const = default;
};

/// Identifies a client of the replicated database or broadcast service.
struct ClientId {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const ClientId&) const = default;
};

/// Sequence number of a group configuration (PBR recovery, SMR membership).
using ConfigSeq = std::uint64_t;

/// Slot number in the total order (one consensus instance per slot).
using Slot = std::uint64_t;

/// Per-client request sequence number, used for at-most-once execution.
using RequestSeq = std::uint64_t;

inline std::string to_string(NodeId id) { return "n" + std::to_string(id.value); }
inline std::string to_string(ClientId id) { return "c" + std::to_string(id.value); }

}  // namespace shadow

template <>
struct std::hash<shadow::NodeId> {
  std::size_t operator()(const shadow::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<shadow::ClientId> {
  std::size_t operator()(const shadow::ClientId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value) * 0x9e3779b97f4a7c15ULL;
  }
};
