// Invariant checking macros.
//
// SHADOW_CHECK is used for internal invariants that must hold in every
// execution; violations throw (they are bugs, and the runtime-verification
// harness converts them into test failures). SHADOW_REQUIRE is used for
// caller-facing preconditions of public APIs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shadow {

/// Thrown when an internal invariant is violated.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a public-API precondition is violated.
class PreconditionViolation : public std::invalid_argument {
 public:
  explicit PreconditionViolation(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'S') throw InvariantViolation(os.str());
  throw PreconditionViolation(os.str());
}
}  // namespace detail

}  // namespace shadow

#define SHADOW_CHECK(expr)                                                               \
  do {                                                                                   \
    if (!(expr)) ::shadow::detail::check_failed("SHADOW_CHECK", #expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SHADOW_CHECK_MSG(expr, msg)                                                     \
  do {                                                                                  \
    if (!(expr))                                                                        \
      ::shadow::detail::check_failed("SHADOW_CHECK", #expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SHADOW_REQUIRE(expr)                                                            \
  do {                                                                                  \
    if (!(expr))                                                                        \
      ::shadow::detail::check_failed("REQUIRE", #expr, __FILE__, __LINE__, "");         \
  } while (0)

#define SHADOW_REQUIRE_MSG(expr, msg)                                                   \
  do {                                                                                  \
    if (!(expr))                                                                        \
      ::shadow::detail::check_failed("REQUIRE", #expr, __FILE__, __LINE__, (msg));      \
  } while (0)
