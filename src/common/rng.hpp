// Deterministic random number generation.
//
// All randomness in the simulator, workloads and property-based tests flows
// through Rng so that every execution is reproducible from a 64-bit seed.
// The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace shadow {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5d3ad4fbe1f0c2a7ULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    SHADOW_REQUIRE(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next();  // full 64-bit range
    // Rejection-free modulo is fine here: span << 2^64 in all our uses.
    return lo + next() % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (for jitter).
  double exponential(double mean);

  /// Pick a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) {
    SHADOW_REQUIRE(n > 0);
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace shadow
