#include "common/rng.hpp"

#include <cmath>

namespace shadow {

double Rng::exponential(double mean) {
  SHADOW_REQUIRE(mean >= 0.0);
  if (mean == 0.0) return 0.0;
  // Inverse-CDF sampling; clamp away from 0 so log() is finite.
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace shadow
