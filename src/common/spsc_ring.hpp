// A bounded single-producer/single-consumer ring buffer for crossing the
// pipeline's thread boundaries (I/O ↔ consensus ↔ executor).
//
// Values move through the ring — an `EncodedBatch` crosses by shared_ptr
// splice, so zero payload bytes are copied at the boundary. The ring is
// deliberately a mutex + two condvars rather than a lock-free queue: the
// pipeline's stage threads block when they have nothing to do (no spinning
// on an otherwise idle replica), the mutex hand-off gives every popped value
// a happens-before edge covering everything the producer wrote before the
// push (this is what makes publishing a decoded `EncodedBatch` memo safe),
// and the whole structure is trivially provable under TSan. Throughput is
// bounded by consensus, not by this queue.
//
// Contract: exactly one producer thread calls push/try_push and exactly one
// consumer thread calls pop/try_pop/pop_for. close() may be called from any
// thread; after close, pushes fail and pops drain the remaining values
// before reporting exhaustion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace shadow {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : buf_(capacity) {
    SHADOW_REQUIRE_MSG(capacity > 0, "SpscRing capacity must be positive");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocks while the ring is full (backpressure). Returns false — and does
  /// not enqueue — once the ring is closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return count_ < buf_.size() || closed_; });
    if (closed_) return false;
    unlocked_put(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. On success the value is moved from; on a full or
  /// closed ring it is left intact and false is returned.
  bool try_push(T& value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == buf_.size()) return false;
      unlocked_put(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value is available. Returns nullopt only when the ring
  /// is closed AND drained — values pushed before close() are still
  /// delivered (shutdown drain).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    return unlocked_take(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    return unlocked_take(lock);
  }

  /// Bounded-wait pop: blocks up to `timeout`, then behaves like try_pop.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return count_ > 0 || closed_; });
    return unlocked_take(lock);
  }

  /// Wakes every blocked producer and consumer. Idempotent. Enqueued values
  /// remain poppable; new pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous occupancy — advisory only (the other thread moves it).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  void unlocked_put(T&& value) {
    buf_[(head_ + count_) % buf_.size()] = std::move(value);
    ++count_;
  }

  // Takes the oldest value if any (caller holds `lock`), notifying a blocked
  // producer after the unlock so it never wakes into a still-held mutex.
  std::optional<T> unlocked_take(std::unique_lock<std::mutex>& lock) {
    if (count_ == 0) return std::nullopt;
    std::optional<T> value(std::move(buf_[head_]));
    head_ = (head_ + 1) % buf_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> buf_;
  std::size_t head_ = 0;   // index of the oldest value
  std::size_t count_ = 0;  // occupied slots
  bool closed_ = false;
};

}  // namespace shadow
