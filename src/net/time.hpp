// Transport time: microseconds on a monotonic clock.
//
// The discrete-event simulator interprets `Time` as virtual microseconds
// since simulation start; the TCP transport interprets it as real
// microseconds on a monotonic clock since transport start. Protocol code is
// written against the unit (µs) and never against which clock is ticking,
// which is what lets the identical PBR/SMR/TOB binaries run simulated or on
// real sockets.
#pragma once

#include <cstdint>

namespace shadow::net {

/// Microseconds since transport start (virtual or monotonic, per backend).
using Time = std::uint64_t;

/// Identifies a pending timer for cancellation.
using TimerId = std::uint64_t;

constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * 1000; }
constexpr Time operator""_s(unsigned long long v) { return static_cast<Time>(v) * 1000000; }

constexpr double to_ms(Time t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace shadow::net
