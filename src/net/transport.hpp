// The transport abstraction the protocol stack is written against.
//
// Every protocol layer (consensus, TOB, PBR/SMR core, baselines, GPM
// runtime) interacts with the outside world exclusively through two
// interfaces:
//
//   NodeContext — handed to message/timer handlers; the only way a handler
//                 can act (send, multicast, charge CPU, set timers, RNG).
//   Transport   — topology (hosts, nodes, handlers), the clock, timers,
//                 external stimuli, stop/crash, and observer hooks.
//
// Two implementations exist:
//
//   sim::World          — the deterministic discrete-event simulator
//                         (virtual clock, CPU-busy model, latency/bandwidth
//                         links, partitions, byte-level fault injection).
//   net::TcpTransport   — a poll(2) event loop per OS process that writes
//                         the same checksummed wire frames to nonblocking
//                         TCP sockets and drives the same handlers.
//
// Because protocol code sees only these interfaces, the identical
// PBR/SMR/TOB binaries run simulated or on real sockets with zero protocol
// changes (the paper deployed on a physical cluster; the sim reproduces its
// figures).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/time.hpp"
#include "wire/framing.hpp"

namespace shadow::net {

/// A host groups co-located nodes (processes): one machine in the simulator,
/// one OS process for the TCP transport. Co-located nodes share CPU (sim)
/// and an event loop (tcp), and talk over loopback.
struct HostId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const HostId&) const = default;
};

class NodeContext;

using TimerFn = std::function<void(NodeContext&)>;
using MessageHandler = std::function<void(NodeContext&, const Message&)>;

/// Handed to message/timer handlers; the only way handlers interact with the
/// transport (send, charge CPU, set timers), so all effects are attributable.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual NodeId self() const = 0;
  virtual Time now() const = 0;

  /// Queue a message send. Delivery semantics are per-transport (the sim
  /// releases at job completion; TCP writes at handler return).
  virtual void send(NodeId to, Message msg) = 0;

  /// Send to many destinations, encoding the frame at most once.
  virtual void multicast(const std::vector<NodeId>& tos, const Message& msg) = 0;

  /// Consume CPU time: advances the busy horizon in the simulator's CPU
  /// model; a no-op on real hardware (the real CPU was actually consumed).
  virtual void charge(Time micros) = 0;

  /// One-shot timer; the callback runs as a handler job on this node.
  virtual TimerId set_timer(Time delay, TimerFn fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Per-node deterministic RNG.
  virtual Rng& rng() = 0;
};

/// Observer hook for trace recording (obs::Tracer, Logic of Events) and
/// debugging. Implemented by both transports.
class TransportObserver {
 public:
  virtual ~TransportObserver() = default;
  virtual void on_send(Time /*t*/, NodeId /*from*/, NodeId /*to*/, const Message& /*m*/) {}
  virtual void on_deliver(Time /*t*/, NodeId /*to*/, const Message& /*m*/) {}
  virtual void on_crash(Time /*t*/, NodeId /*node*/) {}
  /// A frame failed validation at delivery (bad checksum, truncation, or an
  /// unknown header) and was dropped — corruption surfaces as loss.
  virtual void on_wire_drop(Time /*t*/, NodeId /*from*/, NodeId /*to*/,
                            const std::string& /*header*/, std::size_t /*wire_size*/,
                            wire::FrameStatus /*reason*/) {}
  /// A message's frame was serialized. Fires once per fan-out when the
  /// transports share the encoded buffer across multicast destinations
  /// (obs turns this into the `net.encode_count` metric).
  virtual void on_frame_encoded(Time /*t*/, const std::string& /*header*/,
                                std::size_t /*frame_size*/) {}
  /// An established peer connection died (TCP backend). Fires once per
  /// outage, not per reconnect attempt.
  virtual void on_peer_down(Time /*t*/, HostId /*peer*/) {}
  /// A peer connection (re-)established. `downtime` is µs since the
  /// matching on_peer_down, 0 for a first-ever connect.
  virtual void on_peer_up(Time /*t*/, HostId /*peer*/, Time /*downtime*/) {}
  /// A reconnect attempt was scheduled after a failure. `attempt` counts
  /// from 1 within the outage; `backoff` is the chosen (pre-jitter) delay.
  virtual void on_reconnect_attempt(Time /*t*/, HostId /*peer*/, std::uint64_t /*attempt*/,
                                    Time /*backoff*/) {}
};

/// Abstract transport: topology, clock, timers, lifecycle, observation.
/// Driving execution (run loops) is backend-specific and lives on the
/// concrete classes — tests and benches own a concrete transport anyway.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // -- topology ------------------------------------------------------------
  virtual HostId add_host() = 0;
  /// Creates a node on the given host (creates a fresh host if omitted).
  /// NodeIds are assigned densely in call order, so running the identical
  /// assembly code in every OS process yields the identical node table —
  /// that is how the TCP transport routes by NodeId without a directory.
  virtual NodeId add_node(std::string name, std::optional<HostId> host = std::nullopt) = 0;
  virtual void set_handler(NodeId node, MessageHandler handler) = 0;
  virtual const std::string& node_name(NodeId node) const = 0;
  virtual HostId host_of(NodeId node) const = 0;
  /// Whether this transport instance executes the node's handler (always
  /// true in the sim; true for nodes on the local host under TCP). Assembly
  /// code uses this to construct replica state only where it runs.
  virtual bool is_local(NodeId node) const = 0;
  virtual Rng& node_rng(NodeId node) = 0;

  // -- clock / timers --------------------------------------------------------
  virtual Time now() const = 0;
  /// Schedules a node-context timer at absolute time `at` (NodeContext
  /// timers and component start-up hooks funnel through this).
  virtual TimerId schedule_timer_for_node(NodeId node, Time at, TimerFn fn) = 0;
  virtual void cancel(TimerId id) = 0;

  // -- external stimuli ------------------------------------------------------
  /// Inject a message from outside any handler (benchmark drivers, tests).
  virtual void post(NodeId from, NodeId to, Message msg) = 0;

  // -- lifecycle -------------------------------------------------------------
  /// Stop a node: its handler never runs again and pending timers are
  /// suppressed. The simulator models a crash; TCP uses it for shutdown.
  virtual void stop(NodeId node) = 0;
  virtual bool stopped(NodeId node) const = 0;

  // -- pipelining hooks -------------------------------------------------------
  /// Wake the transport's event loop from another thread. Pipeline stages
  /// call this after handing the consensus thread work through a queue (an
  /// executor pushing a completion, an I/O thread pushing an inbound frame)
  /// so a loop blocked in poll/wait re-evaluates immediately. Single-threaded
  /// transports (the simulator) have nothing to wake: default no-op.
  virtual void wake() {}

  /// Register work the event loop runs whenever it completes an iteration —
  /// after handlers, timers and loopback have drained. The hook returns how
  /// many items it processed so the loop can treat "nonzero" as progress
  /// (e.g. keep draining before sleeping). Used by the executor pipeline to
  /// post transaction completions back onto the consensus thread. Hooks must
  /// be registered before the loop starts running and are never removed.
  void add_idle_hook(std::function<std::size_t()> hook) {
    idle_hooks_.push_back(std::move(hook));
  }

  // -- observation -----------------------------------------------------------
  void add_observer(TransportObserver* obs) { observers_.push_back(obs); }

  /// Frames serialized by this transport. A multicast that shares its
  /// encoded buffer across destinations counts once (see `net.encode_count`).
  std::uint64_t encode_count() const { return encode_count_; }

  /// Encodes the message's frame and caches it on the message so every
  /// destination (and retransmission) of a fan-out reuses the same bytes.
  /// Counts one encode and notifies observers; a no-op when already cached.
  /// Requires a codec-built or bodyless message. The frame is scatter-gather:
  /// spliced batch payloads in the body remain shared views, never copied.
  const std::shared_ptr<const wire::SegmentedBytes>& ensure_encoded_frame(Message& msg);

 protected:
  const std::vector<TransportObserver*>& observers() const { return observers_; }

  /// Runs every registered idle hook once; returns the total items processed.
  std::size_t run_idle_hooks() {
    std::size_t processed = 0;
    for (auto& hook : idle_hooks_) processed += hook();
    return processed;
  }
  bool has_idle_hooks() const { return !idle_hooks_.empty(); }

  std::vector<TransportObserver*> observers_;
  std::vector<std::function<std::size_t()>> idle_hooks_;
  std::uint64_t encode_count_ = 0;
};

}  // namespace shadow::net
