#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "wire/registry.hpp"

namespace shadow::net {

namespace {

/// Routing prologue in front of every frame on the stream:
/// [record_len u32][from u32][to u32], little-endian; record_len counts the
/// from/to words plus the frame.
constexpr std::size_t kRoutePrefix = 12;
constexpr std::size_t kRouteWords = 8;  // from + to
/// Streams carrying a longer record are desynchronized (or hostile) and the
/// connection is dropped; the largest legitimate frames are ~50 KB snapshot
/// batches.
constexpr std::size_t kMaxRecordLen = 64u << 20;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

// ------------------------------------------------------------- TcpContext --

/// NodeContext over the TCP event loop: sends route immediately (TCP itself
/// provides FIFO ordering), charge() is a no-op because real CPU time was
/// actually consumed, and timers go on the transport's monotonic heap.
class TcpTransport::TcpContext final : public NodeContext {
 public:
  TcpContext(TcpTransport& transport, NodeId self) : transport_(transport), self_(self) {}

  NodeId self() const override { return self_; }
  Time now() const override { return transport_.now(); }

  void send(NodeId to, Message msg) override {
    msg.from = self_;
    transport_.route(self_, to, msg);
  }

  void multicast(const std::vector<NodeId>& tos, const Message& msg) override {
    if (tos.empty()) return;
    Message shared = msg;
    shared.from = self_;
    // Zero-copy fan-out: serialize once, every destination's write queue
    // references the same frame buffer.
    transport_.ensure_encoded_frame(shared);
    for (NodeId to : tos) transport_.route(self_, to, shared);
  }

  void charge(Time /*micros*/) override {}

  TimerId set_timer(Time delay, TimerFn fn) override {
    return transport_.schedule_timer_for_node(self_, transport_.now() + delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { transport_.cancel(id); }

  Rng& rng() override { return transport_.node_rng(self_); }

 private:
  TcpTransport& transport_;
  NodeId self_;
};

// ----------------------------------------------------------- TcpTransport --

TcpTransport::TcpTransport(TcpOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  SHADOW_REQUIRE_MSG(options_.local_host < options_.hosts.size(),
                     "local_host must index the host table");
  peers_.resize(options_.hosts.size());
  epoch_ = options_.epoch.value_or(std::chrono::steady_clock::now());
}

TcpTransport::~TcpTransport() { shutdown(); }

bool TcpTransport::start() {
  if (listen_fd_ >= 0) return true;
  const TcpHostAddr& me = options_.hosts[options_.local_host];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(me.port);
  if (::inet_pton(AF_INET, me.address.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listen_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  return true;
}

void TcpTransport::set_host_port(HostId host, std::uint16_t port) {
  SHADOW_REQUIRE_MSG(!pipelined_, "the host table is frozen once the I/O thread runs");
  SHADOW_REQUIRE(host.value < options_.hosts.size());
  options_.hosts[host.value].port = port;
}

void TcpTransport::shutdown() {
  if (pipelined_) {
    io_stop_.store(true, std::memory_order_release);
    inbound_ring_->close();   // un-blocks an I/O thread stuck pushing inbound
    outbound_ring_->close();
    wake_io();
    if (io_thread_.joinable()) io_thread_.join();
    pipelined_ = false;
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
    inbound_ring_.reset();
    outbound_ring_.reset();
    outbound_overflow_.clear();
  }
  close_fd(listen_fd_);
  for (Peer& peer : peers_) {
    close_fd(peer.fd);
    peer.connecting = false;
    peer.outq.clear();
  }
  for (Inbound& in : inbound_) close_fd(in.fd);
  inbound_.clear();
  loopback_.clear();
}

// -- topology ----------------------------------------------------------------

HostId TcpTransport::add_host() {
  SHADOW_REQUIRE_MSG(next_host_ < options_.hosts.size(),
                     "add_host exceeds the configured host address table");
  return HostId{next_host_++};
}

NodeId TcpTransport::add_node(std::string name, std::optional<HostId> host) {
  SHADOW_REQUIRE_MSG(!pipelined_, "topology is frozen once the I/O thread runs");
  // Not value_or: its argument is evaluated eagerly and would burn a
  // host-table slot even when the caller placed the node explicitly.
  const HostId h = host.has_value() ? *host : add_host();
  SHADOW_REQUIRE(h.value < options_.hosts.size());
  Node node;
  node.name = std::move(name);
  node.host = h;
  node.rng = rng_.fork();
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void TcpTransport::set_handler(NodeId node, MessageHandler handler) {
  SHADOW_REQUIRE_MSG(!pipelined_, "topology is frozen once the I/O thread runs");
  SHADOW_REQUIRE(node.value < nodes_.size());
  nodes_[node.value].handler = std::move(handler);
}

const std::string& TcpTransport::node_name(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].name;
}

HostId TcpTransport::host_of(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].host;
}

bool TcpTransport::is_local(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].host.value == options_.local_host;
}

Rng& TcpTransport::node_rng(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].rng;
}

// -- clock / timers ----------------------------------------------------------

Time TcpTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TimerId TcpTransport::schedule_timer_for_node(NodeId node, Time at, TimerFn fn) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  const TimerId id = next_timer_++;
  // Identical-assembly processes construct every node object in the cluster,
  // but each process executes only its local nodes: timers registered for a
  // remote node are accepted and discarded, so its replica object stays inert
  // here while the real one runs in its own process.
  if (nodes_[node.value].host.value != options_.local_host) return id;
  timers_.push(PendingTimer{at, timer_seq_++, id, node});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void TcpTransport::cancel(TimerId id) { timer_fns_.erase(id); }

std::size_t TcpTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().at <= now()) {
    const PendingTimer top = timers_.top();
    timers_.pop();
    auto it = timer_fns_.find(top.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    TimerFn fn = std::move(it->second);
    timer_fns_.erase(it);
    if (nodes_[top.node.value].stopped) continue;  // stop suppresses timers
    TcpContext ctx(*this, top.node);
    fn(ctx);
    ++fired;
  }
  return fired;
}

// -- lifecycle ---------------------------------------------------------------

void TcpTransport::stop(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  if (nodes_[node.value].stopped) return;
  nodes_[node.value].stopped = true;
  for (TransportObserver* obs : observers_) obs->on_crash(now(), node);
}

bool TcpTransport::stopped(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].stopped;
}

// -- send path ---------------------------------------------------------------

void TcpTransport::post(NodeId from, NodeId to, Message msg) {
  msg.from = from;
  route(from, to, msg);
}

void TcpTransport::route(NodeId from, NodeId to, Message& msg) {
  SHADOW_REQUIRE(to.value < nodes_.size());
  const std::shared_ptr<const wire::SegmentedBytes>& frame = ensure_encoded_frame(msg);
  msg.uid = ++msg_uid_counter_;
  for (TransportObserver* obs : observers_) obs->on_send(now(), from, to, msg);
  const HostId host = nodes_[to.value].host;
  if (host.value == options_.local_host) {
    // Local destination: skip the sockets but keep the byte path — the
    // receiver decodes the same frame a remote peer would, so loopback and
    // remote deliveries are indistinguishable to the protocol stack.
    loopback_.push_back(LoopbackRecord{from, to, frame});
    return;
  }
  if (pipelined_) {
    // Consensus thread → I/O thread, never blocking (see push_outbound).
    push_outbound(OutboundRecord{host, from, to, frame});
    return;
  }
  enqueue_record(host, from, to, frame);
}

void TcpTransport::enqueue_record(HostId host, NodeId from, NodeId to,
                                  std::shared_ptr<const wire::SegmentedBytes> frame) {
  SHADOW_REQUIRE(host.value < peers_.size());
  ensure_peer_connection(host);
  BytesWriter w;
  w.u32(static_cast<std::uint32_t>(kRouteWords + frame->size()));
  w.u32(from.value);
  w.u32(to.value);
  OutRecord rec;
  rec.prefix = w.take();
  rec.frame = std::move(frame);
  peers_[host.value].outq.push_back(std::move(rec));
}

void TcpTransport::ensure_peer_connection(HostId host) {
  Peer& peer = peers_[host.value];
  if (peer.fd >= 0 || now() < peer.retry_at) return;
  const TcpHostAddr& addr = options_.hosts[host.value];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    schedule_reconnect(host);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.address.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    schedule_reconnect(host);
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc == 0) {
    peer.fd = fd;
    peer_connected(host);
  } else if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.connecting = true;
  } else {
    ::close(fd);
    schedule_reconnect(host);
  }
}

void TcpTransport::fail_peer(HostId host) {
  Peer& peer = peers_[host.value];
  const bool established = peer.fd >= 0 && !peer.connecting;
  close_fd(peer.fd);
  peer.connecting = false;
  if (established) {
    peer_down_total_.fetch_add(1, std::memory_order_relaxed);
    peer.down_since = now();
    for (TransportObserver* obs : observers_) obs->on_peer_down(now(), host);
  }
  schedule_reconnect(host);
  // The receiver discarded the partial stream with the dead connection;
  // rewind the in-flight record so the replacement connection resends it
  // whole and framing stays intact.
  if (!peer.outq.empty()) peer.outq.front().offset = 0;
}

void TcpTransport::schedule_reconnect(HostId host) {
  Peer& peer = peers_[host.value];
  peer.backoff = peer.backoff == 0
                     ? options_.connect_retry
                     : std::min(peer.backoff * 2, options_.connect_retry_cap);
  ++peer.attempts;
  reconnect_attempts_.fetch_add(1, std::memory_order_relaxed);
  // Seeded jitter: every process derives its delays from its own RNG, so a
  // cluster-wide restart doesn't reconnect in lockstep. In pipelined mode
  // all connect paths run on the I/O thread, so rng_ is single-threaded.
  const double spread = options_.connect_retry_jitter;
  const double factor = 1.0 + spread * (2.0 * rng_.uniform01() - 1.0);
  const Time delay = std::max<Time>(1, static_cast<Time>(
                                           static_cast<double>(peer.backoff) * factor));
  peer.retry_at = now() + delay;
  for (TransportObserver* obs : observers_) {
    obs->on_reconnect_attempt(now(), host, peer.attempts, peer.backoff);
  }
}

void TcpTransport::peer_connected(HostId host) {
  Peer& peer = peers_[host.value];
  peer.connecting = false;
  peer.backoff = 0;
  peer.attempts = 0;
  peer.retry_at = 0;
  const Time downtime = peer.down_since == 0 ? 0 : now() - peer.down_since;
  peer.down_since = 0;
  for (TransportObserver* obs : observers_) obs->on_peer_up(now(), host, downtime);
}

void TcpTransport::flush_peer(HostId host) {
  Peer& peer = peers_[host.value];
  if (peer.fd < 0 || peer.connecting) return;
  while (!peer.outq.empty()) {
    // Gather the unsent remainders of as many queued records as fit into
    // one vectored write — back-to-back consensus decisions coalesce into a
    // single sendmsg instead of one syscall per record. Each record
    // contributes its routing prologue plus every frame segment; spliced
    // batch payloads go from their original buffer straight to the socket,
    // never through a contiguous staging copy. Whatever does not fit in the
    // iovec array goes out on the next pass.
    std::array<iovec, 64> iov{};
    std::size_t iov_n = 0;
    std::size_t records_gathered = 0;
    std::size_t skip = peer.outq.front().offset;  // only the front is partial
    const auto gather = [&](const std::uint8_t* data, std::size_t len) {
      if (len == 0 || iov_n == iov.size()) return;
      if (skip >= len) {
        skip -= len;
        return;
      }
      iov[iov_n].iov_base = const_cast<std::uint8_t*>(data + skip);
      iov[iov_n].iov_len = len - skip;
      ++iov_n;
      skip = 0;
    };
    for (const OutRecord& rec : peer.outq) {
      if (iov_n == iov.size()) break;
      gather(rec.prefix.data(), rec.prefix.size());
      for (const ByteView& seg : rec.frame->segments()) gather(seg.data(), seg.size());
      ++records_gathered;
    }
    msghdr mh{};
    mh.msg_iov = iov.data();
    mh.msg_iovlen = iov_n;
    const ssize_t written = ::sendmsg(peer.fd, &mh, MSG_NOSIGNAL);
    if (written > 0) {
      writev_calls_.fetch_add(1, std::memory_order_relaxed);
      writev_records_.fetch_add(records_gathered, std::memory_order_relaxed);
      // Credit the written bytes across the queue front-to-back, retiring
      // completed records; a partially written record keeps its offset.
      std::size_t credit = static_cast<std::size_t>(written);
      while (credit > 0) {
        OutRecord& front = peer.outq.front();
        const std::size_t step = std::min(credit, front.size() - front.offset);
        front.offset += step;
        credit -= step;
        if (front.offset == front.size()) peer.outq.pop_front();
      }
    } else if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // socket buffer full; poll for POLLOUT
    } else {
      fail_peer(host);
      return;
    }
  }
}

// -- receive path ------------------------------------------------------------

std::size_t TcpTransport::drain_inbound(Inbound& in) {
  std::size_t handled = 0;
  std::uint8_t chunk[65536];
  while (in.fd >= 0) {
    const ssize_t got = ::recv(in.fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      in.buf.insert(in.buf.end(), chunk, chunk + got);
      if (!parse_records(in, handled)) {
        close_inbound(in, wire::FrameStatus::kBadMagic);  // desynchronized stream
        break;
      }
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_inbound(in, wire::FrameStatus::kTruncated);  // EOF or hard error
    break;
  }
  return handled;
}

void TcpTransport::close_inbound(Inbound& in, wire::FrameStatus reason) {
  // A peer dying mid-record leaves a frame prefix in the buffer that can
  // never complete: account it as a traced drop (the sender will resend the
  // whole record on its replacement connection) and release the memory.
  const std::size_t leftover = in.buf.size() - in.consumed;
  if (leftover > 0) {
    NodeId from{};
    NodeId to{};
    if (leftover >= kRoutePrefix) {
      const std::uint8_t* base = in.buf.data() + in.consumed;
      from = NodeId{read_u32le(base + 4)};
      to = NodeId{read_u32le(base + 8)};
    }
    wire_drops_.fetch_add(1, std::memory_order_relaxed);
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, "", leftover, reason);
    }
  }
  close_fd(in.fd);
  in.buf.clear();
  in.consumed = 0;
}

bool TcpTransport::parse_records(Inbound& in, std::size_t& handled) {
  for (;;) {
    const std::size_t avail = in.buf.size() - in.consumed;
    if (avail < 4) break;
    const std::uint8_t* base = in.buf.data() + in.consumed;
    const std::uint32_t record_len = read_u32le(base);
    if (record_len < kRouteWords || record_len > kMaxRecordLen) return false;
    if (avail < 4u + record_len) break;
    const NodeId from{read_u32le(base + 4)};
    const NodeId to{read_u32le(base + 8)};
    const std::span<const std::uint8_t> frame(base + kRoutePrefix, record_len - kRouteWords);
    if (to.value < nodes_.size() && nodes_[to.value].host.value == options_.local_host) {
      if (dispatch_frame(from, to, frame)) ++handled;
    }
    // Records for unknown or non-local nodes are misrouted; drop silently.
    in.consumed += 4u + record_len;
  }
  if (in.consumed == in.buf.size()) {
    in.buf.clear();
    in.consumed = 0;
  } else if (in.consumed > (64u << 10)) {
    in.buf.erase(in.buf.begin(), in.buf.begin() + static_cast<std::ptrdiff_t>(in.consumed));
    in.consumed = 0;
  }
  return true;
}

bool TcpTransport::dispatch_frame(NodeId from, NodeId to,
                                  std::span<const std::uint8_t> frame) {
  wire::FrameView view;
  const wire::FrameStatus status = wire::decode_frame(frame, view);
  if (status != wire::FrameStatus::kOk) {
    wire_drops_.fetch_add(1, std::memory_order_relaxed);
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, "", frame.size(), status);
    }
    return false;
  }

  Message msg;
  msg.header = std::string(view.header);
  msg.from = from;
  msg.wire_size = frame.size();
  std::shared_ptr<const wire::SegmentedBytes> body;
  if (!view.body.empty()) {
    // Materialize the body once, off the transient socket read buffer, into
    // an owned segment. Every view the decoder produces — batch payload
    // sub-frames included — shares this one buffer, so this is the only
    // copy on the whole receive path (and it is inherent to sockets, not a
    // re-encode: it is not charged to batch_bytes_copied).
    wire::SegmentedBytes owned;
    owned.append(ByteView::owning(Bytes(view.body.begin(), view.body.end())));
    body = std::make_shared<const wire::SegmentedBytes>(std::move(owned));
  }
  if (!decode_message(from, to, msg, std::move(body))) return false;
  if (pipelined_) {
    // I/O thread: hand the decoded message to the consensus thread. The
    // body's buffers cross by shared_ptr; a full ring blocks this thread,
    // which stops the socket reads and becomes TCP backpressure.
    if (!inbound_ring_->push(InboundDelivery{from, to, std::move(msg)})) {
      return false;  // ring closed: shutting down
    }
    notify_driver();
    return true;
  }
  return finish_delivery(to, std::move(msg));
}

bool TcpTransport::dispatch_frame_segments(NodeId from, NodeId to,
                                           const wire::SegmentedBytes& frame) {
  wire::SegmentedFrameView view;
  const wire::FrameStatus status = wire::decode_frame_segments(frame, view);
  if (status != wire::FrameStatus::kOk) {
    wire_drops_.fetch_add(1, std::memory_order_relaxed);
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, "", frame.size(), status);
    }
    return false;
  }

  Message msg;
  msg.header = std::string(view.header);
  msg.from = from;
  msg.wire_size = frame.size();
  std::shared_ptr<const wire::SegmentedBytes> body;
  if (!view.body.empty()) {
    // Loopback is fully zero-copy: the body's segments share the sender's
    // original buffers.
    body = std::make_shared<const wire::SegmentedBytes>(std::move(view.body));
  }
  // Loopback dispatch always runs on the consensus thread: decode and
  // deliver inline, no ring crossing.
  if (!decode_message(from, to, msg, std::move(body))) return false;
  return finish_delivery(to, std::move(msg));
}

bool TcpTransport::decode_message(NodeId from, NodeId to, Message& msg,
                                  std::shared_ptr<const wire::SegmentedBytes> body) {
  if (body == nullptr || body->empty()) return true;
  // A structurally valid frame whose header no codec was registered for
  // cannot be interpreted; drop it (traced), never crash the receiver.
  if (!wire::registry().contains(msg.header)) {
    wire_drops_.fetch_add(1, std::memory_order_relaxed);
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, msg.header, msg.wire_size,
                        wire::FrameStatus::kUnknownHeader);
    }
    return false;
  }
  msg.body = wire::registry().decode(msg.header, *body);
  msg.encoded_body = std::move(body);
  return true;
}

bool TcpTransport::finish_delivery(NodeId to, Message&& msg) {
  msg.uid = ++msg_uid_counter_;
  Node& node = nodes_[to.value];
  if (node.stopped || !node.handler) return false;
  delivered_count_.fetch_add(1, std::memory_order_relaxed);
  for (TransportObserver* obs : observers_) obs->on_deliver(now(), to, msg);
  TcpContext ctx(*this, to);
  node.handler(ctx, msg);
  return true;
}

std::size_t TcpTransport::drain_loopback() {
  std::size_t handled = 0;
  // Handlers may enqueue further loopback sends; drain until quiescent.
  while (!loopback_.empty()) {
    const LoopbackRecord rec = std::move(loopback_.front());
    loopback_.pop_front();
    if (dispatch_frame_segments(rec.from, rec.to, *rec.frame)) ++handled;
  }
  return handled;
}

// -- event loop --------------------------------------------------------------

/// The socket side of one event-loop iteration: kicks expired connect
/// backoffs, polls listen/peer/inbound fds (plus `wake_fd` if nonnegative —
/// the pipelined I/O thread's wake pipe), accepts, drains readable streams,
/// and flushes pending writes. Shared verbatim between the single-threaded
/// loop and the pipelined I/O thread; the caller decides what else (timers,
/// loopback, rings) belongs to its stage.
std::size_t TcpTransport::poll_sockets(Time max_wait, int wake_fd) {
  std::size_t handled = 0;

  // Kick pending (re)connections whose backoff expired.
  for (std::uint32_t h = 0; h < peers_.size(); ++h) {
    if (peers_[h].fd < 0 && !peers_[h].outq.empty()) ensure_peer_connection(HostId{h});
  }

  enum class Kind : std::uint8_t { kListen, kPeer, kInbound, kWake };
  struct Slot {
    Kind kind;
    std::uint32_t index;
  };
  std::vector<pollfd> fds;
  std::vector<Slot> slots;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  slots.push_back(Slot{Kind::kListen, 0});
  if (wake_fd >= 0) {
    fds.push_back(pollfd{wake_fd, POLLIN, 0});
    slots.push_back(Slot{Kind::kWake, 0});
  }
  for (std::uint32_t h = 0; h < peers_.size(); ++h) {
    const Peer& peer = peers_[h];
    if (peer.fd < 0) continue;
    short events = POLLIN;
    if (peer.connecting || !peer.outq.empty()) events |= POLLOUT;
    fds.push_back(pollfd{peer.fd, events, 0});
    slots.push_back(Slot{Kind::kPeer, h});
  }
  for (std::uint32_t i = 0; i < inbound_.size(); ++i) {
    if (inbound_[i].fd < 0) continue;
    fds.push_back(pollfd{inbound_[i].fd, POLLIN, 0});
    slots.push_back(Slot{Kind::kInbound, i});
  }

  const int timeout_ms = static_cast<int>(std::min<Time>((max_wait + 999) / 1000, 1000));
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  for (std::size_t i = 0; i < fds.size(); ++i) {
    const short revents = fds[i].revents;
    if (revents == 0) continue;
    switch (slots[i].kind) {
      case Kind::kWake: {
        std::uint8_t sink[256];
        while (::read(wake_fd, sink, sizeof(sink)) > 0) {
        }
        break;
      }
      case Kind::kListen: {
        for (;;) {
          const int conn = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (conn < 0) break;
          int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Inbound in;
          in.fd = conn;
          inbound_.push_back(std::move(in));
        }
        break;
      }
      case Kind::kPeer: {
        const HostId host{slots[i].index};
        Peer& peer = peers_[host.value];
        if (peer.fd != fds[i].fd) break;  // replaced during this iteration
        if (peer.connecting && (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            fail_peer(host);
            break;
          }
          peer_connected(host);
        }
        if ((revents & (POLLERR | POLLHUP)) != 0 && !peer.connecting) {
          fail_peer(host);
          break;
        }
        if ((revents & POLLIN) != 0) {
          // Peers never send application data on our outbound connection;
          // readable here means EOF/reset.
          std::uint8_t sink[4096];
          const ssize_t got = ::recv(peer.fd, sink, sizeof(sink), 0);
          if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
            fail_peer(host);
            break;
          }
        }
        break;
      }
      case Kind::kInbound: {
        Inbound& in = inbound_[slots[i].index];
        if (in.fd != fds[i].fd) break;
        handled += drain_inbound(in);
        break;
      }
    }
  }

  // Flush everything enqueued since the last pass (plus newly connected
  // peers; in single-threaded mode the caller flushes again after handlers).
  for (std::uint32_t h = 0; h < peers_.size(); ++h) flush_peer(HostId{h});

  std::erase_if(inbound_, [](const Inbound& in) { return in.fd < 0; });
  return handled;
}

std::size_t TcpTransport::poll_once(Time max_wait) {
  SHADOW_REQUIRE_MSG(started(), "TcpTransport::start() must succeed before polling");
  if (pipelined_) return drive_once(max_wait);

  Time wait = max_wait;
  if (!timers_.empty()) {
    const Time t = now();
    wait = std::min(wait, timers_.top().at > t ? timers_.top().at - t : 0);
  }
  if (!loopback_.empty()) wait = 0;

  std::size_t handled = poll_sockets(wait, /*wake_fd=*/-1);
  handled += fire_due_timers();
  handled += drain_loopback();
  if (has_idle_hooks()) {
    handled += run_idle_hooks();
    handled += drain_loopback();
  }

  // Flush everything handlers/timers/hooks enqueued this iteration.
  for (std::uint32_t h = 0; h < peers_.size(); ++h) flush_peer(HostId{h});
  return handled;
}

std::size_t TcpTransport::run_for(Time duration) {
  const Time deadline = now() + duration;
  std::size_t handled = 0;
  while (now() < deadline) {
    handled += poll_once(std::min<Time>(deadline - now(), 10000));
  }
  return handled;
}

// -- pipelined mode ----------------------------------------------------------

bool TcpTransport::start_pipeline() {
  SHADOW_REQUIRE_MSG(started(), "start() must succeed before start_pipeline()");
  if (pipelined_) return true;
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return false;
  }
  inbound_ring_ = std::make_unique<SpscRing<InboundDelivery>>(kRingCapacity);
  outbound_ring_ = std::make_unique<SpscRing<OutboundRecord>>(kRingCapacity);
  io_stop_.store(false, std::memory_order_release);
  pipelined_ = true;  // set before the thread starts: io_loop reads it
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void TcpTransport::io_loop() {
  while (!io_stop_.load(std::memory_order_acquire)) {
    // Move consensus-produced records onto the per-peer write queues; the
    // trailing flush inside poll_sockets writes them out.
    while (auto rec = outbound_ring_->try_pop()) {
      enqueue_record(rec->host, rec->from, rec->to, std::move(rec->frame));
    }
    // The wake pipe cuts the wait short whenever the consensus thread
    // pushes outbound work, so the cap only bounds idle latency.
    poll_sockets(100000, /*wake_fd=*/wake_pipe_[0]);
  }
}

std::size_t TcpTransport::drive_once(Time max_wait) {
  std::size_t handled = 0;
  flush_outbound_overflow();

  Time wait = max_wait;
  if (!timers_.empty()) {
    const Time t = now();
    wait = std::min(wait, timers_.top().at > t ? timers_.top().at - t : 0);
  }
  if (!loopback_.empty() || !outbound_overflow_.empty()) wait = 0;
  if (wait > 0) {
    std::unique_lock<std::mutex> lock(driver_mu_);
    driver_cv_.wait_for(lock, std::chrono::microseconds(std::min<Time>(wait, 1000000)),
                        [&] { return driver_work_; });
    driver_work_ = false;
  } else {
    std::lock_guard<std::mutex> lock(driver_mu_);
    driver_work_ = false;
  }

  // Drain what the I/O thread decoded; every pop frees a ring slot, which is
  // what un-blocks a backpressured I/O thread.
  while (auto d = inbound_ring_->try_pop()) {
    if (finish_delivery(d->to, std::move(d->msg))) ++handled;
  }
  handled += fire_due_timers();
  handled += drain_loopback();
  if (has_idle_hooks()) {
    // Executor completions post through here; they may loop back (client
    // responses to a local node), so drain loopback once more.
    handled += run_idle_hooks();
    handled += drain_loopback();
  }
  flush_outbound_overflow();
  return handled;
}

void TcpTransport::push_outbound(OutboundRecord rec) {
  // Spill-first keeps per-peer FIFO: once anything waits in the overflow
  // deque, later records must queue behind it. The consensus thread never
  // blocks here — the I/O thread might itself be blocked pushing inbound,
  // and the inbound ring only drains when this thread keeps running.
  if (outbound_overflow_.empty() && outbound_ring_->try_push(rec)) {
    wake_io();
    return;
  }
  outbound_overflow_.push_back(std::move(rec));
}

std::size_t TcpTransport::flush_outbound_overflow() {
  std::size_t moved = 0;
  while (!outbound_overflow_.empty() &&
         outbound_ring_->try_push(outbound_overflow_.front())) {
    outbound_overflow_.pop_front();
    ++moved;
  }
  if (moved > 0) wake_io();
  return moved;
}

void TcpTransport::wake_io() {
  if (wake_pipe_[1] < 0) return;
  const std::uint8_t byte = 1;
  // EAGAIN means a wake byte is already pending — exactly what we need.
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

void TcpTransport::notify_driver() {
  {
    std::lock_guard<std::mutex> lock(driver_mu_);
    driver_work_ = true;
  }
  driver_cv_.notify_one();
}

void TcpTransport::wake() {
  if (pipelined_) notify_driver();
}

void TcpTransport::close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace shadow::net
