#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "wire/registry.hpp"

namespace shadow::net {

namespace {

/// Routing prologue in front of every frame on the stream:
/// [record_len u32][from u32][to u32], little-endian; record_len counts the
/// from/to words plus the frame.
constexpr std::size_t kRoutePrefix = 12;
constexpr std::size_t kRouteWords = 8;  // from + to
/// Streams carrying a longer record are desynchronized (or hostile) and the
/// connection is dropped; the largest legitimate frames are ~50 KB snapshot
/// batches.
constexpr std::size_t kMaxRecordLen = 64u << 20;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

// ------------------------------------------------------------- TcpContext --

/// NodeContext over the TCP event loop: sends route immediately (TCP itself
/// provides FIFO ordering), charge() is a no-op because real CPU time was
/// actually consumed, and timers go on the transport's monotonic heap.
class TcpTransport::TcpContext final : public NodeContext {
 public:
  TcpContext(TcpTransport& transport, NodeId self) : transport_(transport), self_(self) {}

  NodeId self() const override { return self_; }
  Time now() const override { return transport_.now(); }

  void send(NodeId to, Message msg) override {
    msg.from = self_;
    transport_.route(self_, to, msg);
  }

  void multicast(const std::vector<NodeId>& tos, const Message& msg) override {
    if (tos.empty()) return;
    Message shared = msg;
    shared.from = self_;
    // Zero-copy fan-out: serialize once, every destination's write queue
    // references the same frame buffer.
    transport_.ensure_encoded_frame(shared);
    for (NodeId to : tos) transport_.route(self_, to, shared);
  }

  void charge(Time /*micros*/) override {}

  TimerId set_timer(Time delay, TimerFn fn) override {
    return transport_.schedule_timer_for_node(self_, transport_.now() + delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { transport_.cancel(id); }

  Rng& rng() override { return transport_.node_rng(self_); }

 private:
  TcpTransport& transport_;
  NodeId self_;
};

// ----------------------------------------------------------- TcpTransport --

TcpTransport::TcpTransport(TcpOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  SHADOW_REQUIRE_MSG(options_.local_host < options_.hosts.size(),
                     "local_host must index the host table");
  peers_.resize(options_.hosts.size());
  epoch_ = options_.epoch.value_or(std::chrono::steady_clock::now());
}

TcpTransport::~TcpTransport() { shutdown(); }

bool TcpTransport::start() {
  if (listen_fd_ >= 0) return true;
  const TcpHostAddr& me = options_.hosts[options_.local_host];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(me.port);
  if (::inet_pton(AF_INET, me.address.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listen_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  return true;
}

void TcpTransport::set_host_port(HostId host, std::uint16_t port) {
  SHADOW_REQUIRE(host.value < options_.hosts.size());
  options_.hosts[host.value].port = port;
}

void TcpTransport::shutdown() {
  close_fd(listen_fd_);
  for (Peer& peer : peers_) {
    close_fd(peer.fd);
    peer.connecting = false;
    peer.outq.clear();
  }
  for (Inbound& in : inbound_) close_fd(in.fd);
  inbound_.clear();
  loopback_.clear();
}

// -- topology ----------------------------------------------------------------

HostId TcpTransport::add_host() {
  SHADOW_REQUIRE_MSG(next_host_ < options_.hosts.size(),
                     "add_host exceeds the configured host address table");
  return HostId{next_host_++};
}

NodeId TcpTransport::add_node(std::string name, std::optional<HostId> host) {
  // Not value_or: its argument is evaluated eagerly and would burn a
  // host-table slot even when the caller placed the node explicitly.
  const HostId h = host.has_value() ? *host : add_host();
  SHADOW_REQUIRE(h.value < options_.hosts.size());
  Node node;
  node.name = std::move(name);
  node.host = h;
  node.rng = rng_.fork();
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void TcpTransport::set_handler(NodeId node, MessageHandler handler) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  nodes_[node.value].handler = std::move(handler);
}

const std::string& TcpTransport::node_name(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].name;
}

HostId TcpTransport::host_of(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].host;
}

bool TcpTransport::is_local(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].host.value == options_.local_host;
}

Rng& TcpTransport::node_rng(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].rng;
}

// -- clock / timers ----------------------------------------------------------

Time TcpTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TimerId TcpTransport::schedule_timer_for_node(NodeId node, Time at, TimerFn fn) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  const TimerId id = next_timer_++;
  // Identical-assembly processes construct every node object in the cluster,
  // but each process executes only its local nodes: timers registered for a
  // remote node are accepted and discarded, so its replica object stays inert
  // here while the real one runs in its own process.
  if (nodes_[node.value].host.value != options_.local_host) return id;
  timers_.push(PendingTimer{at, timer_seq_++, id, node});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void TcpTransport::cancel(TimerId id) { timer_fns_.erase(id); }

std::size_t TcpTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().at <= now()) {
    const PendingTimer top = timers_.top();
    timers_.pop();
    auto it = timer_fns_.find(top.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    TimerFn fn = std::move(it->second);
    timer_fns_.erase(it);
    if (nodes_[top.node.value].stopped) continue;  // stop suppresses timers
    TcpContext ctx(*this, top.node);
    fn(ctx);
    ++fired;
  }
  return fired;
}

// -- lifecycle ---------------------------------------------------------------

void TcpTransport::stop(NodeId node) {
  SHADOW_REQUIRE(node.value < nodes_.size());
  if (nodes_[node.value].stopped) return;
  nodes_[node.value].stopped = true;
  for (TransportObserver* obs : observers_) obs->on_crash(now(), node);
}

bool TcpTransport::stopped(NodeId node) const {
  SHADOW_REQUIRE(node.value < nodes_.size());
  return nodes_[node.value].stopped;
}

// -- send path ---------------------------------------------------------------

void TcpTransport::post(NodeId from, NodeId to, Message msg) {
  msg.from = from;
  route(from, to, msg);
}

void TcpTransport::route(NodeId from, NodeId to, Message& msg) {
  SHADOW_REQUIRE(to.value < nodes_.size());
  const std::shared_ptr<const wire::SegmentedBytes>& frame = ensure_encoded_frame(msg);
  msg.uid = ++msg_uid_counter_;
  for (TransportObserver* obs : observers_) obs->on_send(now(), from, to, msg);
  const HostId host = nodes_[to.value].host;
  if (host.value == options_.local_host) {
    // Local destination: skip the sockets but keep the byte path — the
    // receiver decodes the same frame a remote peer would, so loopback and
    // remote deliveries are indistinguishable to the protocol stack.
    loopback_.push_back(LoopbackRecord{from, to, frame});
    return;
  }
  enqueue_record(host, from, to, frame);
}

void TcpTransport::enqueue_record(HostId host, NodeId from, NodeId to,
                                  std::shared_ptr<const wire::SegmentedBytes> frame) {
  SHADOW_REQUIRE(host.value < peers_.size());
  ensure_peer_connection(host);
  BytesWriter w;
  w.u32(static_cast<std::uint32_t>(kRouteWords + frame->size()));
  w.u32(from.value);
  w.u32(to.value);
  OutRecord rec;
  rec.prefix = w.take();
  rec.frame = std::move(frame);
  peers_[host.value].outq.push_back(std::move(rec));
}

void TcpTransport::ensure_peer_connection(HostId host) {
  Peer& peer = peers_[host.value];
  if (peer.fd >= 0 || now() < peer.retry_at) return;
  const TcpHostAddr& addr = options_.hosts[host.value];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    peer.retry_at = now() + options_.connect_retry;
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.address.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    peer.retry_at = now() + options_.connect_retry;
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc == 0) {
    peer.fd = fd;
    peer.connecting = false;
  } else if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.connecting = true;
  } else {
    ::close(fd);
    peer.retry_at = now() + options_.connect_retry;
  }
}

void TcpTransport::fail_peer(HostId host) {
  Peer& peer = peers_[host.value];
  close_fd(peer.fd);
  peer.connecting = false;
  peer.retry_at = now() + options_.connect_retry;
  // The receiver discarded the partial stream with the dead connection;
  // rewind the in-flight record so the replacement connection resends it
  // whole and framing stays intact.
  if (!peer.outq.empty()) peer.outq.front().offset = 0;
}

void TcpTransport::flush_peer(HostId host) {
  Peer& peer = peers_[host.value];
  if (peer.fd < 0 || peer.connecting) return;
  while (!peer.outq.empty()) {
    OutRecord& rec = peer.outq.front();
    while (rec.offset < rec.size()) {
      // Gather the unsent remainder of the record — the routing prologue
      // plus every frame segment — into one vectored write. Spliced batch
      // payloads inside the frame go from their original buffer straight to
      // the socket; there is no contiguous staging copy. A record with more
      // segments than the iovec array fits sends the tail on the next pass.
      std::array<iovec, 16> iov{};
      std::size_t iov_n = 0;
      std::size_t skip = rec.offset;
      const auto gather = [&](const std::uint8_t* data, std::size_t len) {
        if (len == 0 || iov_n == iov.size()) return;
        if (skip >= len) {
          skip -= len;
          return;
        }
        iov[iov_n].iov_base = const_cast<std::uint8_t*>(data + skip);
        iov[iov_n].iov_len = len - skip;
        ++iov_n;
        skip = 0;
      };
      gather(rec.prefix.data(), rec.prefix.size());
      for (const ByteView& seg : rec.frame->segments()) gather(seg.data(), seg.size());
      msghdr mh{};
      mh.msg_iov = iov.data();
      mh.msg_iovlen = iov_n;
      const ssize_t written = ::sendmsg(peer.fd, &mh, MSG_NOSIGNAL);
      if (written > 0) {
        rec.offset += static_cast<std::size_t>(written);
      } else if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // socket buffer full; poll for POLLOUT
      } else {
        fail_peer(host);
        return;
      }
    }
    peer.outq.pop_front();
  }
}

// -- receive path ------------------------------------------------------------

std::size_t TcpTransport::drain_inbound(Inbound& in) {
  std::size_t handled = 0;
  std::uint8_t chunk[65536];
  while (in.fd >= 0) {
    const ssize_t got = ::recv(in.fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      in.buf.insert(in.buf.end(), chunk, chunk + got);
      if (!parse_records(in, handled)) {
        close_fd(in.fd);  // desynchronized stream
        break;
      }
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_fd(in.fd);  // EOF or hard error
    break;
  }
  return handled;
}

bool TcpTransport::parse_records(Inbound& in, std::size_t& handled) {
  for (;;) {
    const std::size_t avail = in.buf.size() - in.consumed;
    if (avail < 4) break;
    const std::uint8_t* base = in.buf.data() + in.consumed;
    const std::uint32_t record_len = read_u32le(base);
    if (record_len < kRouteWords || record_len > kMaxRecordLen) return false;
    if (avail < 4u + record_len) break;
    const NodeId from{read_u32le(base + 4)};
    const NodeId to{read_u32le(base + 8)};
    const std::span<const std::uint8_t> frame(base + kRoutePrefix, record_len - kRouteWords);
    if (to.value < nodes_.size() && nodes_[to.value].host.value == options_.local_host) {
      if (dispatch_frame(from, to, frame)) ++handled;
    }
    // Records for unknown or non-local nodes are misrouted; drop silently.
    in.consumed += 4u + record_len;
  }
  if (in.consumed == in.buf.size()) {
    in.buf.clear();
    in.consumed = 0;
  } else if (in.consumed > (64u << 10)) {
    in.buf.erase(in.buf.begin(), in.buf.begin() + static_cast<std::ptrdiff_t>(in.consumed));
    in.consumed = 0;
  }
  return true;
}

bool TcpTransport::dispatch_frame(NodeId from, NodeId to,
                                  std::span<const std::uint8_t> frame) {
  wire::FrameView view;
  const wire::FrameStatus status = wire::decode_frame(frame, view);
  if (status != wire::FrameStatus::kOk) {
    ++wire_drops_;
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, "", frame.size(), status);
    }
    return false;
  }

  Message msg;
  msg.header = std::string(view.header);
  msg.from = from;
  msg.wire_size = frame.size();
  std::shared_ptr<const wire::SegmentedBytes> body;
  if (!view.body.empty()) {
    // Materialize the body once, off the transient socket read buffer, into
    // an owned segment. Every view the decoder produces — batch payload
    // sub-frames included — shares this one buffer, so this is the only
    // copy on the whole receive path (and it is inherent to sockets, not a
    // re-encode: it is not charged to batch_bytes_copied).
    wire::SegmentedBytes owned;
    owned.append(ByteView::owning(Bytes(view.body.begin(), view.body.end())));
    body = std::make_shared<const wire::SegmentedBytes>(std::move(owned));
  }
  return deliver_frame(from, to, std::move(msg), std::move(body));
}

bool TcpTransport::dispatch_frame_segments(NodeId from, NodeId to,
                                           const wire::SegmentedBytes& frame) {
  wire::SegmentedFrameView view;
  const wire::FrameStatus status = wire::decode_frame_segments(frame, view);
  if (status != wire::FrameStatus::kOk) {
    ++wire_drops_;
    for (TransportObserver* obs : observers_) {
      obs->on_wire_drop(now(), from, to, "", frame.size(), status);
    }
    return false;
  }

  Message msg;
  msg.header = std::string(view.header);
  msg.from = from;
  msg.wire_size = frame.size();
  std::shared_ptr<const wire::SegmentedBytes> body;
  if (!view.body.empty()) {
    // Loopback is fully zero-copy: the body's segments share the sender's
    // original buffers.
    body = std::make_shared<const wire::SegmentedBytes>(std::move(view.body));
  }
  return deliver_frame(from, to, std::move(msg), std::move(body));
}

bool TcpTransport::deliver_frame(NodeId from, NodeId to, Message&& msg,
                                 std::shared_ptr<const wire::SegmentedBytes> body) {
  msg.uid = ++msg_uid_counter_;
  if (body != nullptr && !body->empty()) {
    // A structurally valid frame whose header no codec was registered for
    // cannot be interpreted; drop it (traced), never crash the receiver.
    if (!wire::registry().contains(msg.header)) {
      ++wire_drops_;
      for (TransportObserver* obs : observers_) {
        obs->on_wire_drop(now(), from, to, msg.header, msg.wire_size,
                          wire::FrameStatus::kUnknownHeader);
      }
      return false;
    }
    msg.body = wire::registry().decode(msg.header, *body);
    msg.encoded_body = std::move(body);
  }

  Node& node = nodes_[to.value];
  if (node.stopped || !node.handler) return false;
  ++delivered_count_;
  for (TransportObserver* obs : observers_) obs->on_deliver(now(), to, msg);
  TcpContext ctx(*this, to);
  node.handler(ctx, msg);
  return true;
}

std::size_t TcpTransport::drain_loopback() {
  std::size_t handled = 0;
  // Handlers may enqueue further loopback sends; drain until quiescent.
  while (!loopback_.empty()) {
    const LoopbackRecord rec = std::move(loopback_.front());
    loopback_.pop_front();
    if (dispatch_frame_segments(rec.from, rec.to, *rec.frame)) ++handled;
  }
  return handled;
}

// -- event loop --------------------------------------------------------------

std::size_t TcpTransport::poll_once(Time max_wait) {
  SHADOW_REQUIRE_MSG(started(), "TcpTransport::start() must succeed before polling");
  std::size_t handled = 0;

  // Kick pending (re)connections whose backoff expired.
  for (std::uint32_t h = 0; h < peers_.size(); ++h) {
    if (peers_[h].fd < 0 && !peers_[h].outq.empty()) ensure_peer_connection(HostId{h});
  }

  enum class Kind : std::uint8_t { kListen, kPeer, kInbound };
  struct Slot {
    Kind kind;
    std::uint32_t index;
  };
  std::vector<pollfd> fds;
  std::vector<Slot> slots;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  slots.push_back(Slot{Kind::kListen, 0});
  for (std::uint32_t h = 0; h < peers_.size(); ++h) {
    const Peer& peer = peers_[h];
    if (peer.fd < 0) continue;
    short events = POLLIN;
    if (peer.connecting || !peer.outq.empty()) events |= POLLOUT;
    fds.push_back(pollfd{peer.fd, events, 0});
    slots.push_back(Slot{Kind::kPeer, h});
  }
  for (std::uint32_t i = 0; i < inbound_.size(); ++i) {
    if (inbound_[i].fd < 0) continue;
    fds.push_back(pollfd{inbound_[i].fd, POLLIN, 0});
    slots.push_back(Slot{Kind::kInbound, i});
  }

  Time wait = max_wait;
  if (!timers_.empty()) {
    const Time t = now();
    wait = std::min(wait, timers_.top().at > t ? timers_.top().at - t : 0);
  }
  if (!loopback_.empty()) wait = 0;
  const int timeout_ms = static_cast<int>(std::min<Time>((wait + 999) / 1000, 1000));
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  for (std::size_t i = 0; i < fds.size(); ++i) {
    const short revents = fds[i].revents;
    if (revents == 0) continue;
    switch (slots[i].kind) {
      case Kind::kListen: {
        for (;;) {
          const int conn = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (conn < 0) break;
          int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Inbound in;
          in.fd = conn;
          inbound_.push_back(std::move(in));
        }
        break;
      }
      case Kind::kPeer: {
        const HostId host{slots[i].index};
        Peer& peer = peers_[host.value];
        if (peer.fd != fds[i].fd) break;  // replaced during this iteration
        if (peer.connecting && (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            fail_peer(host);
            break;
          }
          peer.connecting = false;
        }
        if ((revents & (POLLERR | POLLHUP)) != 0 && !peer.connecting) {
          fail_peer(host);
          break;
        }
        if ((revents & POLLIN) != 0) {
          // Peers never send application data on our outbound connection;
          // readable here means EOF/reset.
          std::uint8_t sink[4096];
          const ssize_t got = ::recv(peer.fd, sink, sizeof(sink), 0);
          if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
            fail_peer(host);
            break;
          }
        }
        break;
      }
      case Kind::kInbound: {
        Inbound& in = inbound_[slots[i].index];
        if (in.fd != fds[i].fd) break;
        handled += drain_inbound(in);
        break;
      }
    }
  }

  handled += fire_due_timers();
  handled += drain_loopback();

  // Flush everything handlers enqueued (plus newly connected peers).
  for (std::uint32_t h = 0; h < peers_.size(); ++h) flush_peer(HostId{h});

  std::erase_if(inbound_, [](const Inbound& in) { return in.fd < 0; });
  return handled;
}

std::size_t TcpTransport::run_for(Time duration) {
  const Time deadline = now() + duration;
  std::size_t handled = 0;
  while (now() < deadline) {
    handled += poll_once(std::min<Time>(deadline - now(), 10000));
  }
  return handled;
}

void TcpTransport::close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace shadow::net
