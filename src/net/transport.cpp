#include "net/transport.hpp"

#include "common/check.hpp"

namespace shadow::net {

const std::shared_ptr<const wire::SegmentedBytes>& Transport::ensure_encoded_frame(Message& msg) {
  if (msg.encoded_frame == nullptr) {
    SHADOW_CHECK_MSG(!msg.has_body() || msg.encoded_body != nullptr,
                     "message '" + msg.header +
                         "' was built without a codec (explicit-size make_msg) and cannot "
                         "be serialized to a frame");
    static const wire::SegmentedBytes kNoBody;
    const wire::SegmentedBytes& body_bytes = msg.encoded_body ? *msg.encoded_body : kNoBody;
    wire::SegmentedBytes frame = wire::encode_frame_segments(msg.header, body_bytes);
    SHADOW_CHECK_MSG(frame.size() == msg.wire_size,
                     "message '" + msg.header + "' wire_size drifted from its encoded frame");
    msg.encoded_frame = std::make_shared<const wire::SegmentedBytes>(std::move(frame));
    ++encode_count_;
    for (TransportObserver* obs : observers_) {
      obs->on_frame_encoded(now(), msg.header, msg.encoded_frame->size());
    }
  }
  return msg.encoded_frame;
}

}  // namespace shadow::net
