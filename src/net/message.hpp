// Messages exchanged by ShadowDB processes, transport-independent.
//
// A message carries an EventML-style string header (base classes in the DSL
// pattern-match on it), a type-erased immutable body, and a wire size used
// by the simulator's bandwidth model and the TCP transport's byte
// accounting. For bodies with a wire::Codec, the wire size is the *exact*
// encoded frame length and the pre-encoded body bytes ride along so either
// transport can transmit, corrupt, and round-trip real bytes. Bodies without
// codecs (DSL values, test doubles) must state their wire size explicitly
// and cannot leave the process they were built in.
#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "wire/encoded_view.hpp"
#include "wire/framing.hpp"
#include "wire/registry.hpp"

namespace shadow::net {

struct Message {
  std::string header;
  std::shared_ptr<const std::any> body;  // shared: messages are fanned out to many nodes
  std::size_t wire_size = 0;             // bytes on the wire (payload + framing)
  NodeId from{};
  std::uint64_t uid = 0;                 // per-transmission identity, assigned by the
                                         // network; lets LoE match sends to receives
  // Exact body bytes (codec-built messages). Segmented: pre-encoded batch
  // payloads spliced into the body stay by-reference views of their source
  // buffer instead of being copied.
  std::shared_ptr<const wire::SegmentedBytes> encoded_body;
  // Full frame, shared across a multicast fan-out (zero-copy: encode once
  // per send). The body segments inside are shared with encoded_body.
  std::shared_ptr<const wire::SegmentedBytes> encoded_frame;

  bool has_body() const { return body != nullptr && body->has_value(); }
};

/// Builds a message from a codec-equipped body: registers the header's codec,
/// encodes once, and sets wire_size to the exact frame length.
template <typename T>
  requires wire::Encodable<std::decay_t<T>>
Message make_msg(std::string header, T&& body) {
  using Body = std::decay_t<T>;
  wire::registry().ensure<Body>(header);
  Message m;
  Body value = std::forward<T>(body);
  m.encoded_body =
      std::make_shared<const wire::SegmentedBytes>(wire::encode_body_segments(value));
  m.wire_size = wire::frame_size(header.size(), m.encoded_body->size());
  m.header = std::move(header);
  m.body = std::make_shared<const std::any>(std::move(value));
  return m;
}

/// Builds a message with an explicitly stated wire size, for bodies without
/// a codec (eventml DSL values, latency-model test doubles). The old default
/// estimate (`sizeof(T) + header + 24`) is gone: it badly undercounted
/// heap-owning bodies, so callers must either provide a codec or be honest.
template <typename T>
Message make_msg(std::string header, T body, std::size_t wire_size) {
  SHADOW_REQUIRE_MSG(wire_size > 0, "explicit wire size must be positive");
  Message m;
  m.wire_size = wire_size;
  m.header = std::move(header);
  m.body = std::make_shared<const std::any>(std::move(body));
  return m;
}

inline Message make_signal(std::string header) {
  Message m;
  m.wire_size = wire::frame_size(header.size(), 0);
  m.header = std::move(header);
  return m;
}

/// Returns the body as T; throws if the message has a different body type.
template <typename T>
const T& msg_body(const Message& m) {
  SHADOW_CHECK_MSG(m.has_body(), "message '" + m.header + "' has no body");
  const T* p = std::any_cast<T>(m.body.get());
  SHADOW_CHECK_MSG(p != nullptr, "message '" + m.header + "' body type mismatch");
  return *p;
}

/// Returns the body as T, or nullptr on type mismatch / missing body.
template <typename T>
const T* msg_body_if(const Message& m) {
  if (!m.has_body()) return nullptr;
  return std::any_cast<T>(m.body.get());
}

}  // namespace shadow::net
