// Real-socket backend of the transport abstraction.
//
// One TcpTransport instance drives one OS process ("host") of a ShadowDB
// cluster: it binds a listening TCP socket, lazily opens one nonblocking
// connection per peer host, and runs a poll(2) event loop that
//
//   * length-prefix-reads the existing checksummed wire frames off the
//     sockets, validates them (`wire::decode_frame`), decodes bodies through
//     the process-wide `wire::Registry`, and drives the same
//     `net::MessageHandler`s the simulator drives;
//   * fires one-shot timers off a monotonic-clock min-heap;
//   * writes outgoing frames nonblocking, sharing one encoded buffer across
//     all destinations of a multicast (zero-copy fan-out).
//
// Topology is static and replicated: every process runs the identical
// assembly code (add_host / add_node in the same order) against the same
// host address table, so NodeIds and HostIds agree across the cluster and a
// 12-byte routing prefix `[record_len u32][from u32][to u32]` in front of
// each frame is all the directory needed. Frames addressed to a node on the
// local host short-circuit through an in-process loopback queue but still
// take the full decode path, so loopback and remote deliveries are
// indistinguishable to the protocol stack.
//
// Sim-only facilities (partitions, link faults, the CPU-busy model) have no
// TCP counterpart: `charge()` is a no-op because the real CPU was actually
// consumed, and packet damage is produced by real networks rather than
// injected.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/spsc_ring.hpp"
#include "net/transport.hpp"

namespace shadow::net {

/// Where one host (OS process) of the cluster listens.
struct TcpHostAddr {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = bind an ephemeral port (in-process tests)
};

struct TcpOptions {
  /// Index into `hosts` identifying *this* process.
  std::uint32_t local_host = 0;
  /// The full cluster address table, identical in every process.
  std::vector<TcpHostAddr> hosts;
  /// Seed for the per-node deterministic RNGs (forked in add_node order).
  std::uint64_t seed = 1;
  /// Clock origin for now(). Instances that must share a timeline (the
  /// in-process loopback tests run several transports side by side) pass
  /// the same epoch; by default each instance starts its clock at 0.
  std::optional<std::chrono::steady_clock::time_point> epoch;
  /// Base delay before re-trying a refused/broken peer connection. Each
  /// consecutive failure doubles the delay (capped at connect_retry_cap)
  /// and a successful connect resets it, so a dead peer costs ever fewer
  /// syscalls while a restarted one is picked up quickly.
  Time connect_retry = 50000;  // 50 ms
  Time connect_retry_cap = 2000000;  // 2 s
  /// Uniform jitter applied to every backoff delay (fraction of the delay,
  /// drawn from the transport's seeded RNG): 0.2 → delay x [0.8, 1.2].
  /// Desynchronizes the reconnect stampede when a host restarts.
  double connect_retry_jitter = 0.2;
};

/// Poll-loop TCP implementation of net::Transport.
///
/// Two execution modes:
///
///   Single-threaded (default) — all socket I/O, handlers and timers run on
///   the thread that calls poll_once()/run_for(), exactly like the
///   simulator's event loop.
///
///   Pipelined (after start_pipeline()) — a dedicated transport I/O thread
///   owns every socket: it polls, parses and validates frames, decodes
///   bodies through the wire registry, and writes outgoing records. The
///   thread that calls poll_once()/run_for() becomes the consensus thread:
///   it runs all handlers, timers and loopback deliveries. The two are
///   connected by bounded SPSC rings whose values carry frame buffers by
///   shared_ptr — zero payload bytes cross the boundary by copy. The
///   consensus thread never blocks on the rings (outbound overflow spills to
///   an unbounded consensus-side deque); the I/O thread blocks pushing
///   inbound frames when consensus falls behind, which stalls its reads and
///   turns into genuine TCP backpressure toward the sender.
///
/// Topology (add_host/add_node/set_handler) must be complete before
/// start_pipeline(): the node table is immutable while the I/O thread runs.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpOptions options);
  ~TcpTransport() override;

  /// Binds and listens on the local host's address. Returns false (leaving
  /// the transport unusable but destructible) if sockets are unavailable —
  /// callers in sandboxed environments skip gracefully.
  bool start();
  bool started() const { return listen_fd_ >= 0; }
  /// The actual listening port (after an ephemeral bind of port 0).
  std::uint16_t listen_port() const { return listen_port_; }
  /// Patch a peer's port discovered after its ephemeral bind (in-process
  /// tests bind all transports first, then exchange real ports).
  void set_host_port(HostId host, std::uint16_t port);

  /// One event-loop iteration: waits at most `max_wait` µs for socket or
  /// timer activity, then drains reads, due timers, loopback deliveries,
  /// and pending writes. Returns the number of handler invocations.
  /// In pipelined mode this drives the consensus stage only (the I/O thread
  /// polls the sockets); the calling thread must be the same for every call.
  std::size_t poll_once(Time max_wait);
  /// Runs poll_once until `duration` µs of wall-clock have elapsed.
  std::size_t run_for(Time duration);

  /// Switches to pipelined mode: spawns the transport I/O thread and hands
  /// it the sockets. Call once, after start(), set_host_port() and the full
  /// assembly (the topology freezes here). Returns false if the wake pipe
  /// cannot be created.
  bool start_pipeline();
  bool pipelined() const { return pipelined_; }

  /// Wakes the consensus thread out of its poll_once wait (thread-safe).
  void wake() override;

  /// Closes every socket; the transport stays queryable but inert. In
  /// pipelined mode, stops and joins the I/O thread first.
  void shutdown();

  // -- net::Transport --------------------------------------------------------
  HostId add_host() override;
  NodeId add_node(std::string name, std::optional<HostId> host = std::nullopt) override;
  void set_handler(NodeId node, MessageHandler handler) override;
  const std::string& node_name(NodeId node) const override;
  HostId host_of(NodeId node) const override;
  bool is_local(NodeId node) const override;
  Rng& node_rng(NodeId node) override;

  Time now() const override;
  TimerId schedule_timer_for_node(NodeId node, Time at, TimerFn fn) override;
  void cancel(TimerId id) override;

  void post(NodeId from, NodeId to, Message msg) override;

  void stop(NodeId node) override;
  bool stopped(NodeId node) const override;

  // -- stats -----------------------------------------------------------------
  std::uint64_t messages_delivered() const {
    return delivered_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t wire_drops() const { return wire_drops_.load(std::memory_order_relaxed); }
  /// Scatter-gather write syscalls and the records they carried: the ratio
  /// is the decision-coalescing factor (records per writev).
  std::uint64_t writev_calls() const { return writev_calls_.load(std::memory_order_relaxed); }
  std::uint64_t writev_records() const {
    return writev_records_.load(std::memory_order_relaxed);
  }
  /// Connect attempts made after a failure (first tries don't count).
  std::uint64_t reconnect_attempts() const {
    return reconnect_attempts_.load(std::memory_order_relaxed);
  }
  /// Established peer connections lost (one per outage).
  std::uint64_t peer_down_total() const {
    return peer_down_total_.load(std::memory_order_relaxed);
  }

 private:
  class TcpContext;
  friend class TcpContext;

  struct Node {
    std::string name;
    HostId host;
    MessageHandler handler;
    bool stopped = false;
    Rng rng;
  };

  /// One queued outgoing record: the 12-byte routing prologue (owned) plus
  /// the scatter-gather frame, whose buffers are shared with every other
  /// destination of the same multicast — spliced batch payloads inside the
  /// frame are written straight from their original buffer (sendmsg/iovec),
  /// never copied into a contiguous staging area. `offset` counts bytes
  /// already written across the whole record, so a connection failure
  /// mid-record can rewind and resend the record on the replacement
  /// connection (the receiver discarded the partial stream).
  struct OutRecord {
    Bytes prefix;
    std::shared_ptr<const wire::SegmentedBytes> frame;
    std::size_t offset = 0;
    std::size_t size() const { return prefix.size() + frame->size(); }
  };

  struct Peer {
    int fd = -1;
    bool connecting = false;
    Time retry_at = 0;        // when to attempt (re)connecting, 0 = now
    Time backoff = 0;         // current (pre-jitter) retry delay, 0 = base
    std::uint64_t attempts = 0;  // consecutive failures this outage
    Time down_since = 0;      // when an established connection died, 0 = never
    std::deque<OutRecord> outq;
  };

  struct Inbound {
    int fd = -1;
    Bytes buf;
    std::size_t consumed = 0;
  };

  struct PendingTimer {
    Time at = 0;
    std::uint64_t seq = 0;
    TimerId id = 0;
    NodeId node{};
    bool operator>(const PendingTimer& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  struct LoopbackRecord {
    NodeId from{};
    NodeId to{};
    std::shared_ptr<const wire::SegmentedBytes> frame;
  };

  /// A decoded message crossing I/O thread → consensus thread. The body and
  /// its backing buffers travel by shared_ptr inside `msg`.
  struct InboundDelivery {
    NodeId from{};
    NodeId to{};
    Message msg;
  };

  /// A serialized frame crossing consensus thread → I/O thread. The frame
  /// buffer is the same shared_ptr every other destination of the multicast
  /// holds.
  struct OutboundRecord {
    HostId host{};
    NodeId from{};
    NodeId to{};
    std::shared_ptr<const wire::SegmentedBytes> frame;
  };

  /// Serializes (sharing the cached frame) and routes one message: loopback
  /// queue for local destinations, the peer connection otherwise.
  void route(NodeId from, NodeId to, Message& msg);
  void enqueue_record(HostId host, NodeId from, NodeId to,
                      std::shared_ptr<const wire::SegmentedBytes> frame);
  void ensure_peer_connection(HostId host);
  void flush_peer(HostId host);
  void fail_peer(HostId host);
  /// Backoff bookkeeping for one failed connect attempt: doubles the delay
  /// (capped), jitters it, arms retry_at, and fires on_reconnect_attempt.
  void schedule_reconnect(HostId host);
  /// A connect completed: resets the backoff and fires on_peer_up.
  void peer_connected(HostId host);
  /// Closes an inbound connection; any partially buffered frame is released
  /// and accounted as a traced wire drop (the peer died mid-record).
  void close_inbound(Inbound& in, wire::FrameStatus reason);
  std::size_t drain_inbound(Inbound& in);
  bool parse_records(Inbound& in, std::size_t& handled);
  /// Validates + decodes one frame read off a socket (contiguous inbound
  /// bytes: the body is materialized into one owned buffer that every view
  /// decoded from it shares) and runs the destination's handler. Invalid
  /// frames and unknown headers become traced drops, never crashes.
  bool dispatch_frame(NodeId from, NodeId to, std::span<const std::uint8_t> frame);
  /// Same for a loopback frame, fully zero-copy: the decoded body's views
  /// share the sender's original buffers.
  bool dispatch_frame_segments(NodeId from, NodeId to, const wire::SegmentedBytes& frame);
  /// Registry decode into msg.body (runs on the I/O thread when pipelined);
  /// false = unknown header, accounted as a traced wire drop.
  bool decode_message(NodeId from, NodeId to, Message& msg,
                      std::shared_ptr<const wire::SegmentedBytes> body);
  /// Delivery tail on the consensus thread: stopped check, observers,
  /// handler invocation.
  bool finish_delivery(NodeId to, Message&& msg);
  std::size_t fire_due_timers();
  std::size_t drain_loopback();
  /// The socket half of one loop iteration (connects, poll, accept, reads,
  /// flushes). `wake_fd` ≥ 0 adds the pipelined I/O thread's wake pipe to
  /// the poll set. Returns frames dispatched.
  std::size_t poll_sockets(Time max_wait, int wake_fd);
  void close_fd(int& fd);

  // -- pipelined mode ----------------------------------------------------------
  void io_loop();
  std::size_t drive_once(Time max_wait);        // consensus-side poll_once
  void push_outbound(OutboundRecord rec);        // consensus thread; never blocks
  std::size_t flush_outbound_overflow();         // consensus thread
  void wake_io();                                // any thread → I/O poll
  void notify_driver();                          // any thread → consensus wait

  TcpOptions options_;
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::uint32_t next_host_ = 0;  // add_host() cursor into options_.hosts
  std::vector<Node> nodes_;
  std::vector<Peer> peers_;      // indexed by HostId
  std::vector<Inbound> inbound_;

  std::uint64_t timer_seq_ = 0;
  TimerId next_timer_ = 1;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>, std::greater<>> timers_;
  std::unordered_map<TimerId, TimerFn> timer_fns_;  // cancel() erases the fn

  std::deque<LoopbackRecord> loopback_;

  // Debug uids are assigned on the consensus thread only (route + delivery
  // tail), so a plain counter suffices in both modes.
  std::uint64_t msg_uid_counter_ = 0;
  std::atomic<std::uint64_t> delivered_count_{0};
  std::atomic<std::uint64_t> wire_drops_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::uint64_t> writev_records_{0};
  std::atomic<std::uint64_t> reconnect_attempts_{0};
  std::atomic<std::uint64_t> peer_down_total_{0};

  // -- pipelined mode state ----------------------------------------------------
  static constexpr std::size_t kRingCapacity = 4096;
  bool pipelined_ = false;
  std::atomic<bool> io_stop_{false};
  std::thread io_thread_;
  int wake_pipe_[2] = {-1, -1};  // [0] read end in the I/O poll set
  std::unique_ptr<SpscRing<InboundDelivery>> inbound_ring_;
  std::unique_ptr<SpscRing<OutboundRecord>> outbound_ring_;
  /// Consensus-side spill when the outbound ring is full: the consensus
  /// thread must never block (the I/O thread could be blocked pushing
  /// inbound at the same moment), so excess records wait here and re-enter
  /// the ring at the top of every drive iteration.
  std::deque<OutboundRecord> outbound_overflow_;
  std::mutex driver_mu_;
  std::condition_variable driver_cv_;
  bool driver_work_ = false;  // guarded by driver_mu_
};

}  // namespace shadow::net
