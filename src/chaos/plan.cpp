#include "chaos/plan.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace shadow::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashReplica: return "crash-replica";
    case FaultKind::kCrashTobNode: return "crash-tob";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLinkFault: return "link-fault";
    case FaultKind::kCrashPair: return "crash-pair";
  }
  return "?";
}

namespace {

std::string format_seconds(net::Time t) {
  // "1.234s" — enough resolution to line events up with a trace.
  const std::uint64_t ms = t / 1000;
  std::string s = std::to_string(ms / 1000);
  s += '.';
  const std::uint64_t frac = ms % 1000;
  if (frac < 100) s += '0';
  if (frac < 10) s += '0';
  s += std::to_string(frac);
  s += 's';
  return s;
}

}  // namespace

std::string Plan::describe() const {
  std::string s = "plan seed=" + std::to_string(seed) + " (" +
                  std::to_string(events.size()) + " events)";
  for (const FaultEvent& ev : events) {
    s += "\n  t=" + format_seconds(ev.at) + ' ' + to_string(ev.kind);
    switch (ev.kind) {
      case FaultKind::kCrashReplica:
        s += " r" + std::to_string(ev.target);
        break;
      case FaultKind::kCrashTobNode:
        s += " tob" + std::to_string(ev.target);
        if (ev.target == 0) s += " (leader)";
        break;
      case FaultKind::kPartition:
        s += " tob" + std::to_string(ev.target) + "<->tob" + std::to_string(ev.target2) +
             " for " + format_seconds(ev.duration);
        break;
      case FaultKind::kLinkFault:
        s += " tob" + std::to_string(ev.target) + "->tob" + std::to_string(ev.target2) +
             " corrupt=" + std::to_string(ev.corrupt_prob).substr(0, 4) +
             " truncate=" + std::to_string(ev.truncate_prob).substr(0, 4) + " for " +
             format_seconds(ev.duration);
        break;
      case FaultKind::kCrashPair:
        s += " r" + std::to_string(ev.target) + " then r" + std::to_string(ev.target2) +
             " after suspect+" + format_seconds(ev.duration);
        break;
    }
  }
  return s;
}

Plan make_plan(std::uint64_t seed, const PlanConfig& config) {
  SHADOW_REQUIRE(config.machines >= 4);  // Paxos quorum must survive one TOB crash
  SHADOW_REQUIRE(config.db_replicas >= 3);
  SHADOW_REQUIRE(config.earliest <= config.latest);

  Rng rng(seed);
  Plan plan;
  plan.seed = seed;

  const std::size_t count = rng.uniform(config.min_events, config.max_events);

  // Budgets keeping the schedule inside the protocols' fault model:
  //  * at most 2 replica crashes (out of >=3 actives), kCrashPair spends both;
  //  * at most 1 TOB-node crash (majority of >=4 acceptors survives);
  //  * at most 2 distinct machines impaired by crashes, so at least one of
  //    machines 0..2 keeps both its replica and its TOB node — that replica
  //    executes every command and is the durability witness.
  std::size_t replica_crashes = 0;
  std::size_t tob_crashes = 0;
  std::set<std::uint32_t> impaired;
  const auto machines_ok = [&](std::initializer_list<std::uint32_t> add) {
    std::set<std::uint32_t> next = impaired;
    for (std::uint32_t m : add) next.insert(m);
    return next.size() <= 2;
  };

  // Bounded rejection sampling: kinds whose budget is spent are skipped, so a
  // plan can come out shorter than `count` (never longer).
  for (std::size_t attempts = 0; plan.events.size() < count && attempts < count * 8; ++attempts) {
    FaultEvent ev;
    ev.at = rng.uniform(config.earliest, config.latest);
    switch (rng.uniform(0, 4)) {
      case 0: {  // crash one active replica
        ev.kind = FaultKind::kCrashReplica;
        ev.target = static_cast<std::uint32_t>(rng.index(config.db_replicas));
        if (replica_crashes + 1 > 2 || !machines_ok({ev.target})) continue;
        ++replica_crashes;
        impaired.insert(ev.target);
        break;
      }
      case 1: {  // crash one TOB node; 50% the leader (slot-0 proposer)
        ev.kind = FaultKind::kCrashTobNode;
        ev.target = rng.chance(0.5)
                        ? 0
                        : static_cast<std::uint32_t>(rng.uniform(1, config.machines - 1));
        if (tob_crashes + 1 > 1 || !machines_ok({ev.target})) continue;
        ++tob_crashes;
        impaired.insert(ev.target);
        break;
      }
      case 2: {  // heal-guaranteed symmetric partition between two TOB nodes
        ev.kind = FaultKind::kPartition;
        ev.target = static_cast<std::uint32_t>(rng.index(config.machines));
        do {
          ev.target2 = static_cast<std::uint32_t>(rng.index(config.machines));
        } while (ev.target2 == ev.target);
        ev.duration = rng.uniform(100000, 2000000);
        break;
      }
      case 3: {  // byte-level corruption/truncation on one directed TOB link
        ev.kind = FaultKind::kLinkFault;
        ev.target = static_cast<std::uint32_t>(rng.index(config.machines));
        do {
          ev.target2 = static_cast<std::uint32_t>(rng.index(config.machines));
        } while (ev.target2 == ev.target);
        ev.corrupt_prob = 0.05 + 0.25 * rng.uniform01();
        ev.truncate_prob = 0.05 + 0.25 * rng.uniform01();
        ev.duration = rng.uniform(100000, 2000000);
        break;
      }
      default: {  // reconfiguration mid-state-transfer: two staggered crashes
        ev.kind = FaultKind::kCrashPair;
        ev.target = static_cast<std::uint32_t>(rng.index(config.db_replicas));
        do {
          ev.target2 = static_cast<std::uint32_t>(rng.index(config.db_replicas));
        } while (ev.target2 == ev.target);
        if (replica_crashes + 2 > 2 || !machines_ok({ev.target, ev.target2})) continue;
        replica_crashes += 2;
        impaired.insert(ev.target);
        impaired.insert(ev.target2);
        // Second crash lands just after the first suspicion fires, while the
        // replacement spare may still be mid-snapshot.
        ev.duration = rng.uniform(0, 200000);
        break;
      }
    }
    plan.events.push_back(ev);
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  return plan;
}

}  // namespace shadow::chaos
