// Chaos campaigns: run many seeded fault Plans (plan.hpp) against a full
// simulated ShadowDB-SMR cluster under client load, and assert every offline
// checker invariant (total order, at-most-once, strict serializability,
// durability) on the recorded trace after each run.
//
// A campaign is the "scenario explorer" from the roadmap: the paper's
// methodology says no schedule of tolerated faults can produce a checker
// violation, so every plan that fails is a bug. Failures are replayable from
// the plan seed alone, and a greedy minimizer shrinks the schedule to the
// smallest event subset that still fails — small enough to commit as a
// regression test (tests/chaos/).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "chaos/plan.hpp"
#include "obs/checker.hpp"
#include "obs/trace.hpp"

namespace shadow::chaos {

struct CampaignConfig {
  std::uint64_t seed = 1;    // campaign seed; per-plan seeds derive from it
  std::size_t plans = 10;    // schedules per campaign

  PlanConfig plan;           // cluster shape + fault budgets (plan.hpp)

  std::size_t clients = 2;   // closed-loop bank clients
  std::size_t txns_per_client = 120;
  std::int64_t bank_accounts = 200;

  /// > 1: shard the bank keyspace across that many independent consensus
  /// groups (core/group.hpp). Every fault event then hits the target's slice
  /// of EVERY group at once — a crashed machine takes all of its group
  /// memberships down together — and `cross_shard_pct` percent of the
  /// workload becomes 2PC transfers between adjacent (different-group)
  /// accounts. 1 keeps the exact classic single-group campaign.
  std::size_t shards = 1;
  std::size_t cross_shard_pct = 10;

  /// > 0 (and shards > 1): that percent of the workload becomes cross-shard
  /// bank.balance2 pair reads on the lock-free snapshot-read path, so fault
  /// events land mid-version-cut-exchange and mid-read-fanout; the client
  /// must recover by rotating replicas or restarting the read attempt, and
  /// the checker's snapshot-read invariant covers every cut it pins.
  std::size_t read_pct = 0;

  /// > 0 (and shards > 1): at this virtual time an administrator broadcasts
  /// a `::mig-split` moving bank keys [accounts/4, accounts/2) from group 0
  /// to group 1 while the fault schedule runs, and the plan only passes if
  /// the migration commits everywhere before the horizon. `kill_donor`
  /// additionally crashes the split's preferred donor replica 30 ms after
  /// the broadcast — mid-pull — forcing the receivers to rotate to another
  /// donor and the spare promotion to carry the routing override.
  net::Time rebalance_at = 0;
  bool kill_donor = false;

  net::Time hb_period = 50000;          // replica heartbeats, µs
  net::Time suspect_timeout = 400000;   // failure detection, µs (mirrored
                                        // into PlanConfig for kCrashPair)
  net::Time horizon = 120000000;        // virtual-time cap per run, µs
  bool wire_fidelity = true;            // real bytes on every sim link
  bool minimize = true;                 // shrink failing plans

  obs::CheckOptions check;

  /// Test hook: mutate the recorded trace before checking. Models safety
  /// bugs the real system does not have (e.g. ack-before-persist: forge a
  /// committed ack for a transaction no surviving replica executed) so the
  /// campaign's catch-and-minimize path itself is testable.
  std::function<void(const Plan&, obs::Trace&)> saboteur;
};

/// What one plan's run produced.
struct PlanOutcome {
  Plan plan;
  bool completed = false;          // every client finished within the horizon
  obs::CheckResult check;
  std::uint64_t committed = 0;     // transactions acknowledged committed
  std::size_t faults_injected = 0; // fault events actually applied
  net::Time virtual_duration = 0;  // virtual µs from start to quiesce
  std::optional<Plan> minimized;   // set when !ok() and minimization ran
  bool rebalance_required = false; // config asked for a mid-plan range split
  bool rebalanced = false;         // the split committed (mig.commits > 0)

  bool ok() const {
    return completed && check.ok() && (!rebalance_required || rebalanced);
  }
  double txn_per_sec() const {
    return virtual_duration == 0
               ? 0.0
               : static_cast<double>(committed) * 1e6 / static_cast<double>(virtual_duration);
  }
};

struct CampaignResult {
  std::vector<PlanOutcome> outcomes;
  std::size_t failures = 0;
  std::uint64_t total_committed = 0;
  std::size_t total_faults = 0;

  bool ok() const { return failures == 0; }
};

/// Runs one plan: fresh world seeded from the plan, wire fidelity on, a
/// 4-machine SMR cluster (Paxos, spares, failure detection), closed-loop
/// bank clients, every event of the plan injected on schedule, then the
/// offline checker over the recorded trace.
PlanOutcome run_plan(const Plan& plan, const CampaignConfig& config);

/// Derives `config.plans` plan seeds from the campaign seed and runs each.
/// Failing plans are minimized when `config.minimize` is set.
CampaignResult run_campaign(const CampaignConfig& config);

/// Replays the plan a campaign derived from this seed (for `--replay`).
PlanOutcome replay(std::uint64_t plan_seed, const CampaignConfig& config);

/// Greedy shrink: repeatedly drop any event whose removal keeps the plan
/// failing, to a fixed point. Deterministic; the result still fails (or is
/// the original plan if nothing could be removed).
Plan minimize_plan(const Plan& failing, const CampaignConfig& config);

}  // namespace shadow::chaos
