// Seeded fault plans: deterministic, seed-derived schedules of timed fault
// events against a simulated ShadowDB cluster.
//
// A Plan is pure data — no behavior — so it can be printed, replayed from
// its seed alone, shrunk by the minimizer (campaign.hpp), and committed as a
// regression test once a checker violation is found. make_plan() composes
// the simulator's existing fault primitives (crash, partition, byte-level
// link faults) plus the reconfiguration-mid-state-transfer composite into a
// randomized schedule whose budgets keep the cluster within the fault model
// the protocols are designed for (a Paxos quorum survives, at least one
// active replica survives, at least one machine is never impaired).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/time.hpp"

namespace shadow::chaos {

enum class FaultKind : std::uint8_t {
  /// SIGKILL-style crash of one database replica process (`target` indexes
  /// the replica group). The co-located TOB node survives — the sim models
  /// per-process crashes, like the TCP cluster's per-process SIGKILL.
  kCrashReplica,
  /// Crash of one broadcast-service node (`target` indexes the TOB group);
  /// index 0 is the Paxos leader, so this doubles as leader failover under
  /// load.
  kCrashTobNode,
  /// Symmetric partition between two TOB nodes (`target`/`target2`), healed
  /// after `duration`.
  kPartition,
  /// Byte-level corruption/truncation on the directed TOB link
  /// target→target2, cleared after `duration`.
  kLinkFault,
  /// Reconfiguration mid-state-transfer: crash replica `target`, then crash
  /// its replacement's snapshot source `target2` once the first
  /// reconfiguration (suspect_timeout) is in flight — `duration` past the
  /// detection window, so the second suspicion lands while the first
  /// replacement may still be joining.
  kCrashPair,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  net::Time at = 0;  // virtual time of injection
  FaultKind kind = FaultKind::kCrashReplica;
  std::uint32_t target = 0;   // index into the fault kind's group (see above)
  std::uint32_t target2 = 0;  // second endpoint / second victim
  net::Time duration = 0;     // partition/link-fault lifetime; kCrashPair gap
  double corrupt_prob = 0.0;  // kLinkFault only
  double truncate_prob = 0.0;
};

/// A deterministic fault schedule. Everything about the run derives from
/// `seed`: the event list below, the simulator's RNG, and the workload.
struct Plan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  std::string describe() const;
};

/// Shape of the cluster a plan is generated for (and budget inputs).
struct PlanConfig {
  std::size_t machines = 4;      // TOB nodes (Paxos quorum 3 of 4)
  std::size_t db_replicas = 3;   // active replicas
  std::size_t db_spares = 1;     // replacement pool
  std::size_t min_events = 1;
  std::size_t max_events = 4;
  net::Time earliest = 20000;    // first fault no sooner than this, µs
  net::Time latest = 1200000;    // last fault no later than this, µs
  net::Time suspect_timeout = 400000;  // mirrors CampaignConfig (kCrashPair gap)
};

/// Deterministically derives a fault schedule from the seed. Budgets:
/// at most 2 replica crashes total (kCrashPair counts two), at most 1 TOB
/// crash, and at most 2 distinct impaired machines, so machine 0..2 always
/// contains one fully intact machine (the durability witness). Partitions
/// and link faults only touch TOB↔TOB links and always heal.
Plan make_plan(std::uint64_t seed, const PlanConfig& config = {});

}  // namespace shadow::chaos
