#include "chaos/campaign.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "core/migrate.hpp"
#include "core/shadowdb.hpp"
#include "sim/world.hpp"
#include "tob/tob.hpp"
#include "workload/bank.hpp"

namespace shadow::chaos {

namespace {

/// Crash injection is idempotent at this layer: two events of a plan may
/// name the same victim (budgets bound counts, not distinctness across
/// events), and the second must not re-fire crash observers.
bool crash_once(sim::World& world, NodeId node) {
  if (world.crashed(node)) return false;
  world.crash(node);
  return true;
}

}  // namespace

PlanOutcome run_plan(const Plan& plan, const CampaignConfig& config) {
  PlanOutcome outcome;
  outcome.plan = plan;
  if (config.kill_donor) {
    // The donor kill IS this plan's replica-crash fault. Stacking it on the
    // generator's own replica crashes can exceed the ≤2-crash budget the
    // fault model is designed for (three dead replicas leave no surviving
    // execution witness for early txns, which the durability checker rightly
    // rejects), so those events are dropped; TOB crashes, partitions, and
    // link faults stay.
    auto& evs = outcome.plan.events;
    evs.erase(std::remove_if(evs.begin(), evs.end(),
                             [](const FaultEvent& ev) {
                               return ev.kind == FaultKind::kCrashReplica ||
                                      ev.kind == FaultKind::kCrashPair;
                             }),
              evs.end());
  }

  // Decorrelate the world's network/jitter randomness from the plan-shape
  // randomness (both derive from the same seed).
  sim::World world(plan.seed ^ 0x9e3779b97f4a7c15ULL);
  world.set_wire_fidelity(config.wire_fidelity);

  obs::Tracer tracer({.capacity = 1 << 20, .record_messages = false});
  tracer.attach(world);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{config.bank_accounts, 0};

  core::ClusterOptions opts;
  opts.machines = config.plan.machines;
  opts.db_replicas = config.plan.db_replicas;
  opts.db_spares = config.plan.db_spares;
  opts.registry = registry;
  opts.loader = [&bank](db::Engine& engine) { workload::bank::load(engine, bank); };
  opts.smr.hb_period = config.hb_period;
  opts.smr.suspect_timeout = config.suspect_timeout;
  opts.tracer = &tracer;
  // Classic path for shards == 1 (byte-identical to the pre-sharding
  // campaigns, so the pinned regression seeds replay the original schedules);
  // shards > 1 builds N groups over the same machines.
  core::SmrCluster cluster;
  core::ShardedSmrCluster sharded;
  std::vector<core::ReplicationGroup*> groups;
  if (config.shards > 1) {
    sharded = core::make_sharded_smr_cluster(world, opts, config.shards);
    for (auto& group : sharded.groups) groups.push_back(&group);
  } else {
    cluster = core::make_smr_cluster(world, opts);
    groups.push_back(&cluster);
  }

  // Closed-loop clients on their own machine, so client CPU never competes
  // with the servers under test.
  const net::HostId client_machine = world.add_machine();
  std::vector<std::unique_ptr<core::DbClient>> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    const NodeId node = world.add_node("chaos-client-" + std::to_string(c), client_machine);
    core::DbClient::Options copts;
    copts.mode = core::DbClient::Mode::kTob;
    copts.targets = groups.front()->broadcast_targets();
    if (config.shards > 1) {
      copts.router = sharded.router.get();
      copts.retry_conflict_aborts = true;
    }
    copts.txn_limit = config.txns_per_client;
    copts.tracer = &tracer;
    auto rng = std::make_shared<Rng>(plan.seed + 0x9e37 * (c + 1));
    const std::size_t cross_pct = config.shards > 1 ? config.cross_shard_pct : 0;
    const std::size_t read_pct = config.shards > 1 ? config.read_pct : 0;
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(c + 1)}, copts,
        [rng, bank, cross_pct, read_pct]() -> std::pair<std::string, workload::Params> {
          // One draw decides the kind, so read_pct == 0 replays the exact
          // pre-snapshot-read draw sequence (pinned seeds stay byte-stable).
          const std::uint64_t pick = rng->next() % 100;
          if (pick < read_pct) {
            // Cross-shard pair read on the snapshot path; adjacent accounts
            // always differ in `mod shards` group.
            const auto from = static_cast<std::int64_t>(
                rng->next() % static_cast<std::uint64_t>(bank.accounts));
            const std::int64_t to = (from + 1) % bank.accounts;
            return {std::string(workload::bank::kBalance2Proc),
                    workload::Params{db::Value(from), db::Value(to)}};
          }
          if (cross_pct > 0 && pick < read_pct + cross_pct) {
            // Adjacent accounts always differ in `mod shards` group.
            const auto from = static_cast<std::int64_t>(
                rng->next() % static_cast<std::uint64_t>(bank.accounts));
            const std::int64_t to = (from + 1) % bank.accounts;
            return {std::string(workload::bank::kTransferProc),
                    workload::Params{db::Value(from), db::Value(to),
                                     db::Value(std::int64_t{1})}};
          }
          return {workload::bank::kDepositProc, workload::bank::make_deposit(*rng, bank)};
        }));
    clients.back()->start(/*initial_delay=*/c * 500);
  }

  // Mid-plan rebalance: an administrator node broadcasts the same
  // `::mig-split` into every group's log on a fixed cadence (TOB dedup
  // collapses the retries into one delivery per group), concurrently with
  // whatever faults the plan injects. The donor kill is deliberately timed
  // into the pull window so the stream must be re-sourced from a surviving
  // donor replica.
  core::RangeSpec split;
  if (config.shards > 1 && config.rebalance_at > 0) {
    outcome.rebalance_required = true;
    split.mid = 1;
    split.table = workload::bank::kTable;
    split.lo = config.bank_accounts / 4;
    split.hi = config.bank_accounts / 2;
    split.from = 0;
    split.to = 1;
    split.donor = sharded.groups[0].replica_nodes[0];
    const NodeId admin = world.add_node("mig-admin", client_machine);
    for (int i = 0; i < 8; ++i) {
      world.schedule_timer_for_node(
          admin, config.rebalance_at + static_cast<net::Time>(i) * 500000,
          [&sharded, split, admin](net::NodeContext& ctx) {
            workload::TxnRequest req = core::make_split_request(split);
            req.reply_to = admin;
            for (core::GroupId g = 0; g < sharded.router->shard_count(); ++g) {
              tob::BroadcastBody body{
                  tob::Command{req.client, req.seq, workload::encode_request(req)}};
              ctx.send(sharded.router->tob_targets(g)[0],
                       net::make_msg(tob::kBroadcastHeader, std::move(body)));
            }
          });
    }
    if (config.kill_donor) {
      world.schedule(config.rebalance_at + 30000, [&world, &outcome, split] {
        if (crash_once(world, split.donor)) ++outcome.faults_injected;
      });
    }
  }

  // Inject the plan. Heals and second-stage crashes are scheduled from
  // inside the event callback, so their delays compose with `ev.at`.
  // A fault target names a MACHINE slice: with shards > 1 the event hits the
  // target's node in every group at once (one OS process runs all of them),
  // but still counts as one injected fault.
  for (const FaultEvent& ev : outcome.plan.events) {
    world.schedule(ev.at, [&world, &groups, &config, &outcome, ev] {
      switch (ev.kind) {
        case FaultKind::kCrashReplica: {
          bool any = false;
          for (core::ReplicationGroup* g : groups) {
            any |= crash_once(world, g->replica_nodes[ev.target]);
          }
          if (any) ++outcome.faults_injected;
          break;
        }
        case FaultKind::kCrashTobNode: {
          bool any = false;
          for (core::ReplicationGroup* g : groups) {
            any |= crash_once(world, g->tob_nodes[ev.target]);
          }
          if (any) ++outcome.faults_injected;
          break;
        }
        case FaultKind::kPartition: {
          for (core::ReplicationGroup* g : groups) {
            const NodeId a = g->tob_nodes[ev.target];
            const NodeId b = g->tob_nodes[ev.target2];
            world.set_partitioned(a, b, true);
            world.schedule(ev.duration,
                           [&world, a, b] { world.set_partitioned(a, b, false); });
          }
          ++outcome.faults_injected;
          break;
        }
        case FaultKind::kLinkFault: {
          for (core::ReplicationGroup* g : groups) {
            const NodeId a = g->tob_nodes[ev.target];
            const NodeId b = g->tob_nodes[ev.target2];
            world.set_link_fault(a, b, sim::LinkFault{ev.corrupt_prob, ev.truncate_prob});
            world.schedule(ev.duration, [&world, a, b] { world.clear_link_fault(a, b); });
          }
          ++outcome.faults_injected;
          break;
        }
        case FaultKind::kCrashPair: {
          bool any = false;
          for (core::ReplicationGroup* g : groups) {
            any |= crash_once(world, g->replica_nodes[ev.target]);
          }
          if (any) ++outcome.faults_injected;
          world.schedule(config.suspect_timeout + ev.duration,
                         [&world, &groups, ev, &outcome] {
                           bool second = false;
                           for (core::ReplicationGroup* g : groups) {
                             second |= crash_once(world, g->replica_nodes[ev.target2]);
                           }
                           if (second) ++outcome.faults_injected;
                         });
          break;
        }
      }
    });
  }

  // Step the world in coarse increments so the client-completion test runs
  // between slices; heartbeats and TOB ticks re-arm forever, so virtual
  // time always advances — but guard against a fully idle world anyway.
  const auto all_done = [&clients] {
    for (const auto& client : clients) {
      if (!client->done()) return false;
    }
    return true;
  };
  constexpr net::Time kStep = 100000;
  while (!all_done() && world.now() < config.horizon) {
    if (world.run_until(world.now() + kStep) == 0 && world.idle()) break;
  }
  outcome.completed = all_done();
  world.run_until(world.now() + 2000000);  // drain in-flight acks and ticks
  outcome.virtual_duration = world.now();

  for (const auto& client : clients) outcome.committed += client->committed();
  outcome.rebalanced = tracer.metrics().counter("mig.commits").value() > 0;

  obs::Trace trace = tracer.snapshot();
  if (config.saboteur) config.saboteur(plan, trace);
  outcome.check = obs::check_trace(trace, config.check);
  return outcome;
}

Plan minimize_plan(const Plan& failing, const CampaignConfig& config) {
  Plan current = failing;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < current.events.size(); ++i) {
      Plan candidate = current;
      candidate.events.erase(candidate.events.begin() + static_cast<std::ptrdiff_t>(i));
      if (!run_plan(candidate, config).ok()) {
        current = std::move(candidate);
        shrunk = true;
        break;  // restart the scan against the smaller plan
      }
    }
  }
  return current;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  Rng rng(config.seed);
  PlanConfig plan_config = config.plan;
  plan_config.suspect_timeout = config.suspect_timeout;

  CampaignResult result;
  for (std::size_t i = 0; i < config.plans; ++i) {
    const std::uint64_t plan_seed = rng.next();
    PlanOutcome outcome = run_plan(make_plan(plan_seed, plan_config), config);
    if (!outcome.ok()) {
      ++result.failures;
      if (config.minimize) outcome.minimized = minimize_plan(outcome.plan, config);
    }
    result.total_committed += outcome.committed;
    result.total_faults += outcome.faults_injected;
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

PlanOutcome replay(std::uint64_t plan_seed, const CampaignConfig& config) {
  PlanConfig plan_config = config.plan;
  plan_config.suspect_timeout = config.suspect_timeout;
  return run_plan(make_plan(plan_seed, plan_config), config);
}

}  // namespace shadow::chaos
