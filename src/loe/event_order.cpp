#include "loe/event_order.hpp"

#include <algorithm>

namespace shadow::loe {

EventId EventOrder::append(Event e) {
  e.id = static_cast<EventId>(events_.size());
  auto [it, inserted] = last_at_loc_.try_emplace(e.loc.value, e.id);
  if (!inserted) {
    e.local_pred = it->second;
    it->second = e.id;
  } else {
    e.local_pred = kNoEvent;
  }
  if (e.kind == EventKind::kSend && e.msg_uid != 0) {
    send_by_uid_[e.msg_uid] = e.id;
  }
  events_.push_back(e);
  return e.id;
}

EventId EventOrder::last_at(NodeId loc) const {
  auto it = last_at_loc_.find(loc.value);
  return it == last_at_loc_.end() ? kNoEvent : it->second;
}

std::vector<EventId> EventOrder::events_at(NodeId loc) const {
  std::vector<EventId> out;
  for (EventId id = last_at(loc); id != kNoEvent; id = events_[id].local_pred) {
    out.push_back(id);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

EventId EventOrder::send_of(std::uint64_t msg_uid) const {
  auto it = send_by_uid_.find(msg_uid);
  return it == send_by_uid_.end() ? kNoEvent : it->second;
}

bool EventOrder::happens_before(EventId e1, EventId e2) const {
  SHADOW_REQUIRE(e1 < events_.size() && e2 < events_.size());
  if (e1 == e2) return false;
  // Reverse DFS from e2 along local_pred and caused_by edges. Ids strictly
  // decrease along both edge kinds, so we can prune any frontier id < e1.
  std::vector<EventId> stack{e2};
  std::vector<bool> visited(events_.size(), false);
  while (!stack.empty()) {
    const EventId cur = stack.back();
    stack.pop_back();
    if (cur == kNoEvent || cur < e1 || visited[cur]) continue;
    visited[cur] = true;
    const Event& ev = events_[cur];
    if (ev.local_pred == e1 || ev.caused_by == e1) return true;
    stack.push_back(ev.local_pred);
    stack.push_back(ev.caused_by);
  }
  return false;
}

void EventOrder::check_well_formed() const {
  for (const Event& e : events_) {
    if (e.local_pred != kNoEvent) {
      SHADOW_CHECK_MSG(e.local_pred < e.id, "local predecessor must be earlier");
      const Event& pred = events_[e.local_pred];
      SHADOW_CHECK_MSG(pred.loc == e.loc, "local predecessor at same location");
      SHADOW_CHECK_MSG(pred.time <= e.time, "local order respects time");
    }
    if (e.caused_by != kNoEvent) {
      SHADOW_CHECK_MSG(e.caused_by < e.id, "cause must be earlier");
      const Event& cause = events_[e.caused_by];
      SHADOW_CHECK_MSG(cause.kind == EventKind::kSend, "cause must be a send");
      SHADOW_CHECK_MSG(cause.msg_uid == e.msg_uid, "cause matches message identity");
      SHADOW_CHECK_MSG(cause.time <= e.time, "messages are not delivered into the past");
    }
  }
}

}  // namespace shadow::loe
