// Records an LoE event ordering from a simulated execution by observing the
// world's send/deliver/crash hooks.
#pragma once

#include <functional>

#include "loe/event_order.hpp"
#include "sim/world.hpp"

namespace shadow::loe {

/// Observes a sim::World and builds the execution's EventOrder.
///
/// An optional `info_fn` extracts a protocol-specific integer from each
/// message (e.g. the logical-clock timestamp in the CLK example) so that
/// property checkers can reason about it.
class Recorder final : public sim::WorldObserver {
 public:
  using InfoFn = std::function<std::int64_t(const sim::Message&)>;

  explicit Recorder(sim::World& world, InfoFn info_fn = {}) : info_fn_(std::move(info_fn)) {
    world.add_observer(this);
  }

  void on_send(sim::Time t, NodeId from, NodeId /*to*/, const sim::Message& m) override {
    Event e;
    e.kind = EventKind::kSend;
    e.loc = from;
    e.time = t;
    e.header = m.header;
    e.msg_uid = m.uid;
    e.info = info_fn_ ? info_fn_(m) : 0;
    order_.append(e);
  }

  void on_deliver(sim::Time t, NodeId to, const sim::Message& m) override {
    Event e;
    e.kind = EventKind::kReceive;
    e.loc = to;
    e.time = t;
    e.header = m.header;
    e.msg_uid = m.uid;
    e.caused_by = order_.send_of(m.uid);
    e.info = info_fn_ ? info_fn_(m) : 0;
    order_.append(e);
  }

  void on_crash(sim::Time t, NodeId node) override {
    Event e;
    e.kind = EventKind::kCrash;
    e.loc = node;
    e.time = t;
    order_.append(e);
  }

  const EventOrder& order() const { return order_; }

 private:
  EventOrder order_;
  InfoFn info_fn_;
};

}  // namespace shadow::loe
