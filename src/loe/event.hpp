// Logic of Events (LoE): events as abstract points in space/time.
//
// The paper reasons about distributed programs via LoE: events occur at a
// location, are triggered by messages, and are related by a well-founded
// causal order. Here we *record* LoE event orderings from simulated
// executions and machine-check the properties the paper proves in Nuprl
// (see loe/properties.hpp). This is the runtime-verification substitution
// documented in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace shadow::loe {

using EventId = std::uint64_t;
constexpr EventId kNoEvent = ~0ULL;

enum class EventKind : std::uint8_t {
  kSend,     // a message was handed to the network
  kReceive,  // a message was delivered to a process
  kInternal, // local processing step (e.g. timer)
  kCrash,    // the location failed
};

/// One event of an event ordering. Immutable once recorded.
struct Event {
  EventId id = kNoEvent;
  EventKind kind = EventKind::kInternal;
  NodeId loc{};              // the "space" aspect
  sim::Time time = 0;        // virtual wall-clock (diagnostic only; causal
                             // order is the semantic ordering)
  std::string header;        // header of the triggering/sent message
  EventId local_pred = kNoEvent;   // previous event at the same location
  EventId caused_by = kNoEvent;    // for receives: the matching send event
  std::uint64_t msg_uid = 0;       // network-assigned message identity
  std::int64_t info = 0;           // protocol-specific payload (e.g. a clock)

  bool first() const { return local_pred == kNoEvent; }
};

}  // namespace shadow::loe
