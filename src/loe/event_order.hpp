// An event ordering: the recorded set of events of one execution together
// with the LoE causal order (local predecessor edges + caused-by edges).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "loe/event.hpp"

namespace shadow::loe {

class EventOrder {
 public:
  /// Appends an event; fills in id and local_pred. Returns the event id.
  EventId append(Event e);

  const Event& at(EventId id) const {
    SHADOW_REQUIRE(id < events_.size());
    return events_[id];
  }

  std::size_t size() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }

  /// The last event recorded at `loc`, or kNoEvent.
  EventId last_at(NodeId loc) const;

  /// All events at one location, in local order.
  std::vector<EventId> events_at(NodeId loc) const;

  /// The send event matching a message uid, or kNoEvent.
  EventId send_of(std::uint64_t msg_uid) const;

  /// True iff e1 happens causally before e2 (Lamport's relation: transitive
  /// closure of local order and send→receive edges). Implemented as a
  /// reverse reachability search from e2.
  bool happens_before(EventId e1, EventId e2) const;

  /// Checks structural well-formedness: local orders are total per location,
  /// caused_by edges point at earlier send events with matching uid, and the
  /// causal order is acyclic (ids strictly decrease along predecessor edges).
  /// Throws InvariantViolation on failure.
  void check_well_formed() const;

 private:
  std::vector<Event> events_;
  std::unordered_map<std::uint32_t, EventId> last_at_loc_;
  std::unordered_map<std::uint64_t, EventId> send_by_uid_;
};

}  // namespace shadow::loe
