#include "loe/properties.hpp"

namespace shadow::loe {
namespace {

std::string describe(const Event& e) {
  std::ostringstream os;
  os << "event " << e.id << " ('" << e.header << "' at " << to_string(e.loc) << ", t=" << e.time
     << ")";
  return os.str();
}

}  // namespace

CheckResult check_clock_condition(const EventOrder& order, const ClockFn& clock_of,
                                  const ClockFn& send_clock, std::size_t samples,
                                  std::uint64_t seed) {
  const ClockFn& carried = send_clock ? send_clock : clock_of;
  // C1: strict local increase.
  if (CheckResult c1 = check_progress_strict_increase(order, clock_of); !c1.ok) return c1;

  // C2: LC(send) < LC(receive) for matched pairs.
  for (const Event& e : order.events()) {
    if (e.kind != EventKind::kReceive || e.caused_by == kNoEvent) continue;
    const Event& cause = order.at(e.caused_by);
    const auto lc_send = carried(cause);
    const auto lc_recv = clock_of(e);
    if (!lc_send || !lc_recv) continue;
    if (!(*lc_send < *lc_recv)) {
      return CheckResult::fail("C2 violated: LC(" + describe(cause) +
                               ") >= LC(" + describe(e) + ")");
    }
  }

  // Spot-check the full condition on random happens-before pairs.
  if (order.size() >= 2) {
    Rng rng(seed);
    for (std::size_t i = 0; i < samples; ++i) {
      EventId a = rng.uniform(0, order.size() - 1);
      EventId b = rng.uniform(0, order.size() - 1);
      if (a == b) continue;
      if (a > b) std::swap(a, b);  // ids increase with time; a→b needs a < b
      if (!order.happens_before(a, b)) continue;
      const auto lca = clock_of(order.at(a));
      const auto lcb = clock_of(order.at(b));
      if (!lca || !lcb) continue;
      if (!(*lca < *lcb)) {
        return CheckResult::fail("clock condition violated: " + describe(order.at(a)) + " → " +
                                 describe(order.at(b)) + " but LC " + std::to_string(*lca) +
                                 " >= " + std::to_string(*lcb));
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_progress_strict_increase(const EventOrder& order, const ClockFn& value_of) {
  for (const Event& e : order.events()) {
    const auto cur = value_of(e);
    if (!cur) continue;
    // Walk back to the nearest clocked local predecessor.
    for (EventId p = e.local_pred; p != kNoEvent; p = order.at(p).local_pred) {
      const auto prev = value_of(order.at(p));
      if (!prev) continue;
      if (!(*prev < *cur)) {
        return CheckResult::fail("progress violated at " + to_string(e.loc) + ": value " +
                                 std::to_string(*prev) + " then " + std::to_string(*cur));
      }
      break;
    }
  }
  return CheckResult::pass();
}

CheckResult check_causal_well_formed(const EventOrder& order) {
  try {
    order.check_well_formed();
  } catch (const InvariantViolation& ex) {
    return CheckResult::fail(ex.what());
  }
  return CheckResult::pass();
}

}  // namespace shadow::loe
