// Machine-checked LoE properties.
//
// These checkers are the runtime analogue of the Nuprl proofs in the paper:
// each property the paper proves about a specification is encoded as an
// executable check evaluated over recorded event orderings of (many, seeded,
// failure-injected) executions. A returned failure carries a witness.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "loe/event_order.hpp"

namespace shadow::loe {

/// Result of a property check; on failure, `detail` names a witness.
struct CheckResult {
  bool ok = true;
  std::string detail;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// Maps an event to its logical-clock value, if the event is "clocked".
using ClockFn = std::function<std::optional<std::int64_t>(const Event&)>;

/// Lamport's Clock Condition: e1 → e2 implies LC(e1) < LC(e2).
///
/// Verified the way the paper proves it: exhaustively check C1 (clocks
/// strictly increase along each location's local order) and C2 (the clock
/// carried by a send is less than the clock of the matching receive), which
/// together imply the Clock Condition; then additionally spot-check the full
/// condition on `samples` random happens-before pairs as a sanity check of
/// the implication itself.
///
/// `clock_of` assigns LC to the protocol's logical events (typically the
/// receives); `send_clock` (defaults to `clock_of`) extracts the clock a
/// send event carries, for C2.
CheckResult check_clock_condition(const EventOrder& order, const ClockFn& clock_of,
                                  const ClockFn& send_clock = {}, std::size_t samples = 256,
                                  std::uint64_t seed = 7);

/// The paper's `progress strict_inc` property: along the local order of each
/// location, the value produced at each recognized event strictly increases.
CheckResult check_progress_strict_increase(const EventOrder& order, const ClockFn& value_of);

/// Receives never precede their sends, causal order is well-founded, etc.
CheckResult check_causal_well_formed(const EventOrder& order);

/// Total-order prefix consistency: every pair of logs agrees on their common
/// prefix (the TOB delivery property: all processes deliver the same
/// messages in the same order).
template <typename T>
CheckResult check_prefix_consistency(const std::vector<std::vector<T>>& logs) {
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t n = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < n; ++i) {
        if (!(logs[a][i] == logs[b][i])) {
          std::ostringstream os;
          os << "logs " << a << " and " << b << " diverge at position " << i;
          return CheckResult::fail(os.str());
        }
      }
    }
  }
  return CheckResult::pass();
}

/// No duplication within a single log.
template <typename T>
CheckResult check_no_duplicates(const std::vector<T>& log) {
  for (std::size_t i = 0; i < log.size(); ++i) {
    for (std::size_t j = i + 1; j < log.size(); ++j) {
      if (log[i] == log[j]) {
        std::ostringstream os;
        os << "duplicate delivery at positions " << i << " and " << j;
        return CheckResult::fail(os.str());
      }
    }
  }
  return CheckResult::pass();
}

}  // namespace shadow::loe
