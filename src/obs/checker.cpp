#include "obs/checker.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace shadow::obs {

namespace {

using TxnKey = std::pair<std::uint32_t, RequestSeq>;  // (client, seq)

std::string txn_name(const TxnKey& k) {
  std::string s = "c";
  s += std::to_string(k.first);
  s += '#';
  s += std::to_string(k.second);
  return s;
}

struct TxnTimes {
  net::Time begin = 0;        // first submission by the client
  net::Time ack = 0;          // first committed acknowledgment
  bool begun = false;
  bool acked = false;
};

}  // namespace

std::string CheckResult::summary() const {
  std::string s = ok() ? "trace check PASSED" : "trace check FAILED";
  s += " (" + std::to_string(replicas_checked) + " replicas, " +
       std::to_string(executions_checked) + " executions, " +
       std::to_string(committed_txns_checked) + " committed txns, " +
       std::to_string(ro_cuts_checked) + " ro cuts)";
  for (const Violation& v : violations) {
    s += "\n  [" + v.invariant + "] " + v.detail;
  }
  return s;
}

CheckResult check_trace(const Trace& trace, const CheckOptions& options) {
  CheckResult result;
  const auto report = [&](const char* invariant, std::string detail) {
    if (result.violations.size() < options.max_violations) {
      result.violations.push_back(Violation{invariant, std::move(detail)});
    }
  };

  // ---- pass 0: node → replication group (sharded traces stamp every node
  // with a group_info event; absent events put the node in group 0, which
  // makes every classic trace a one-group trace).
  std::unordered_map<std::uint32_t, std::uint32_t> node_group;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == EventKind::kGroupInfo) {
      node_group[e.node.value] = static_cast<std::uint32_t>(e.a);
    }
  }
  const auto group_of = [&](std::uint32_t node) {
    const auto it = node_group.find(node);
    return it == node_group.end() ? 0u : it->second;
  };

  // ---- pass 1: gather per-node execution logs, delivery logs, crashes, and
  // client-side transaction intervals. Events are time-ordered per node by
  // construction (the simulator is sequential and virtual time is monotone).
  std::unordered_set<std::uint32_t> crashed;
  // node -> order -> txn (non-duplicate user executions)
  std::map<std::uint32_t, std::map<std::uint64_t, TxnKey>> exec_by_node;
  // node -> set of executed txns, to detect double execution
  std::map<std::uint32_t, std::set<TxnKey>> executed_keys;
  // node -> delivery index -> command (TOB delivery logs)
  std::map<std::uint32_t, std::map<std::uint64_t, TxnKey>> deliver_by_node;
  std::map<TxnKey, TxnTimes> txns;
  // cross-shard txn -> participant group -> applied 2PC decision
  std::map<TxnKey, std::map<std::uint64_t, XsPhase>> xs_decisions;
  // committed cross-shard txn -> group -> engine state version at apply
  // (0/unrecorded positions are skipped; replicas of one group apply the
  // decision at the same deterministic position, so first-recorded wins)
  std::map<TxnKey, std::map<std::uint64_t, std::uint64_t>> xs_commit_pos;
  // read-only txn -> group -> pinned read version (the snapshot cut)
  std::map<TxnKey, std::map<std::uint64_t, std::uint64_t>> ro_cuts;

  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::kCrash:
        crashed.insert(e.node.value);
        break;
      case EventKind::kTxnExecute: {
        if (e.b != 0) break;  // duplicate: suppressed by the dedup table
        const std::string& proc = trace.label_of(e);
        if (proc.rfind("::", 0) == 0) break;  // internal (reconfiguration)
        const TxnKey key{e.client.value, e.seq};
        ++result.executions_checked;
        if (!executed_keys[e.node.value].insert(key).second) {
          report("at-most-once", "replica n" + std::to_string(e.node.value) +
                                     " executed " + txn_name(key) + " twice");
        }
        if (e.a == kUnordered) break;  // e.g. chain-tail reads: no position
        const auto [it, inserted] = exec_by_node[e.node.value].try_emplace(e.a, key);
        if (!inserted && it->second != key) {
          report("at-most-once", "replica n" + std::to_string(e.node.value) +
                                     " executed order " + std::to_string(e.a) +
                                     " twice (" + txn_name(it->second) + " then " +
                                     txn_name(key) + ")");
        }
        break;
      }
      case EventKind::kTobDeliver: {
        const TxnKey key{e.client.value, e.seq};
        const auto [it, inserted] = deliver_by_node[e.node.value].try_emplace(e.b, key);
        if (!inserted && it->second != key) {
          report("total-order", "TOB node n" + std::to_string(e.node.value) +
                                    " delivered two commands at index " + std::to_string(e.b));
        }
        break;
      }
      case EventKind::kTxnBegin: {
        TxnTimes& t = txns[{e.client.value, e.seq}];
        if (!t.begun) {
          t.begun = true;
          t.begin = e.time;
        }
        break;
      }
      case EventKind::kTxnAck: {
        if (e.a == 0) break;  // aborted answers carry no ordering obligation
        TxnTimes& t = txns[{e.client.value, e.seq}];
        if (!t.acked) {
          t.acked = true;
          t.ack = e.time;
        }
        break;
      }
      case EventKind::kXsPhase: {
        const auto phase = static_cast<XsPhase>(e.a);
        if (phase == XsPhase::kPrepare) break;
        const TxnKey key{e.client.value, e.seq};
        const auto [it, inserted] = xs_decisions[key].emplace(e.b, phase);
        if (!inserted && it->second != phase) {
          report("cross-shard-atomicity", "group g" + std::to_string(e.b) +
                                              " applied both commit and abort for " +
                                              txn_name(key));
        }
        if (phase == XsPhase::kCommit && e.c != 0) {
          xs_commit_pos[key].emplace(e.b, e.c);
        }
        break;
      }
      case EventKind::kRoCut: {
        ro_cuts[{e.client.value, e.seq}][e.a] = e.b;
        break;
      }
      default:
        break;
    }
  }

  // ---- cross-shard atomicity: every participant group applied the same
  // 2PC decision (a commit on one shard with an abort on another would leave
  // the transfer half-applied).
  for (const auto& [key, decisions] : xs_decisions) {
    std::string committed_on;
    std::string aborted_on;
    for (const auto& [group, phase] : decisions) {
      std::string& list = phase == XsPhase::kCommit ? committed_on : aborted_on;
      if (!list.empty()) list += ",";
      list += "g" + std::to_string(group);
    }
    if (!committed_on.empty() && !aborted_on.empty()) {
      report("cross-shard-atomicity", "cross-shard " + txn_name(key) + " committed on " +
                                          committed_on + " but aborted on " + aborted_on);
    }
  }

  // ---- total order: TOB nodes of the same group must agree on every common
  // delivery index (each group is its own TOB instance; comparing across
  // groups would be meaningless). Crashed TOB nodes stay included: consensus
  // safety guarantees a crashed learner's delivery log is a consistent prefix.
  {
    // group -> (reference node, its log); every later node of the group is
    // compared against the group's first.
    std::map<std::uint32_t, std::pair<std::uint32_t, const std::map<std::uint64_t, TxnKey>*>>
        ref_by_group;
    for (const auto& [node, log] : deliver_by_node) {
      const auto [rit, first] = ref_by_group.try_emplace(group_of(node), node, &log);
      if (first) continue;
      const auto& [ref_node, ref_log] = rit->second;
      for (const auto& [index, key] : log) {
        const auto it = ref_log->find(index);
        if (it != ref_log->end() && it->second != key) {
          report("total-order", "TOB delivery index " + std::to_string(index) + " is " +
                                    txn_name(it->second) + " on n" + std::to_string(ref_node) +
                                    " but " + txn_name(key) + " on n" + std::to_string(node));
        }
      }
    }
  }

  // ---- total order: surviving replicas of the same group must agree on
  // every common execution-order index (pairwise against the group's union
  // keeps it O(n log n)).
  std::map<std::uint32_t, std::map<std::uint64_t, std::pair<TxnKey, std::uint32_t>>>
      agreed_by_group;
  for (const auto& [node, log] : exec_by_node) {
    const bool node_crashed = crashed.count(node) > 0;
    if (node_crashed && !options.include_crashed_in_order_check) continue;
    ++result.replicas_checked;
    auto& agreed_order = agreed_by_group[group_of(node)];
    for (const auto& [order, key] : log) {
      const auto [it, inserted] = agreed_order.try_emplace(order, key, node);
      if (!inserted && it->second.first != key) {
        report("total-order", "execution order " + std::to_string(order) + " is " +
                                  txn_name(it->second.first) + " on n" +
                                  std::to_string(it->second.second) + " but " + txn_name(key) +
                                  " on n" + std::to_string(node));
      }
    }
  }

  // ---- durability + strict serializability over committed transactions.
  // Position = the agreed execution-order index within a group (a
  // cross-shard transaction has one per participant group: its prepare's
  // delivery index, the point its locks serialize it at). Strict
  // serializability on sequentially-executed identical state machines
  // reduces to: each group's agreed total order exists (checked above) and
  // respects real time — checked per group below, which for sharded traces
  // covers every real-time precedence each group can observe.
  std::map<std::uint32_t, std::map<TxnKey, std::uint64_t>> position_by_group;
  for (const auto& [group, agreed_order] : agreed_by_group) {
    auto& position = position_by_group[group];
    for (const auto& [order, entry] : agreed_order) position.emplace(entry.first, order);
  }

  // Durable = executed (in any position, or unordered) on a never-crashed
  // replica. Unordered executions (chain-tail reads) satisfy durability but
  // carry no serialization position.
  std::set<TxnKey> durable;
  for (const auto& [node, keys] : executed_keys) {
    if (crashed.count(node) > 0) continue;
    durable.insert(keys.begin(), keys.end());
  }

  struct Committed {
    TxnKey key;
    net::Time begin;
    net::Time ack;
  };
  std::vector<Committed> committed;
  for (const auto& [key, t] : txns) {
    if (!t.acked) continue;
    ++result.committed_txns_checked;
    if (durable.count(key) == 0 && ro_cuts.count(key) == 0) {
      // Read-only snapshot transactions (identified by their ro_cut events)
      // never enter a TOB log or execute as state-machine commands, so
      // durability does not apply to them.
      report("durability", "committed " + txn_name(key) +
                               " was never executed on a surviving replica");
      continue;
    }
    committed.push_back(Committed{key, t.begun ? t.begin : 0, t.ack});
  }

  // Per-group real-time check. Violation iff some T1, T2 in the group have
  // ack(T1) < begin(T2) yet pos(T2) < pos(T1): T2 started after T1's answer
  // was on the wire, but serialized before T1. Scanning in position order
  // with the running maximum of begin times, T1 is the current element and
  // T2 any earlier-positioned one, so the test is ack(current) < max(begin
  // of predecessors).
  for (const auto& [group, position] : position_by_group) {
    struct Ordered {
      TxnKey key;
      std::uint64_t pos;
      net::Time begin;
      net::Time ack;
    };
    std::vector<Ordered> ordered;
    for (const Committed& t : committed) {
      const auto it = position.find(t.key);
      if (it == position.end()) continue;  // other group, or unordered (a read)
      ordered.push_back(Ordered{t.key, it->second, t.begin, t.ack});
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Ordered& x, const Ordered& y) { return x.pos < y.pos; });
    net::Time max_begin_so_far = 0;
    TxnKey max_begin_key{};
    for (const Ordered& t : ordered) {
      if (max_begin_so_far != 0 && t.ack < max_begin_so_far) {
        report("strict-serializability",
               txn_name(t.key) + " (order " + std::to_string(t.pos) + ", acked at " +
                   std::to_string(t.ack) + "us) is serialized after " + txn_name(max_begin_key) +
                   " which was submitted at " + std::to_string(max_begin_so_far) +
                   "us, after that acknowledgment");
      }
      if (t.begin > max_begin_so_far) {
        max_begin_so_far = t.begin;
        max_begin_key = t.key;
      }
    }
  }

  // ---- snapshot-read consistency: a cross-shard read-only cut must be a
  // consistent prefix of every committed cross-shard transaction it shares
  // at least two groups with — the transaction is visible at a group g iff
  // its decision applied at a position <= the cut's pinned version S_g, and
  // that visibility must be uniform across the shared groups. A torn cut
  // (included on one group, excluded on another) is exactly the anomaly the
  // client's ro-snap exchange exists to prevent. One shared group is never a
  // violation: atomic visibility is trivially satisfied per group.
  for (const auto& [rkey, cut] : ro_cuts) {
    if (cut.size() >= 2) ++result.ro_cuts_checked;
    for (const auto& [xkey, positions] : xs_commit_pos) {
      std::string included_on;
      std::string excluded_on;
      for (const auto& [group, pos] : positions) {
        const auto it = cut.find(group);
        if (it == cut.end()) continue;
        std::string& list = pos <= it->second ? included_on : excluded_on;
        if (!list.empty()) list += ",";
        list += "g" + std::to_string(group);
      }
      if (!included_on.empty() && !excluded_on.empty()) {
        report("snapshot-read", "read-only " + txn_name(rkey) + " observes " +
                                    txn_name(xkey) + " on " + included_on +
                                    " but not on " + excluded_on);
      }
    }
  }

  // ---- cross-group note: there is deliberately NO cycle check over the
  // union of the per-group position orders. Such a check would assert that
  // every pair of transactions is ordered the same way by every common
  // group, which is stronger than strict serializability: non-conflicting
  // transactions commute, so two groups may legitimately serialize them in
  // opposite orders (TOB proposal racing does exactly that to concurrent
  // cross-shard prepares). The trace does not record key sets, so conflicts
  // are unobservable here — and the no-wait 2PC rule makes the full-chain
  // check redundant anyway: concurrently-prepared transactions only both
  // commit when their lock sets were disjoint (a conflict votes NO), while
  // non-concurrent pairs are covered by the per-group real-time scans above.
  // What IS checked across groups: per-group total order + real time (both
  // above) and uniform 2PC decisions (cross-shard-atomicity, earlier).
  return result;
}

Trace merge_traces(const std::vector<Trace>& traces) {
  Trace out;
  std::unordered_map<std::string, std::uint32_t> ids{{"", 0}};
  for (const Trace& trace : traces) {
    out.dropped += trace.dropped;
    for (const TraceEvent& event : trace.events) {
      TraceEvent copy = event;
      const std::string& label = trace.strings[event.label];
      auto [it, inserted] = ids.emplace(label, static_cast<std::uint32_t>(out.strings.size()));
      if (inserted) out.strings.push_back(label);
      copy.label = it->second;
      out.events.push_back(copy);
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) { return x.time < y.time; });
  return out;
}

}  // namespace shadow::obs
