#include "obs/metrics.hpp"

#include <cstdio>

namespace shadow::obs {

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  const auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Upper bound of bucket b is 2^(b+1) - 1; never report above the max.
      const std::uint64_t upper = b + 1 >= 64 ? UINT64_MAX : (std::uint64_t{1} << (b + 1)) - 1;
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

std::string MetricsRegistry::format() const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "  %-36s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "  %-36s count %-8llu mean %-10.1f p50 %-8llu p99 %-8llu max %llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()), h.mean(),
                  static_cast<unsigned long long>(h.percentile(50.0)),
                  static_cast<unsigned long long>(h.percentile(99.0)),
                  static_cast<unsigned long long>(h.max()));
    out += line;
  }
  return out;
}

}  // namespace shadow::obs
