// Structured execution tracing for ShadowDB runs.
//
// A Tracer records a single deterministic execution as a bounded ring buffer
// of typed events — message send/deliver, TOB broadcast/propose/decide/
// deliver, consensus ballot/round transitions, transaction begin/execute/ack,
// replica crash/recover, and state-transfer traffic — and derives per-
// component metrics (counters + latency histograms) from the same stream.
// The trace exports to JSON lines; src/obs/checker.* replays an exported (or
// in-memory) trace and verifies total order, at-most-once, and strict
// serializability offline. The event schema and the field meaning per kind
// are documented in src/obs/README.md.
//
// Layering: obs depends only on common + net (it observes any
// net::Transport — the simulator or the TCP backend). Protocol components receive an
// optional `Tracer*` through their config structs and record through the
// typed hooks below; a null tracer costs one branch per hook site.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "net/transport.hpp"

namespace shadow::obs {

enum class EventKind : std::uint8_t {
  kMsgSend,        // node=from, a=to, b=wire bytes, label=header
  kMsgDeliver,     // node=to, a=from, label=header
  kMsgDrop,        // node=from, a=to, b=wire bytes, c=wire::FrameStatus, label=header
  kTobBroadcast,   // node=frontend, client/seq of the command
  kTobPropose,     // node, a=slot, b=batch size
  kTobDecide,      // node, a=slot, b=batch size
  kTobDeliver,     // node, client/seq, a=slot, b=global delivery index
  kBallot,         // node, a=round, b=leader node, c=phase (BallotPhase)
  kRound,          // node, a=slot, b=round reached
  kTxnBegin,       // node=client node, client/seq, label=procedure
  kTxnExecute,     // node=replica, client/seq, a=order, b=duplicate, c=committed, label=proc
  kTxnAck,         // node=client node, client/seq, a=committed, b=latency µs
  kCrash,          // node
  kRecover,        // node, a=order/index recovered up to
  kStateTransfer,  // node, a=phase (StatePhase), b=bytes, c=peer node
  kGroupInfo,      // node, a=replication group id, b=restart epoch
  kXsPhase,        // node, client/seq, a=phase (XsPhase), b=group id,
                   // c=apply position (engine state version; 0 = unrecorded),
                   // label=proc
  kRoCut,          // node=client node, client/seq, a=group id, b=read version
                   // chosen for that group, c=cut size (participant groups)
};

enum class BallotPhase : std::uint8_t { kScout = 0, kAdopted = 1, kPreempted = 2 };
enum class StatePhase : std::uint8_t { kBegin = 0, kBatch = 1, kDone = 2 };
/// Cross-shard two-phase-commit lifecycle as observed by a participant
/// replica (core/twopc.hpp): prepared (locks held, vote cast), then the
/// coordinator's decision applied as commit or abort.
enum class XsPhase : std::uint8_t { kPrepare = 0, kCommit = 1, kAbort = 2 };

/// Order value for kTxnExecute events that carry no position in the replica's
/// execution order (chain-replication tail reads, answers served straight
/// from the dedup table). The checker counts them for at-most-once and
/// durability but not for order agreement or serializability positions.
inline constexpr std::uint64_t kUnordered = ~std::uint64_t{0};

const char* to_string(EventKind kind);

struct TraceEvent {
  net::Time time = 0;
  EventKind kind = EventKind::kMsgSend;
  NodeId node{};
  ClientId client{};
  RequestSeq seq = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t label = 0;  // index into Trace::strings (0 = empty)
};

/// A self-contained recorded execution: the event stream plus the interned
/// string table the events' `label` fields index into.
struct Trace {
  std::vector<TraceEvent> events;
  std::vector<std::string> strings{""};  // strings[0] is the empty label
  std::uint64_t dropped = 0;             // events lost to the ring buffer cap

  const std::string& label_of(const TraceEvent& e) const { return strings[e.label]; }
};

/// Serializes one event per line as JSON ({"t":..,"kind":"..",...}).
void export_jsonl(const Trace& trace, std::ostream& out);
void export_jsonl_file(const Trace& trace, const std::string& path);

/// Parses a trace produced by export_jsonl. Unknown keys are ignored;
/// malformed lines throw std::runtime_error with the line number.
Trace parse_jsonl(std::istream& in);
Trace parse_jsonl_file(const std::string& path);

struct TracerOptions {
  std::size_t capacity = 1 << 20;  // ring buffer size, events
  /// Record raw network send/deliver events. They dominate trace volume;
  /// protocol- and transaction-level events alone suffice for the checker.
  bool record_messages = true;
};

/// Records events and derives metrics. Attach to a net::Transport to capture
/// network-level send/deliver/crash automatically; protocol components call
/// the typed hooks through the `Tracer*` in their configs.
///
/// Thread safety: every recording hook (the TransportObserver overrides, the
/// typed tob_*/txn_*/ballot/... methods, observe()/count()), snapshot() and
/// sync_batch_stats() lock an internal mutex, so one Tracer may be fed from
/// a pipelined node's I/O, consensus, and executor threads concurrently.
/// The unsynchronized escape hatch is metrics(): it hands out references
/// into the registry, so call it only after the run has quiesced (threads
/// joined or known idle), or use the locked observe()/count() helpers while
/// stages are live.
class Tracer final : public net::TransportObserver {
 public:
  explicit Tracer(TracerOptions options = {});

  /// Subscribes to the transport's send/deliver/crash observer hooks.
  void attach(net::Transport& transport) { transport.add_observer(this); }

  // -- TransportObserver ----------------------------------------------------
  void on_send(net::Time t, NodeId from, NodeId to, const net::Message& m) override;
  void on_deliver(net::Time t, NodeId to, const net::Message& m) override;
  void on_crash(net::Time t, NodeId node) override;
  void on_wire_drop(net::Time t, NodeId from, NodeId to, const std::string& header,
                    std::size_t wire_size, wire::FrameStatus reason) override;
  /// Counts frame serializations as `net.encode_count`: one per fan-out
  /// when the transport shares the encoded buffer across a multicast.
  void on_frame_encoded(net::Time t, const std::string& header,
                        std::size_t frame_size) override;
  /// TCP peer lifecycle → net.peer_down_total / net.peer_up_total (with a
  /// net.peer_downtime_us histogram) / net.reconnect_attempts.
  void on_peer_down(net::Time t, net::HostId peer) override;
  void on_peer_up(net::Time t, net::HostId peer, net::Time downtime) override;
  void on_reconnect_attempt(net::Time t, net::HostId peer, std::uint64_t attempt,
                            net::Time backoff) override;

  // -- broadcast service ----------------------------------------------------
  void tob_broadcast(net::Time t, NodeId node, ClientId client, RequestSeq seq);
  void tob_propose(net::Time t, NodeId node, Slot slot, std::size_t batch_size);
  void tob_decide(net::Time t, NodeId node, Slot slot, std::size_t batch_size);
  void tob_deliver(net::Time t, NodeId node, Slot slot, std::uint64_t index, ClientId client,
                   RequestSeq seq);

  // -- consensus ------------------------------------------------------------
  void ballot(net::Time t, NodeId node, std::uint64_t round, NodeId leader, BallotPhase phase);
  void round(net::Time t, NodeId node, Slot slot, std::uint64_t round);

  // -- transactions ---------------------------------------------------------
  void txn_begin(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                 const std::string& proc);
  void txn_execute(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                   std::uint64_t order, bool duplicate, bool committed,
                   const std::string& proc);
  void txn_ack(net::Time t, NodeId node, ClientId client, RequestSeq seq, bool committed);

  // -- replica lifecycle / state transfer -----------------------------------
  void recover(net::Time t, NodeId node, std::uint64_t up_to_order);
  void state_transfer(net::Time t, NodeId node, StatePhase phase, std::uint64_t bytes,
                      NodeId peer);

  // -- sharded deployments ---------------------------------------------------
  /// Declares a node's replication group (and restart epoch) so the offline
  /// checker can split merged multi-group traces per group. Emitted once per
  /// node by the sharded assembly; traces without group_info events are
  /// treated as one group (id 0).
  void group_info(net::Time t, NodeId node, std::uint64_t group, std::uint64_t epoch);
  /// Cross-shard 2PC lifecycle: a participant replica prepared / committed /
  /// aborted the transaction in its own group's log. `pos` is the replica's
  /// engine state version when the decision applied (0 for prepares and for
  /// callers that predate versioned storage) — the snapshot-read check uses
  /// it to decide whether a read-only cut includes this transaction.
  void xs_phase(net::Time t, NodeId node, ClientId client, RequestSeq seq, XsPhase phase,
                std::uint64_t group, const std::string& proc, std::uint64_t pos = 0);
  /// The per-group read-version vector a read-only transaction executed at
  /// (one event per participant group). Emitted by the client once the
  /// snapshot read succeeds; the offline checker verifies the cut is
  /// prefix-consistent against every committed cross-shard transaction.
  void ro_cut(net::Time t, NodeId node, ClientId client, RequestSeq seq, std::uint64_t group,
              std::uint64_t version, std::uint64_t parts);

  // -- thread-safe metric helpers --------------------------------------------
  /// Locked histogram observation / counter bump for callers on pipeline
  /// stage threads (metrics() itself is reference-returning and therefore
  /// only safe on a quiesced tracer).
  void observe(const std::string& name, std::uint64_t value);
  void count(const std::string& name, std::uint64_t delta = 1);

  /// Folds the process-wide zero-copy batch counters (wire::batch_stats())
  /// into this tracer's metrics as net.batch_encode_count /
  /// net.batch_splices / net.batch_bytes_copied, counting only the deltas
  /// accrued since this tracer was constructed (or last synced). Call before
  /// reading/printing metrics; idempotent between accruals.
  void sync_batch_stats();

  /// Events recorded so far, oldest first (materializes the ring buffer).
  Trace snapshot() const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return unlocked_dropped();
  }

 private:
  void append(TraceEvent e);  // caller holds mu_
  std::uint32_t intern(const std::string& s);  // caller holds mu_
  std::uint64_t unlocked_dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  /// One lock for everything: the ring, the string table, the metrics
  /// registry, and the derived-metric maps. Recording is a few map lookups
  /// and a vector write — contention is negligible next to a socket hop.
  mutable std::mutex mu_;
  TracerOptions options_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;          // next write position once the ring is full
  std::uint64_t recorded_ = 0;    // total appended (>= ring_.size() on overflow)
  std::vector<std::string> strings_{""};
  std::unordered_map<std::string, std::uint32_t> string_ids_{{"", 0}};

  MetricsRegistry metrics_;
  // Snapshot of the process-wide zero-copy counters at construction / last
  // sync, so concurrent tracers each report only their own window.
  SpliceStats batch_stats_baseline_;
  // Derived-metric state: first propose / first decide per slot, and the
  // first submission time per (client, seq) for end-to-end ack latency.
  std::unordered_map<std::uint64_t, net::Time> slot_proposed_at_;
  std::unordered_map<std::uint64_t, net::Time> slot_decided_at_;
  std::map<std::pair<std::uint32_t, RequestSeq>, net::Time> txn_begun_at_;
};

}  // namespace shadow::obs
