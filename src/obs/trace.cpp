#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/check.hpp"

namespace shadow::obs {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kMsgSend, "msg_send"},
    {EventKind::kMsgDeliver, "msg_deliver"},
    {EventKind::kMsgDrop, "msg_drop"},
    {EventKind::kTobBroadcast, "tob_broadcast"},
    {EventKind::kTobPropose, "tob_propose"},
    {EventKind::kTobDecide, "tob_decide"},
    {EventKind::kTobDeliver, "tob_deliver"},
    {EventKind::kBallot, "ballot"},
    {EventKind::kRound, "round"},
    {EventKind::kTxnBegin, "txn_begin"},
    {EventKind::kTxnExecute, "txn_execute"},
    {EventKind::kTxnAck, "txn_ack"},
    {EventKind::kCrash, "crash"},
    {EventKind::kRecover, "recover"},
    {EventKind::kStateTransfer, "state_transfer"},
    {EventKind::kGroupInfo, "group_info"},
    {EventKind::kXsPhase, "xs_phase"},
    {EventKind::kRoCut, "ro_cut"},
};

bool kind_from_string(const std::string& s, EventKind& out) {
  for (const KindName& kn : kKindNames) {
    if (s == kn.name) {
      out = kn.kind;
      return true;
    }
  }
  return false;
}

/// JSON string escaping for labels (headers and procedure names are plain
/// identifiers in practice, but the exporter must stay well-formed anyway).
void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Minimal field accessors for the exporter's own fixed JSON shape.
bool find_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

bool find_string(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  std::size_t i = start + needle.size();
  std::string raw;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      raw += line[i];
      ++i;
    }
    raw += line[i];
    ++i;
  }
  out = unescape(raw);
  return true;
}

}  // namespace

const char* to_string(EventKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

// ----------------------------------------------------------------- Tracer --

Tracer::Tracer(TracerOptions options)
    : options_(options), batch_stats_baseline_(splice_stats()) {
  SHADOW_REQUIRE(options_.capacity > 0);
  ring_.reserve(std::min<std::size_t>(options_.capacity, 4096));
}

void Tracer::sync_batch_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const SpliceStats& now = splice_stats();
  metrics_.counter("net.batch_encode_count")
      .add(now.batch_encodes - batch_stats_baseline_.batch_encodes);
  metrics_.counter("net.batch_splices")
      .add(now.batch_splices - batch_stats_baseline_.batch_splices);
  metrics_.counter("net.batch_bytes_copied")
      .add(now.batch_bytes_copied - batch_stats_baseline_.batch_bytes_copied);
  batch_stats_baseline_ = now;
}

void Tracer::append(TraceEvent e) {
  ++recorded_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(e);
    return;
  }
  // Full: overwrite the oldest event (head_ is the oldest slot).
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
}

std::uint32_t Tracer::intern(const std::string& s) {
  const auto [it, inserted] = string_ids_.try_emplace(s, static_cast<std::uint32_t>(strings_.size()));
  if (inserted) strings_.push_back(s);
  return it->second;
}

Trace Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Trace trace;
  trace.strings = strings_;
  trace.dropped = unlocked_dropped();
  trace.events.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    trace.events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return trace;
}

void Tracer::on_send(net::Time t, NodeId from, NodeId to, const net::Message& m) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.messages").add();
  metrics_.counter("net.bytes").add(m.wire_size);
  metrics_.counter("net.bytes." + m.header).add(m.wire_size);
  if (!options_.record_messages) return;
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kMsgSend;
  e.node = from;
  e.a = to.value;
  e.b = m.wire_size;
  e.label = intern(m.header);
  append(e);
}

void Tracer::on_deliver(net::Time t, NodeId to, const net::Message& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.record_messages) return;
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kMsgDeliver;
  e.node = to;
  e.a = m.from.value;
  e.label = intern(m.header);
  append(e);
}

void Tracer::on_wire_drop(net::Time t, NodeId from, NodeId to, const std::string& header,
                          std::size_t wire_size, wire::FrameStatus reason) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.wire_drops").add();
  metrics_.counter("net.wire_drop_bytes").add(wire_size);
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kMsgDrop;
  e.node = from;
  e.a = to.value;
  e.b = wire_size;
  e.c = static_cast<std::uint64_t>(reason);
  e.label = intern(header);
  append(e);
}

void Tracer::on_frame_encoded(net::Time /*t*/, const std::string& /*header*/,
                              std::size_t frame_size) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.encode_count").add();
  metrics_.counter("net.encode_bytes").add(frame_size);
}

void Tracer::on_peer_down(net::Time /*t*/, net::HostId /*peer*/) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.peer_down_total").add();
}

void Tracer::on_peer_up(net::Time /*t*/, net::HostId /*peer*/, net::Time downtime) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.peer_up_total").add();
  if (downtime > 0) metrics_.histogram("net.peer_downtime_us").observe(downtime);
}

void Tracer::on_reconnect_attempt(net::Time /*t*/, net::HostId /*peer*/,
                                  std::uint64_t /*attempt*/, net::Time /*backoff*/) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("net.reconnect_attempts").add();
}

void Tracer::on_crash(net::Time t, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("replica.crashes").add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kCrash;
  e.node = node;
  append(e);
}

void Tracer::tob_broadcast(net::Time t, NodeId node, ClientId client, RequestSeq seq) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("tob.broadcasts").add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTobBroadcast;
  e.node = node;
  e.client = client;
  e.seq = seq;
  append(e);
}

void Tracer::tob_propose(net::Time t, NodeId node, Slot slot, std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("tob.proposals").add();
  slot_proposed_at_.try_emplace(slot, t);
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTobPropose;
  e.node = node;
  e.a = slot;
  e.b = batch_size;
  append(e);
}

void Tracer::tob_decide(net::Time t, NodeId node, Slot slot, std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  // Decide latency and batch size are per-slot metrics: count the first
  // node's decide only (every node learns every slot).
  if (slot_decided_at_.try_emplace(slot, t).second) {
    metrics_.counter("tob.decisions").add();
    metrics_.histogram("tob.batch_size").observe(batch_size);
    if (const auto it = slot_proposed_at_.find(slot); it != slot_proposed_at_.end()) {
      metrics_.histogram("tob.decide_latency_us").observe(t - it->second);
    }
  }
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTobDecide;
  e.node = node;
  e.a = slot;
  e.b = batch_size;
  append(e);
}

void Tracer::tob_deliver(net::Time t, NodeId node, Slot slot, std::uint64_t index,
                         ClientId client, RequestSeq seq) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("tob.deliveries").add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTobDeliver;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.a = slot;
  e.b = index;
  append(e);
}

void Tracer::ballot(net::Time t, NodeId node, std::uint64_t round, NodeId leader,
                    BallotPhase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (phase) {
    case BallotPhase::kScout: metrics_.counter("paxos.scouts").add(); break;
    case BallotPhase::kAdopted: metrics_.counter("paxos.adoptions").add(); break;
    case BallotPhase::kPreempted: metrics_.counter("paxos.preemptions").add(); break;
  }
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kBallot;
  e.node = node;
  e.a = round;
  e.b = leader.value;
  e.c = static_cast<std::uint64_t>(phase);
  append(e);
}

void Tracer::round(net::Time t, NodeId node, Slot slot, std::uint64_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("two_third.round_advances").add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kRound;
  e.node = node;
  e.a = slot;
  e.b = round;
  append(e);
}

void Tracer::txn_begin(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                       const std::string& proc) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("txn.begun").add();
  txn_begun_at_.try_emplace({client.value, seq}, t);
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTxnBegin;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.label = intern(proc);
  append(e);
}

void Tracer::txn_execute(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                         std::uint64_t order, bool duplicate, bool committed,
                         const std::string& proc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (duplicate) {
    metrics_.counter("txn.duplicates_suppressed").add();
  } else {
    metrics_.counter("txn.executed").add();
    if (!committed) metrics_.counter("txn.aborted").add();
  }
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTxnExecute;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.a = order;
  e.b = duplicate ? 1 : 0;
  e.c = committed ? 1 : 0;
  e.label = intern(proc);
  append(e);
}

void Tracer::txn_ack(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                     bool committed) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter(committed ? "txn.committed" : "txn.aborts_answered").add();
  if (const auto it = txn_begun_at_.find({client.value, seq}); it != txn_begun_at_.end()) {
    metrics_.histogram("txn.latency_us").observe(t - it->second);
  }
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kTxnAck;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.a = committed ? 1 : 0;
  append(e);
}

void Tracer::recover(net::Time t, NodeId node, std::uint64_t up_to_order) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter("replica.recoveries").add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kRecover;
  e.node = node;
  e.a = up_to_order;
  append(e);
}

void Tracer::state_transfer(net::Time t, NodeId node, StatePhase phase, std::uint64_t bytes,
                            NodeId peer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase == StatePhase::kBatch) {
    metrics_.counter("state_transfer.batches").add();
    metrics_.counter("state_transfer.bytes").add(bytes);
  } else if (phase == StatePhase::kBegin) {
    metrics_.counter("state_transfer.sessions").add();
  }
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kStateTransfer;
  e.node = node;
  e.a = static_cast<std::uint64_t>(phase);
  e.b = bytes;
  e.c = peer.value;
  append(e);
}

void Tracer::group_info(net::Time t, NodeId node, std::uint64_t group, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kGroupInfo;
  e.node = node;
  e.a = group;
  e.b = epoch;
  append(e);
}

void Tracer::xs_phase(net::Time t, NodeId node, ClientId client, RequestSeq seq, XsPhase phase,
                      std::uint64_t group, const std::string& proc, std::uint64_t pos) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter(phase == XsPhase::kPrepare  ? "xs.prepares"
                   : phase == XsPhase::kCommit ? "xs.commits"
                                               : "xs.aborts")
      .add();
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kXsPhase;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.a = static_cast<std::uint64_t>(phase);
  e.b = group;
  e.c = pos;
  e.label = intern(proc);
  append(e);
}

void Tracer::ro_cut(net::Time t, NodeId node, ClientId client, RequestSeq seq,
                    std::uint64_t group, std::uint64_t version, std::uint64_t parts) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.time = t;
  e.kind = EventKind::kRoCut;
  e.node = node;
  e.client = client;
  e.seq = seq;
  e.a = group;
  e.b = version;
  e.c = parts;
  append(e);
}

void Tracer::observe(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.histogram(name).observe(value);
}

void Tracer::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.counter(name).add(delta);
}

// ----------------------------------------------------------- JSONL export --

void export_jsonl(const Trace& trace, std::ostream& out) {
  std::string line;
  char buf[256];
  for (const TraceEvent& e : trace.events) {
    line.clear();
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%llu,\"kind\":\"%s\",\"node\":%u,\"client\":%u,\"seq\":%llu,"
                  "\"a\":%llu,\"b\":%llu,\"c\":%llu",
                  static_cast<unsigned long long>(e.time), to_string(e.kind), e.node.value,
                  e.client.value, static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b),
                  static_cast<unsigned long long>(e.c));
    line += buf;
    if (e.label != 0) {
      line += ",\"label\":\"";
      append_escaped(line, trace.strings[e.label]);
      line += '"';
    }
    line += "}\n";
    out << line;
  }
}

void export_jsonl_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  SHADOW_CHECK_MSG(out.good(), "cannot open trace file for writing: " + path);
  export_jsonl(trace, out);
}

Trace parse_jsonl(std::istream& in) {
  Trace trace;
  std::unordered_map<std::string, std::uint32_t> ids{{"", 0}};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceEvent e;
    std::string kind_str;
    std::uint64_t v = 0;
    if (!find_string(line, "kind", kind_str) || !kind_from_string(kind_str, e.kind)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": missing or unknown kind");
    }
    if (!find_u64(line, "t", e.time)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) + ": missing time");
    }
    if (find_u64(line, "node", v)) e.node = NodeId{static_cast<std::uint32_t>(v)};
    if (find_u64(line, "client", v)) e.client = ClientId{static_cast<std::uint32_t>(v)};
    find_u64(line, "seq", e.seq);
    find_u64(line, "a", e.a);
    find_u64(line, "b", e.b);
    find_u64(line, "c", e.c);
    if (std::string label; find_string(line, "label", label)) {
      const auto [it, inserted] =
          ids.try_emplace(label, static_cast<std::uint32_t>(trace.strings.size()));
      if (inserted) trace.strings.push_back(label);
      e.label = it->second;
    }
    trace.events.push_back(e);
  }
  return trace;
}

Trace parse_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  SHADOW_CHECK_MSG(in.good(), "cannot open trace file for reading: " + path);
  return parse_jsonl(in);
}

}  // namespace shadow::obs
