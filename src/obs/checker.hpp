// Offline trace checker: replays a recorded execution (in-memory or parsed
// back from its JSON-lines export) and verifies the correctness properties
// the paper claims for ShadowDB, from observable events alone:
//
//   total-order      — replicas agree on which transaction occupies every
//                      execution-order index, and TOB nodes agree on which
//                      command occupies every delivery index;
//   at-most-once     — no replica executes the same (client, seq) twice, and
//                      no order index is executed twice on one replica;
//   strict-serializability
//                    — committed transactions are equivalent to a serial
//                      execution in the agreed order that respects real time:
//                      if T1 was acknowledged before T2 was submitted, T1
//                      precedes T2 in the execution order;
//   durability       — every acknowledged-committed transaction was executed
//                      on at least one surviving (never-crashed) replica.
//                      Read-only snapshot transactions are exempt: they never
//                      enter a TOB log (their ro_cut events identify them).
//   cross-shard-atomicity (sharded traces)
//                    — a cross-shard transaction's 2PC decision is uniform:
//                      no participant group applies a commit while another
//                      applies an abort.
//   snapshot-read (sharded traces)
//                    — every cross-shard read-only cut (the per-group read
//                      versions in its ro_cut events) observes each committed
//                      cross-shard transaction uniformly: visible at a shared
//                      group iff its decision applied at a position <= the
//                      cut's version there, and that answer agrees across all
//                      shared groups (no torn reads).
//
// Sharded traces (group_info events present, core/group.hpp) are checked
// per replication group — each group is its own TOB instance and execution
// order, so order agreement and the real-time scan run within each group —
// plus cross-shard atomicity over the 2PC decision events. There is no
// cross-group order-agreement check: groups may serialize non-conflicting
// transactions in opposite orders (they commute), and the trace does not
// record key sets, so a checker demanding a single order embedding every
// group's full chain would reject correct executions. Traces without
// group_info events put every node in group 0 and take exactly the original
// single-group checks.
//
// Replicas that crash during the run are excluded from the order-agreement
// comparison by default: a crashed primary may have executed a suffix of
// unacknowledged transactions that the next configuration legitimately
// discards and re-orders (the paper's Durability property only covers
// answered transactions). Internal procedures (names starting with "::",
// e.g. reconfigurations) never count as client transactions.
//
// See src/obs/README.md for the invariant statements and their relation to
// the paper's proofs.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace shadow::obs {

struct Violation {
  std::string invariant;  // "total-order", "at-most-once", "strict-serializability",
                          // "durability", "cross-shard-atomicity", "snapshot-read"
  std::string detail;
};

struct CheckResult {
  std::vector<Violation> violations;
  // Coverage counters so a "pass" on an empty trace is visibly vacuous.
  std::size_t replicas_checked = 0;
  std::size_t executions_checked = 0;
  std::size_t committed_txns_checked = 0;
  std::size_t ro_cuts_checked = 0;  // cross-shard read-only cuts examined

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

struct CheckOptions {
  /// Include replicas that crashed during the run in the execution-order
  /// agreement check (their unacknowledged suffix may legitimately diverge;
  /// enable only for traces without reconfiguration).
  bool include_crashed_in_order_check = false;
  /// Cap on reported violations (a systematically broken trace would
  /// otherwise produce one violation per event).
  std::size_t max_violations = 32;
};

CheckResult check_trace(const Trace& trace, const CheckOptions& options = {});

/// Merges per-process traces (one Tracer per OS process of a TCP cluster)
/// into a single checkable trace: labels are re-interned into one string
/// table and events are ordered by timestamp, which is meaningful across
/// processes because the cluster's transports share a clock epoch.
Trace merge_traces(const std::vector<Trace>& traces);

}  // namespace shadow::obs
