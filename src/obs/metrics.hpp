// Per-component metrics: named monotonic counters and fixed-bucket latency
// histograms. Components update them through the Tracer's typed record
// hooks (src/obs/trace.hpp); benchmarks print them as a uniform metrics
// block next to the paper-reproduction output (bench/common/bench_util.hpp).
//
// Names are dotted paths, component first: "tob.decide_latency_us",
// "paxos.preemptions", "state_transfer.bytes". The registry is ordered by
// name so the printed block is stable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shadow::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A latency/size histogram with fixed power-of-two buckets: bucket i counts
/// observations in [2^i, 2^(i+1)). Power-of-two bounds keep `observe` a few
/// instructions — the recorder sits on hot paths (one call per decide, per
/// transaction, per state-transfer batch).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // covers u64 values up to ~1.1e12

  void observe(std::uint64_t v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    ++buckets_[bucket_of(v)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Percentile estimate from the buckets (upper bound of the bucket holding
  /// the p-th observation, clamped to the observed max).
  std::uint64_t percentile(double p) const;

  const std::uint64_t* buckets() const { return buckets_; }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// Name → counter/histogram registry. Lookup lazily creates the metric, so
/// instrumentation sites never need registration boilerplate.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Multi-line human-readable block (used by the bench harness).
  std::string format() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace shadow::obs
