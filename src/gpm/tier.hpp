// Execution tiers and the virtual-CPU cost model.
//
// The paper runs the same generated program three ways: in the SML
// interpreter (unoptimized program), in the interpreter after the Nuprl
// program optimizer ran (optimized program), and translated to Lisp and
// compiled. We reproduce the three tiers by charging virtual CPU per work
// unit (abstract AST node evaluated): interpretation pays a large per-node
// cost, compiled code pays a small fixed dispatch cost plus a tiny per-node
// cost. Constants are calibrated against §IV.A (see EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "net/time.hpp"

namespace shadow::gpm {

enum class ExecutionTier : std::uint8_t {
  kInterpreted,     // unoptimized combinator program, tree-walking interpreter
  kInterpretedOpt,  // optimizer-fused program, same interpreter
  kCompiled,        // fused program translated and compiled (the Lisp path)
};

inline const char* to_string(ExecutionTier t) {
  switch (t) {
    case ExecutionTier::kInterpreted: return "interpreted";
    case ExecutionTier::kInterpretedOpt: return "interpreted-opt";
    case ExecutionTier::kCompiled: return "compiled";
  }
  return "?";
}

/// Converts abstract work (AST nodes evaluated) into virtual CPU micros.
struct CostModel {
  // Tree-walking interpretation: dominated by per-node dispatch.
  double interp_us_per_work = 9.0;
  double interp_overhead_us = 250.0;
  // Compiled: per-message dispatch plus a small per-node residue.
  double compiled_us_per_work = 0.78;
  double compiled_overhead_us = 40.0;

  net::Time cost_us(ExecutionTier tier, std::uint64_t work) const {
    double us = 0.0;
    switch (tier) {
      case ExecutionTier::kInterpreted:
      case ExecutionTier::kInterpretedOpt:
        us = interp_overhead_us + interp_us_per_work * static_cast<double>(work);
        break;
      case ExecutionTier::kCompiled:
        us = compiled_overhead_us + compiled_us_per_work * static_cast<double>(work);
        break;
    }
    return static_cast<net::Time>(us);
  }
};

}  // namespace shadow::gpm
